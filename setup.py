"""Package metadata for the VQ-LLM reproduction.

Source layout: the ``repro`` package lives under ``src/``; install
editable (``pip install -e .``) or set ``PYTHONPATH=src`` to run from
the tree.  The ``bench`` extra pulls in everything the test and
benchmark suites use.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

HERE = Path(__file__).parent

README = (HERE / "README.md").read_text(encoding="utf-8")

VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="repro-vqllm",
    version=VERSION,
    description=("Reproduction of VQ-LLM (HPCA 2025) on an analytic GPU "
                 "model, with a continuous-batching serving simulator"),
    long_description=README,
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
    ],
    extras_require={
        "bench": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "hypothesis>=6",
            "ruff>=0.4",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Scientific/Engineering",
    ],
)
