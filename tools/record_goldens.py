"""Record golden metrics for the fast-path refactor tests.

Runs the pinned scenarios of ``tests/test_golden_fastpath.py`` and
writes their full ``metrics()`` dicts to
``tests/data/golden_fastpath.json``.  JSON round-trips Python floats
losslessly, so the stored values pin the simulator's output
*bit-identical*: any refactor of the scheduler, cost model or event
core that changes a single float shows up as a golden diff.

Regenerate (only when an intentional semantic change lands)::

    PYTHONPATH=src python tools/record_goldens.py
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.cluster import make_replicas
from repro.bench.serving import make_trace, simulate_mode
from repro.cluster.fleet import SLO, FleetSimulator, size_fleet
from repro.serve.api import FleetConfig
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b

OUT = os.path.join(os.path.dirname(__file__), os.pardir,
                   "tests", "data", "golden_fastpath.json")

#: The PR-1 seed workload (poisson trace, real RTX 4090 cost model).
SEED_WORKLOAD = dict(kv_hbm_gb=4.0, rate_rps=16.0, n_requests=64,
                     prompt_mean=384, output_mean=96, seed=0)

#: The PR-5 prefix workload (chat sessions, paged blocks, 1 GB KV).
PREFIX_WORKLOAD = dict(kv_hbm_gb=2.0, rate_rps=16.0, n_requests=48,
                       prompt_mean=256, output_mean=64, seed=0,
                       trace_kind="chat", admission="paged",
                       prefix_caching=True)

#: Fleet scenario: 3 identical replicas, poisson arrivals.
FLEET_TRACE = dict(kind="poisson", rate_rps=24.0, n_requests=48,
                   prompt_mean=512, output_mean=64, seed=0)

#: Sizing scenario: smallest kv-cq-4 fleet under a 2 s TTFT SLO.
SIZING_TRACE = dict(kind="poisson", rate_rps=24.0, n_requests=48,
                    prompt_mean=768, output_mean=96, seed=0)
SIZING_SLO = SLO(ttft_s=2.0)


def record() -> dict:
    config = llama_7b()
    engine = ComputeEngine(RTX4090)
    golden: dict = {}

    seed = {}
    for mode in ("fp16", "kv-cq-4"):
        for adm in ("reserve", "paged"):
            rep = simulate_mode(mode, config=config, engine=engine,
                                admission=adm, **SEED_WORKLOAD)
            seed[f"{mode}/{adm}"] = rep.metrics()
    golden["seed"] = seed

    prefix = {}
    for mode in ("fp16", "kv-cq-4"):
        rep = simulate_mode(mode, config=config, engine=engine,
                            **PREFIX_WORKLOAD)
        prefix[mode] = rep.metrics()
    golden["prefix"] = prefix

    spec = dict(FLEET_TRACE)
    trace = make_trace(spec.pop("kind"), **spec)
    fleet = {}
    for policy in ("jsq", "least-kv"):
        replicas = make_replicas(3, "kv-cq-4", config=config, engine=engine)
        rep = FleetSimulator(replicas,
                             config=FleetConfig(policy=policy)).run(trace)
        fleet[policy] = {
            "metrics": rep.metrics(),
            "replica_iterations": [s.n_iterations for s in rep.replica_stats],
            "replica_requests": [s.n_requests for s in rep.replica_stats],
        }
    golden["fleet"] = fleet

    spec = dict(SIZING_TRACE)
    strace = make_trace(spec.pop("kind"), **spec)

    def factory(n):
        return make_replicas(n, "kv-cq-4", config=config, engine=engine)

    n, rep = size_fleet(factory, strace, SIZING_SLO, policy="least-kv",
                        max_replicas=4)
    golden["sizing"] = {"n_replicas": n, "metrics": rep.metrics(SIZING_SLO)}
    return golden


def main() -> int:
    golden = record()
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(OUT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
