"""Wall-clock performance gate for the fast-path simulation core.

CI runs this after the functional suites: it exercises the two perf
targets of the event-core PR and fails loudly when either regresses by
more than ~2x, catching accidental slow-path reintroductions (a
scheduler falling off the full-rotation fast path, the sample disk
cache breaking, an O(n) scan reappearing per iteration).

Checks:

1. ``examples/cluster_serving.py`` warm wall clock.  The first run
   trains/loads quantized samples (cold); the timed second run is the
   steady state the 18x speedup claim is about (~0.7 s locally).  The
   default budget allows roughly 2x for slower CI hardware on top of
   the 2x regression allowance.
2. Event-core throughput: a large constant-cost serving simulation must
   sustain a floor in simulated requests per wall-clock second (the
   1M-requests-under-60 s target runs at ~21 k req/s locally; the
   floor is ~2x CI slack on top of a 2x regression allowance).
3. Tracing overhead: the same constant-cost simulation with
   :mod:`repro.obs` timeline recording enabled must stay within
   ``--trace-factor`` (default 1.5x) of the untraced wall clock —
   the "near-zero-cost when disabled, cheap when enabled" contract
   of the tracer's column-oriented buffers.
4. Timeline-sampling overhead: the same simulation with windowed
   time-series telemetry (``SimConfig(timeline=...)``) enabled must
   stay within the same 1.5x allowance — SAMPLE events on the heap
   plus per-window accumulation are O(windows), not O(events).

Run with::

    PYTHONPATH=src python tools/perf_smoke.py
"""

from __future__ import annotations

import argparse
import contextlib
import io
import runpy
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.timeline import TimelineConfig  # noqa: E402
from repro.serve.api import SchedulerConfig, SimConfig  # noqa: E402
from repro.serve.requests import Request  # noqa: E402
from repro.serve.scheduler import KVBudget  # noqa: E402


class _ConstantCostModel:
    """Fixed step cost: isolates scheduler/event-core overhead."""

    def step_us(self, plan):
        return 150.0


def _run_example(path: Path) -> float:
    """Run one example silently; return its wall clock in seconds."""
    t0 = time.perf_counter()
    with contextlib.redirect_stdout(io.StringIO()):
        runpy.run_path(str(path), run_name="__main__")
    return time.perf_counter() - t0


def _event_core_elapsed(n_requests: int, trace: bool = False,
                        timeline: TimelineConfig | None = None) -> float:
    """Wall-clock seconds for a constant-cost sim of ``n_requests``."""
    requests = [Request(req_id=i, arrival_s=i * 0.0002, prompt_tokens=32,
                        output_tokens=8) for i in range(n_requests)]
    budget = KVBudget(capacity_bytes=4e6, bytes_per_token=1.0)
    sim = SimConfig(scheduler=SchedulerConfig(token_budget=4096,
                                              max_seqs=256),
                    name="perf-smoke", trace=trace, timeline=timeline,
                    max_iterations=50_000_000).build(budget,
                                                     _ConstantCostModel())
    t0 = time.perf_counter()
    report = sim.run(requests)
    elapsed = time.perf_counter() - t0
    assert report.n_requests == n_requests
    return elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/perf_smoke.py",
        description="Fail on >~2x wall-clock regression of the "
                    "fast-path simulation core.")
    parser.add_argument("--budget-s", type=float, default=3.0,
                        help="warm cluster_serving.py wall-clock budget "
                             "(default 3.0 s; ~0.7 s locally)")
    parser.add_argument("--min-rps", type=float, default=5000.0,
                        help="event-core floor, simulated requests per "
                             "second (default 5000; ~21k locally)")
    parser.add_argument("--requests", type=int, default=200_000,
                        help="trace size for the event-core check")
    parser.add_argument("--trace-requests", type=int, default=50_000,
                        help="trace size for the tracing-overhead check")
    parser.add_argument("--trace-factor", type=float, default=1.5,
                        help="max traced/untraced wall-clock ratio "
                             "(default 1.5x)")
    args = parser.parse_args(argv)

    example = ROOT / "examples" / "cluster_serving.py"
    cold_s = _run_example(example)
    warm_s = _run_example(example)
    print(f"cluster_serving.py: cold {cold_s:.2f} s, warm {warm_s:.2f} s "
          f"(budget {args.budget_s:.2f} s)")

    rps = args.requests / _event_core_elapsed(args.requests)
    print(f"event core: {args.requests:,} requests at {rps:,.0f} req/s "
          f"(floor {args.min_rps:,.0f})")

    off_s = _event_core_elapsed(args.trace_requests, trace=False)
    on_s = _event_core_elapsed(args.trace_requests, trace=True)
    factor = on_s / off_s
    print(f"tracing overhead: {args.trace_requests:,} requests, "
          f"untraced {off_s:.2f} s, traced {on_s:.2f} s "
          f"({factor:.2f}x, max {args.trace_factor:.2f}x)")

    tl_s = _event_core_elapsed(
        args.trace_requests,
        timeline=TimelineConfig(window_s=0.25, slo_ttft_s=0.5))
    tl_factor = tl_s / off_s
    print(f"timeline overhead: {args.trace_requests:,} requests, "
          f"plain {off_s:.2f} s, sampled {tl_s:.2f} s "
          f"({tl_factor:.2f}x, max {args.trace_factor:.2f}x)")

    failed = False
    if warm_s > args.budget_s:
        print(f"PERF REGRESSION: warm cluster_serving.py took "
              f"{warm_s:.2f} s > {args.budget_s:.2f} s budget")
        failed = True
    if rps < args.min_rps:
        print(f"PERF REGRESSION: event core at {rps:,.0f} req/s < "
              f"{args.min_rps:,.0f} floor")
        failed = True
    if factor > args.trace_factor:
        print(f"PERF REGRESSION: tracing costs {factor:.2f}x > "
              f"{args.trace_factor:.2f}x allowance")
        failed = True
    if tl_factor > args.trace_factor:
        print(f"PERF REGRESSION: timeline sampling costs "
              f"{tl_factor:.2f}x > {args.trace_factor:.2f}x allowance")
        failed = True
    if not failed:
        print("perf smoke passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
