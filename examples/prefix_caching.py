"""Shared-prefix KV reuse: radix-tree prefix caching over paged blocks.

PR 4's paged allocator made KV *occupancy* real; this example shows the
next multiplier: requests that share a prompt prefix — a fleet-wide
system prompt, or a chat session re-sending its whole history every
turn — can share the prefix's KV blocks instead of recomputing them
(`repro.serve.prefix`: ref-counted blocks keyed by rolling hashes in a
radix tree, LRU eviction of unreferenced leaves, copy-on-write on
divergence).

Three claims, all asserted:

1. **Chat turns get cheaper, not dearer.**  On a multi-turn chat trace
   turn *k*'s prompt is the whole history — longer every turn — yet
   with prefix caching its TTFT is *below* turn 0's, because only the
   new user message misses the cache.
2. **Shared system prompts mostly hit.**  On a shared-system-prompt
   trace the hit rate exceeds 50%: after the first request warms the
   tree, only each request's unique suffix prefills.
3. **Compression deepens the tree.**  At *equal HBM*, a CQ-4 cache
   holds ~4x the blocks of FP16, so under memory pressure it keeps the
   session trees resident where FP16 must evict them: kv-cq-4 + prefix
   caching beats FP16 + prefix caching on TTFT p50 *and* sustains an
   equal-or-higher cached-token fraction.

Ref-count conservation (no leaked blocks once every request finished)
is asserted after every run.

Run with::

    PYTHONPATH=src python examples/prefix_caching.py
"""

from repro.bench.serving import make_cost_model, make_kv_budget
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b
from repro.serve.requests import (
    LengthSampler,
    multi_turn_chat_trace,
    shared_prefix_trace,
)
from repro.serve.scheduler import ContinuousBatchScheduler
from repro.serve.simulator import ServingSimulator

#: Equal HBM allowance for the KV cache of every mode.
KV_HBM_GB = 1.0

#: Multi-turn chat: per-session system prompts (``shared_system=False``
#: — a multi-tenant assistant), growing history each turn.
CHAT = dict(n_sessions=8, turns=4, rate_rps=2.0, think_s=4.0,
            system_tokens=256,
            user=LengthSampler(mean=64, cv=0.5, hi=256),
            output=LengthSampler(mean=64, cv=0.5, hi=256),
            shared_system=False, seed=0)

#: Shared-system-prompt trace: one 512-token system prompt, unique
#: ~128-token user suffixes.
SHARED = dict(rate_rps=8.0, n_requests=48, system_tokens=512,
              prompt=LengthSampler(mean=128, cv=0.5, hi=512),
              output=LengthSampler(mean=64, cv=0.5, hi=256), seed=0)


def run(mode, trace, engine, config, prefix_caching, name):
    budget = make_kv_budget(config, mode, capacity_bytes=KV_HBM_GB * 1e9)
    sched = ContinuousBatchScheduler(budget, token_budget=2048, max_seqs=64,
                                     admission="paged", block_tokens=16,
                                     prefix_caching=prefix_caching)
    report = ServingSimulator(sched, make_cost_model(engine, config, mode),
                              name=name).run(trace)
    # Ref-count conservation: every request finished, so no sequence
    # may still hold or reference a block (cached blocks may stay
    # resident — that is the cache — but nothing may leak).
    alloc = sched.allocator
    assert alloc.used_blocks == 0, "leaked blocks after drain"
    if prefix_caching:
        alloc.check_conservation()
        assert alloc.cache.n_referenced == 0, "leaked block references"
        assert not alloc._shared and not alloc._held, "leaked owners"
    return report


def main():
    spec, config = RTX4090, llama_7b()
    engine = ComputeEngine(spec)
    print(f"{config.name} on {spec.name}, {KV_HBM_GB:.0f} GB KV budget, "
          f"paged admission (16-token blocks)\n")

    # -- claim 1+3: multi-turn chat, FP16 vs CQ-4, prefix on/off -------
    chat = multi_turn_chat_trace(**CHAT)
    print(f"--- multi-turn chat: {CHAT['n_sessions']} sessions x "
          f"{CHAT['turns']} turns, per-session system prompts ---\n")
    reports = {}
    for mode in ("fp16", "kv-cq-4"):
        for prefix in (False, True):
            key = f"{mode}{'+prefix' if prefix else ''}"
            reports[key] = run(mode, chat, engine, config, prefix, key)
            print(reports[key].summary())
            print()

    cq, fp = reports["kv-cq-4+prefix"], reports["fp16+prefix"]
    by_turn = {}
    for rec in cq.records:
        by_turn.setdefault(chat[rec.req_id].turn, []).append(rec.ttft_s)
    turn0 = sorted(by_turn[0])[len(by_turn[0]) // 2]
    last = max(by_turn)
    turnk = sorted(by_turn[last])[len(by_turn[last]) // 2]
    print(f"kv-cq-4+prefix TTFT p50 by turn: turn 0 {turn0 * 1e3:.1f} ms "
          f"-> turn {last} {turnk * 1e3:.1f} ms "
          f"(prompts grew {chat[0].prompt_tokens} -> "
          f"{max(r.prompt_tokens for r in chat)} tokens)")
    assert turnk < turn0, \
        "turn-k TTFT should drop below turn-0 despite longer prompts"

    print(f"equal HBM, prefix on: TTFT p50 fp16 {fp.ttft_s(50) * 1e3:.1f} "
          f"ms vs kv-cq-4 {cq.ttft_s(50) * 1e3:.1f} ms; cached fraction "
          f"fp16 {fp.cached_token_fraction:.0%} (evicted "
          f"{fp.n_evicted_blocks} blocks) vs kv-cq-4 "
          f"{cq.cached_token_fraction:.0%} (evicted "
          f"{cq.n_evicted_blocks} blocks)")
    assert cq.ttft_s(50) < fp.ttft_s(50), \
        "kv-cq-4 + prefix should beat FP16 + prefix on TTFT p50"
    assert cq.cached_token_fraction >= fp.cached_token_fraction, \
        "kv-cq-4 should sustain at least FP16's cached-token fraction"

    off, on = reports["kv-cq-4"], reports["kv-cq-4+prefix"]
    print(f"prefix caching itself: kv-cq-4 TTFT p50 "
          f"{off.ttft_s(50) * 1e3:.1f} -> {on.ttft_s(50) * 1e3:.1f} ms, "
          f"{on.cached_token_fraction:.0%} of prompt tokens cached\n")
    assert on.ttft_s(50) < off.ttft_s(50), \
        "prefix caching should cut chat TTFT"

    # -- claim 2: shared system prompt ---------------------------------
    shared = shared_prefix_trace(**SHARED)
    print(f"--- shared system prompt: {SHARED['n_requests']} requests "
          f"behind one {SHARED['system_tokens']}-token prefix ---\n")
    rep = run("kv-cq-4", shared, engine, config, True, "kv-cq-4+prefix")
    print(rep.summary())
    print(f"\nhit rate {rep.prefix_hit_rate:.0%} "
          f"({rep.cached_token_fraction:.0%} of prompt tokens cached)")
    assert rep.prefix_hit_rate > 0.5, \
        "shared-system-prompt trace should mostly hit"


if __name__ == "__main__":
    main()
