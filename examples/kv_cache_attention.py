"""Serving scenario: CQ-compressed KV cache for long-context decode.

Walks the paper's headline use case: a Llama-7B-shaped model serving
long sequences, where the KV cache dominates memory.  CQ-2 compresses
it 8x; the generated fused attention kernel then beats FlashDecoding.

Run with::

    python examples/kv_cache_attention.py
"""

import numpy as np

from repro import RTX4090, VQLLMCodeGenerator
from repro.bench.workloads import attention_sample
from repro.kernels import AttentionShape, FlashDecodingKernel
from repro.llm.config import llama_7b
from repro.llm.kvcache import QuantizedKVCache
from repro.llm.model import structured_matrix
from repro.vq.algorithms import make_config


def online_quantization_demo():
    """Decode-phase online KV quantization (paper: < 1 us/token)."""
    # Calibration needs several times more tokens than codebook
    # entries (256) or per-group k-means degenerates.
    rng = np.random.default_rng(0)
    heads, dim, tokens = 2, 32, 768
    calibration_k = structured_matrix(rng, tokens, heads * dim).reshape(
        tokens, heads, dim)
    calibration_v = structured_matrix(rng, tokens, heads * dim).reshape(
        tokens, heads, dim)
    cache = QuantizedKVCache(make_config("cq-4"), batch=1, n_heads=heads,
                             head_dim=dim, max_tokens=32,
                             calibration_k=calibration_k,
                             calibration_v=calibration_v)
    for t in range(16):
        cache.append(calibration_k[t][None], calibration_v[t][None])
    fp16_bytes = 2 * 2 * heads * 16 * dim * 1
    print("online KV quantization:")
    print(f"  tokens cached     : {cache.length}")
    print(f"  compressed bytes  : {cache.nbytes:,.0f} "
          f"(FP16 would be {fp16_bytes:,})")
    err = np.mean((cache.keys[0].transpose(1, 0, 2)
                   - calibration_k[:16]) ** 2)
    print(f"  key reconstruction MSE: {err:.2e}\n")


def fused_attention_comparison():
    """Generated VQ attention vs FP16 baselines across contexts."""
    config = llama_7b()
    generator = VQLLMCodeGenerator(RTX4090)
    qt_k, qt_v = attention_sample("cq-2")

    print("decode attention latency, Llama-7B shapes on RTX 4090:")
    print(f"{'seq':>6} {'batch':>5} {'FP16 (us)':>10} "
          f"{'VQ-LLM (us)':>11} {'speedup':>8}")
    for seq_len in (1024, 4096, 16384):
        for batch in (1, 8):
            shape = AttentionShape(batch=batch, heads=config.n_heads,
                                   seq_len=seq_len,
                                   head_dim=config.head_dim)
            fp16 = FlashDecodingKernel(shape).latency_us(RTX4090)
            ours = generator.generate_attention(
                shape, qt_k, qt_v, level="O4").latency_us()
            print(f"{seq_len:>6} {batch:>5} {fp16:>10.1f} "
                  f"{ours:>11.1f} {fp16 / ours:>7.2f}x")
    print()
    kernel = generator.generate_attention(
        AttentionShape(1, config.n_heads, 4096, config.head_dim),
        qt_k, qt_v, level="O4")
    print("chosen plan:", kernel.describe())


if __name__ == "__main__":
    online_quantization_demo()
    fused_attention_comparison()
