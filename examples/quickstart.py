"""Quickstart: quantize a weight, generate a fused kernel, inspect it.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import RTX4090, VQLLMCodeGenerator, make_quantizer
from repro.kernels import FP16GemvKernel, GemmShape
from repro.llm.model import structured_matrix


def main():
    # 1. A weight matrix with LLM-like structure (low-rank + outliers +
    #    heavy tails) laid out (N output channels, K reduction).
    rng = np.random.default_rng(0)
    weight = structured_matrix(rng, 512, 1024)

    # 2. Quantize it with GPTVQ-2 (vector size 4, 256 entries, one
    #    codebook per 256x256 tile — equivalent 2-bit).
    quantizer = make_quantizer("gptvq-2")
    qt = quantizer.quantize(weight)
    print(f"algorithm        : {qt.config}")
    print(f"original bytes   : {weight.size * 2:,} (FP16)")
    print(f"quantized bytes  : {qt.quantized_bytes:,.0f} codes "
          f"+ {qt.codebooks.nbytes:,} codebooks")
    print(f"reconstruction   : MSE {qt.reconstruction_error(weight):.2e}")

    # 3. Generate the fused dequantize+GeMV kernel for an RTX 4090 at
    #    Llama-7B shape.  The generator profiles entry hotness, sizes
    #    the codebook cache from resource slack, picks the dataflow and
    #    the fusion level.
    generator = VQLLMCodeGenerator(RTX4090)
    shape = GemmShape(m=1, n=4096, k=4096)
    kernel = generator.generate_gemv(shape, qt, level="O4")

    print("\ngenerated kernel parameters:")
    for key, value in kernel.describe().items():
        print(f"  {key:12s}: {value}")

    # 4. Compare the modelled latency against the naive baseline and
    #    FP16.
    gc = generator.generate_gemv(shape, qt, level="GC")
    fp16 = FP16GemvKernel(shape)
    print(f"\nmodelled latency on {RTX4090.name}:")
    print(f"  naive VQ (GC)  : {gc.latency_us():8.1f} us")
    print(f"  VQ-LLM (O4)    : {kernel.latency_us():8.1f} us "
          f"({1 - kernel.latency_us() / gc.latency_us():.0%} reduction)")
    print(f"  FP16           : {fp16.latency_us(RTX4090):8.1f} us")

    # 5. Inspect the emitted CUDA-like source.
    print("\nemitted kernel source:")
    print(kernel.source)


if __name__ == "__main__":
    main()
