"""SLO burn-rate alerting through a flash crowd, on windowed telemetry.

A serving replica handles steady Poisson traffic except for one flash
crowd — a burst window where the arrival rate multiplies — and the
run samples windowed time series over *simulated* time
(``SimConfig(timeline=TimelineConfig(...))``).  With a TTFT limit on
the timeline config, the burn-rate monitor replays SRE multi-window
alerting against the windows: the error budget is ``1 - target``, and
an alert fires when the trailing long- and short-window burn rates
both exceed the rule's factor.

The example demonstrates, and asserts, four claims:

1. telemetry is observation-only — end-of-run metrics are
   bit-identical with the timeline collector on and off;
2. the fast-burn alert fires *during* the crowd (not before it):
   queueing from the burst pushes TTFT past the limit and torches the
   error budget at >10x the sustainable rate;
3. the alert clears after the backlog drains — burn rates fall back
   under the factor once violating completions age out of the
   trailing windows;
4. the windowed series account for every request: arrivals sum to the
   trace size and completions to the finished count.

Run with::

    PYTHONPATH=src python examples/slo_timeline.py
"""

from repro.bench.serving import make_cost_model, make_kv_budget
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b
from repro.obs import TimelineConfig
from repro.serve.api import SchedulerConfig, SimConfig
from repro.serve.requests import LengthSampler, flash_crowd_trace

#: Steady offered load (req/s) outside the crowd.
BASE_RATE = 3.0
#: Trace length in seconds.
DURATION_S = 60.0
#: Rate multiplier during the crowd window.
CROWD_FACTOR = 6.0
#: The crowd: t in [20 s, 25 s).
CROWD_START_S, CROWD_DURATION_S = 20.0, 5.0
#: TTFT SLO limit and attainment target (1% error budget).
SLO_TTFT_S, SLO_TARGET = 0.75, 0.99


def build_config(timeline):
    return SimConfig(
        scheduler=SchedulerConfig(token_budget=2048, max_seqs=32,
                                  admission="paged"),
        name="flash-crowd", timeline=timeline)


def run(timeline):
    """One simulation of the flash-crowd trace; telemetry optional."""
    spec, config = RTX4090, llama_7b()
    trace = flash_crowd_trace(
        BASE_RATE, DURATION_S, crowd_factor=CROWD_FACTOR,
        crowd_start_s=CROWD_START_S, crowd_duration_s=CROWD_DURATION_S,
        prompt=LengthSampler(mean=384), output=LengthSampler(mean=64),
        seed=7)
    budget = make_kv_budget(config, "fp16", capacity_bytes=8e9, spec=spec)
    cost_model = make_cost_model(ComputeEngine(spec), config, "fp16")
    report = build_config(timeline).build(budget, cost_model).run(trace)
    return trace, report


def main():
    timeline_cfg = TimelineConfig(window_s=0.5, slo_ttft_s=SLO_TTFT_S,
                                  slo_target=SLO_TARGET)
    trace, report = run(timeline_cfg)
    _, plain = run(None)

    crowd_end = CROWD_START_S + CROWD_DURATION_S
    print(f"flash crowd: {BASE_RATE:g} req/s base, x{CROWD_FACTOR:g} "
          f"during [{CROWD_START_S:g} s, {crowd_end:g} s) — "
          f"{len(trace)} requests over {DURATION_S:g} s")
    print(f"SLO: TTFT <= {SLO_TTFT_S * 1e3:.0f} ms for "
          f"{SLO_TARGET:.0%} of completions\n")
    print(report.summary())

    # Claim 1: the collector observes, never steers.
    assert report.metrics() == plain.metrics(), \
        "timeline sampling must leave end-of-run metrics bit-identical"

    # Claim 2: the fast-burn rule fires during the crowd.
    slo = report.slo
    assert slo is not None and slo.fired, \
        "the flash crowd should breach the error budget and fire"
    fast = slo.alerts_for("fast")
    assert fast, "the fast-burn rule (x10 budget burn) should fire"
    first = fast[0]
    assert CROWD_START_S <= first.fired_s <= crowd_end + 5.0, (
        f"fast alert fired at {first.fired_s:.2f} s, expected during "
        f"the crowd [{CROWD_START_S:g}, {crowd_end:g}) s (+drain)")

    # Claim 3: it clears once the backlog drains.
    assert first.cleared_s is not None, "the alert should clear"
    assert first.cleared_s > crowd_end, (
        f"alert cleared at {first.cleared_s:.2f} s, before the crowd "
        f"ended at {crowd_end:g} s — burn rates cannot have recovered")

    # Claim 4: windows account for every request.
    windows = report.timeline.windows(0)
    arrivals = sum(w.arrivals for w in windows)
    completions = sum(w.completions for w in windows)
    assert arrivals + sum(w.rejections for w in windows) == len(trace)
    assert completions == len(report.records)

    print(f"\n=> fast-burn alert fired {first.fired_s:.1f} s into the "
          f"run (crowd began at {CROWD_START_S:g} s), peaked at "
          f"{first.peak_burn_rate:.0f}x budget burn, and cleared at "
          f"{first.cleared_s:.1f} s, {first.cleared_s - crowd_end:.1f} s "
          f"after the crowd ended — and end-of-run metrics match the "
          f"untelemetered run bit for bit.")


if __name__ == "__main__":
    main()
