"""Continuous-batching serving: FP16 vs VQ KV caches at equal memory.

Simulates an open-loop Poisson request stream against Llama-7B on an
RTX 4090 with a fixed HBM allowance for the KV cache.  The FP16 cache
saturates that allowance at ~15 concurrent sequences and queues; the
CQ-compressed caches (25% / 12.5% of FP16 bytes per token) admit the
full batch cap, sustain higher request throughput, and cut time to
first token by keeping the admission queue short.

Run with::

    PYTHONPATH=src python examples/serving_simulation.py

Pass ``--trace-out trace.json`` to also record a :mod:`repro.obs`
timeline of all three runs as Chrome/Perfetto ``trace_event`` JSON
(open at https://ui.perfetto.dev, or summarize with
``python -m repro.obs.report trace.json``).
"""

import argparse

from repro.bench.serving import serving_comparison, simulate_mode
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b

#: Shared workload: 64 requests at 16 req/s offered, ~384-token prompts,
#: ~96-token outputs, 4 GB of HBM reserved for the KV cache.
WORKLOAD = dict(kv_hbm_gb=4.0, rate_rps=16.0, n_requests=64,
                prompt_mean=384, output_mean=96, seed=0)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Perfetto trace of the three runs")
    args = parser.parse_args(argv)

    spec, config = RTX4090, llama_7b()
    engine = ComputeEngine(spec)

    print(f"{config.name} on {spec.name}, "
          f"{WORKLOAD['kv_hbm_gb']:.0f} GB KV budget, "
          f"{WORKLOAD['rate_rps']:.0f} req/s offered\n")

    reports = {}
    for mode in ("fp16", "kv-cq-4", "kv-cq-2"):
        rep = simulate_mode(mode, spec=spec, config=config, engine=engine,
                            trace=args.trace_out is not None, **WORKLOAD)
        reports[mode] = rep
        print(rep.summary())
        print()

    fp16 = reports["fp16"]
    best = max((r for m, r in reports.items() if m != "fp16"),
               key=lambda r: r.throughput_rps)
    gain = best.throughput_rps / fp16.throughput_rps
    print(f"VQ KV cache ({best.name}) sustains {gain:.2f}x the FP16 "
          f"request throughput at equal HBM, with TTFT p50 "
          f"{fp16.ttft_s(50) / best.ttft_s(50):.1f}x lower.")
    assert gain > 1.0, "VQ KV cache should out-serve FP16 at equal memory"

    print("\nFull comparison table (same engine, shared latency memo):")
    print(serving_comparison(spec=spec, config=config, engine=engine,
                             **WORKLOAD))

    if args.trace_out:
        from repro.obs import write_perfetto
        write_perfetto(args.trace_out,
                       {m: r.tracer for m, r in reports.items()
                        if r.tracer is not None},
                       name="serving_simulation")
        print(f"\nwrote Perfetto trace: {args.trace_out} "
              f"(open at ui.perfetto.dev or run "
              f"python -m repro.obs.report {args.trace_out})")


if __name__ == "__main__":
    main()
