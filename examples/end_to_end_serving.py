"""End-to-end serving comparison (the Fig. 17 scenario).

Costs a full generation workload — Llama-7B, batch 16, 1024-token
prompt, 256 generated tokens — under four serving modes on two GPUs,
and prints the accuracy proxy for the quantized modes.

Run with::

    python examples/end_to_end_serving.py
"""

from repro.bench.accuracy import model_accuracy_proxy
from repro.bench.e2e import MODES, E2ELedger
from repro.gpu.spec import A40, RTX4090
from repro.llm.config import llama_7b


def main():
    batch, prompt, gen_tokens = 16, 1024, 256
    print(f"Llama-7B, batch {batch}, prompt {prompt}, "
          f"generate {gen_tokens} tokens\n")

    for spec in (RTX4090, A40):
        ledger = E2ELedger(spec, llama_7b())
        print(f"--- {spec.name} "
              f"({spec.dram_bandwidth_gbps:.0f} GB/s) ---")
        base_us = None
        for mode in MODES:
            total = ledger.generation_us(batch, prompt, gen_tokens, mode)
            step = ledger.decode_step(batch, prompt, mode)
            if base_us is None:
                base_us = total
            print(f"  {mode:7s}: {total / 1e6:7.2f} s total  "
                  f"({step.total_us / 1e3:6.2f} ms/token: "
                  f"gemv {step.gemv_us / 1e3:5.2f}, "
                  f"attn {step.attention_us / 1e3:5.2f}, "
                  f"other {step.elementwise_us / 1e3:4.2f})  "
                  f"speedup {base_us / total:4.2f}x")
        print()

    print("accuracy proxy (tiny model, weights quantized per scheme):")
    for scheme, report in model_accuracy_proxy().items():
        print(f"  {scheme:12s}: next-token agreement "
              f"{report.next_token_agreement:6.1%}, "
              f"weight MSE {report.weight_mse:.2e}")


if __name__ == "__main__":
    main()
