"""Reproduce the paper's optimization-breakdown study for one workload.

Sweeps every Tbl. IV level (GC, SC, O1..O4) for a weight-quantized GeMV
and prints what each level changed — placement, boundaries, dataflow,
fusion — alongside its modelled counters, mirroring Fig. 14's analysis.

Run with::

    python examples/optimization_breakdown.py [algorithm]

where ``algorithm`` is one of quip#-4, aqlm-3, gptvq-2 (default).
"""

import sys

from repro import RTX4090, ComputeEngine
from repro.bench.workloads import llama_gemv_shape, weight_sample
from repro.gpu.costmodel import CostModel
from repro.llm.config import llama_7b


def main(algorithm: str = "gptvq-2"):
    engine = ComputeEngine(RTX4090)
    shape = llama_gemv_shape(llama_7b(), batch=1)
    qt = weight_sample(algorithm)
    cost = CostModel(RTX4090)

    print(f"GeMV breakdown for {qt.config} at Llama-7B shape "
          f"({shape.n}x{shape.k})\n")
    header = (f"{'level':>5} {'latency_us':>10} {'occup':>6} "
              f"{'smem_KB':>8} {'cb_dram_MB':>10} {'conflicts':>10} "
              f"{'fusion':>9}  plan")
    print(header)
    for level in ("GC", "SC", "O1", "O2", "O3", "O4"):
        kernel = engine.generator.generate_gemv(shape, qt, level=level)
        counters = cost.resolve_occupancy(kernel.counters())
        plan = []
        if kernel.template.boundaries is not None:
            b = kernel.template.boundaries
            plan.append(f"n_reg={b.n_reg} n_shared={b.n_shared}")
        if counters.notes.get("dataflow"):
            plan.append(f"dataflow={counters.notes['dataflow']}")
        print(f"{level:>5} {kernel.latency_us():>10.1f} "
              f"{counters.occupancy:>6.2f} "
              f"{counters.smem_per_block / 1024:>8.1f} "
              f"{counters.codebook_dram_bytes / 1e6:>10.2f} "
              f"{counters.bank_conflict_transactions:>10.0f} "
              f"{counters.notes.get('fusion', '-'):>9}  "
              + " ".join(plan))

    sweep = engine.sweep(engine.generator.generate_gemv, shape, qt,
                         name=f"gemv-{algorithm}")
    print(f"\nbest level: {sweep.best_level} "
          f"({sweep.reduction_vs('GC'):.0%} latency reduction vs GC)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gptvq-2")
