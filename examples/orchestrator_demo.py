"""Experiment orchestration: sweep grid -> BENCH_<pr>.json -> report.

PRs 1-5 built schedulers, paging, prefix caching and fleet simulation,
but every benchmark was a one-off CLI run.  This example drives the
orchestrator end to end and *starts the perf-trajectory convention*:

1. run the committed ``demo`` sweep grid — 3 KV schemes x (reserve,
   paged, paged+prefix) on a sessionized chat trace at a tight 1 GB KV
   budget — in parallel worker processes;
2. persist every trial (config, metrics, wall time, git SHA) to
   ``BENCH_<pr>.json`` (``BENCH_10.json`` for this PR) at the
   repo root and render the markdown
   regression report next to it;
3. re-run one grid cell and assert its metrics are *bit-identical* —
   the determinism the trajectory convention depends on;
4. if an earlier committed ``BENCH_<n>.json`` baseline exists,
   compare the fresh run against it and **fail on any regression
   beyond tolerance** — this is the CI ``orchestrator-smoke`` gate;
5. run a 2-replica fleet mini-sweep to show the same orchestrator
   drives :mod:`repro.cluster` trials.

Run with::

    PYTHONPATH=src python examples/orchestrator_demo.py
"""

import sys
from pathlib import Path

from repro.bench.orchestrator import (
    SweepConfig,
    Trajectory,
    TrajectoryError,
    bench_path,
    compare,
    demo_config,
    find_previous,
    render_report,
    run_sweep,
    run_trial,
)

ROOT = Path(__file__).resolve().parents[1]

#: Relative tolerance for the regression gate against the committed
#: baseline.  The simulators are deterministic, so only a behavioural
#: code change can move a metric — anything beyond noise is a signal.
TOLERANCE = 0.05

#: Tiny fleet sweep showing kind="fleet" trials (not persisted; the
#: trajectory file is the serving grid).
FLEET_GRID = SweepConfig(
    name="demo-fleet",
    kind="fleet",
    modes=("fp16", "kv-cq-4"),
    admissions=("paged",),
    trace_kinds=("poisson",),
    rates=(12.0,),
    fleet_sizes=(2,),
    policies=("jsq",),
    n_requests=24,
    prompt_mean=128,
    output_mean=32,
    slo_ttft_s=2.0,
    seed=0,
)


def main() -> int:
    out = bench_path(ROOT)
    report_path = out.with_suffix(".md")

    # Load the committed baseline *before* overwriting it.
    baseline = None
    if out.exists():
        try:
            baseline = Trajectory.load(out)
            print(f"committed baseline: {out} "
                  f"(git {baseline.git_sha or 'unknown'})")
        except TrajectoryError as exc:
            print(f"ignoring unreadable baseline: {exc}")
    else:
        previous = find_previous(ROOT)
        if previous is not None:
            baseline = Trajectory.load(previous)
            print(f"previous trajectory: {previous}")

    # -- 1. run the committed grid in parallel workers -----------------
    config = demo_config()
    print(f"sweep {config.name!r}: {len(config.trials())} trials, "
          "2 workers\n")
    trajectory = run_sweep(config, workers=2, progress=print)

    # -- 2. persist trajectory + report --------------------------------
    trajectory.save(out)
    report = render_report(trajectory, baseline, tolerance=TOLERANCE)
    report_path.write_text(report + "\n")
    print(f"\ntrajectory -> {out}\nreport     -> {report_path}\n")

    # The acceptance shape of the trajectory file itself.
    assert len(trajectory.trials) >= 8, "trajectory needs >= 8 trials"
    schemes = {t.spec.mode for t in trajectory.trials}
    admissions = {t.spec.admission for t in trajectory.trials}
    assert len(schemes) >= 2, f"needs >= 2 KV schemes, got {schemes}"
    assert admissions >= {"reserve", "paged"}, \
        f"needs both admission modes, got {admissions}"
    assert Trajectory.load(out).metrics_by_trial() \
        == trajectory.metrics_by_trial(), "persistence must be lossless"
    assert "## Trials" in report

    # The grid's own story: prefix caching mostly hits on the chat
    # trace, and at equal HBM the compressed cache keeps TTFT lower.
    by_id = {t.trial_id: t.metrics for t in trajectory.trials}
    fp16_prefix = by_id["serving/fp16/paged/prefix/chat@12rps/seed0"]
    cq4_prefix = by_id["serving/kv-cq-4/paged/prefix/chat@12rps/seed0"]
    for name, metrics in (("fp16", fp16_prefix), ("kv-cq-4", cq4_prefix)):
        print(f"{name}+prefix: hit rate {metrics['prefix_hit_rate']:.0%}, "
              f"TTFT p50 {metrics['ttft_p50_ms']:.1f} ms")
        assert metrics["prefix_hit_rate"] > 0.5, \
            "chat trace should mostly hit the prefix cache"
    assert cq4_prefix["ttft_p50_ms"] < fp16_prefix["ttft_p50_ms"], \
        "kv-cq-4+prefix should beat fp16+prefix on TTFT p50 at equal HBM"

    # -- 3. determinism: re-running a cell reproduces its metrics ------
    probe = trajectory.trials[4]  # kv-cq-4/paged
    rerun = run_trial(probe.spec)
    assert rerun.metrics == probe.metrics, \
        "re-running a trial with the same seed must be bit-identical"
    print(f"\ndeterminism: re-ran {probe.trial_id}; "
          "metrics bit-identical")

    # -- 4. regression gate vs the committed baseline ------------------
    if baseline is not None:
        deltas = compare(trajectory, baseline)
        regressions = [d for d in deltas if d.is_regression(TOLERANCE)]
        print(f"regression gate: {len(deltas)} directional deltas vs "
              f"baseline, {len(regressions)} beyond {TOLERANCE:.0%}")
        for d in regressions:
            print(f"  REGRESSION {d.trial_id} {d.metric}: "
                  f"{d.before:.6g} -> {d.after:.6g} ({d.rel_change:+.1%})")
        if regressions:
            print("regression report flagged deltas beyond tolerance; "
                  "if intentional, regenerate the BENCH_<pr>.json "
                  "trajectory in this PR")
            return 1
    else:
        print("no baseline yet: this run starts the trajectory")

    # -- 5. the same orchestrator drives fleet trials ------------------
    fleet = run_sweep(FLEET_GRID, workers=1)
    print(f"\nfleet sweep ({len(fleet.trials)} trials, 2 replicas, jsq):")
    for t in fleet.trials:
        print(f"  {t.trial_id}: goodput {t.metrics['goodput_rps']:.2f} "
              f"req/s, SLO attainment {t.metrics['slo_attainment']:.0%}")
        assert t.metrics["n_replicas"] == 2
        assert t.metrics["slo_attainment"] > 0.5, \
            "a 2-replica fleet at this load should mostly meet the SLO"

    print("\nall orchestrator checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
