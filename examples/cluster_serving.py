"""Fleet sizing: how many fewer GPUs does a VQ KV cache need?

The single-GPU serving example shows CQ-compressed caches sustaining
more throughput from one card.  At fleet scale the same effect is
priced in GPUs: at a fixed offered load and a TTFT-p95 SLO, each mode's
fleet is grown one replica at a time until it complies — every replica
an RTX 4090 with identical HBM, weights resident, the rest of the
memory given to the KV cache.  FP16 reserves ~0.5 MB of cache per
token and queues; CQ-4 reserves a quarter of that, admits ~4x the
concurrent sequences per replica, and meets the same SLO with a
smaller fleet.

Also prints the tensor-parallel decode-scaling table: per-shard kernels
shrink with TP degree while ring collectives grow, and the crossover
depends on the interconnect (NVLink vs PCIe).

Run with::

    PYTHONPATH=src python examples/cluster_serving.py
"""

from repro.bench.cluster import (
    fleet_sizing_comparison,
    replica_kv_budget,
    tp_scaling,
)
from repro.cluster.fleet import SLO
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b

#: Shared workload: 96 requests offered at 24 req/s, ~1024-token
#: prompts and ~96-token outputs — prompt-heavy traffic that stresses
#: KV capacity, the regime where compression changes fleet size.
WORKLOAD = dict(rate_rps=24.0, n_requests=96, prompt_mean=1024,
                output_mean=96, trace_kind="poisson", seed=0)

#: The service-level objective: 95% of requests see their first token
#: within 2 s.
TARGET = SLO(ttft_s=2.0)


def main():
    spec, config = RTX4090, llama_7b()
    engine = ComputeEngine(spec)

    weights_gb = 2.0 * config.param_count / 1e9
    print(f"{config.name} on {spec.name} fleets "
          f"({spec.dram_gb:.0f} GB/GPU, ~{weights_gb:.1f} GB FP16 "
          f"weights resident per replica)")
    print(f"offered: {WORKLOAD['rate_rps']:.0f} req/s, "
          f"~{WORKLOAD['prompt_mean']} prompt / "
          f"~{WORKLOAD['output_mean']} output tokens; "
          f"SLO: TTFT p95 <= {TARGET.ttft_s:.1f} s\n")

    reports = {}
    table = fleet_sizing_comparison(
        spec=spec, config=config, engine=engine,
        modes=("fp16", "kv-cq-4"), slo=TARGET, policy="least-kv",
        max_replicas=8, reports=reports, **WORKLOAD)

    for mode, (size, report) in reports.items():
        print(report.summary())
        print()
    print(table)

    n_fp16, _ = reports["fp16"]
    n_vq, vq_report = reports["kv-cq-4"]
    assert n_fp16 is not None and n_vq is not None, \
        "both fleets should be sizeable within the search limit"
    assert n_vq < n_fp16, \
        "the VQ fleet should meet the SLO with fewer GPUs than FP16"
    kv_gain = (replica_kv_budget(config, "kv-cq-4", spec).max_tokens
               / replica_kv_budget(config, "fp16", spec).max_tokens)
    print(f"\n=> kv-cq-4 meets the TTFT-p95 SLO with {n_vq} GPUs where "
          f"FP16 needs {n_fp16} — {n_fp16 - n_vq} fewer GPUs "
          f"({n_vq / n_fp16:.0%} of the FP16 fleet) at equal per-GPU "
          f"HBM, because each replica's KV budget holds "
          f"{kv_gain:.1f}x the tokens.\n")

    print(tp_scaling(spec=spec, config=config, engine=engine,
                     degrees=(1, 2, 4, 8), batch=16, context_tokens=1024))
    print("\nTP shrinks per-shard kernels but adds two ring all-reduces "
          "per layer; PCIe's hop latency erases most of the gain that "
          "NVLink keeps.")


if __name__ == "__main__":
    main()
