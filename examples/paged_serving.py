"""Paged KV allocation vs worst-case reservations at equal HBM.

The PR-1 serving comparison admits a request only when its *worst-case*
KV footprint (prompt + max output tokens) fits the budget — simple, but
it leaves the cache admission-bound: the budget is ~100% *reserved*
while far less is ever actually resident.  Real engines (vLLM-style
paged attention) allocate KV in fixed-size blocks as prefill/decode
advance and preempt-by-recompute when the pool runs dry, so occupancy
— not reservations — is what binds.

This example runs the PR-1 Llama-7B scenario (RTX 4090, CQ-4 KV cache)
under both admission policies at the same HBM budget and checks the
claims:

- at equal HBM, ``admission="paged"`` reaches strictly higher peak KV
  *occupancy* (bytes actually resident) than ``admission="reserve"``;
- under an overloaded trace on a tighter pool, at least one recompute
  preemption fires and every request still completes (recompute loses
  no work product, only time).

Run with::

    PYTHONPATH=src python examples/paged_serving.py
"""

from repro.bench.serving import simulate_mode
from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import llama_7b

#: The PR-1 seed scenario: 64 requests at 16 req/s offered, ~384-token
#: prompts, ~96-token outputs, 4 GB of HBM for the KV cache.
WORKLOAD = dict(kv_hbm_gb=4.0, rate_rps=16.0, n_requests=64,
                prompt_mean=384, output_mean=96, seed=0)

#: Overload variant: double the offered rate on a 1.5 GB pool with a
#: high sequence cap, so paged admission genuinely exhausts the blocks.
OVERLOAD = dict(kv_hbm_gb=1.5, rate_rps=32.0, n_requests=64,
                prompt_mean=384, output_mean=96, seed=0, max_seqs=128)

MODE = "kv-cq-4"


def main():
    spec, config = RTX4090, llama_7b()
    engine = ComputeEngine(spec)

    print(f"{config.name} on {spec.name}, {MODE} KV cache, "
          f"{WORKLOAD['kv_hbm_gb']:.0f} GB KV budget, "
          f"{WORKLOAD['rate_rps']:.0f} req/s offered\n")

    reports = {}
    for admission in ("reserve", "paged"):
        rep = simulate_mode(MODE, spec=spec, config=config, engine=engine,
                            admission=admission, **WORKLOAD)
        reports[admission] = rep
        print(rep.summary())
        print()

    res, pag = reports["reserve"], reports["paged"]
    assert res.n_requests == pag.n_requests == WORKLOAD["n_requests"]
    print(f"reserve admission holds {res.peak_kv_utilization:.0%} of the "
          f"budget *reserved* but only {res.peak_kv_occupancy:.0%} ever "
          f"resident; paged admission packs blocks to "
          f"{pag.peak_kv_occupancy:.0%} of the same pool.")
    assert pag.peak_kv_occupancy > res.peak_kv_occupancy, \
        "paged admission should reach higher peak KV occupancy"

    print(f"\n--- overload: {OVERLOAD['kv_hbm_gb']:.1f} GB pool at "
          f"{OVERLOAD['rate_rps']:.0f} req/s ---\n")
    over = {}
    for admission in ("reserve", "paged"):
        rep = simulate_mode(MODE, spec=spec, config=config, engine=engine,
                            admission=admission, **OVERLOAD)
        over[admission] = rep
        print(rep.summary())
        print()

    o_res, o_pag = over["reserve"], over["paged"]
    assert o_pag.n_preempted >= 1, \
        "the overloaded trace should trigger recompute preemption"
    assert o_pag.n_requests == OVERLOAD["n_requests"], \
        "preemption must lose no requests"
    assert o_pag.peak_kv_occupancy > o_res.peak_kv_occupancy
    print(f"under overload the paged pool runs occupancy-bound "
          f"({o_pag.peak_kv_occupancy:.0%} peak vs "
          f"{o_res.peak_kv_occupancy:.0%} for reserve), resolving "
          f"pressure with {o_pag.n_preempted} recompute preemptions "
          f"while every request completes.")


if __name__ == "__main__":
    main()
