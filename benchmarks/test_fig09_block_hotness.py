"""Fig. 9: the same entries are hot across different tensor parts."""

from repro.bench.experiments import fig09_block_hotness


def test_fig09(run_once):
    result = run_once(fig09_block_hotness)
    consistency = result.column("consistency_top32")
    # Tensor-level reordering is justified: per-block hot sets overlap
    # the global hot set substantially (the vertical white lines).
    assert max(consistency) > 0.5
    assert min(consistency) > 0.15
