"""Fig. 14: GeMM / GeMV optimization breakdown (GC..O4)."""

from repro.bench.experiments import fig14_breakdown


def test_fig14_gemm(run_once):
    result = run_once(fig14_breakdown, "gemm")
    rows = {r["algorithm"]: r for r in result.as_dicts()}

    # QuiP#: SC == O1 (2 KB codebook needs no hierarchy).
    quip = rows["quip#-4"]
    assert abs(quip["O1"] - quip["SC"]) / quip["SC"] < 0.05
    # O3's forced residual split hurts QuiP# GeMM (redundant compute)...
    assert quip["O3"] > quip["O2"] * 1.3
    # ...and the adaptive O4 recovers.
    assert quip["O4"] < quip["O3"]

    # AQLM tolerates redundant compute better than QuiP# (unpack-bound).
    aqlm = rows["aqlm-3"]
    assert (aqlm["O3"] / aqlm["O2"]) < (quip["O3"] / quip["O2"])
    # O4's register fusion frees staging smem: big GeMM win for AQLM.
    assert aqlm["O4"] < aqlm["O2"]

    # GPTVQ's large per-block codebook set benefits from caching.
    gptvq = rows["gptvq-2"]
    assert gptvq["SC"] < gptvq["GC"]
    assert gptvq["O4"] <= gptvq["SC"] * 1.05


def test_fig14_gemv_bs1(run_once):
    result = run_once(fig14_breakdown, "gemv", 1)
    rows = {r["algorithm"]: r for r in result.as_dicts()}

    # SC hurts AQLM GeMV: the 128 KB codebook cannot even launch.
    aqlm = rows["aqlm-3"]
    assert aqlm["SC"] > aqlm["GC"]
    # The hierarchical cache recovers, and the dataflow helps more.
    assert aqlm["O1"] < aqlm["SC"]
    assert aqlm["O3"] < aqlm["O1"]

    # GPTVQ GeMV: best level strongly beats GC.
    gptvq = rows["gptvq-2"]
    best = min(gptvq[lv] for lv in ("SC", "O1", "O2", "O3", "O4"))
    assert best < 0.4 * gptvq["GC"]
