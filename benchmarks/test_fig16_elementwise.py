"""Fig. 16: VQ-LLM vs FP16 and element-wise quantization at 4-bit."""

from repro.bench.experiments import fig16_elementwise


def test_fig16(run_once):
    result = run_once(fig16_elementwise)
    rows = {(r["kernel"], r["version"]): r["latency_us"]
            for r in result.as_dicts()}

    # GeMM (prefill): cutlass FP16 beats every quantized kernel —
    # the paper's honest negative result.
    assert (rows[("GeMM", "cutlass-FP16")]
            < rows[("GeMM", "AWQ-4bit")])
    assert (rows[("GeMM", "cutlass-FP16")]
            < rows[("GeMM", "VQ-LLM quip#-4")])
    # VQ-LLM is within ~15% of AWQ on GeMM (paper: 0.96x).
    assert (rows[("GeMM", "VQ-LLM quip#-4")]
            < rows[("GeMM", "AWQ-4bit")] * 1.15)

    # GeMV (decode): both quantized kernels beat FP16; VQ-LLM is
    # comparable to AWQ (paper: 0.88x).
    assert (rows[("GeMV BS16", "VQ-LLM quip#-4")]
            < rows[("GeMV BS16", "cutlass-FP16")])
    assert (rows[("GeMV BS16", "VQ-LLM quip#-4")]
            < rows[("GeMV BS16", "AWQ-4bit")] * 1.2)

    # Attention: VQ-LLM is close to QoQ (paper: 1.01x) and beats FP16.
    assert (rows[("Attention BS1 1k", "VQ-LLM cq-4")]
            < rows[("Attention BS1 1k", "QoQ-4bit")] * 1.6)
    assert (rows[("Attention BS1 1k", "VQ-LLM cq-4")]
            < rows[("Attention BS1 1k", "Flash-FP16")])

    # The open-source-style (GC) implementation is the slow outlier
    # (paper: 2.83x-114x; our GC substitutes for it).
    assert (rows[("GeMM", "open-source-style (GC) quip#-4")]
            > rows[("GeMM", "VQ-LLM quip#-4")])
