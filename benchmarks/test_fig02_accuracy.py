"""Fig. 2: VQ vs element-wise quantization accuracy on correlated data."""

from repro.bench.experiments import fig02_accuracy


def test_fig02(run_once):
    result = run_once(fig02_accuracy)
    # The paper's claim: VQ captures cross-dimension structure that a
    # Cartesian per-dimension grid cannot, at every bit width.
    assert all(result.column("vq_wins"))
    # And the gap is largest at the lowest bit width.
    ew = result.column("elementwise_mse")
    vq = result.column("vq_mse")
    ratios = [e / v for e, v in zip(ew, vq)]
    assert ratios[0] > 1.5
