"""Tbl. II: VQ algorithm configurations."""

import pytest

from repro.bench.experiments import tbl02_configs


def test_tbl02(run_once):
    result = run_once(tbl02_configs)
    rows = {r["algorithm"]: r for r in result.as_dicts()}
    expected = {
        "QuiP#-4": (0.25, 8, 65536, 2),
        "AQLM-3": (0.1875, 8, 4096, 2),
        "GPTVQ-2": (0.125, 4, 256, 1),
        "CQ-4": (0.25, 2, 256, 1),
        "CQ-2": (0.125, 4, 256, 1),
    }
    for name, (ratio, vector, entries, residuals) in expected.items():
        row = rows[name]
        assert row["compression_vs_fp16"] == pytest.approx(ratio)
        assert row["vector_size"] == vector
        assert row["n_entries"] == entries
        assert row["residuals"] == residuals
