"""Benchmark-suite configuration.

Each benchmark regenerates one paper table/figure through
:mod:`repro.bench.experiments` and asserts the paper's qualitative
claims on the result.  Experiments are deterministic models (not noisy
measurements), so every benchmark runs exactly once
(``benchmark.pedantic(rounds=1)``) and the interesting output is the
printed table plus the assertions, with wall-time as a bonus metric.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        print()
        print(result)
        return result

    return runner
