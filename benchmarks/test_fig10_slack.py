"""Fig. 10: occupancy step structure yields usable resource slack."""

from repro.bench.experiments import fig10_slack


def test_fig10(run_once):
    result = run_once(fig10_slack)
    rows = {r["operation"]: r for r in result.as_dicts()}
    # Every computation has schedulable blocks and some slack in at
    # least one resource.
    for op, row in rows.items():
        assert row["baseline_blocks"] >= 1
        assert row["reg_slack"] + row["smem_slack_bytes"] > 0
    # The memory-bound GEMV shape has substantial shared-memory slack —
    # that is where the codebook cache lives.
    assert rows["gemv"]["smem_slack_bytes"] >= 16 * 1024
