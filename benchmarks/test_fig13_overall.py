"""Fig. 13: overall latency reduction of the best version vs GC."""

import numpy as np

from repro.bench.experiments import fig13_overall


def test_fig13_llama7b(run_once):
    result = run_once(fig13_overall, "7b")
    reductions = result.column("reduction")
    # Every workload improves over the unoptimized version.
    assert min(reductions) >= 0.0
    # The mean reduction is substantial (paper: 46% mean; our GC
    # baseline models the dependent-load stalls more harshly, so the
    # model lands above — the ordering, not the constant, is the claim).
    assert np.mean(reductions) > 0.35
    assert max(reductions) > 0.5
    # Attention gains grow with batch (paper Sec. VII-B): KV caches are
    # per-sample, weights are shared.
    rows = {(r["kernel"], r["algorithm"]): r["reduction"]
            for r in result.as_dicts()}
    assert rows[("Attn 1k BS8", "cq-2")] >= rows[("Attn 1k BS1", "cq-2")]


def test_fig13_llama65b_scales(run_once):
    result = run_once(fig13_overall, "65b")
    # Larger model: same qualitative picture (paper: near-identical
    # speedups thanks to trivially assembled operators).
    assert np.mean(result.column("reduction")) > 0.3
