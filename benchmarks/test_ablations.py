"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench.ablation import (
    bandwidth_sensitivity,
    occupancy_floor_sweep,
    quantization_overhead,
    shuffle_threshold_sweep,
)


def test_bandwidth_sensitivity(run_once):
    result = run_once(bandwidth_sensitivity)
    speedups = result.column("speedup")
    # VQ-LLM wins at every bandwidth point...
    assert min(speedups) > 1.0
    # ...and the advantage is larger when bandwidth is scarcer
    # (generalising the paper's A40 > 4090 observation).
    assert speedups[0] >= speedups[-1]


def test_shuffle_threshold(run_once):
    result = run_once(shuffle_threshold_sweep)
    rows = {r["threshold"]: r for r in result.as_dicts()}
    # At the paper's threshold (5): QuiP# GeMM fuses in registers
    # (3 shuffles) but its GeMV does not (7 shuffles).
    assert rows[5]["quip#-4-gemm"] == "register"
    assert rows[5]["quip#-4-gemv"] == "shared"
    # A permissive threshold flips the GeMV too.
    assert rows[15]["quip#-4-gemv"] == "register"
    # A zero threshold disables register fusion everywhere mismatched.
    assert rows[0]["gptvq-2-gemm"] == "shared"


def test_occupancy_floor(run_once):
    result = run_once(occupancy_floor_sweep)
    rows = {r["min_occupancy"]: r for r in result.as_dicts()}
    # A higher floor shrinks the cache.
    assert rows[0.9]["n_shared"] <= rows[0.1]["n_shared"]
    # The default floor (0.25) is within 25% of the best sweep point.
    best = min(r["latency_us"] for r in rows.values())
    assert rows[0.25]["latency_us"] <= best * 1.25


def test_quantization_overhead(run_once):
    result = run_once(quantization_overhead)
    metrics = dict(result.rows)
    # Paper Sec. VII-F: prefill quantization < 10% of the projections,
    # decode encoding ~ negligible (< 1 us/token even conservatively).
    assert metrics["encode_vs_projection"] < 0.10
    assert metrics["decode_encode_us_per_token"] < 1.0
