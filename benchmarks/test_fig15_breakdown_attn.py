"""Fig. 15: attention (decode) breakdown and CQ-4 vs CQ-2."""

from repro.bench.experiments import fig15_attention_breakdown


def test_fig15(run_once):
    result = run_once(fig15_attention_breakdown)
    rows = {(r["algorithm"], r["seq_len"], r["batch"]): r
            for r in result.as_dicts()}

    for key, row in rows.items():
        # O3 (codebook-centric dataflow) is the decisive optimization
        # for attention: each block loads exactly one codebook.
        assert row["O3"] < row["O1"]
        assert row["O3"] < row["GC"]
        # O4 adds at most a minor change on top (paper: "minor
        # improvement").
        assert row["O4"] <= row["O1"]

    # Improvements hold across sequence lengths and batch sizes.
    reductions = [1 - rows[k]["O4"] / rows[k]["GC"] for k in rows]
    assert min(reductions) > 0.5

    # CQ-4 trades bandwidth for accuracy: higher latency than CQ-2 at
    # the same optimization level (paper Fig. 15 right).
    for seq in (1024, 4096):
        for batch in (1, 8):
            assert (rows[("cq-4", seq, batch)]["O4"]
                    >= rows[("cq-2", seq, batch)]["O4"])
