"""Fig. 17: end-to-end speedup and the accuracy proxy."""

from repro.bench.experiments import fig17_accuracy, fig17_e2e


def test_fig17_e2e(run_once):
    result = run_once(fig17_e2e)
    rows = {(r["gpu"], r["mode"]): r["speedup"] for r in result.as_dicts()}

    # ~2.2x E2E speedup at equivalent 4-bit on the RTX 4090 (paper).
    assert 1.7 < rows[("RTX 4090", "vq4")] < 3.0
    # qServe and VQ-LLM are in the same band.
    assert (abs(rows[("RTX 4090", "vq4")] - rows[("RTX 4090", "qserve")])
            / rows[("RTX 4090", "qserve")] < 0.35)
    # 2-bit compresses further and is faster still.
    assert rows[("RTX 4090", "vq2")] > rows[("RTX 4090", "vq4")]
    # The bandwidth-constrained A40 gains more than the 4090.
    assert rows[("Tesla A40", "vq4")] > rows[("RTX 4090", "vq4")] * 0.98


def test_fig17_accuracy(run_once):
    result = run_once(fig17_accuracy)
    rows = {r["scheme"]: r for r in result.as_dicts()}
    # VQ tracks the FP16 model more closely than element-wise INT4 at
    # the same equivalent width (the paper's +2.5% arc-challenge gap).
    assert (rows["vq-llm-4bit"]["next_token_agreement"]
            > rows["qserve-4bit"]["next_token_agreement"])
    assert rows["fp16"]["next_token_agreement"] == 1.0
