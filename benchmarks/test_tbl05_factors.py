"""Tbl. V: per-configuration factors that drive each optimization."""

import pytest

from repro.bench.experiments import tbl05_factors


def test_tbl05(run_once):
    result = run_once(tbl05_factors)
    rows = {r["algorithm"]: r for r in result.as_dicts()}

    # Codebook bytes per block (paper: 2 KB / 128 KB / 32 KB / 64 KB).
    assert rows["QuiP#-4"]["codebook_per_block_KB"] == pytest.approx(2.0)
    assert rows["AQLM-3"]["codebook_per_block_KB"] == pytest.approx(128.0)
    assert rows["GPTVQ-2"]["codebook_per_block_KB"] == pytest.approx(32.0)
    assert rows["CQ-2"]["codebook_per_block_KB"] == pytest.approx(64.0)

    # Hot entries above mu+3sigma (paper: 1-3 / 15-30 / <1 / <1).
    assert rows["AQLM-3"]["hot_entries"] >= 5
    assert rows["AQLM-3"]["hot_entries"] > rows["GPTVQ-2"]["hot_entries"]

    # Shuffle counts (paper: 3/7, 3/7, 1/3, 3, 1).
    assert rows["QuiP#-4"]["shuffles_gemm_or_attn"] == 3
    assert rows["QuiP#-4"]["shuffles_gemv"] == 7
    assert rows["GPTVQ-2"]["shuffles_gemm_or_attn"] == 1
    assert rows["GPTVQ-2"]["shuffles_gemv"] == 3
    assert rows["CQ-2"]["shuffles_gemm_or_attn"] == 3
    assert rows["CQ-4"]["shuffles_gemm_or_attn"] == 1
