"""Fig. 18: CQ-4 fused attention vs the FP16 attention family."""

from repro.bench.experiments import fig18_attention_baselines


def test_fig18(run_once):
    result = run_once(fig18_attention_baselines)
    rows = {(r["seq_len"], r["batch"]): r for r in result.as_dicts()}

    baselines = ("Flash Decoding", "Paged Flash Decoding",
                 "Flash Attention", "Paged Flash Attention")
    # VQ-LLM beats every FP16 baseline at every point (ratios > 1).
    for row in rows.values():
        for name in baselines:
            assert row[name] > 1.0

    # Paper: 66.4% latency reduction vs the best FP16 baseline at
    # BS8 / 4k tokens.
    best_ratio = min(rows[(4096, 8)][n] for n in baselines)
    reduction = 1 - 1 / best_ratio
    assert 0.5 < reduction < 0.85

    # Advantage scales with sequence length (paper: "scales effectively").
    assert rows[(4096, 1)]["Flash Decoding"] \
        > rows[(1024, 1)]["Flash Decoding"]

    # FlashAttention (no token split) is the weakest baseline at BS1.
    assert (rows[(1024, 1)]["Flash Attention"]
            > rows[(1024, 1)]["Flash Decoding"])
