"""Tbl. III: reduce and codebook-switch axes per computation."""

from repro.bench.experiments import tbl03_axes


def test_tbl03(run_once):
    result = run_once(tbl03_axes)
    rows = {(r["operation"], r["scope"]): r for r in result.as_dicts()}

    assert rows[("gemm", "tensor")]["switch_axes"] == "R"
    assert rows[("gemm", "tile")]["switch_axes"] == "MN"
    assert rows[("attention_k", "channel_group")]["switch_axes"] == "HC"
    assert rows[("attention_k", "channel_group")]["reduce_axes"] == "C"
    assert rows[("attention_v", "channel_group")]["reduce_axes"] == "T"
    # The K cache's parallelized reduction needs a global reduce; the
    # V cache's does not (tokens stay within a block).
    assert rows[("attention_k", "channel_group")]["needs_global_reduction"]
    assert not rows[("attention_v",
                     "channel_group")]["needs_global_reduction"]
