"""Fig. 4: naive VQ attention underperforms FP16; counter diagnosis."""

from repro.bench.experiments import fig04_motivation


def test_fig04(run_once):
    result = run_once(fig04_motivation)
    rows = {r["version"]: r for r in result.as_dicts()}
    fp16, gc, sc = (rows["FP16-attn"], rows["VQ-attn-GC"],
                    rows["VQ-attn-SC"])

    # Both naive VQ versions are slower than FP16 despite the 8x
    # smaller KV cache.
    assert gc["rel_latency"] > 1.0
    assert sc["rel_latency"] > 1.0
    # SC outperforms GC (Fig. 4 left).
    assert sc["latency_us"] < gc["latency_us"]
    # SC's counters: occupancy drop > 30%, ~3x shared usage, high bank
    # conflicts, more global->shared traffic than FP16 (Fig. 4 right).
    assert sc["occupancy"] < 0.7 * fp16["occupancy"]
    assert sc["smem_per_block"] > 2 * fp16["smem_per_block"]
    assert sc["bank_conflicts"] > 0
    assert sc["global_to_shared_MB"] > fp16["global_to_shared_MB"]
    assert sc["shared_to_reg_MB"] > fp16["shared_to_reg_MB"]
