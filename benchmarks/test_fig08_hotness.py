"""Fig. 8: codebook entry access frequency is heavily skewed (AQLM-3)."""

from repro.bench.experiments import fig08_hotness


def test_fig08(run_once):
    result = run_once(fig08_hotness)
    metrics = dict(result.rows)
    # Over half of the entries are accessed less than the mean.
    assert metrics["below_mean_fraction"] > 0.5
    # A handful of entries exceed mu + 3 sigma (paper: 26 for AQLM-3;
    # 15-30 in Tbl. V).
    assert 5 <= metrics["hot_entries_mu_3sigma"] <= 60
    # The hot head covers far more than its uniform share.
    uniform_32 = 32 / metrics["n_entries"]
    assert metrics["top32_coverage"] > 4 * uniform_32
