"""Transformer layer primitives: RMSNorm, SiLU/SwiGLU, RoPE, softmax.

These are the "various operators beyond GeMM/GeMV and Attention" the
paper's E2E evaluation accounts for (RMSNorm, SiLU, RoPE take ~10% of
FP16 latency, ~20% of the 4-bit-quantized version's).  Implemented as
plain numpy functions so both the reference model and the fused-kernel
numerics can share them.
"""

from __future__ import annotations

import numpy as np


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalization over the last axis."""
    x = np.asarray(x, dtype=np.float64)
    ms = np.mean(x * x, axis=-1, keepdims=True)
    return x / np.sqrt(ms + eps) * weight


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit: x * sigmoid(x)."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def swiglu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """Llama MLP activation: SiLU(gate) * up."""
    return silu(gate) * np.asarray(up, dtype=np.float64)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def rope_tables(
    max_positions: int, head_dim: int, theta: float = 10000.0
) -> tuple:
    """Precompute RoPE cos/sin tables of shape (positions, head_dim/2)."""
    if head_dim % 2:
        raise ValueError("head_dim must be even for RoPE")
    half = head_dim // 2
    freqs = theta ** (-np.arange(half, dtype=np.float64) / half)
    angles = np.outer(np.arange(max_positions, dtype=np.float64), freqs)
    return np.cos(angles), np.sin(angles)


def apply_rope(
    x: np.ndarray, positions: np.ndarray, cos: np.ndarray, sin: np.ndarray
) -> np.ndarray:
    """Rotate pairs of channels by position-dependent angles.

    Parameters
    ----------
    x:
        Array of shape (..., seq, head_dim); pairs are the interleaved
        halves (first half with second half), the Llama convention.
    positions:
        Position index per sequence element, shape (seq,).
    cos, sin:
        Tables from :func:`rope_tables`.
    """
    x = np.asarray(x, dtype=np.float64)
    head_dim = x.shape[-1]
    half = head_dim // 2
    c = cos[positions]
    s = sin[positions]
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * c - x2 * s, x1 * s + x2 * c], axis=-1)
