"""Runnable Llama-architecture model and operator-shape enumeration.

Two uses:

1. *Numerics* — :class:`LlamaModel` materialises structured random
   weights (guarded to small configs; a 7B-parameter numpy model would
   need tens of GB) and runs prefill/decode exactly, optionally with VQ-
   or element-wise-quantized weights and a VQ KV cache.  The accuracy
   proxy experiments (Fig. 17 right) compare its outputs across
   quantization schemes.

2. *Latency ledger* — :func:`decode_operator_shapes` enumerates every
   operator of one decode step at any model scale (7B/65B), which the
   E2E experiments (Fig. 17 left) cost with the kernel models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.llm.attention import attention_decode, attention_prefill
from repro.llm.config import LlamaConfig
from repro.llm.layers import apply_rope, rms_norm, rope_tables, softmax, swiglu

#: Refuse to materialise models above this parameter count.
MATERIALISE_LIMIT = 50_000_000


def structured_matrix(
    rng: np.random.Generator,
    rows: int,
    cols: int,
    rank_fraction: float = 0.125,
    outlier_fraction: float = 0.001,
    outlier_scale: float = 8.0,
) -> np.ndarray:
    """Random matrix with LLM-weight-like structure.

    Real LLM weights are approximately low-rank with a sparse set of
    large-magnitude outliers and heavy-tailed (leptokurtic) marginals —
    exactly the structure Fig. 2 credits VQ with capturing (correlated
    dimensions) and element-wise grids with missing (outliers), and the
    structure that makes codebook-entry access frequency skewed
    (Fig. 8: near-zero centroids serve most lookups).  A pure i.i.d.
    Gaussian would erase both effects, so all model weights use this
    generator.
    """
    rank = max(1, int(min(rows, cols) * rank_fraction))
    left = rng.standard_normal((rows, rank))
    right = rng.standard_normal((rank, cols))
    base = left @ right / math.sqrt(rank)
    noise = 0.1 * rng.standard_normal((rows, cols))
    w = (base + noise) * 0.02
    # Per-row scale mixture: rows (output channels) have lognormal
    # magnitudes, giving the heavy-tailed marginal of trained weights.
    row_scale = rng.lognormal(mean=-0.5, sigma=1.0, size=(rows, 1))
    w = w * row_scale
    n_outliers = int(rows * cols * outlier_fraction)
    if n_outliers:
        idx = rng.choice(rows * cols, size=n_outliers, replace=False)
        flat = w.reshape(-1)
        flat[idx] *= outlier_scale
    return w


@dataclass
class LlamaLayerWeights:
    """Weights of one transformer layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    attn_norm: np.ndarray
    mlp_norm: np.ndarray


class LlamaModel:
    """A numerically runnable Llama-architecture transformer."""

    def __init__(self, config: LlamaConfig, seed: int = 0):
        if config.param_count > MATERIALISE_LIMIT:
            raise ValueError(
                f"{config.name} has ~{config.param_count / 1e9:.1f}B "
                "parameters; materialise only small configs "
                "(use decode_operator_shapes for large-model analysis)"
            )
        self.config = config
        rng = np.random.default_rng(seed)
        h, inter, vocab = config.hidden, config.intermediate, config.vocab
        self.embedding = structured_matrix(rng, vocab, h)
        self.layers: List[LlamaLayerWeights] = []
        for _ in range(config.n_layers):
            self.layers.append(LlamaLayerWeights(
                wq=structured_matrix(rng, h, h),
                wk=structured_matrix(rng, h, h),
                wv=structured_matrix(rng, h, h),
                wo=structured_matrix(rng, h, h),
                w_gate=structured_matrix(rng, h, inter),
                w_up=structured_matrix(rng, h, inter),
                w_down=structured_matrix(rng, inter, h),
                attn_norm=np.ones(h),
                mlp_norm=np.ones(h),
            ))
        self.final_norm = np.ones(h)
        self.lm_head = structured_matrix(rng, h, vocab)
        self.cos, self.sin = rope_tables(8192, config.head_dim,
                                         config.rope_theta)

    # ------------------------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, T, H*C) -> (B, H, T, C)."""
        b, t, _ = x.shape
        cfg = self.config
        return x.reshape(b, t, cfg.n_heads, cfg.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, H, T, C) -> (B, T, H*C)."""
        b, h, t, c = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * c)

    def forward(
        self,
        tokens: np.ndarray,
        caches: Optional[list] = None,
        weight_override: Optional[dict] = None,
    ) -> np.ndarray:
        """Run a full (prefill) forward pass.

        Parameters
        ----------
        tokens:
            Token ids, shape (B, T).
        caches:
            Optional list of per-layer KV caches to fill
            (:class:`~repro.llm.kvcache.KVCache`-compatible).
        weight_override:
            Optional mapping ``(layer_index, weight_name) -> matrix``
            substituting (de)quantized weights; used by the accuracy
            experiments to run the quantized model without duplicating
            the forward pass.

        Returns
        -------
        numpy.ndarray
            Logits, shape (B, T, vocab).
        """
        tokens = np.asarray(tokens)
        b, t = tokens.shape
        cfg = self.config
        positions = np.arange(t)
        x = self.embedding[tokens]

        for li, layer in enumerate(self.layers):
            get = self._weight_getter(li, layer, weight_override)
            attn_in = rms_norm(x, layer.attn_norm, cfg.norm_eps)
            q = self._split_heads(attn_in @ get("wq"))
            k = self._split_heads(attn_in @ get("wk"))
            v = self._split_heads(attn_in @ get("wv"))
            q = apply_rope(q, positions, self.cos, self.sin)
            k = apply_rope(k, positions, self.cos, self.sin)
            if caches is not None:
                caches[li].extend(k, v)
            attn = attention_prefill(q, k, v, causal=True)
            x = x + self._merge_heads(attn) @ get("wo")

            mlp_in = rms_norm(x, layer.mlp_norm, cfg.norm_eps)
            act = swiglu(mlp_in @ get("w_gate"), mlp_in @ get("w_up"))
            x = x + act @ get("w_down")

        x = rms_norm(x, self.final_norm, cfg.norm_eps)
        return x @ self.lm_head

    def decode_step(
        self,
        tokens: np.ndarray,
        caches: list,
        weight_override: Optional[dict] = None,
    ) -> np.ndarray:
        """Decode one token per batch element against filled caches.

        Parameters
        ----------
        tokens:
            New token ids, shape (B,).
        caches:
            Per-layer KV caches holding the context; the new token's K/V
            are appended.

        Returns
        -------
        numpy.ndarray
            Logits for the new position, shape (B, vocab).
        """
        cfg = self.config
        b = tokens.shape[0]
        position = caches[0].length
        x = self.embedding[tokens][:, None, :]

        for li, layer in enumerate(self.layers):
            get = self._weight_getter(li, layer, weight_override)
            attn_in = rms_norm(x, layer.attn_norm, cfg.norm_eps)
            q = self._split_heads(attn_in @ get("wq"))
            k = self._split_heads(attn_in @ get("wk"))
            v = self._split_heads(attn_in @ get("wv"))
            pos = np.array([position])
            q = apply_rope(q, pos, self.cos, self.sin)
            k = apply_rope(k, pos, self.cos, self.sin)
            caches[li].append(k[:, :, 0], v[:, :, 0])
            attn = attention_decode(
                q[:, :, 0], caches[li].keys, caches[li].values)
            x = x + (attn.reshape(b, 1, cfg.hidden) @ get("wo"))

            mlp_in = rms_norm(x, layer.mlp_norm, cfg.norm_eps)
            act = swiglu(mlp_in @ get("w_gate"), mlp_in @ get("w_up"))
            x = x + act @ get("w_down")

        x = rms_norm(x, self.final_norm, cfg.norm_eps)
        return (x @ self.lm_head)[:, 0]

    def greedy_next(self, logits: np.ndarray) -> np.ndarray:
        """Greedy next-token choice from logits (B, vocab)."""
        return np.argmax(logits, axis=-1)

    @staticmethod
    def _weight_getter(layer_index, layer, override):
        def get(name):
            if override is not None and (layer_index, name) in override:
                return override[(layer_index, name)]
            return getattr(layer, name)
        return get

    def perplexity(self, tokens: np.ndarray,
                   weight_override: Optional[dict] = None) -> float:
        """Teacher-forced perplexity of token sequences (B, T)."""
        logits = self.forward(tokens, weight_override=weight_override)
        logp = np.log(softmax(logits[:, :-1], axis=-1) + 1e-12)
        targets = tokens[:, 1:]
        b_idx, t_idx = np.meshgrid(
            np.arange(tokens.shape[0]), np.arange(tokens.shape[1] - 1),
            indexing="ij")
        nll = -logp[b_idx, t_idx, targets]
        return float(np.exp(np.mean(nll)))


# ----------------------------------------------------------------------
# Operator-shape enumeration for the E2E latency ledger
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OperatorShape:
    """One operator invocation in a decode step.

    ``kind`` is one of ``gemv`` (weight x activations; M=batch),
    ``attention`` (decode attention over the KV cache) or ``elementwise``
    (norms, activations, RoPE — bandwidth-bound passes over ``elements``).
    ``count`` aggregates identical invocations across layers.
    """

    kind: str
    name: str
    m: int = 0
    n: int = 0
    k: int = 0
    batch: int = 0
    heads: int = 0
    seq_len: int = 0
    head_dim: int = 0
    elements: int = 0
    count: int = 1


def decode_operator_shapes(
    config: LlamaConfig, batch: int, seq_len: int
) -> List[OperatorShape]:
    """Every operator of one decode step, aggregated across layers."""
    h, inter, layers = config.hidden, config.intermediate, config.n_layers
    shapes = [
        OperatorShape("gemv", "qkv_proj", m=batch, n=3 * h, k=h,
                      count=layers),
        OperatorShape("attention", "decode_attention", batch=batch,
                      heads=config.n_heads, seq_len=seq_len,
                      head_dim=config.head_dim, count=layers),
        OperatorShape("gemv", "o_proj", m=batch, n=h, k=h, count=layers),
        OperatorShape("gemv", "gate_up_proj", m=batch, n=2 * inter, k=h,
                      count=layers),
        OperatorShape("gemv", "down_proj", m=batch, n=h, k=inter,
                      count=layers),
        OperatorShape("gemv", "lm_head", m=batch, n=config.vocab, k=h,
                      count=1),
        # Norms (x2), RoPE, SiLU-mul and residual adds per layer.
        OperatorShape("elementwise", "norms_rope_act",
                      elements=batch * (4 * h + 2 * inter), count=layers),
    ]
    return shapes
