"""Reference multi-head attention (prefill and decode).

These are the mathematical definitions that every kernel implementation
in :mod:`repro.kernels` (FlashDecoding-style, paged, VQ-fused) must match
numerically.  Shapes follow the paper's convention: batch B, heads H,
tokens T, channels C (= head_dim).
"""

from __future__ import annotations

import math

import numpy as np

from repro.llm.layers import softmax


def attention_prefill(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, causal: bool = True
) -> np.ndarray:
    """Full attention over a prompt.

    Parameters
    ----------
    q, k, v:
        Arrays of shape (B, H, T, C).
    causal:
        Apply a causal mask (token t attends to tokens <= t).

    Returns
    -------
    numpy.ndarray
        Attention output, shape (B, H, T, C).
    """
    q, k, v = (np.asarray(a, dtype=np.float64) for a in (q, k, v))
    if q.ndim != 4 or k.shape != q.shape or v.shape != q.shape:
        raise ValueError("q, k, v must share shape (B, H, T, C)")
    scale = 1.0 / math.sqrt(q.shape[-1])
    scores = np.einsum("bhtc,bhsc->bhts", q, k) * scale
    if causal:
        t = q.shape[2]
        mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        scores = np.where(mask[None, None], -np.inf, scores)
    probs = softmax(scores, axis=-1)
    return np.einsum("bhts,bhsc->bhtc", probs, v)


def attention_decode(
    q: np.ndarray, k_cache: np.ndarray, v_cache: np.ndarray
) -> np.ndarray:
    """Single-token decode attention against a KV cache.

    Parameters
    ----------
    q:
        New-token queries, shape (B, H, C).
    k_cache, v_cache:
        Cached keys/values, shape (B, H, T, C).

    Returns
    -------
    numpy.ndarray
        Attention output for the new token, shape (B, H, C).
    """
    q = np.asarray(q, dtype=np.float64)
    k_cache = np.asarray(k_cache, dtype=np.float64)
    v_cache = np.asarray(v_cache, dtype=np.float64)
    if q.ndim != 3 or k_cache.ndim != 4:
        raise ValueError("q must be (B, H, C); caches must be (B, H, T, C)")
    scale = 1.0 / math.sqrt(q.shape[-1])
    scores = np.einsum("bhc,bhtc->bht", q, k_cache) * scale
    probs = softmax(scores, axis=-1)
    return np.einsum("bht,bhtc->bhc", probs, v_cache)
