"""Llama model shape presets.

Only the shapes matter for kernel workloads; the 7B/65B presets use the
published architecture dimensions.  The ``tiny`` preset is small enough
to materialise random weights and run real numerics through the fused
kernels and the accuracy-proxy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LlamaConfig:
    """Architecture shape of one Llama-family model."""

    name: str
    hidden: int
    n_layers: int
    n_heads: int
    head_dim: int
    intermediate: int
    vocab: int
    rope_theta: float = 10000.0
    norm_eps: float = 1e-5

    def __post_init__(self):
        if self.hidden != self.n_heads * self.head_dim:
            raise ValueError(
                f"hidden ({self.hidden}) must equal n_heads*head_dim "
                f"({self.n_heads}*{self.head_dim})"
            )

    @property
    def param_count(self) -> int:
        """Approximate parameter count (attention + MLP + embeddings)."""
        per_layer = (4 * self.hidden * self.hidden
                     + 3 * self.hidden * self.intermediate
                     + 2 * self.hidden)
        return (self.n_layers * per_layer
                + 2 * self.vocab * self.hidden + self.hidden)

    @property
    def kv_bytes_per_token(self) -> int:
        """FP16 KV-cache bytes appended per token per layer pair."""
        return 2 * self.n_heads * self.head_dim * 2 * self.n_layers


def llama_7b() -> LlamaConfig:
    """Llama-7B: 32 layers, 32 heads x 128, hidden 4096."""
    return LlamaConfig(
        name="Llama-7B",
        hidden=4096,
        n_layers=32,
        n_heads=32,
        head_dim=128,
        intermediate=11008,
        vocab=32000,
    )


def llama_65b() -> LlamaConfig:
    """Llama-65B: 80 layers, 64 heads x 128, hidden 8192."""
    return LlamaConfig(
        name="Llama-65B",
        hidden=8192,
        n_layers=80,
        n_heads=64,
        head_dim=128,
        intermediate=22016,
        vocab=32000,
    )


def tiny_llama() -> LlamaConfig:
    """A materialisable model for numeric tests and accuracy proxies."""
    return LlamaConfig(
        name="Tiny-Llama",
        hidden=128,
        n_layers=2,
        n_heads=4,
        head_dim=32,
        intermediate=256,
        vocab=512,
    )
