"""KV caches: FP16 and VQ-compressed.

The decode phase appends one key/value row per token per head; CQ-style
VQ compression quantizes each new row online against codebooks trained on
calibration data (the paper measures this online step at < 1 us per
token, i.e. negligible — we count its cost separately in the harness).

:class:`QuantizedKVCache` keeps only the codes plus the codebooks; reads
dequantize on the fly, which is what the fused attention kernels model.
"""

from __future__ import annotations

import numpy as np

from repro.vq.codebook import CodebookSet
from repro.vq.config import VQConfig
from repro.vq.quantizer import QuantizedTensor, VectorQuantizer, _assign_nearest


class KVCache:
    """Plain FP16-equivalent KV cache, laid out (B, H, T, C)."""

    def __init__(self, batch: int, n_heads: int, head_dim: int,
                 max_tokens: int):
        self.batch = batch
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.max_tokens = max_tokens
        self.length = 0
        self._k = np.zeros((batch, n_heads, max_tokens, head_dim))
        self._v = np.zeros((batch, n_heads, max_tokens, head_dim))

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append one token's keys/values, shape (B, H, C)."""
        if self.length >= self.max_tokens:
            raise RuntimeError("KV cache is full")
        self._k[:, :, self.length] = k
        self._v[:, :, self.length] = v
        self.length += 1

    def extend(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append a prompt's keys/values, shape (B, H, T, C)."""
        t = k.shape[2]
        if self.length + t > self.max_tokens:
            raise RuntimeError("KV cache overflow")
        self._k[:, :, self.length:self.length + t] = k
        self._v[:, :, self.length:self.length + t] = v
        self.length += t

    @property
    def keys(self) -> np.ndarray:
        """Valid keys, shape (B, H, length, C)."""
        return self._k[:, :, :self.length]

    @property
    def values(self) -> np.ndarray:
        """Valid values, shape (B, H, length, C)."""
        return self._v[:, :, :self.length]

    @property
    def nbytes(self) -> int:
        """FP16 storage of the valid region."""
        return 2 * 2 * self.batch * self.n_heads * self.length * self.head_dim


class QuantizedKVCache:
    """CQ-style VQ-compressed KV cache.

    Codebooks are trained once on calibration keys/values (per channel
    group, as CQ does), then each appended token is *encoded only* —
    the online path the paper measures as negligible.  Keys and values
    get independent codebooks.
    """

    def __init__(
        self,
        config: VQConfig,
        batch: int,
        n_heads: int,
        head_dim: int,
        max_tokens: int,
        calibration_k: np.ndarray,
        calibration_v: np.ndarray,
        seed: int = 0,
    ):
        if config.scope != "channel_group":
            raise ValueError("KV-cache VQ uses channel_group scope (CQ)")
        if head_dim % config.vector_size:
            raise ValueError("head_dim must be divisible by vector_size")
        self.config = config
        self.batch = batch
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.max_tokens = max_tokens
        self.length = 0
        self.n_sub = head_dim // config.vector_size

        quantizer = VectorQuantizer(config, seed=seed)
        # Calibration arrays are (tokens, H, C); train per head by
        # flattening heads into the channel axis so each head's channel
        # groups get their own codebooks, like CQ.
        self._k_books = self._train_books(quantizer, calibration_k)
        self._v_books = self._train_books(quantizer, calibration_v)
        shape = (batch, n_heads, max_tokens, self.n_sub, config.residuals)
        self._k_codes = np.zeros(shape, dtype=np.int64)
        self._v_codes = np.zeros(shape, dtype=np.int64)

    def _train_books(self, quantizer: VectorQuantizer,
                     calibration: np.ndarray) -> CodebookSet:
        """Train per-(head, channel-group) codebooks on calibration data."""
        calibration = np.asarray(calibration, dtype=np.float64)
        if calibration.ndim != 3 or calibration.shape[1] != self.n_heads \
                or calibration.shape[2] != self.head_dim:
            raise ValueError("calibration must be (tokens, H, C)")
        flat = calibration.reshape(calibration.shape[0],
                                   self.n_heads * self.head_dim)
        qt = quantizer.quantize(flat)
        return qt.codebooks

    def _encode(self, row: np.ndarray, books: CodebookSet,
                head: int) -> np.ndarray:
        """Encode one head's (C,) row -> (n_sub, residuals) codes."""
        cfg = self.config
        sub = row.reshape(self.n_sub, cfg.vector_size).astype(np.float64)
        codes = np.zeros((self.n_sub, cfg.residuals), dtype=np.int64)
        for j in range(self.n_sub):
            group = head * self.n_sub + j
            target = sub[j:j + 1].copy()
            for r in range(cfg.residuals):
                book = books.get(group, r)
                idx = _assign_nearest(target, book.entries.astype(np.float64))
                codes[j, r] = idx[0]
                target = target - book.entries[idx].astype(np.float64)
        return codes

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize and append one token's (B, H, C) keys/values."""
        if self.length >= self.max_tokens:
            raise RuntimeError("KV cache is full")
        for b in range(self.batch):
            for h in range(self.n_heads):
                self._k_codes[b, h, self.length] = self._encode(
                    k[b, h], self._k_books, h)
                self._v_codes[b, h, self.length] = self._encode(
                    v[b, h], self._v_books, h)
        self.length += 1

    def _decode(self, codes: np.ndarray, books: CodebookSet) -> np.ndarray:
        """Dequantize codes (B, H, T, n_sub, R) -> (B, H, T, C)."""
        cfg = self.config
        b, h, t = codes.shape[:3]
        groups = (np.arange(h)[:, None] * self.n_sub
                  + np.arange(self.n_sub)[None, :])
        out = np.zeros((b, h, t, self.n_sub, cfg.vector_size))
        for r in range(cfg.residuals):
            stacked = books.stacked_entries(r)
            idx = codes[:, :, :, :, r]
            out += stacked[groups[None, :, None, :], idx]
        return out.reshape(b, h, t, self.head_dim)

    @property
    def keys(self) -> np.ndarray:
        """Dequantized keys, shape (B, H, length, C)."""
        return self._decode(self._k_codes[:, :, :self.length], self._k_books)

    @property
    def values(self) -> np.ndarray:
        """Dequantized values, shape (B, H, length, C)."""
        return self._decode(self._v_codes[:, :, :self.length], self._v_books)

    def key_tensor(self, batch: int) -> QuantizedTensor:
        """View one batch element's keys as a QuantizedTensor (T, H*C).

        This is the object the fused attention kernels consume.
        """
        return self._as_tensor(self._k_codes, self._k_books, batch)

    def value_tensor(self, batch: int) -> QuantizedTensor:
        """Value-cache analogue of :meth:`key_tensor`."""
        return self._as_tensor(self._v_codes, self._v_books, batch)

    def _as_tensor(self, codes: np.ndarray, books: CodebookSet,
                   batch: int) -> QuantizedTensor:
        t = self.length
        flat_codes = codes[batch, :, :t].transpose(1, 0, 2, 3).reshape(
            t, self.n_heads * self.n_sub, self.config.residuals)
        group_map = np.broadcast_to(
            np.arange(self.n_heads * self.n_sub, dtype=np.int64)[None, :],
            (t, self.n_heads * self.n_sub)).copy()
        shape = (t, self.n_heads * self.head_dim)
        return QuantizedTensor(self.config, shape, flat_codes, group_map,
                               books)

    @property
    def nbytes(self) -> float:
        """Compressed storage (codes only) of the valid region."""
        n_elem = (2 * self.batch * self.n_heads * self.length
                  * self.head_dim)
        return self.config.quantized_bytes(n_elem)
