"""LLM substrate: a numpy Llama-architecture transformer.

The paper evaluates kernels at Llama-7B / Llama-65B shapes and runs an
end-to-end generation benchmark.  This package provides:

- :mod:`repro.llm.config` — model shape presets (real 7B/65B shapes for
  the analytic experiments, a tiny shape for numeric ones);
- :mod:`repro.llm.layers` — RMSNorm, SiLU/SwiGLU, RoPE and softmax, the
  "other operators" whose share of E2E latency the paper reports;
- :mod:`repro.llm.kvcache` — FP16 and VQ-compressed KV caches with
  online (per-token) quantization in the decode phase;
- :mod:`repro.llm.attention` — reference multi-head attention for
  prefill and decode;
- :mod:`repro.llm.model` — a runnable transformer (numerics at tiny
  scale) plus operator-shape enumeration at any scale for the E2E
  latency ledger.
"""

from repro.llm.attention import attention_decode, attention_prefill
from repro.llm.config import LlamaConfig, llama_7b, llama_65b, tiny_llama
from repro.llm.kvcache import KVCache, QuantizedKVCache
from repro.llm.layers import (
    apply_rope,
    rms_norm,
    rope_tables,
    silu,
    softmax,
    swiglu,
)
from repro.llm.model import LlamaModel, OperatorShape, decode_operator_shapes

__all__ = [
    "KVCache",
    "LlamaConfig",
    "LlamaModel",
    "OperatorShape",
    "QuantizedKVCache",
    "apply_rope",
    "attention_decode",
    "attention_prefill",
    "decode_operator_shapes",
    "llama_65b",
    "llama_7b",
    "rms_norm",
    "rope_tables",
    "silu",
    "softmax",
    "swiglu",
    "tiny_llama",
]
