"""Shared-memory bank-conflict model.

The paper observes (Sec. III) that codebook dequantization produces
random accesses into a table whose entry count (e.g. 256) far exceeds the
32 shared-memory banks, and whose entries each span several banks, so a
warp's 32 simultaneous lookups collide heavily and serialize.

We model this mechanically: a warp issues one lookup per lane; the entry
with index ``i`` occupies ``ceil(entry_bytes / 4)`` consecutive 4-byte
words starting at word ``i * words_per_entry``; a bank services one
distinct word per cycle, with same-word accesses broadcast for free.  The
number of *replays* for the warp is ``max over banks of distinct words
requested in that bank`` minus one.

Because the index stream comes from real quantized data (k-means cluster
assignments, which are naturally skewed), the model reproduces the
observation that register-caching the few hottest entries removes most of
the conflicts (optimization O2).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.gpu.spec import GPUSpec


def warp_conflict_degree(
    lane_indices: Sequence[int],
    entry_bytes: int,
    banks: int = 32,
    bank_bytes: int = 4,
) -> int:
    """Transactions needed to service one warp's codebook lookups.

    Parameters
    ----------
    lane_indices:
        Entry index requested by each lane of the warp (length <= 32).
    entry_bytes:
        Size of one codebook entry in bytes.
    banks, bank_bytes:
        Bank geometry (32 x 4 B on all modelled chips).

    Returns
    -------
    int
        Number of shared-memory transactions the warp's access is split
        into (1 = conflict-free).  Lanes requesting the same word are
        broadcast and do not conflict.
    """
    if entry_bytes <= 0:
        raise ValueError("entry_bytes must be positive")
    words_per_entry = max(1, math.ceil(entry_bytes / bank_bytes))
    words_per_bank: dict = {}
    for index in lane_indices:
        base = int(index) * words_per_entry
        for w in range(words_per_entry):
            word = base + w
            bank = word % banks
            words_per_bank.setdefault(bank, set()).add(word)
    if not words_per_bank:
        return 0
    return max(len(words) for words in words_per_bank.values())


class BankConflictModel:
    """Estimates average conflict degree for a stream of entry indices.

    The estimate samples warps from the index stream exactly as the
    dequantization loop would group them: 32 consecutive lookups form one
    warp access.  ``None`` entries mark lanes whose lookup was served from
    the register cache (optimization O2) and therefore do not touch
    shared memory.
    """

    def __init__(self, spec: GPUSpec, entry_bytes: int):
        if entry_bytes <= 0:
            raise ValueError("entry_bytes must be positive")
        self.spec = spec
        self.entry_bytes = entry_bytes

    def average_degree(
        self,
        index_stream: np.ndarray,
        register_resident: int = 0,
        shared_resident: Optional[int] = None,
        max_warps: int = 1024,
        seed: int = 0,
    ) -> float:
        """Average transactions per warp-access over the stream.

        Parameters
        ----------
        index_stream:
            1-D array of codebook entry indices in dequantization order.
            Indices are assumed *frequency-reordered* (hottest = 0), as
            produced by :class:`repro.core.cache.CodebookCache`.
        register_resident:
            Entries with index below this bound live in registers and do
            not generate shared-memory traffic.
        shared_resident:
            Entries with index at or above this bound live in global
            memory and likewise bypass shared memory.  ``None`` means all
            remaining entries are shared-resident.
        max_warps:
            Cap on sampled warps, for speed; sampling is deterministic.

        Returns
        -------
        float
            Mean transactions per warp among warps that touched shared
            memory at all; 0.0 if none did.
        """
        stream = np.asarray(index_stream).ravel()
        if stream.size == 0:
            return 0.0
        warp = self.spec.warp_size
        n_warps = stream.size // warp
        if n_warps == 0:
            lanes = self._shared_lanes(stream, register_resident,
                                       shared_resident)
            if not lanes:
                return 0.0
            return float(warp_conflict_degree(
                lanes, self.entry_bytes, self.spec.smem_banks,
                self.spec.smem_bank_bytes))

        if n_warps > max_warps:
            rng = np.random.default_rng(seed)
            chosen = rng.choice(n_warps, size=max_warps, replace=False)
        else:
            chosen = np.arange(n_warps)

        # Vectorized replica of the per-warp
        # :func:`warp_conflict_degree` loop: all arithmetic is integer
        # (word ids, bank ids, distinct counts), so the result is
        # bit-identical to the scalar path — which remains the
        # reference the property tests compare against.
        banks = self.spec.smem_banks
        wpe = max(1, math.ceil(self.entry_bytes
                               / self.spec.smem_bank_bytes))
        sub = stream[(np.asarray(chosen)[:, None] * warp
                      + np.arange(warp))].astype(np.int64)
        mask = sub >= register_resident
        if shared_resident is not None:
            mask &= sub < shared_resident
        touched = mask.any(axis=1)
        if not touched.any():
            return 0.0
        n_chosen = sub.shape[0]
        lanes_flat = warp * wpe
        words = (sub * wpe)[..., None] + np.arange(wpe)
        words = words.reshape(n_chosen, lanes_flat)
        # Masked lanes collapse to sentinel -1, then a row sort makes
        # duplicate words adjacent so each distinct word counts once.
        words = np.where(np.repeat(mask, wpe, axis=1), words, -1)
        words.sort(axis=1)
        uniq = np.empty((n_chosen, lanes_flat), dtype=bool)
        uniq[:, 0] = words[:, 0] >= 0
        uniq[:, 1:] = ((words[:, 1:] != words[:, :-1])
                       & (words[:, 1:] >= 0))
        counts = np.zeros((n_chosen, banks), dtype=np.int64)
        rows = np.broadcast_to(np.arange(n_chosen)[:, None],
                               (n_chosen, lanes_flat))
        np.add.at(counts, (rows[uniq], words[uniq] % banks), 1)
        return float(np.mean(counts.max(axis=1)[touched]))

    def _shared_lanes(
        self,
        warp_indices: np.ndarray,
        register_resident: int,
        shared_resident: Optional[int],
    ) -> list:
        """Indices in one warp that are served from shared memory."""
        lanes = []
        for index in warp_indices:
            i = int(index)
            if i < register_resident:
                continue
            if shared_resident is not None and i >= shared_resident:
                continue
            lanes.append(i)
        return lanes
