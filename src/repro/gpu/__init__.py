"""GPU hardware-model substrate.

The paper evaluates CUDA kernels on an NVIDIA RTX 4090 and a Tesla A40.
This environment has no GPU, so this package provides an analytic model of
the pieces of the GPU that the paper's analysis actually rests on:

- :mod:`repro.gpu.spec` — chip parameters (SM count, shared memory size,
  bank count, bandwidths, peak throughput) for the GPUs the paper uses.
- :mod:`repro.gpu.occupancy` — the CUDA occupancy calculation that the
  paper's "resource slack" heuristic (Fig. 10) is built on.
- :mod:`repro.gpu.banks` — a shared-memory bank-conflict model driven by
  real quantized-index streams.
- :mod:`repro.gpu.counters` — the performance counters the paper profiles
  in Fig. 4 (traffic per hierarchy level, conflicts, utilization).
- :mod:`repro.gpu.costmodel` — a roofline-style latency model over those
  counters.
- :mod:`repro.gpu.shuffle` — a functional model of intra-warp ``shfl.xor``
  data exchange used by register-level fusion.

Every kernel in :mod:`repro.kernels` and every generated kernel in
:mod:`repro.core` produces a :class:`~repro.gpu.counters.PerfCounters`
record; latency claims are derived from those counters, never invented.
"""

from repro.gpu.banks import BankConflictModel, warp_conflict_degree
from repro.gpu.costmodel import CostModel, LatencyBreakdown
from repro.gpu.counters import PerfCounters
from repro.gpu.memory import l1_hit_rate, line_transactions
from repro.gpu.occupancy import Occupancy, occupancy
from repro.gpu.shuffle import shfl_xor, shuffle_exchange
from repro.gpu.spec import GPUSpec, A40, A100, RTX4090

__all__ = [
    "A40",
    "A100",
    "BankConflictModel",
    "CostModel",
    "GPUSpec",
    "LatencyBreakdown",
    "Occupancy",
    "PerfCounters",
    "RTX4090",
    "l1_hit_rate",
    "line_transactions",
    "occupancy",
    "shfl_xor",
    "shuffle_exchange",
    "warp_conflict_degree",
]
