"""Roofline-style latency model over :class:`~repro.gpu.counters.PerfCounters`.

The model converts a kernel's counter record into a latency estimate by
timing each hardware resource independently and taking the slowest
(hiding the others behind it), which is how memory-bound LLM inference
kernels behave:

- DRAM time: bytes / (peak bandwidth x a bandwidth-efficiency curve that
  degrades at low occupancy — a latency-bound kernel cannot keep enough
  loads in flight to saturate DRAM);
- shared-memory time: transactions (including bank-conflict replays)
  through the per-SM 128 B/cycle port;
- compute time: FLOPs at tensor-core rate plus scalar dequantization,
  unpack and shuffle instructions at CUDA-core rate, degraded at low
  occupancy;
- fixed per-launch overhead, multiplied for split-reduction plans.

Absolute microseconds are calibrated (this is a model, not silicon); all
paper comparisons are relative, and relative ordering is determined by
the counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.counters import PerfCounters
from repro.gpu.occupancy import occupancy as occupancy_of
from repro.gpu.spec import GPUSpec

#: Fixed cost of one kernel launch, seconds (driver + dispatch).
LAUNCH_OVERHEAD_S = 3.0e-6

#: Scalar (CUDA-core) operation throughput relative to one FP32 FLOP.
#: Dequant lookups and bit-unpacking are integer/ld-st sequences costing
#: several simple instructions each.
DEQUANT_OP_COST = 4.0
UNPACK_OP_COST = 6.0
SHUFFLE_OP_COST = 2.0


@dataclass(frozen=True)
class LatencyBreakdown:
    """Component times (seconds) of one modelled kernel execution."""

    dram_s: float
    shared_s: float
    compute_s: float
    overhead_s: float
    occupancy: float
    sm_utilization: float

    @property
    def total_s(self) -> float:
        """End-to-end latency: slowest pipe plus fixed overheads."""
        return max(self.dram_s, self.shared_s, self.compute_s) + self.overhead_s

    @property
    def total_us(self) -> float:
        """Total latency in microseconds."""
        return self.total_s * 1e6

    @property
    def bound(self) -> str:
        """Which resource dominates: ``dram``, ``shared`` or ``compute``."""
        parts = {
            "dram": self.dram_s,
            "shared": self.shared_s,
            "compute": self.compute_s,
        }
        return max(parts, key=parts.get)


class CostModel:
    """Latency model for one GPU."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    def bandwidth_efficiency(self, occ: float, sm_util: float) -> float:
        """Fraction of peak DRAM bandwidth achievable.

        A saturating curve in achieved occupancy: even moderate occupancy
        (>= ~25%) keeps DRAM busy for streaming kernels, but a kernel
        throttled to one small block per SM (the SC-with-huge-codebook
        case) cannot cover DRAM latency.  Idle SMs (low wave utilization)
        cut the achievable bandwidth proportionally.
        """
        occ = max(0.0, min(1.0, occ))
        sm_util = max(0.0, min(1.0, sm_util)) or 1.0
        curve = occ / (occ + 0.08) if occ > 0 else 0.0
        return max(1e-3, curve * sm_util)

    def pipeline_efficiency(self, occ: float, sm_util: float) -> float:
        """Fraction of peak compute throughput achievable."""
        occ = max(0.0, min(1.0, occ))
        sm_util = max(0.0, min(1.0, sm_util)) or 1.0
        curve = occ / (occ + 0.12) if occ > 0 else 0.0
        return max(1e-3, curve * sm_util)

    def resolve_occupancy(self, counters: PerfCounters) -> PerfCounters:
        """Fill in occupancy and SM utilization from launch geometry.

        Mutates and returns ``counters``.  Kernels may pre-set occupancy
        (e.g. aggregated multi-launch records); those values are kept.
        """
        if counters.occupancy <= 0 and counters.threads_per_block > 0:
            occ = occupancy_of(
                self.spec,
                counters.threads_per_block,
                max(counters.regs_per_thread, 1),
                counters.smem_per_block,
            )
            counters.occupancy = occ.occupancy
            blocks_resident = max(1, occ.blocks_per_sm) * self.spec.sm_count
            if counters.grid_blocks > 0:
                counters.sm_utilization = min(
                    1.0, counters.grid_blocks / min(
                        blocks_resident, self.spec.sm_count))
            else:
                counters.sm_utilization = 1.0
            if occ.blocks_per_sm == 0:
                # The block cannot be scheduled at all; model as minimum
                # progress (one block serialized per SM via spill).
                counters.occupancy = 1.0 / self.spec.max_warps_per_sm
        if counters.sm_utilization <= 0:
            counters.sm_utilization = 1.0
        return counters

    def latency(self, counters: PerfCounters) -> LatencyBreakdown:
        """Convert a counter record into a latency breakdown."""
        c = self.resolve_occupancy(counters)
        spec = self.spec

        bw_eff = self.bandwidth_efficiency(c.occupancy, c.sm_utilization)
        dram_bytes = c.dram_bytes + c.reduction_bytes
        dram_s = dram_bytes / (spec.dram_bytes_per_s * bw_eff)

        # Shared-memory port time: every transaction moves up to 128 B
        # per SM per cycle; conflict replays are extra transactions.
        transactions = c.shared_transactions + c.bank_conflict_transactions
        if transactions > 0:
            tx_bytes = transactions * spec.smem_banks * spec.smem_bank_bytes
        else:
            tx_bytes = c.shared_traffic_bytes
        shared_s = tx_bytes / (spec.smem_bytes_per_s
                               * max(c.sm_utilization, 1e-3))

        pipe_eff = self.pipeline_efficiency(c.occupancy, c.sm_utilization)
        tensor_s = c.flops / (spec.peak_flops * pipe_eff)
        scalar_ops = (c.dequant_ops * DEQUANT_OP_COST
                      + c.unpack_ops * UNPACK_OP_COST
                      + c.shuffle_ops * SHUFFLE_OP_COST)
        # CUDA-core scalar throughput: warp_size lanes * 2 pipes per SM.
        scalar_rate = (spec.sm_count * spec.warp_size * 4
                       * spec.clock_ghz * 1e9 * pipe_eff)
        # Dependent-load and replay stalls: serial cycles per warp chain,
        # hidden by however many other warps are resident.
        stall_cycles = (c.stall_cycles
                        + c.bank_conflict_transactions
                        * spec.smem_latency_cycles)
        hiding = max(16.0, c.occupancy * spec.max_warps_per_sm)
        stall_s = stall_cycles / (spec.sm_count * spec.clock_ghz * 1e9
                                  * hiding)
        # Scalar work issues on the CUDA cores and overlaps with
        # tensor-core math (the slower pipe dominates), but dependent
        # load stalls block the issuing warps themselves and therefore
        # add on top.
        compute_s = max(tensor_s, scalar_ops / scalar_rate) + stall_s

        overhead_s = LAUNCH_OVERHEAD_S * max(1, c.kernel_launches)
        return LatencyBreakdown(
            dram_s=dram_s,
            shared_s=shared_s,
            compute_s=compute_s,
            overhead_s=overhead_s,
            occupancy=c.occupancy,
            sm_utilization=c.sm_utilization,
        )

    def latency_us(self, counters: PerfCounters) -> float:
        """Convenience: total modelled latency in microseconds."""
        return self.latency(counters).total_us
