"""GPU chip specifications.

Numbers are taken from the vendor whitepapers the paper cites: the Ada
(RTX 4090) and Ampere (A40, A100) architecture documents.  Only parameters
that the analysis depends on are modelled; everything is exposed as a
plain frozen dataclass so experiments can derive hypothetical chips (for
example a bandwidth-scaled 4090) with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of one GPU chip used by the occupancy and cost models.

    Attributes mirror the CUDA occupancy-calculator inputs plus the
    bandwidth/throughput figures needed for a roofline latency estimate.
    """

    name: str
    sm_count: int
    #: Maximum resident threads per SM.
    max_threads_per_sm: int
    #: Maximum resident thread blocks per SM.
    max_blocks_per_sm: int
    #: Register file size per SM, in 32-bit registers.
    regs_per_sm: int
    #: Maximum registers addressable by a single thread.
    max_regs_per_thread: int
    #: Register allocation granularity (registers are allocated to warps
    #: in chunks of this many registers per warp).
    reg_alloc_unit: int
    #: Shared memory available per SM, bytes (configurable carve-out).
    smem_per_sm: int
    #: Maximum shared memory a single block may request, bytes.
    smem_per_block_max: int
    #: Shared-memory allocation granularity, bytes.
    smem_alloc_unit: int
    #: Number of shared-memory banks (32 on every NVIDIA chip modelled).
    smem_banks: int
    #: Width of one bank access, bytes (4 on every NVIDIA chip modelled).
    smem_bank_bytes: int
    warp_size: int
    #: Peak FP16 throughput with FP32 accumulate, in TFLOP/s (tensor cores).
    peak_fp16_tflops: float
    #: Peak DRAM bandwidth, GB/s.
    dram_bandwidth_gbps: float
    #: L1/texture cache size per SM, bytes (shared memory carve-out aside).
    l1_bytes: int
    #: L1/L2 cache line and DRAM transaction granularity, bytes.
    cacheline_bytes: int
    #: Boost clock, GHz.
    clock_ghz: float
    #: Aggregate shared-memory bandwidth per SM, bytes per cycle
    #: (banks * bank width).
    smem_bytes_per_cycle: int = 128
    #: Latency of one shfl.sync, cycles.
    shuffle_latency_cycles: int = 25
    #: Latency of a shared-memory load, cycles.
    smem_latency_cycles: int = 29
    #: Latency of a global-memory load (L2 miss), cycles.
    global_latency_cycles: int = 470
    #: DRAM (HBM/GDDR) capacity, bytes (decimal GB, matching the
    #: bandwidth convention).  0 means unknown — callers that size
    #: KV budgets from the spec must check.
    dram_bytes: float = 0.0

    @property
    def max_warps_per_sm(self) -> int:
        """Maximum resident warps per SM."""
        return self.max_threads_per_sm // self.warp_size

    @property
    def peak_flops(self) -> float:
        """Peak FP16 throughput in FLOP/s."""
        return self.peak_fp16_tflops * 1e12

    @property
    def dram_bytes_per_s(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.dram_bandwidth_gbps * 1e9

    @property
    def smem_bytes_per_s(self) -> float:
        """Aggregate shared-memory bandwidth across the chip, bytes/s."""
        return self.smem_bytes_per_cycle * self.sm_count * self.clock_ghz * 1e9

    @property
    def dram_gb(self) -> float:
        """DRAM capacity in decimal GB."""
        return self.dram_bytes / 1e9

    def with_bandwidth(self, gbps: float) -> "GPUSpec":
        """Return a copy of this spec with a different DRAM bandwidth."""
        return replace(self, dram_bandwidth_gbps=gbps)

    def with_dram(self, gb: float) -> "GPUSpec":
        """Return a copy of this spec with a different DRAM capacity."""
        return replace(self, dram_bytes=gb * 1e9)


#: NVIDIA RTX 4090 (Ada, AD102).  128 SMs, 1008 GB/s GDDR6X.
RTX4090 = GPUSpec(
    name="RTX 4090",
    sm_count=128,
    max_threads_per_sm=1536,
    max_blocks_per_sm=24,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    reg_alloc_unit=256,
    smem_per_sm=102400,
    smem_per_block_max=101376,
    smem_alloc_unit=128,
    smem_banks=32,
    smem_bank_bytes=4,
    warp_size=32,
    peak_fp16_tflops=165.2,
    dram_bandwidth_gbps=1008.0,
    l1_bytes=128 * 1024,
    cacheline_bytes=128,
    clock_ghz=2.52,
    dram_bytes=24e9,
)

#: NVIDIA Tesla A40 (Ampere, GA102).  84 SMs, 696 GB/s — the paper notes
#: this is ~67% of the RTX 4090's bandwidth.
A40 = GPUSpec(
    name="Tesla A40",
    sm_count=84,
    max_threads_per_sm=1536,
    max_blocks_per_sm=16,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    reg_alloc_unit=256,
    smem_per_sm=102400,
    smem_per_block_max=101376,
    smem_alloc_unit=128,
    smem_banks=32,
    smem_bank_bytes=4,
    warp_size=32,
    peak_fp16_tflops=74.8,
    dram_bandwidth_gbps=696.0,
    l1_bytes=128 * 1024,
    cacheline_bytes=128,
    clock_ghz=1.74,
    dram_bytes=48e9,
)

#: NVIDIA A100-SXM4-80GB (Ampere, GA100).  Included for sensitivity studies.
A100 = GPUSpec(
    name="A100-80GB",
    sm_count=108,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    reg_alloc_unit=256,
    smem_per_sm=167936,
    smem_per_block_max=166912,
    smem_alloc_unit=128,
    smem_banks=32,
    smem_bank_bytes=4,
    warp_size=32,
    peak_fp16_tflops=312.0,
    dram_bandwidth_gbps=2039.0,
    l1_bytes=192 * 1024,
    cacheline_bytes=128,
    clock_ghz=1.41,
    dram_bytes=80e9,
)

#: All presets by canonical lowercase key.
PRESETS = {
    "rtx4090": RTX4090,
    "a40": A40,
    "a100": A100,
}


def get_spec(name: str) -> GPUSpec:
    """Look up a GPU preset by name (case-insensitive, spaces ignored)."""
    key = name.lower().replace(" ", "").replace("-", "").replace("_", "")
    for canonical, spec in PRESETS.items():
        if canonical.replace("-", "") == key:
            return spec
    raise KeyError(f"unknown GPU preset: {name!r}; known: {sorted(PRESETS)}")
