"""Memory-hierarchy traffic accounting helpers.

Two effects from the paper's motivation study live here:

1. The hardware L1 cache fails to capture codebook locality for the
   global-codebook (GC) kernel — the paper measures a 12.45% hit rate —
   because entries are smaller than and misaligned with the 128-byte
   line/prefetch granularity.  :func:`l1_hit_rate` models that.
2. Strided or scattered global accesses fetch whole cache lines, so the
   DRAM traffic of an access pattern is ``transactions * line_bytes``,
   not ``elements * element_bytes``.  :func:`line_transactions` counts
   transactions for the access patterns kernels use.
"""

from __future__ import annotations

import math


def line_transactions(
    num_elements: int,
    element_bytes: int,
    line_bytes: int = 128,
    contiguous: bool = True,
) -> int:
    """Number of cache-line transactions to move ``num_elements``.

    Contiguous (coalesced) access packs elements densely into lines;
    scattered access pays one transaction per element.
    """
    if num_elements < 0 or element_bytes <= 0 or line_bytes <= 0:
        raise ValueError("sizes must be positive (num_elements >= 0)")
    if num_elements == 0:
        return 0
    if contiguous:
        return math.ceil(num_elements * element_bytes / line_bytes)
    return num_elements


def l1_hit_rate(
    working_set_bytes: int,
    l1_bytes: int,
    entry_bytes: int,
    line_bytes: int = 128,
    skew: float = 0.5,
) -> float:
    """Model the L1 hit rate of hardware-cached random codebook lookups.

    The GC kernel relies on the L1 to keep codebook entries on chip.  Two
    factors defeat it, per the paper's analysis:

    - *line under-utilization*: each miss fetches ``line_bytes`` but only
      ``entry_bytes`` are useful, so the effective capacity is scaled by
      ``entry_bytes / line_bytes``;
    - *random access*: lookups have no spatial order, so residency is
      proportional to how much of the (inflated) working set fits.

    ``skew`` in [0, 1) credits temporal locality from a skewed access
    distribution: with skew ``s``, a fraction ``s`` of accesses fall in a
    fraction ``(1 - s)`` of the working set (a two-piece Zipf surrogate).

    Returns a hit rate in [0, 1].
    """
    if not 0 <= skew < 1:
        raise ValueError("skew must be in [0, 1)")
    if working_set_bytes <= 0:
        return 1.0
    if l1_bytes <= 0:
        return 0.0
    utilization = min(1.0, entry_bytes / line_bytes)
    effective_capacity = l1_bytes * utilization
    # A fraction ``skew`` of accesses concentrates on a fraction
    # ``1 - skew`` of the set (the hot region); the rest of the
    # accesses spread over the whole set.
    hot_bytes = max(working_set_bytes * (1.0 - skew), 1.0)
    hot_covered = min(1.0, effective_capacity / hot_bytes)
    uniform_covered = min(1.0, effective_capacity / working_set_bytes)
    return skew * hot_covered + (1.0 - skew) * uniform_covered


def duplicated_codebook_bytes(
    codebook_bytes: int,
    loading_blocks: int,
) -> float:
    """Global traffic for ``loading_blocks`` blocks each loading one copy.

    The naive dataflow (Fig. 5) makes every thread block that touches a
    codebook's channels stage its own copy into shared memory; the
    codebook-centric dataflow (Fig. 11) reduces ``loading_blocks`` to 1
    per codebook (times the split factor).
    """
    if codebook_bytes < 0 or loading_blocks < 0:
        raise ValueError("sizes must be non-negative")
    return float(codebook_bytes) * float(loading_blocks)
