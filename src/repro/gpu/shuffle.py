"""Functional model of intra-warp data exchange (``shfl.sync``).

Register-level fusion (Sec. VI-B) rearranges dequantized values between
the registers of a warp's threads using ``__shfl_xor_sync``, bypassing
shared memory.  This module models the instruction's semantics exactly so
the fusion algorithm's thread mapping (Alg. 1) can be verified: after the
modelled shuffles, each lane must hold precisely the values the compute
instruction (``mma``) expects.
"""

from __future__ import annotations

import numpy as np


def shfl_xor(values: np.ndarray, offset: int, width: int = 32) -> np.ndarray:
    """Model of ``__shfl_xor_sync`` over a warp.

    Parameters
    ----------
    values:
        Array whose first axis is the lane id (length ``width``); each
        lane contributes its value and receives the value held by lane
        ``lane ^ offset``.
    offset:
        XOR butterfly offset; must satisfy ``0 <= offset < width``.
    width:
        Logical warp width (a power of two, at most 32).

    Returns
    -------
    numpy.ndarray
        Array of the same shape where ``out[lane] = values[lane ^ offset]``.
    """
    if width <= 0 or width > 32 or width & (width - 1):
        raise ValueError(f"width must be a power of two in (0, 32], got {width}")
    values = np.asarray(values)
    if values.shape[0] != width:
        raise ValueError(
            f"first axis must equal warp width {width}, got {values.shape[0]}"
        )
    if not 0 <= offset < width:
        raise ValueError(f"offset must be in [0, {width}), got {offset}")
    lanes = np.arange(width)
    return values[lanes ^ offset]


def shuffle_exchange(
    reg_file: np.ndarray, offsets: list, selector=None
) -> np.ndarray:
    """Apply a sequence of selective xor-shuffle exchanges.

    Models the loop of Alg. 1 lines 13-14: for each ``offset``, every lane
    swaps the register slot ``lane ^ offset`` (mod the register count) with
    its butterfly partner.  This is the in-place exchange pattern the
    paper uses: ``reg[tid^off] = shfl_xor(reg[tid^off], off)``.

    Parameters
    ----------
    reg_file:
        Array of shape ``(width, n_regs, ...)``; ``reg_file[lane, slot]``
        is the value in register ``slot`` of ``lane``.
    offsets:
        Sequence of xor offsets to apply, in order.
    selector:
        Optional callable ``(lane, offset, n_regs) -> slot`` choosing
        which register slot each lane exchanges at the given offset.  The
        default is the paper's ``slot = lane ^ offset (mod n_regs)`` rule.

    Returns
    -------
    numpy.ndarray
        New register file after all exchanges.
    """
    reg_file = np.array(reg_file, copy=True)
    width, n_regs = reg_file.shape[0], reg_file.shape[1]
    if selector is None:
        def selector(lane, offset, n):  # noqa: ANN001 - local default
            return (lane ^ offset) % n
    lanes = np.arange(width)
    for offset in offsets:
        slots = np.array([selector(int(l), int(offset), n_regs)
                          for l in lanes])
        contributed = reg_file[lanes, slots]
        received = contributed[lanes ^ offset]
        reg_file[lanes, slots] = received
    return reg_file
