"""CUDA occupancy calculation.

The paper's codebook-cache heuristic sizes ``n_reg``/``n_shared`` from the
"resource slack" of a kernel (Fig. 10): how many extra registers and bytes
of shared memory a block can consume before the number of concurrently
resident blocks per SM drops.  That requires a faithful occupancy
calculator, which this module provides, following the rules of the CUDA
occupancy calculator (warp limit, register limit with per-warp allocation
granularity, shared-memory limit with allocation granularity, block limit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.spec import GPUSpec


def _ceil_to(value: int, unit: int) -> int:
    """Round ``value`` up to a multiple of ``unit``."""
    if unit <= 0:
        raise ValueError(f"granularity must be positive, got {unit}")
    return ((value + unit - 1) // unit) * unit


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy calculation for one kernel launch shape."""

    blocks_per_sm: int
    warps_per_sm: int
    #: Fraction of the SM's maximum resident warps that are occupied.
    occupancy: float
    #: Which resource capped ``blocks_per_sm``:
    #: ``"warps" | "registers" | "shared" | "blocks" | "none"``.
    limiter: str

    @property
    def active(self) -> bool:
        """Whether at least one block fits on an SM."""
        return self.blocks_per_sm > 0


def occupancy(
    spec: GPUSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
) -> Occupancy:
    """Compute resident blocks/warps per SM for a kernel configuration.

    Parameters
    ----------
    spec:
        Target GPU.
    threads_per_block:
        Threads launched per block; must be a positive multiple of 1
        (warps are derived by rounding up to the warp size).
    regs_per_thread:
        Registers used by each thread (as the compiler would report).
    smem_per_block:
        Static + dynamic shared memory requested per block, bytes.

    Returns
    -------
    Occupancy
        Blocks and warps resident per SM, the occupancy fraction, and the
        limiting resource.
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if regs_per_thread < 0 or smem_per_block < 0:
        raise ValueError("resource demands must be non-negative")
    if regs_per_thread > spec.max_regs_per_thread:
        raise ValueError(
            f"regs_per_thread={regs_per_thread} exceeds the architectural "
            f"limit of {spec.max_regs_per_thread}"
        )

    warps_per_block = math.ceil(threads_per_block / spec.warp_size)

    limits = {"blocks": spec.max_blocks_per_sm}
    limits["warps"] = spec.max_warps_per_sm // warps_per_block

    if regs_per_thread > 0:
        regs_per_warp = _ceil_to(
            regs_per_thread * spec.warp_size, spec.reg_alloc_unit
        )
        warp_limit_by_regs = spec.regs_per_sm // regs_per_warp
        limits["registers"] = warp_limit_by_regs // warps_per_block
    else:
        limits["registers"] = spec.max_blocks_per_sm

    if smem_per_block > 0:
        if smem_per_block > spec.smem_per_block_max:
            limits["shared"] = 0
        else:
            smem_alloc = _ceil_to(smem_per_block, spec.smem_alloc_unit)
            limits["shared"] = spec.smem_per_sm // smem_alloc
    else:
        limits["shared"] = spec.max_blocks_per_sm

    blocks = min(limits.values())
    # Report the tightest constraint; ties go to the conventional
    # reporting order of the CUDA occupancy calculator.  Resources the
    # kernel does not use cannot be the limiter.
    candidates = ["blocks", "warps"]
    if regs_per_thread > 0:
        candidates.insert(0, "registers")
    if smem_per_block > 0:
        candidates.insert(0, "shared")
    limiter = "none"
    for name in candidates:
        if limits[name] == blocks:
            limiter = name
            break

    warps = blocks * warps_per_block
    frac = warps / spec.max_warps_per_sm
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=frac,
        limiter=limiter,
    )


def occupancy_curve_smem(
    spec: GPUSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_values: list,
) -> list:
    """Occupancy as a function of shared-memory demand (Fig. 10 x-axis).

    Returns a list of ``(smem_per_block, occupancy_fraction)`` tuples.
    """
    return [
        (s, occupancy(spec, threads_per_block, regs_per_thread, s).occupancy)
        for s in smem_values
    ]


def occupancy_curve_regs(
    spec: GPUSpec,
    threads_per_block: int,
    smem_per_block: int,
    reg_values: list,
) -> list:
    """Occupancy as a function of register demand (Fig. 10 x-axis)."""
    return [
        (r, occupancy(spec, threads_per_block, r, smem_per_block).occupancy)
        for r in reg_values
    ]
