"""Performance counters.

Fig. 4 of the paper diagnoses the naive VQ kernels with five profiler
counters: SM utilization, shared-memory usage, shared-memory bank
conflicts, global→shared traffic and shared→register traffic.  Every
kernel model in this repository fills in a :class:`PerfCounters` record
with exactly those quantities (plus the compute-side work), and the cost
model in :mod:`repro.gpu.costmodel` converts the record into a latency.

Keeping the counters explicit means each optimization's claimed effect
("O3 removes duplicated global traffic", "O4 removes the shared-memory
round trip") is assertable in tests rather than buried in a latency
number.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class PerfCounters:
    """Counters produced by one (modelled) kernel launch."""

    #: Bytes moved from DRAM through L2 into the chip (loads + stores).
    dram_bytes: float = 0.0
    #: Subset of :attr:`dram_bytes` that is codebook loads, for traffic
    #: attribution in the breakdown experiments.
    codebook_dram_bytes: float = 0.0
    #: Bytes staged from global memory into shared memory.
    global_to_shared_bytes: float = 0.0
    #: Bytes read from shared memory into registers.
    shared_to_reg_bytes: float = 0.0
    #: Bytes written from registers back to shared memory (layout
    #: round-trips; ideally zero for a well-fused kernel).
    reg_to_shared_bytes: float = 0.0
    #: Shared-memory transactions actually issued, including replays.
    shared_transactions: float = 0.0
    #: Excess transactions caused by bank conflicts (replays only).
    bank_conflict_transactions: float = 0.0
    #: Number of warp shuffle instructions executed.
    shuffle_ops: float = 0.0
    #: Warp-serial stall cycles from dependent scattered loads (global
    #: codebook lookups) summed over all lookups; the cost model divides
    #: by the latency-hiding capacity of the resident warps.
    stall_cycles: float = 0.0
    #: FP16 FLOPs of the mathematical computation (2*M*N*K for GEMM).
    flops: float = 0.0
    #: Scalar dequantization operations (codebook lookups + accumulate).
    dequant_ops: float = 0.0
    #: Index unpack/decode operations (bit extraction); expensive for
    #: misaligned widths such as AQLM's 12-bit format.
    unpack_ops: float = 0.0
    #: Bytes of partial results exchanged through global memory for a
    #: split-axis global reduction (zero when no split is used).
    reduction_bytes: float = 0.0
    #: Number of kernel launches the operation needs (reductions add one).
    kernel_launches: int = 1
    #: Shared memory requested per block, bytes.
    smem_per_block: int = 0
    #: Registers requested per thread.
    regs_per_thread: int = 0
    #: Threads per block of the launch.
    threads_per_block: int = 0
    #: Total thread blocks launched.
    grid_blocks: int = 0
    #: Achieved occupancy fraction, filled in by the cost model.
    occupancy: float = 0.0
    #: Fraction of SMs with at least one resident block (wave utilization).
    sm_utilization: float = 0.0
    #: Free-form notes from the kernel model (e.g. chosen parameters).
    notes: dict = field(default_factory=dict)

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        """Aggregate counters of two launches (for multi-kernel ops)."""
        if not isinstance(other, PerfCounters):
            return NotImplemented
        merged = PerfCounters()
        for f in fields(PerfCounters):
            if f.name == "notes":
                merged.notes = {**self.notes, **other.notes}
            elif f.name in ("smem_per_block", "regs_per_thread",
                            "threads_per_block"):
                setattr(merged, f.name,
                        max(getattr(self, f.name), getattr(other, f.name)))
            elif f.name in ("occupancy", "sm_utilization"):
                setattr(merged, f.name,
                        min_nonzero(getattr(self, f.name),
                                    getattr(other, f.name)))
            else:
                setattr(merged, f.name,
                        getattr(self, f.name) + getattr(other, f.name))
        return merged

    @property
    def shared_traffic_bytes(self) -> float:
        """Total bytes crossing the shared-memory port."""
        return (self.global_to_shared_bytes + self.shared_to_reg_bytes
                + self.reg_to_shared_bytes)

    @property
    def conflict_rate(self) -> float:
        """Replayed fraction of shared transactions (0 = conflict-free)."""
        if self.shared_transactions <= 0:
            return 0.0
        return self.bank_conflict_transactions / self.shared_transactions

    def as_dict(self) -> dict:
        """Flat dictionary view (notes excluded) for harness tables."""
        out = {}
        for f in fields(PerfCounters):
            if f.name != "notes":
                out[f.name] = getattr(self, f.name)
        return out

    def relative_to(self, baseline: "PerfCounters") -> dict:
        """Counter ratios vs a baseline, as plotted in Fig. 4 (right).

        Ratios where the baseline counter is zero are reported as
        ``float('inf')`` when this counter is non-zero and ``1.0`` when
        both are zero, matching how profilers present such bars.
        """
        ratios = {}
        mine, theirs = self.as_dict(), baseline.as_dict()
        for key, value in mine.items():
            base = theirs[key]
            if base == 0:
                ratios[key] = 1.0 if value == 0 else float("inf")
            else:
                ratios[key] = value / base
        return ratios


def min_nonzero(a: float, b: float) -> float:
    """Minimum of two values ignoring zeros (unset occupancy fields)."""
    values = [v for v in (a, b) if v > 0]
    if not values:
        return 0.0
    return min(values)
