"""Multi-GPU cluster serving over the analytic stack.

The paper's evaluation — and the single-engine simulator in
:mod:`repro.serve` — stops at one GPU.  This package extends the
reproduction to fleet scale, where VQ's compressed KV cache compounds:
fewer bytes per token means more concurrent sequences per replica,
which means *fewer GPUs* meeting the same latency SLO at the same
offered load.

- :mod:`repro.cluster.interconnect` — NVLink/PCIe link presets and
  ring all-reduce / all-gather latency models;
- :mod:`repro.cluster.sharding` — the Megatron-style tensor-parallel
  plan: per-shard GEMM/attention shapes (FLOP-conserving), per-layer
  collective costs, per-GPU KV budgets (KV bytes shard by heads,
  VQ codebooks are replicated per shard);
- :mod:`repro.cluster.costs` — :class:`ShardedStepCostModel`, the
  TP-aware extension of :class:`repro.serve.costs.StepCostModel`;
- :mod:`repro.cluster.fleet` — the multi-replica discrete-event
  simulator: N continuous-batching engines behind a router
  (round-robin / join-shortest-queue / least-KV-pressure), fleet
  reports with SLO goodput, and :func:`~repro.cluster.fleet.size_fleet`
  for the headline "how many GPUs does this SLO cost" question.

See :mod:`repro.bench.cluster` and ``examples/cluster_serving.py`` for
the FP16-vs-CQ fleet-sizing comparison, and ``docs/architecture.md``
for how this layer rides the memoized kernel stack.
"""

from repro.cluster.costs import ShardedStepCostModel
from repro.cluster.fleet import (
    SLO,
    FleetReport,
    FleetSimulator,
    JoinShortestQueuePolicy,
    LeastKVPressurePolicy,
    POLICIES,
    Replica,
    ReplicaStats,
    RoundRobinPolicy,
    RouterPolicy,
    make_policy,
    size_fleet,
)
from repro.cluster.interconnect import (
    IDEAL_LINK,
    LINKS,
    LinkSpec,
    NVLINK3,
    NVLINK4,
    PCIE4,
    PCIE5,
    get_link,
    ring_all_gather_us,
    ring_all_reduce_us,
)
from repro.cluster.sharding import TensorParallelPlan

__all__ = [
    "FleetReport",
    "FleetSimulator",
    "IDEAL_LINK",
    "JoinShortestQueuePolicy",
    "LINKS",
    "LeastKVPressurePolicy",
    "LinkSpec",
    "NVLINK3",
    "NVLINK4",
    "PCIE4",
    "PCIE5",
    "POLICIES",
    "Replica",
    "ReplicaStats",
    "RoundRobinPolicy",
    "RouterPolicy",
    "SLO",
    "ShardedStepCostModel",
    "TensorParallelPlan",
    "get_link",
    "make_policy",
    "ring_all_gather_us",
    "ring_all_reduce_us",
    "size_fleet",
]
