"""Tensor-parallel sharding plan for the Llama operator set.

Megatron-style tensor parallelism splits each transformer layer across
``tp_degree`` GPUs so that exactly two all-reduces per layer suffice:

- the QKV and gate/up projections are **column-parallel** (the output
  dimension is sharded; every GPU holds full activations going in and a
  head/channel slice coming out);
- attention runs on each GPU over its own slice of heads, which also
  shards the KV cache by heads;
- the output and down projections are **row-parallel** (the input
  dimension is sharded; partial sums are combined by one ring
  all-reduce over the full hidden activations);
- the LM head is column-parallel over the vocabulary with one ring
  all-gather of the logits.

The plan maps each operator of
:func:`repro.llm.model.decode_operator_shapes` to its per-shard shape —
priced through the same memoized kernel models as the single-GPU path —
plus the per-iteration collective cost from
:mod:`repro.cluster.interconnect`.

Two VQ-specific notes the cluster layer must get right:

- **KV bytes shard, codebooks do not.**  Sharding by heads divides the
  per-token KV footprint by ``tp_degree``, but CQ's per-channel-group
  codebooks are *replicated* on every shard (each GPU must decode its
  own slice, and group boundaries do not align with shard boundaries in
  general), so the codebook-cache pressure — the resident-overhead term
  of :class:`~repro.serve.scheduler.KVBudget` — stays per-GPU.
- FLOPs are exactly conserved: every sharded GEMM divides one free
  dimension by ``tp_degree`` and attention divides heads, so per-shard
  work times ``tp_degree`` equals the unsharded work (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.llm.config import LlamaConfig
from repro.serve.scheduler import KVBudget, kv_bytes_per_token, kv_codebook_bytes
from repro.vq.config import VQConfig

from repro.cluster.interconnect import (
    LinkSpec,
    NVLINK4,
    ring_all_gather_us,
    ring_all_reduce_us,
)

#: Decode-ledger GEMV/GEMM operators whose *output* dimension shards.
COLUMN_PARALLEL = frozenset({"qkv_proj", "gate_up_proj", "lm_head"})

#: Operators whose *input* dimension shards (followed by an all-reduce).
ROW_PARALLEL = frozenset({"o_proj", "down_proj"})

#: FP16 activation bytes per element.
_FP16 = 2


@dataclass(frozen=True)
class TensorParallelPlan:
    """How one model shards across a tensor-parallel group.

    ``tp_degree == 1`` degenerates to the single-GPU plan: shapes pass
    through unchanged and every collective costs zero.
    """

    config: LlamaConfig
    tp_degree: int
    link: LinkSpec = NVLINK4

    def __post_init__(self):
        cfg, tp = self.config, self.tp_degree
        if tp < 1:
            raise ValueError("tp_degree must be >= 1")
        for dim, label in ((cfg.n_heads, "n_heads"),
                           (cfg.intermediate, "intermediate"),
                           (cfg.vocab, "vocab")):
            if dim % tp:
                raise ValueError(
                    f"tp_degree={tp} does not divide {cfg.name} "
                    f"{label}={dim}")

    # -- shape sharding ------------------------------------------------
    def shard_gemm(self, name: str, shape: GemmShape) -> GemmShape:
        """Per-shard shape of one named projection GEMM/GEMV."""
        tp = self.tp_degree
        if tp == 1:
            return shape
        if name in COLUMN_PARALLEL:
            return replace(shape, n=shape.n // tp)
        if name in ROW_PARALLEL:
            return replace(shape, k=shape.k // tp)
        raise ValueError(f"unknown projection {name!r}; expected one of "
                         f"{sorted(COLUMN_PARALLEL | ROW_PARALLEL)}")

    def shard_attention(self, shape: AttentionShape) -> AttentionShape:
        """Per-shard attention: each GPU owns ``heads / tp_degree``."""
        if self.tp_degree == 1:
            return shape
        return replace(shape, heads=shape.heads // self.tp_degree)

    # -- collective costs ----------------------------------------------
    def allreduce_us(self, nbytes: float) -> float:
        """One ring all-reduce across the TP group."""
        return ring_all_reduce_us(nbytes, self.tp_degree, self.link)

    def allgather_us(self, nbytes: float) -> float:
        """One ring all-gather across the TP group."""
        return ring_all_gather_us(nbytes, self.tp_degree, self.link)

    def layer_collective_us(self, tokens: int) -> float:
        """Per-layer communication for ``tokens`` activation rows.

        Two all-reduces (post-attention, post-MLP) over the full hidden
        activations — row-parallel outputs are partial sums.
        """
        nbytes = tokens * self.config.hidden * _FP16
        return 2.0 * self.allreduce_us(nbytes)

    def decode_collective_us(self, batch: int) -> float:
        """All collectives of one decode iteration at ``batch`` tokens.

        Every layer pays :meth:`layer_collective_us`; the column-
        parallel LM head all-gathers the full logits once per step.
        """
        cfg = self.config
        per_layer = self.layer_collective_us(batch)
        logits = self.allgather_us(batch * cfg.vocab * _FP16)
        return cfg.n_layers * per_layer + logits

    def prefill_collective_us(self, new_tokens: int) -> float:
        """All collectives of prefilling a chunk of ``new_tokens``.

        The LM head does not run during prefill (matching
        :meth:`repro.serve.costs.StepCostModel.prefill_us`), so this is
        the per-layer term only — the prompt-completing iteration's
        logits all-gather is :meth:`sample_collective_us`.
        """
        return self.config.n_layers * self.layer_collective_us(new_tokens)

    def sample_collective_us(self, batch: int) -> float:
        """Logits all-gather for sampling ``batch`` first tokens.

        The column-parallel LM head of prompt-completing prefills needs
        the same full-vocab all-gather a decode step pays (matching
        :meth:`repro.serve.costs.StepCostModel.first_token_us`).
        """
        return self.allgather_us(batch * self.config.vocab * _FP16)

    # -- memory accounting ---------------------------------------------
    def weight_bytes_per_gpu(self) -> float:
        """FP16 model weights resident on one shard.

        Projection and MLP weights divide by ``tp_degree``; embeddings
        and norms are small enough that we keep them replicated (an
        upper bound on the real per-shard footprint).
        """
        cfg, tp = self.config, self.tp_degree
        per_layer = (4 * cfg.hidden * cfg.hidden
                     + 3 * cfg.hidden * cfg.intermediate)
        sharded = cfg.n_layers * per_layer + cfg.vocab * cfg.hidden  # lm head
        replicated = cfg.vocab * cfg.hidden + (2 * cfg.n_layers + 1) * cfg.hidden
        return _FP16 * (sharded / tp + replicated)

    def kv_budget(self, capacity_bytes_per_gpu: float,
                  vq: Optional[VQConfig] = None,
                  bits: Optional[int] = None) -> KVBudget:
        """Per-GPU KV budget of one TP replica.

        Head sharding divides the per-token bytes by ``tp_degree``;
        codebooks are replicated per shard, so the VQ overhead term is
        *not* divided.  The budget's ``max_tokens`` is then the number
        of tokens the whole replica can hold, gated by the tightest
        (identical) shard.
        """
        per_token = kv_bytes_per_token(self.config, vq, bits) / self.tp_degree
        overhead = kv_codebook_bytes(self.config, vq) if vq is not None else 0.0
        return KVBudget(capacity_bytes=capacity_bytes_per_gpu,
                        bytes_per_token=per_token,
                        overhead_bytes=overhead)
