"""TP-aware iteration cost model.

:class:`ShardedStepCostModel` extends
:class:`repro.serve.costs.StepCostModel` to price one scheduler
iteration on a tensor-parallel group: it overrides the base model's
sharding hooks so that every GEMM/GEMV/attention shape is first
sharded by a :class:`~repro.cluster.sharding.TensorParallelPlan`,
priced through the same memoized
:meth:`~repro.core.engine.ComputeEngine.batch_latency_us` (all shards
are identical, so one shard's latency is the group's compute time),
and the plan's ring-collective cost is added per iteration.  The
pricing loops themselves — which operators an iteration runs — live
only in the base class.

Element-wise operators (norms, RoPE, activations) are charged
*unsharded*: layer norms run replicated on every GPU in Megatron-style
TP, and the sharded activation passes they bracket are bandwidth-bound
either way — keeping the full charge errs conservative, consistent with
the round-up bucketing of the base model.

With ``tp_degree == 1`` and any link, this model is exactly the base
model (the sharding plan passes shapes through and collectives cost
zero) — tested in ``tests/test_cluster_sharding.py``.
"""

from __future__ import annotations

from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape

from repro.cluster.sharding import TensorParallelPlan
from repro.serve.costs import StepCostModel


class ShardedStepCostModel(StepCostModel):
    """Prices iterations for one (GPU, model, mode, TP plan) tuple.

    Accepts every :class:`~repro.serve.costs.StepCostModel` keyword
    (quantized operands, bucketing grids) plus the sharding ``plan``.
    The engine's GPU spec describes *one* shard — the group is
    ``plan.tp_degree`` of them in lockstep.
    """

    def __init__(self, engine, config, plan: TensorParallelPlan, **kwargs):
        if plan.config is not config and plan.config != config:
            raise ValueError("plan was built for a different model config")
        super().__init__(engine, config, **kwargs)
        self.plan = plan

    # -- sharding hooks ------------------------------------------------
    def _shard_gemm(self, name: str, shape: GemmShape) -> GemmShape:
        return self.plan.shard_gemm(name, shape)

    def _shard_attention(self, shape: AttentionShape) -> AttentionShape:
        return self.plan.shard_attention(shape)

    def _decode_collective_us(self, batch: int) -> float:
        return self.plan.decode_collective_us(batch)

    def _prefill_collective_us(self, tokens: int) -> float:
        return self.plan.prefill_collective_us(tokens)

    def _sample_collective_us(self, batch: int) -> float:
        return self.plan.sample_collective_us(batch)
