"""Multi-replica fleet simulator with pluggable request routing.

A *replica* is one serving engine — a single GPU or a whole
tensor-parallel group — wrapping its own
:class:`~repro.serve.scheduler.ContinuousBatchScheduler` and iteration
cost model behind a private clock.  The :class:`FleetSimulator` drives
``N`` replicas behind a front-end router: requests arrive on one shared
trace, the router inspects replica state *as of the arrival instant*
and picks a target, and each replica then runs its own iteration loop
exactly as the single-engine :class:`~repro.serve.simulator.ServingSimulator`
does.  Replicas never interact except through routing, so the event
loop only has to keep replica clocks consistent with arrival order.
The driver is the shared global event heap
(:class:`~repro.serve.events.EventLoop`): arrivals and per-replica
iteration boundaries pop in simulated-time order, so by the time an
arrival pops every busy replica has already stepped past (or exactly
to) the arrival instant — the state the router inspects is identical
to the old advance-everyone lockstep, but idle replicas are simply not
in the heap and are never polled (an iteration already in flight may
overshoot the arrival — the request then waits for the iteration
boundary, as on a real engine).

Routing policies:

- ``round-robin`` — cycle through replicas regardless of state;
- ``jsq`` — join the shortest queue (waiting + running sequences);
- ``least-kv`` — join the replica with the lowest KV-cache *pressure*
  (reserved plus queued worst-case tokens over budget), which is the
  policy that understands what compression changes: a VQ replica under
  the same byte budget reports a fraction of the FP16 pressure;
- ``prefix-affinity`` — consistent-hash each request's session to a
  replica, so every turn of a chat session lands where its prefix tree
  is already warm.  Load-oblivious routing costs some balance; the
  payoff is the fleet-wide prefix hit rate, which load-based policies
  destroy by scattering a session's turns across replicas.

The fleet-level deliverable is :class:`FleetReport` and its
SLO-conditioned metrics (:meth:`FleetReport.goodput_rps`,
:meth:`FleetReport.meets`), plus :func:`size_fleet` — the smallest
replica count whose fleet meets a TTFT/TPOT SLO at a given offered
load, which is the unit the headline CQ-vs-FP16 comparison is priced
in (GPUs, not microseconds).
"""

from __future__ import annotations

import bisect
import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOMonitor
from repro.obs.timeline import TimelineCollector
from repro.obs.trace import EVT_EVICTED, EVT_REJECTED, NULL_TRACER, Tracer
from repro.serve.api import FleetConfig
from repro.serve.costs import StepCostModel
from repro.serve.events import ARRIVAL, SAMPLE, STEP, EventLoop, EventStats
from repro.serve.requests import Request
from repro.serve.scheduler import ContinuousBatchScheduler
from repro.serve.simulator import (RequestRecord, observe_request_metrics,
                                   percentile)

#: Sentinel distinguishing "kwarg not passed" from any real value.
_UNSET = object()


@dataclass(frozen=True)
class SLO:
    """A per-request service-level objective.

    ``ttft_s`` / ``tpot_s`` are the limits an individual request must
    meet; fleet-level compliance (:meth:`FleetReport.meets`) requires
    the ``quantile``-th percentile of completed requests within the
    limits and no rejections.
    """

    ttft_s: float
    tpot_s: Optional[float] = None
    quantile: float = 95.0

    def __post_init__(self):
        if self.ttft_s <= 0:
            raise ValueError("ttft_s must be positive")
        if self.tpot_s is not None and self.tpot_s <= 0:
            raise ValueError("tpot_s must be positive")
        if not 0 < self.quantile <= 100:
            raise ValueError("quantile must be in (0, 100]")

    def met_by(self, record: RequestRecord) -> bool:
        """Whether one completed request met the objective."""
        if record.ttft_s > self.ttft_s:
            return False
        if self.tpot_s is not None and record.tpot_s > self.tpot_s:
            return False
        return True


class Replica:
    """One serving engine instance with a private simulation clock."""

    def __init__(self, replica_id: int,
                 scheduler: ContinuousBatchScheduler,
                 cost_model: StepCostModel):
        self.replica_id = replica_id
        self.scheduler = scheduler
        self.cost_model = cost_model
        self.now_s = 0.0
        self.iterations = 0
        self.n_submitted = 0
        self.peak_kv = 0.0
        self.finished: list = []
        #: Times a driver activated this replica — one per iteration
        #: under the event heap, but one per *arrival* (plus one per
        #: iteration) under the legacy lockstep :meth:`advance_to`
        #: driver, which polls idle replicas too.  The regression test
        #: for the lockstep inefficiency pins the difference.
        self.n_wakeups = 0
        #: Eviction count already traced, for delta instants.
        self._last_evicted = 0

    @property
    def has_work(self) -> bool:
        return self.scheduler.has_work

    @property
    def queue_depth(self) -> int:
        """Sequences on this replica: queued plus running.

        Preempted sequences awaiting re-admission count as queued —
        each carries re-prefill work, so a paged replica mid-thrash
        must not look idle to the ``jsq`` router.
        """
        s = self.scheduler
        return len(s.waiting) + len(s.preempted) + len(s.running)

    @property
    def kv_pressure(self) -> float:
        """Near-term KV demand over budget, counting the queue.

        Delegates to
        :attr:`~repro.serve.scheduler.ContinuousBatchScheduler.kv_pressure`:
        worst-case reservations-to-be under reserve admission, but
        *observed block usage* plus queued prompts' blocks under paged
        admission — a paged replica that has packed many short-context
        sequences reports the blocks it actually holds, not the
        worst-case footprint it never allocated.
        """
        return self.scheduler.kv_pressure

    def submit(self, request: Request) -> None:
        """Route one request here (arrival may be later than the clock)."""
        self.now_s = max(self.now_s, request.arrival_s)
        self.scheduler.submit(request)
        self.n_submitted += 1

    def step(self) -> list:
        """Run one scheduler iteration and advance the clock.

        Returns the sequences that completed this iteration (also
        appended to :attr:`finished`), so the fleet driver can feed
        per-window telemetry without diffing the list.
        """
        plan = self.scheduler.schedule(self.now_s)
        if plan.empty:  # pragma: no cover - has_work implies a plan
            # Fail loudly: returning would spin advance_to/run forever.
            raise RuntimeError(f"replica {self.replica_id} made no "
                               "progress with work pending")
        self.iterations += 1
        step_us = self.cost_model.step_us(plan)
        t0 = self.now_s
        self.now_s += step_us / 1e6
        self.peak_kv = max(self.peak_kv, self.scheduler.kv_utilization)
        tracer = self.scheduler.tracer
        if tracer.enabled:
            tracer.step(self.replica_id, t0, step_us, plan,
                        self.scheduler.kv_occupancy)
            evicted = getattr(getattr(self.scheduler, "allocator", None),
                              "n_evicted_blocks", 0)
            if evicted > self._last_evicted:
                tracer.event(EVT_EVICTED, t0, self.replica_id, -1,
                             evicted - self._last_evicted)
                self._last_evicted = evicted
        done = self.scheduler.complete(plan, self.now_s)
        self.finished.extend(done)
        return done

    def advance_to(self, t_s: float) -> None:
        """Run iterations until the clock reaches ``t_s`` or work runs out.

        The legacy lockstep driver: :meth:`FleetSimulator.run` no
        longer calls it (the global event heap orders replica
        boundaries against arrivals instead), but it remains the
        reference semantics the heap is equivalence-tested against.
        """
        self.n_wakeups += 1
        while self.has_work and self.now_s < t_s:
            self.step()


# ----------------------------------------------------------------------
# Routing policies
# ----------------------------------------------------------------------
class RouterPolicy:
    """Chooses a replica index for each arriving request.

    ``candidates`` is the non-empty subset of replica indices whose KV
    budget can hold the request at all; the policy must return one of
    them.  Policies may keep state (round-robin does), so build a fresh
    instance per simulation run.
    """

    name = "abstract"

    def choose(self, request: Request, replicas: Sequence[Replica],
               candidates: Sequence[int]) -> int:
        raise NotImplementedError


class RoundRobinPolicy(RouterPolicy):
    """Cycle through replicas, skipping ones that cannot fit the request."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, request, replicas, candidates):
        allowed = set(candidates)
        for _ in range(len(replicas)):
            idx = self._next % len(replicas)
            self._next += 1
            if idx in allowed:
                return idx
        return candidates[0]  # pragma: no cover - candidates is non-empty


class JoinShortestQueuePolicy(RouterPolicy):
    """Join the replica with the fewest queued + running sequences."""

    name = "jsq"

    def choose(self, request, replicas, candidates):
        return min(candidates, key=lambda i: (replicas[i].queue_depth, i))


class LeastKVPressurePolicy(RouterPolicy):
    """Join the replica with the lowest worst-case KV demand fraction."""

    name = "least-kv"

    def choose(self, request, replicas, candidates):
        return min(candidates, key=lambda i: (replicas[i].kv_pressure, i))


class PrefixAffinityPolicy(RouterPolicy):
    """Consistent-hash sessions to replicas to keep prefix trees warm.

    Each replica owns ``vnodes`` points on a hash ring; a request's
    session key (``session_id``, falling back to ``req_id`` for
    sessionless requests) routes to the owner of the first point at or
    after its hash.  Consistent hashing — rather than
    ``hash % n_replicas`` — keeps most sessions in place when the
    candidate set shrinks (a replica whose budget cannot fit the
    request drops out of the ring for that request only, and only its
    sessions move).
    """

    name = "prefix-affinity"

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._ring: List[tuple] = []
        self._ring_size = 0

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha1(key.encode()).digest()[:8], "big")

    def _build_ring(self, n_replicas: int) -> None:
        points = [(self._hash(f"replica-{r}:vnode-{v}"), r)
                  for r in range(n_replicas) for v in range(self.vnodes)]
        self._ring = sorted(points)
        self._ring_size = n_replicas

    def choose(self, request, replicas, candidates):
        if self._ring_size != len(replicas):
            self._build_ring(len(replicas))
        key = (request.session_id if request.session_id is not None
               else request.req_id)
        h = self._hash(f"session-{key}")
        allowed = set(candidates)
        start = bisect.bisect_left(self._ring, (h, -1))
        for off in range(len(self._ring)):
            _, replica = self._ring[(start + off) % len(self._ring)]
            if replica in allowed:
                return replica
        return candidates[0]  # pragma: no cover - candidates non-empty


#: Policy constructors by name (fresh instance per call).
POLICIES = {
    "round-robin": RoundRobinPolicy,
    "jsq": JoinShortestQueuePolicy,
    "least-kv": LeastKVPressurePolicy,
    "prefix-affinity": PrefixAffinityPolicy,
}


def make_policy(policy: Union[str, RouterPolicy]) -> RouterPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, RouterPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise KeyError(f"unknown routing policy {policy!r}; "
                       f"known: {sorted(POLICIES)}") from None


# ----------------------------------------------------------------------
# Fleet report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaStats:
    """Per-replica accounting of one fleet run.

    Replaces the PR-3 positional tuple ``(routed, iterations, peak_kv,
    preemptions)``; iteration/indexing keep the old unpacking sites
    working (``routed, iters, peak, *rest = stats``) while new code
    reads attributes.
    """

    n_requests: int
    n_iterations: int
    peak_kv_utilization: float
    n_preemptions: int = 0

    def __iter__(self):
        yield self.n_requests
        yield self.n_iterations
        yield self.peak_kv_utilization
        yield self.n_preemptions

    def __len__(self) -> int:
        return 4

    def __getitem__(self, idx):
        return (self.n_requests, self.n_iterations,
                self.peak_kv_utilization, self.n_preemptions)[idx]


@dataclass
class FleetReport:
    """Aggregate metrics of one simulated fleet run."""

    name: str
    policy: str
    n_replicas: int
    records: List[RequestRecord]
    #: req_id -> replica index, for every routed request.
    assignments: Dict[int, int]
    makespan_s: float
    #: Per-replica accounting (:class:`ReplicaStats`); legacy raw
    #: tuples are converted with a DeprecationWarning.
    replica_stats: List[ReplicaStats] = field(default_factory=list)
    n_rejected: int = 0
    #: Whether any replica ran with prefix caching enabled.
    prefix_caching: bool = False
    #: Prefix-cache counters summed across replicas.
    prefix_lookups: int = 0
    prefix_lookup_hits: int = 0
    prefix_hit_tokens: int = 0
    prefix_miss_tokens: int = 0
    n_evicted_blocks: int = 0
    #: Event-loop statistics of the run (:class:`~repro.serve.events.
    #: EventStats`), surfaced into :meth:`metrics`.
    event_stats: Optional[EventStats] = None
    #: The run's :class:`~repro.obs.metrics.MetricsRegistry` (flat dict
    #: merged into :meth:`metrics`; Prometheus text available).
    registry: Optional[object] = None
    #: The run's :class:`~repro.obs.trace.Tracer` when the fleet ran
    #: with ``FleetConfig(trace=True)``, else ``None``.
    tracer: Optional[object] = None
    #: The run's per-replica :class:`~repro.obs.timeline.Timeline` when
    #: it ran with ``FleetConfig(timeline=...)``, else ``None``.  Never
    #: merged into :meth:`metrics` (bit-identity contract).
    timeline: Optional[object] = None
    #: Evaluated :class:`~repro.obs.slo.SLOReport` over the fleet-merged
    #: windows when the timeline config carried SLO limits.
    slo: Optional[object] = None

    def __post_init__(self):
        converted, warned = [], False
        for entry in self.replica_stats:
            if isinstance(entry, ReplicaStats):
                converted.append(entry)
                continue
            if not warned:
                warnings.warn(
                    "passing replica_stats as positional tuples is "
                    "deprecated; pass ReplicaStats instances "
                    "(repro.cluster.fleet)", DeprecationWarning,
                    stacklevel=3)
                warned = True
            converted.append(ReplicaStats(*tuple(entry)[:4]))
        self.replica_stats = converted

    @property
    def n_preempted(self) -> int:
        """Recompute preemptions across all replicas (paged admission)."""
        return sum(stats.n_preemptions for stats in self.replica_stats)

    @property
    def prefix_hit_rate(self) -> float:
        """Fleet-wide fraction of admissions hitting the prefix cache."""
        return self.prefix_lookup_hits / max(1, self.prefix_lookups)

    @property
    def cached_token_fraction(self) -> float:
        """Fleet-wide fraction of prompt tokens served from caches."""
        total = self.prefix_hit_tokens + self.prefix_miss_tokens
        return self.prefix_hit_tokens / max(1, total)

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.makespan_s if self.makespan_s else 0.0

    @property
    def output_tokens_per_s(self) -> float:
        total = sum(r.output_tokens for r in self.records)
        return total / self.makespan_s if self.makespan_s else 0.0

    def _quantile(self, values: List[float], q: float) -> float:
        return percentile(values, q) if values else 0.0

    def ttft_s(self, q: float = 50.0) -> float:
        return self._quantile([r.ttft_s for r in self.records], q)

    def tpot_s(self, q: float = 50.0) -> float:
        return self._quantile(
            [r.tpot_s for r in self.records if r.output_tokens > 1], q)

    def latency_s(self, q: float = 50.0) -> float:
        return self._quantile([r.latency_s for r in self.records], q)

    # -- SLO-conditioned metrics ---------------------------------------
    def slo_attainment(self, slo: SLO) -> float:
        """Fraction of *offered* requests that met the SLO.

        Rejected requests count as misses: a fleet that sheds load does
        not get credit for the latency of what it kept.
        """
        offered = self.n_requests + self.n_rejected
        if offered == 0:
            return 0.0
        met = sum(1 for r in self.records if slo.met_by(r))
        return met / offered

    def goodput_rps(self, slo: SLO) -> float:
        """SLO-meeting requests completed per second."""
        if not self.makespan_s:
            return 0.0
        met = sum(1 for r in self.records if slo.met_by(r))
        return met / self.makespan_s

    def meets(self, slo: SLO) -> bool:
        """Percentile-level compliance: the SLO's quantile of completed
        requests is within limits and nothing was rejected."""
        if self.n_rejected or not self.records:
            return False
        if self.ttft_s(slo.quantile) > slo.ttft_s:
            return False
        if slo.tpot_s is not None and self.tpot_s(slo.quantile) > slo.tpot_s:
            return False
        return True

    def metrics(self, slo: Optional[SLO] = None) -> dict:
        """Flat JSON-safe metric dict (plain ``int``/``float`` values).

        The fleet analogue of
        :meth:`repro.serve.simulator.ServingReport.metrics`, with the
        same key names for shared concepts so the orchestrator's
        trajectory deltas compare uniformly.  Passing an :class:`SLO`
        adds the SLO-conditioned metrics (``goodput_rps``,
        ``slo_attainment``).
        """
        out = {
            "n_replicas": self.n_replicas,
            "n_requests": self.n_requests,
            "n_rejected": self.n_rejected,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "output_tokens_per_s": self.output_tokens_per_s,
            "ttft_p50_ms": self.ttft_s(50) * 1e3,
            "ttft_p95_ms": self.ttft_s(95) * 1e3,
            "tpot_p50_ms": self.tpot_s(50) * 1e3,
            "latency_p50_s": self.latency_s(50),
            "latency_p99_s": self.latency_s(99),
            "n_preempted": self.n_preempted,
            "prefix_hit_rate": self.prefix_hit_rate,
            "cached_token_fraction": self.cached_token_fraction,
            "n_evicted_blocks": self.n_evicted_blocks,
        }
        if slo is not None:
            out["goodput_rps"] = self.goodput_rps(slo)
            out["slo_attainment"] = self.slo_attainment(slo)
        if self.event_stats is not None:
            out["n_events"] = self.event_stats.n_events
            out["n_arrivals"] = self.event_stats.n_arrivals
            out["n_step_events"] = self.event_stats.n_step_events
            out["n_idle_polls"] = self.event_stats.n_idle_polls
        if self.registry is not None:
            # Registry metrics never shadow the canonical keys above.
            for key, value in self.registry.to_flat_dict().items():
                out.setdefault(key, value)
        return out

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.name}: {self.n_replicas} replicas ({self.policy}), "
            f"{self.n_requests} requests in {self.makespan_s:.2f} s",
            f"  throughput : {self.throughput_rps:6.2f} req/s, "
            f"{self.output_tokens_per_s:8.1f} output tok/s",
            f"  TTFT       : p50 {self.ttft_s(50) * 1e3:8.1f} ms, "
            f"p95 {self.ttft_s(95) * 1e3:8.1f} ms",
            f"  TPOT       : p50 {self.tpot_s(50) * 1e3:8.2f} ms/token",
            f"  latency    : p50 {self.latency_s(50):6.2f} s, "
            f"p95 {self.latency_s(95):6.2f} s",
        ]
        if self.prefix_caching:
            lines.append(
                f"  prefix     : {self.prefix_hit_rate:.0%} admissions "
                f"hit, {self.cached_token_fraction:.0%} of prompt tokens "
                f"cached, {self.n_evicted_blocks} blocks evicted")
        for rid, stats in enumerate(self.replica_stats):
            line = (f"  replica {rid}  : {stats.n_requests:4d} requests, "
                    f"{stats.n_iterations:6d} iterations, "
                    f"peak KV {stats.peak_kv_utilization:.0%}")
            if stats.n_preemptions:
                line += f", {stats.n_preemptions} preemptions"
            lines.append(line)
        if self.n_rejected:
            lines.append(f"  rejected   : {self.n_rejected} requests "
                         "exceeded every replica's KV budget")
        if self.slo is not None:
            lines.extend("  " + ln for ln in
                         self.slo.summary().splitlines())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet simulator
# ----------------------------------------------------------------------
class FleetSimulator:
    """Routes a trace across replicas and drains them to a report.

    The driver is the shared event heap: per-replica iteration
    boundaries and request arrivals pop in global simulated-time order
    (ties break arrivals-first, matching the old strict
    ``now_s < arrival`` lockstep), so the router always inspects every
    replica advanced to the arrival instant while idle replicas stay
    out of the heap entirely.  ``last_event_stats`` exposes the event
    counters of the most recent :meth:`run`.
    """

    def __init__(self, replicas: Sequence[Replica],
                 policy: Union[str, RouterPolicy] = _UNSET,
                 name: str = _UNSET,
                 config: Optional[FleetConfig] = None):
        if not replicas:
            raise ValueError("need at least one replica")
        legacy = {k: v for k, v in (("policy", policy), ("name", name))
                  if v is not _UNSET}
        if config is not None:
            if legacy:
                raise TypeError(
                    "pass either config= or legacy fleet kwargs, not "
                    f"both (got {sorted(legacy)})")
        else:
            if legacy:
                warnings.warn(
                    "passing fleet options as individual kwargs is "
                    "deprecated; pass config=FleetConfig(...) "
                    "(repro.serve.api)", DeprecationWarning, stacklevel=2)
            config = FleetConfig(**legacy)
        self.config = config
        self.replicas = list(replicas)
        self.policy = make_policy(config.policy)
        self.name = config.name
        self.last_event_stats: Optional[EventStats] = None

    def run(self, trace: Sequence[Request],
            max_iterations: Optional[int] = None) -> FleetReport:
        """Simulate the full trace; returns the fleet-level report.

        ``max_iterations`` (per replica) defaults to the config's cap.
        """
        if max_iterations is None:
            max_iterations = self.config.max_iterations
        pending = sorted(trace, key=lambda r: r.arrival_s)
        if not pending:
            raise ValueError("empty trace")
        replicas = self.replicas
        assignments: Dict[int, int] = {}
        rejected: List[Request] = []
        tracer = Tracer(name=self.name) if self.config.trace else NULL_TRACER
        self.tracer = tracer
        if tracer.enabled:
            for rep in replicas:
                rep.scheduler.tracer = tracer
                rep.scheduler.trace_replica = rep.replica_id

        loop = EventLoop()
        for req in pending:
            loop.push(req.arrival_s, ARRIVAL, req)
        timeline = (TimelineCollector(self.config.timeline,
                                      n_replicas=len(replicas),
                                      name=self.name)
                    if self.config.timeline is not None else None)
        schedulers = tuple(rep.scheduler for rep in replicas)
        arrivals_left = len(pending)
        if timeline is not None:
            loop.push(timeline.next_sample_s, SAMPLE, None)
        #: Whether replica i currently owns a STEP event in the heap
        #: (exactly one while it has work; entries never go stale
        #: because only step() moves a busy replica's clock).
        in_heap = [rep.has_work for rep in replicas]
        for i, rep in enumerate(replicas):
            if in_heap[i]:
                loop.push(rep.now_s, STEP, i)

        while not loop.empty:
            t_s, kind, payload = loop.pop()
            if kind == SAMPLE:
                # Telemetry boundary: read every replica's state, keep
                # sampling while the run can still produce events (the
                # heap would otherwise never drain).
                timeline.sample(t_s, schedulers)
                if arrivals_left or any(in_heap):
                    loop.push(timeline.next_sample_s, SAMPLE, None)
                continue
            if kind == STEP:
                idx = payload
                rep = replicas[idx]
                rep.n_wakeups += 1
                if rep.iterations >= max_iterations:
                    raise RuntimeError(
                        f"replica {rep.replica_id} exceeded "
                        f"{max_iterations} iterations; the offered load "
                        "likely diverges")
                done = rep.step()
                if timeline is not None and done:
                    timeline.on_complete(idx, done, rep.now_s)
                if rep.has_work:
                    loop.push(rep.now_s, STEP, idx)
                else:
                    in_heap[idx] = False
                continue
            req = payload
            arrivals_left -= 1
            candidates = [i for i, rep in enumerate(replicas)
                          if rep.scheduler.fits(req)]
            if not candidates:
                rejected.append(req)
                if tracer.enabled:
                    # No replica could ever hold it; pin to track 0.
                    tracer.event(EVT_REJECTED, req.arrival_s, 0,
                                 req.req_id)
                if timeline is not None:
                    # Rejections happen at the front end, before
                    # routing; pin to replica 0 like the trace does.
                    timeline.on_reject(0)
                continue
            idx = self.policy.choose(req, replicas, candidates)
            if idx not in candidates:
                raise ValueError(
                    f"policy {self.policy.name!r} chose replica {idx}, "
                    f"not one of the feasible {candidates}")
            replicas[idx].submit(req)
            assignments[req.req_id] = idx
            if timeline is not None:
                timeline.on_arrival(idx)
            if not in_heap[idx]:
                loop.push(replicas[idx].now_s, STEP, idx)
                in_heap[idx] = True
        self.last_event_stats = loop.stats

        for rep in replicas:
            alloc = getattr(rep.scheduler, "allocator", None)
            if alloc is not None and alloc.sanitize:
                # Per-replica full-heap audit at drain (reads state
                # only; raises SanitizeError on a broken invariant).
                alloc.audit_drained()

        records = [
            RequestRecord(
                req_id=s.request.req_id,
                arrival_s=s.request.arrival_s,
                first_token_s=s.first_token_s,
                finished_s=s.finished_s,
                prompt_tokens=s.request.prompt_tokens,
                output_tokens=s.request.output_tokens,
                queued_s=s.admitted_s - s.request.arrival_s,
            )
            for rep in replicas for s in rep.finished
        ]
        records.sort(key=lambda r: r.req_id)
        if tracer.enabled:
            for rep in replicas:
                tracer.record_sequences(rep.replica_id, rep.finished)
        registry = MetricsRegistry()
        for rep in replicas:
            emit = getattr(rep.scheduler, "emit_metrics", None)
            if emit is not None:
                emit(registry, replica=str(rep.replica_id))
        loop.stats.emit_metrics(registry)
        observe_request_metrics(registry, records,
                                n_rejected=len(rejected))
        prefix = [
            stats for rep in replicas
            if getattr(rep.scheduler, "prefix_caching", False)
            and (stats := rep.scheduler.prefix_stats()) is not None
        ]
        makespan_s = max(rep.now_s for rep in replicas)
        timeline_obj = slo_report = None
        if timeline is not None:
            timeline_obj = timeline.finalize(makespan_s, schedulers)
            if self.config.timeline.tracks_slo:
                slo_report = SLOMonitor(
                    target=self.config.timeline.slo_target,
                ).evaluate(timeline_obj)
        return FleetReport(
            name=self.name,
            policy=self.policy.name,
            n_replicas=len(replicas),
            records=records,
            assignments=assignments,
            makespan_s=makespan_s,
            replica_stats=[ReplicaStats(rep.n_submitted, rep.iterations,
                                        rep.peak_kv,
                                        rep.scheduler.n_preemptions)
                           for rep in replicas],
            n_rejected=len(rejected),
            prefix_caching=bool(prefix),
            prefix_lookups=sum(p.n_lookups for p in prefix),
            prefix_lookup_hits=sum(p.n_lookup_hits for p in prefix),
            prefix_hit_tokens=sum(p.hit_tokens for p in prefix),
            prefix_miss_tokens=sum(p.miss_tokens for p in prefix),
            n_evicted_blocks=sum(p.n_evicted_blocks for p in prefix),
            event_stats=loop.stats,
            registry=registry,
            tracer=tracer if tracer.enabled else None,
            timeline=timeline_obj,
            slo=slo_report,
        )


def size_fleet(
    make_replicas: Callable[[int], Sequence[Replica]],
    trace: Sequence[Request],
    slo: SLO,
    policy: Union[str, RouterPolicy] = "jsq",
    max_replicas: int = 8,
    record_trace: bool = False,
    timeline=None,
) -> tuple:
    """Smallest fleet meeting an SLO at the trace's offered load.

    ``make_replicas(n)`` must return ``n`` *fresh* replicas (schedulers
    hold state across runs).  Returns ``(n, report)`` for the first
    compliant size, or ``(None, report)`` with the largest fleet's
    report if even ``max_replicas`` misses the SLO.  String policies
    are re-instantiated per size so stateful routers start clean.
    ``record_trace=True`` records a :mod:`repro.obs` timeline per tried
    size (each report carries its own tracer); ``timeline=`` passes a
    :class:`~repro.obs.timeline.TimelineConfig` through to each run.
    """
    if max_replicas < 1:
        raise ValueError("max_replicas must be >= 1")
    report = None
    for n in range(1, max_replicas + 1):
        sim = FleetSimulator(
            make_replicas(n),
            config=FleetConfig(policy=make_policy(policy)
                               if isinstance(policy, str) else policy,
                               name=f"fleet-{n}", trace=record_trace,
                               timeline=timeline))
        report = sim.run(trace)
        if report.meets(slo):
            return n, report
    return None, report
