"""Interconnect link specs and ring-collective latency models.

Tensor parallelism turns every transformer layer into compute *plus*
communication: Megatron-style sharding inserts two all-reduces per layer
(after the attention output projection and after the MLP down
projection) and one all-gather for the sharded LM head.  At decode
batch sizes these messages are small, so the *per-hop latency* term —
not bandwidth — dominates on PCIe-class links, which is why tensor
parallelism across PCIe is rarely worth it.  That trade-off is exactly
what the SG2042-style hardware characterisation literature measures:
system behaviour is set by the interconnect as much as by the cores.

The model is the standard ring-collective cost used by NCCL tuning
guides: a ring all-reduce over ``p`` ranks moves each byte around the
ring twice (reduce-scatter + all-gather), ``2 (p-1)/p * n`` bytes per
rank, in ``2 (p-1)`` latency-bearing steps; an all-gather is the second
half alone.  Bandwidth figures are per-direction per-GPU ring
bandwidths (the number NCCL calls "busbw" at saturation).

Like every latency in this reproduction, the absolute microseconds are
calibrated model outputs; the *relative* orderings (NVLink vs PCIe,
degree scaling, message-size scaling) are what the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One GPU-to-GPU interconnect generation.

    ``bandwidth_gbps`` is the per-direction, per-GPU ring bandwidth in
    GB/s (achievable, not headline aggregate); ``latency_us`` is the
    per-hop cost of one ring step: kernel launch, synchronisation and
    wire latency for the first byte.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float

    def __post_init__(self):
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be >= 0")

    @property
    def bytes_per_s(self) -> float:
        """Per-direction link bandwidth in bytes/s."""
        return self.bandwidth_gbps * 1e9


#: NVLink 4 (Hopper NVSwitch): ~450 GB/s per GPU achievable ring busbw.
NVLINK4 = LinkSpec(name="NVLink 4", bandwidth_gbps=450.0, latency_us=2.0)

#: NVLink 3 (Ampere, A100 SXM HGX boards): ~235 GB/s achievable.
NVLINK3 = LinkSpec(name="NVLink 3", bandwidth_gbps=235.0, latency_us=2.0)

#: PCIe 4.0 x16 (RTX 4090 / A40 servers without NVLink bridges):
#: ~25 GB/s achievable per direction, and a noticeably higher hop
#: latency because every step crosses the host root complex.
PCIE4 = LinkSpec(name="PCIe 4.0 x16", bandwidth_gbps=25.0, latency_us=6.0)

#: PCIe 5.0 x16: doubled lanes' signalling rate, same topology penalty.
PCIE5 = LinkSpec(name="PCIe 5.0 x16", bandwidth_gbps=50.0, latency_us=6.0)

#: An idealised free interconnect (zero latency, near-infinite
#: bandwidth): isolates pure sharding effects in tests and sweeps.
IDEAL_LINK = LinkSpec(name="ideal", bandwidth_gbps=1e9, latency_us=0.0)

#: All presets by canonical lowercase key.
LINKS = {
    "nvlink4": NVLINK4,
    "nvlink3": NVLINK3,
    "pcie4": PCIE4,
    "pcie5": PCIE5,
    "ideal": IDEAL_LINK,
}


def get_link(name: str) -> LinkSpec:
    """Look up a link preset by name (case-insensitive, punctuation ignored)."""
    key = (name.lower().replace(" ", "").replace("-", "")
           .replace("_", "").replace(".", ""))
    for canonical, link in LINKS.items():
        if canonical == key:
            return link
    raise KeyError(f"unknown link preset: {name!r}; known: {sorted(LINKS)}")


def _validate(nbytes: float, degree: int) -> None:
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if degree < 1:
        raise ValueError("degree must be >= 1")


def ring_all_reduce_us(nbytes: float, degree: int, link: LinkSpec) -> float:
    """Latency of a ring all-reduce of ``nbytes`` across ``degree`` GPUs.

    Reduce-scatter then all-gather: ``2 (degree-1)`` steps, each moving
    one ``nbytes/degree`` shard per rank and paying one hop latency.
    A single rank (or an empty message) communicates nothing.
    """
    _validate(nbytes, degree)
    if degree == 1 or nbytes == 0:
        return 0.0
    steps = 2 * (degree - 1)
    shard_us = (nbytes / degree) / link.bytes_per_s * 1e6
    return steps * (shard_us + link.latency_us)


def ring_all_gather_us(nbytes: float, degree: int, link: LinkSpec) -> float:
    """Latency of a ring all-gather producing ``nbytes`` on every GPU.

    Each rank starts with an ``nbytes/degree`` shard; ``degree - 1``
    steps circulate the shards until everyone holds the full buffer.
    """
    _validate(nbytes, degree)
    if degree == 1 or nbytes == 0:
        return 0.0
    steps = degree - 1
    shard_us = (nbytes / degree) / link.bytes_per_s * 1e6
    return steps * (shard_us + link.latency_us)
