"""repro — reproduction of VQ-LLM (HPCA 2025).

VQ-LLM is a code-generation framework for fused vector-quantization
(VQ) dequantization + computation kernels in LLM inference.  This
package reproduces it on an analytic GPU model:

- :mod:`repro.gpu` — GPU hardware model (occupancy, banks, traffic,
  roofline latency) for the paper's RTX 4090 / Tesla A40;
- :mod:`repro.vq` — the VQ algorithm substrate (k-means codebooks,
  residual quantization, the Tbl. II algorithm presets, element-wise
  quantization baselines);
- :mod:`repro.llm` — a numpy Llama-architecture transformer with FP16
  and VQ-compressed KV caches;
- :mod:`repro.kernels` — FP16, element-wise-quantized and fused-VQ
  kernel models;
- :mod:`repro.core` — the paper's contribution: codebook cache,
  codebook-centric dataflow and hierarchical fusion, adaptive
  heuristics, and the kernel code generator;
- :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper's evaluation;
- :mod:`repro.serve` — a continuous-batching serving simulator that
  drives the analytic stack at the request level (arrivals, KV-cache
  admission control, throughput/TTFT/TPOT/latency percentiles);
- :mod:`repro.cluster` — the multi-GPU layer: interconnect collective
  models, Megatron-style tensor-parallel sharding, and a multi-replica
  fleet simulator with routing policies and SLO-based fleet sizing;
- :mod:`repro.obs` — observability for the serving stack: a
  zero-cost-when-disabled tracer, a Prometheus-style metrics registry,
  and Chrome/Perfetto timeline export with a markdown report CLI.

See ``README.md`` for a guided tour and ``docs/architecture.md`` for
the data-flow picture.

Quickstart::

    import numpy as np
    from repro import RTX4090, VQLLMCodeGenerator, make_quantizer
    from repro.kernels import GemmShape

    weight = np.random.default_rng(0).standard_normal((512, 1024))
    qt = make_quantizer("gptvq-2").quantize(weight)
    gen = VQLLMCodeGenerator(RTX4090)
    kernel = gen.generate_gemv(GemmShape(m=1, n=4096, k=4096), qt)
    print(kernel.latency_us(), "us")
    print(kernel.source)
"""

from repro.core.codegen import GeneratedKernel, VQLLMCodeGenerator
from repro.core.engine import ComputeEngine, LevelSweep
from repro.gpu.spec import A40, A100, RTX4090, GPUSpec, get_spec
from repro.vq.algorithms import ALGORITHMS, make_config, make_quantizer
from repro.vq.config import VQConfig
from repro.vq.quantizer import QuantizedTensor, VectorQuantizer

__version__ = "1.0.0"

__all__ = [
    "A40",
    "A100",
    "ALGORITHMS",
    "ComputeEngine",
    "GPUSpec",
    "GeneratedKernel",
    "LevelSweep",
    "QuantizedTensor",
    "RTX4090",
    "VQConfig",
    "VQLLMCodeGenerator",
    "VectorQuantizer",
    "__version__",
    "get_spec",
    "make_config",
    "make_quantizer",
]
