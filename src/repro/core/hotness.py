"""Codebook-entry access-frequency profiling (offline phase).

The codebook cache rests on the observation (Fig. 8) that entry access
frequency is highly skewed: over half the entries are accessed less than
the mean, while a handful exceed mu + 3 sigma.  Frequencies follow
directly from the quantized data — the k-means cluster sizes — so the
profile is computed from the tensor's effective lookup-index stream, the
same stream the dequantization kernel will issue.

Fig. 9's observation (the same entries are hot across different tensor
parts / thread blocks) is exposed by :meth:`HotnessProfile.per_block_counts`
and quantified by :meth:`HotnessProfile.block_consistency`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vq.quantizer import QuantizedTensor


@dataclass
class HotnessProfile:
    """Access-frequency statistics of one quantized tensor's codebooks."""

    #: Access count per effective lookup index (original numbering).
    counts: np.ndarray
    #: Permutation sorting entries by descending frequency:
    #: ``order[new_index] = old_index``.
    order: np.ndarray

    @property
    def n_entries(self) -> int:
        return self.counts.size

    @property
    def total_accesses(self) -> int:
        return int(self.counts.sum())

    @property
    def sorted_counts(self) -> np.ndarray:
        """Counts in descending order (the codebook-cache numbering)."""
        return self.counts[self.order]

    def coverage(self, top_n: int) -> float:
        """Fraction of all accesses served by the ``top_n`` hottest entries."""
        if top_n <= 0:
            return 0.0
        top_n = min(top_n, self.n_entries)
        total = self.total_accesses
        if total == 0:
            return 0.0
        return float(self.sorted_counts[:top_n].sum()) / total

    def hot_entries(self, n_sigma: float = 3.0) -> int:
        """Entries above mean + ``n_sigma`` * std (the paper's mu+3sigma)."""
        mu = self.counts.mean()
        sigma = self.counts.std()
        return int(np.sum(self.counts > mu + n_sigma * sigma))

    def below_mean_fraction(self) -> float:
        """Fraction of entries accessed less than the mean (Fig. 8 text)."""
        return float(np.mean(self.counts < self.counts.mean()))


def profile_hotness(qt: QuantizedTensor) -> HotnessProfile:
    """Profile entry access frequency over a whole quantized tensor.

    Counts are aggregated across all scope groups and residual levels —
    the paper's "tensor level" reordering choice, justified by Fig. 9.
    """
    indices = qt.lookup_indices().ravel()
    counts = np.bincount(indices, minlength=qt.config.lookup_entries)
    order = np.argsort(-counts, kind="stable")
    return HotnessProfile(counts=counts, order=order)


def per_block_counts(
    qt: QuantizedTensor, rows_per_block: int
) -> np.ndarray:
    """Per-thread-block access counts (Fig. 9's heatmap rows).

    Splits the tensor's rows into blocks of ``rows_per_block`` (the way a
    GeMM/attention grid would) and counts lookups per entry per block.

    Returns an array of shape (n_blocks, lookup_entries).
    """
    if rows_per_block <= 0:
        raise ValueError("rows_per_block must be positive")
    indices = qt.lookup_indices()
    n_entries = qt.config.lookup_entries
    n_blocks = (qt.rows + rows_per_block - 1) // rows_per_block
    out = np.zeros((n_blocks, n_entries), dtype=np.int64)
    for b in range(n_blocks):
        block = indices[b * rows_per_block:(b + 1) * rows_per_block]
        out[b] = np.bincount(block.ravel(), minlength=n_entries)
    return out


def block_consistency(block_counts: np.ndarray, top_n: int = 32) -> float:
    """How consistently the same entries are hot across blocks.

    For each block, take its ``top_n`` hottest entries; return the mean
    Jaccard similarity between each block's hot set and the global hot
    set.  Values near 1 support the paper's tensor-level reordering
    (Fig. 9's vertical white lines).
    """
    if block_counts.ndim != 2:
        raise ValueError("block_counts must be (n_blocks, n_entries)")
    top_n = min(top_n, block_counts.shape[1])
    global_top = set(np.argsort(-block_counts.sum(axis=0))[:top_n].tolist())
    sims = []
    for row in block_counts:
        block_top = set(np.argsort(-row)[:top_n].tolist())
        union = len(global_top | block_top)
        if union == 0:
            continue
        sims.append(len(global_top & block_top) / union)
    return float(np.mean(sims)) if sims else 0.0
