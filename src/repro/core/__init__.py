"""VQ-LLM core: the paper's contribution.

- :mod:`repro.core.hotness` — offline profiling of codebook-entry access
  frequency (Fig. 8/9), the foundation of the codebook cache.
- :mod:`repro.core.slack` — resource-slack detection (Fig. 10) used to
  size the cache without hurting occupancy.
- :mod:`repro.core.cache` — the codebook cache abstraction (Sec. V):
  frequency reorder, ``n_reg``/``n_shared`` boundaries, Load / Access /
  Switch APIs.
- :mod:`repro.core.dataflow` — reduce / codebook-switch axes (Tbl. III)
  and the codebook-centric dataflow with its adaptive split factor.
- :mod:`repro.core.fusion` — hierarchical fusion: Alg. 1 thread mapping,
  shuffle counting, and the register-vs-shared fusion decision.
- :mod:`repro.core.heuristics` — all adaptive parameter selection.
- :mod:`repro.core.template` / :mod:`repro.core.codegen` — Alg. 2: the
  kernel template and the generator that assembles a fused kernel plan
  for a (VQ config, computation, GPU) triple.
- :mod:`repro.core.emitter` — CUDA-like source rendering of a plan.
- :mod:`repro.core.engine` — executes generated kernels (numerics +
  modelled counters/latency) and exposes the memoized batch-latency
  API that :mod:`repro.serve` and :mod:`repro.bench` step on.

``docs/architecture.md`` narrates the full
VQConfig -> quantizer -> codegen -> cost model -> engine -> serve flow
and defines the Tbl. IV optimization levels.
"""

from repro.core.cache import CacheBoundaries, CodebookCache
from repro.core.dataflow import (
    AxisSpec,
    DataflowPlan,
    axes_for,
    optimal_split_factor,
    plan_dataflow,
)
from repro.core.fusion import (
    FusionDecision,
    ThreadMapping,
    decide_fusion,
    n_shuffles,
    thread_mapping,
)
from repro.core.heuristics import HeuristicReport, PlanKnobs, choose_knobs
from repro.core.hotness import HotnessProfile, profile_hotness
from repro.core.slack import ResourceSlack, find_slack

# The codegen layer imports repro.kernels (which imports this package's
# analysis submodules); expose it lazily to avoid a circular import.
_LAZY = {
    "GeneratedKernel": "repro.core.codegen",
    "VQLLMCodeGenerator": "repro.core.codegen",
    "ComputeEngine": "repro.core.engine",
    "LevelSweep": "repro.core.engine",
    "emit_cuda": "repro.core.emitter",
    "KernelTemplate": "repro.core.template",
    "build_template": "repro.core.template",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AxisSpec",
    "CacheBoundaries",
    "CodebookCache",
    "DataflowPlan",
    "FusionDecision",
    "GeneratedKernel",
    "HeuristicReport",
    "HotnessProfile",
    "PlanKnobs",
    "ResourceSlack",
    "ThreadMapping",
    "VQLLMCodeGenerator",
    "axes_for",
    "choose_knobs",
    "decide_fusion",
    "find_slack",
    "n_shuffles",
    "optimal_split_factor",
    "plan_dataflow",
    "profile_hotness",
    "thread_mapping",
]
