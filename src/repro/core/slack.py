"""Resource-slack detection (Fig. 10).

GPU occupancy is a step function of per-block resource demand, because
resources are partitioned in fixed allocation units across a discrete
number of resident blocks.  Between steps there is *slack*: extra
registers and shared memory a kernel can claim for free.  The codebook
cache sizes its register- and shared-resident entry counts by dividing
that slack by the entry size (Sec. V-B, "Adaptivity").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.occupancy import occupancy
from repro.gpu.spec import GPUSpec


#: Occupancy below which memory-bound LLM kernels stop hiding latency.
#: The slack search will not let resident blocks fall below this
#: occupancy fraction (or below the baseline occupancy, whichever is
#: lower).  This is the plateau structure of Fig. 10: a kernel sitting
#: above the knee can donate resources down to the knee "for free".
MIN_OCCUPANCY = 0.25


@dataclass(frozen=True)
class ResourceSlack:
    """Free resources available without hurting effective concurrency."""

    #: Extra registers per thread usable for free.
    regs_per_thread: int
    #: Extra shared memory per block usable for free, bytes.
    smem_bytes: int
    #: Resident blocks per SM of the baseline configuration.
    baseline_blocks_per_sm: int
    #: Resident blocks per SM the slack search is allowed to fall to.
    floor_blocks_per_sm: int = 0


def find_slack(
    spec: GPUSpec,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
    min_occupancy: float = MIN_OCCUPANCY,
) -> ResourceSlack:
    """Compute register and shared-memory slack for a kernel shape.

    Slack for each resource is measured with the other held at its
    baseline demand, which is how the cache consumes it (registers for
    hot entries, shared memory for medium entries are sized separately,
    then re-validated jointly by the heuristics).

    The search tolerates occupancy dropping to ``min_occupancy`` (but
    never below one resident block, and never below the baseline if the
    baseline is already under the floor) — memory-bound kernels on the
    flat part of the bandwidth-vs-occupancy curve do not pay for that
    drop, which is exactly the "slack" of Fig. 10.
    """
    base = occupancy(spec, threads_per_block, regs_per_thread, smem_per_block)
    if base.blocks_per_sm == 0:
        # Kernel cannot launch as configured; no slack to speak of.
        return ResourceSlack(0, 0, 0, 0)

    warps_per_block = max(1, threads_per_block // spec.warp_size)
    target = min(min_occupancy, base.occupancy)
    floor_blocks = 1
    for blocks in range(base.blocks_per_sm, 0, -1):
        occ = blocks * warps_per_block / spec.max_warps_per_sm
        if occ >= target:
            floor_blocks = blocks
        else:
            break

    reg_slack = _binary_search_slack(
        lambda extra: occupancy(
            spec, threads_per_block,
            min(regs_per_thread + extra, spec.max_regs_per_thread),
            smem_per_block).blocks_per_sm >= floor_blocks,
        upper=spec.max_regs_per_thread - regs_per_thread,
    )
    smem_slack = _binary_search_slack(
        lambda extra: occupancy(
            spec, threads_per_block, regs_per_thread,
            smem_per_block + extra).blocks_per_sm >= floor_blocks
        if smem_per_block + extra <= spec.smem_per_block_max else False,
        upper=spec.smem_per_block_max - smem_per_block,
    )
    return ResourceSlack(
        regs_per_thread=reg_slack,
        smem_bytes=smem_slack,
        baseline_blocks_per_sm=base.blocks_per_sm,
        floor_blocks_per_sm=floor_blocks,
    )


def _binary_search_slack(fits, upper: int) -> int:
    """Largest extra demand in [0, upper] for which ``fits`` holds.

    Occupancy is monotonically non-increasing in resource demand, so
    binary search applies.
    """
    if upper <= 0 or not fits(0):
        return 0
    lo, hi = 0, upper
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo
