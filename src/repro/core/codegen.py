"""The VQ-LLM code generator (Fig. 7's top-level flow).

``VQLLMCodeGenerator.generate(...)`` takes a computation (kind + shape),
a quantized tensor (or KV pair), and a target GPU, and produces a
:class:`GeneratedKernel`: the adaptive heuristics pick every parameter
(cache boundaries from slack, dataflow, fusion level), the template is
assembled, CUDA-like source is emitted, and the result can report
modelled counters/latency and execute numerically.

Ablation levels (Tbl. IV) are first-class: ``level="GC"`` ...
``level="O4"`` (default, the full VQ-LLM configuration), so the
breakdown experiments generate each level through the same path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cache import CacheBoundaries
from repro.core.emitter import emit_cuda
from repro.core.heuristics import LEVELS, choose_knobs
from repro.core.hotness import HotnessProfile, profile_hotness
from repro.core.slack import find_slack
from repro.core.template import BASE_RESOURCES, KernelTemplate, build_template
from repro.gpu.costmodel import CostModel
from repro.gpu.counters import PerfCounters
from repro.gpu.spec import GPUSpec
from repro.kernels.attention import AttentionShape
from repro.kernels.base import KernelResult
from repro.kernels.gemm import GemmShape
from repro.kernels.vq_fused import (
    VQAttentionKernel,
    VQGemmKernel,
    VQGemvKernel,
)
from repro.vq.quantizer import QuantizedTensor


@dataclass
class GeneratedKernel:
    """A fused kernel produced by the generator."""

    template: KernelTemplate
    kernel: object
    spec: GPUSpec
    source: str

    @property
    def name(self) -> str:
        return (f"{self.kernel.name}-{self.template.config.name}-"
                f"{self.template.knobs.label}")

    def counters(self) -> PerfCounters:
        return self.kernel.counters(self.spec)

    def latency_us(self) -> float:
        return CostModel(self.spec).latency(self.counters()).total_us

    def result(self, run_numerics: bool = False) -> KernelResult:
        return self.kernel.result(self.spec, run_numerics=run_numerics)

    def execute(self):
        return self.kernel.execute()

    def describe(self) -> dict:
        return self.template.describe()


class VQLLMCodeGenerator:
    """Generates fused VQ kernels for a target GPU."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec

    @staticmethod
    def _resident_books(operation: str, config, shape,
                        dataflow: bool) -> int:
        """Distinct codebooks one block keeps resident simultaneously.

        Under the codebook-centric dataflow (O3+), a block owns a single
        codebook (Fig. 11), which is what lets the cache hold every
        entry of CQ's per-channel-group books in shared memory.
        """
        if operation == "attention":
            if dataflow:
                return 1
            return max(1, shape.head_dim // config.vector_size)
        if config.scope == "tensor":
            if dataflow:
                return 1
            return 1 if config.lattice else config.residuals
        if config.scope == "tile":
            tile_r, tile_c = config.tile_shape
            block_n = 128
            return max(1, math.ceil(block_n / tile_r)
                       * math.ceil(shape.k / tile_c) * config.residuals)
        return 1

    def _knob_candidates(self, operation: str, config,
                         profile: HotnessProfile, level: str,
                         shape) -> list:
        """Candidate knob sets for one level.

        For hierarchical levels the paper "adaptively determine[s] the
        optimal placement of entries": we evaluate both the slack-sized
        cache (occupancy-preserving, may leave a cold tail in global
        memory) and the full cache (no cold misses, may cost resident
        blocks) and let the generator keep whichever models faster.
        """
        base = BASE_RESOURCES[operation]
        dataflow = level.upper() in ("O3", "O4")
        resident = self._resident_books(operation, config, shape, dataflow)
        primary = choose_knobs(
            level, self.spec, config, profile,
            threads_per_block=base["threads"],
            regs_per_thread=base["regs"],
            smem_per_block=base["smem"],
            resident_books=resident,
        )
        if primary.boundaries is None:
            return [primary]
        candidates = [primary]
        if primary.boundaries.n_shared < config.lookup_entries:
            full = CacheBoundaries(primary.boundaries.n_reg,
                                   config.lookup_entries)
            candidates.append(choose_knobs(
                level, self.spec, config, profile,
                threads_per_block=base["threads"],
                regs_per_thread=base["regs"],
                smem_per_block=base["smem"],
                resident_books=resident,
                boundaries_override=full,
            ))
        return candidates

    def generate_gemm(self, shape: GemmShape, qt: QuantizedTensor,
                      level: str = "O4",
                      a: Optional[np.ndarray] = None) -> GeneratedKernel:
        """Generate a fused VQ-GeMM kernel."""
        return self._generate_weight_kernel("gemm", VQGemmKernel, shape,
                                            qt, level, a)

    def generate_gemv(self, shape: GemmShape, qt: QuantizedTensor,
                      level: str = "O4",
                      a: Optional[np.ndarray] = None) -> GeneratedKernel:
        """Generate a fused VQ-GeMV kernel."""
        return self._generate_weight_kernel("gemv", VQGemvKernel, shape,
                                            qt, level, a)

    def _generate_weight_kernel(self, operation, kernel_cls, shape, qt,
                                level, a) -> GeneratedKernel:
        profile = profile_hotness(qt)
        cost = CostModel(self.spec)
        best = None
        best_us = None
        for knobs in self._knob_candidates(operation, qt.config, profile,
                                           level, shape):
            kernel = kernel_cls(shape, qt, knobs, profile=profile, a=a)
            us = cost.latency(kernel.counters(self.spec)).total_us
            if best_us is None or us < best_us:
                best, best_us = (knobs, kernel), us
        knobs, kernel = best
        template = build_template(operation, qt.config, knobs)
        base = BASE_RESOURCES[operation]
        template.slack = find_slack(self.spec, base["threads"],
                                    base["regs"], base["smem"])
        return GeneratedKernel(template, kernel, self.spec,
                               emit_cuda(template))

    def generate_attention(
        self,
        shape: AttentionShape,
        qt_k: QuantizedTensor,
        qt_v: QuantizedTensor,
        level: str = "O4",
        q: Optional[np.ndarray] = None,
        k_cache: Optional[np.ndarray] = None,
        v_cache: Optional[np.ndarray] = None,
    ) -> GeneratedKernel:
        """Generate a fused VQ decode-attention kernel."""
        profile_k = profile_hotness(qt_k)
        profile_v = profile_hotness(qt_v)
        cost = CostModel(self.spec)
        best = None
        best_us = None
        for knobs in self._knob_candidates("attention", qt_k.config,
                                           profile_k, level, shape):
            kernel = VQAttentionKernel(
                shape, qt_k, qt_v, knobs,
                profile_k=profile_k, profile_v=profile_v,
                q=q, k_cache=k_cache, v_cache=v_cache)
            us = cost.latency(kernel.counters(self.spec)).total_us
            if best_us is None or us < best_us:
                best, best_us = (knobs, kernel), us
        knobs, kernel = best
        template = build_template("attention", qt_k.config, knobs)
        base = BASE_RESOURCES["attention"]
        template.slack = find_slack(
            self.spec, base["threads"], base["regs"], base["smem"])
        return GeneratedKernel(template, kernel, self.spec,
                               emit_cuda(template))

    def sweep_levels(self, generate_fn, *args, **kwargs) -> dict:
        """Generate one kernel per Tbl. IV level; keyed GC..O4.

        ``generate_fn`` is one of this generator's ``generate_*`` bound
        methods; args/kwargs are forwarded with ``level`` overridden.
        """
        out = {}
        for level in LEVELS:
            kwargs["level"] = level
            out[level] = generate_fn(*args, **kwargs)
        return out
