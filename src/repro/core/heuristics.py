"""Adaptive heuristics (the "Adaptive Heuristics" box of Fig. 7).

All parameter selection for generated kernels happens here:

- cache boundaries ``n_reg`` / ``n_shared`` from resource slack;
- dataflow split factor from the traffic-balance equation;
- fusion level from the shuffle count vs the profiled threshold.

The module also defines :class:`PlanKnobs`, the full parameterisation of
a fused VQ kernel, and the named optimization levels of the paper's
breakdown study (Tbl. IV): GC, SC, O1, O2, O3, O4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.cache import CacheBoundaries, plan_boundaries
from repro.core.fusion import SHUFFLE_THRESHOLD
from repro.core.hotness import HotnessProfile
from repro.core.slack import ResourceSlack, find_slack
from repro.gpu.spec import GPUSpec
from repro.vq.config import VQConfig

#: Ablation levels of Tbl. IV, in cumulative order.
LEVELS = ("GC", "SC", "O1", "O2", "O3", "O4")


@dataclass(frozen=True)
class PlanKnobs:
    """Complete parameterisation of one fused VQ kernel plan.

    ``placement`` is where codebook entries live:

    - ``global`` — all entries in global memory (the GC baseline);
    - ``shared_all`` — all entries cached in shared memory (SC);
    - ``hierarchical`` — registers / shared / global split at the
      ``boundaries`` (the codebook cache, O1 with ``n_reg = 0``, O2
      with ``n_reg > 0``).
    """

    label: str
    placement: str
    boundaries: Optional[CacheBoundaries] = None
    #: Use the codebook-centric dataflow (O3+).
    dataflow: bool = False
    #: Let the kernel skip dataflow transforms whose modelled cost
    #: exceeds their benefit (the adaptive split-factor heuristic; the
    #: O3 ablation level forces the dataflow on, O4 enables adaptivity).
    dataflow_adaptive: bool = False
    #: Allow register-level fusion where the shuffle count permits (O4).
    register_fusion: bool = False
    #: Override of the fusion threshold (tests/ablations).
    shuffle_threshold: int = SHUFFLE_THRESHOLD

    def __post_init__(self):
        if self.placement not in ("global", "shared_all", "hierarchical"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.placement == "hierarchical" and self.boundaries is None:
            raise ValueError("hierarchical placement requires boundaries")


@dataclass(frozen=True)
class HeuristicReport:
    """The per-configuration factors of Tbl. V, for one kernel plan."""

    algorithm: str
    operation: str
    codebook_per_block_bytes: float
    hot_entries: int
    output_per_block_bytes: float
    n_shuffles: int
    slack: ResourceSlack
    boundaries: CacheBoundaries


def choose_knobs(
    level: str,
    spec: GPUSpec,
    config: VQConfig,
    profile: HotnessProfile,
    threads_per_block: int,
    regs_per_thread: int,
    smem_per_block: int,
    resident_books: int = 1,
    boundaries_override: Optional[CacheBoundaries] = None,
) -> PlanKnobs:
    """Build the knobs for a named optimization level.

    ``level`` is one of GC / SC / O1 / O2 / O3 / O4 (Tbl. IV); ``O4``
    is the complete VQ-LLM configuration the generator uses by default.
    The base resource demands are those of the computation *without*
    the codebook, which is what slack is measured against;
    ``resident_books`` is how many codebooks one block keeps resident
    simultaneously (CQ: one per channel group of the head).
    """
    level = level.upper()
    if level not in LEVELS:
        raise ValueError(f"unknown optimization level {level!r}; "
                         f"expected one of {LEVELS}")
    if level == "GC":
        return PlanKnobs(label="GC", placement="global")
    if level == "SC":
        return PlanKnobs(label="SC", placement="shared_all")

    slack = find_slack(spec, threads_per_block, regs_per_thread,
                       smem_per_block)
    if boundaries_override is not None:
        bounds = boundaries_override
    else:
        bounds = plan_boundaries(slack, config.entry_bytes,
                                 config.lookup_entries,
                                 resident_books=resident_books,
                                 hot_entries=profile.hot_entries())
    if level == "O1":
        # Shared-level caching only: no register-resident entries; the
        # shared budget is re-planned without the register level.
        o1_bounds = plan_boundaries(slack, config.entry_bytes,
                                    config.lookup_entries,
                                    resident_books=resident_books,
                                    hot_entries=0)
        if boundaries_override is not None:
            o1_bounds = CacheBoundaries(0, boundaries_override.n_shared)
        return PlanKnobs(label="O1", placement="hierarchical",
                         boundaries=o1_bounds)
    if level == "O2":
        return PlanKnobs(label="O2", placement="hierarchical",
                         boundaries=bounds)
    if level == "O3":
        return PlanKnobs(label="O3", placement="hierarchical",
                         boundaries=bounds, dataflow=True)
    return PlanKnobs(label="O4", placement="hierarchical",
                     boundaries=bounds, dataflow=True,
                     dataflow_adaptive=True, register_fusion=True)


def knobs_for_all_levels(spec, config, profile, threads_per_block,
                         regs_per_thread, smem_per_block,
                         resident_books: int = 1) -> dict:
    """Knobs for every Tbl. IV level, keyed by label."""
    return {
        level: choose_knobs(level, spec, config, profile,
                            threads_per_block, regs_per_thread,
                            smem_per_block, resident_books=resident_books)
        for level in LEVELS
    }


def limit_register_entries(knobs: PlanKnobs, max_entries: int) -> PlanKnobs:
    """Clamp the register-resident entry count (engine-side reservation)."""
    if knobs.boundaries is None:
        return knobs
    b = knobs.boundaries
    n_reg = min(b.n_reg, max_entries)
    return replace(knobs, boundaries=CacheBoundaries(n_reg, b.n_shared))
