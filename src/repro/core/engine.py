"""Compute engine: runs generated kernels and aggregates comparisons.

The engine is a convenience layer over the generator for the evaluation
harness: it sweeps optimization levels, compares against FP16 and
element-wise baselines, and computes the latency-reduction metrics the
paper reports (reduction vs GC, speedup vs FP16).

It also exposes the **memoized batch-latency API**
(:meth:`ComputeEngine.batch_latency_us`): one entry point covering the
FP16, element-wise-quantized and fused-VQ kernel families, backed by a
per-engine LRU cache keyed on (operation, workload shape, level,
quantized tensors).  The cache is what lets the serving simulator
(:mod:`repro.serve`) step through thousands of decode iterations —
generating and costing a kernel is milliseconds, a cache hit is a dict
lookup.  Each engine is bound to one :class:`~repro.gpu.spec.GPUSpec`,
so the spec is an implicit part of every cache key.

See ``docs/architecture.md`` for where the engine sits in the
VQConfig -> quantizer -> codegen -> cost model -> engine -> serve flow.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.codegen import GeneratedKernel, VQLLMCodeGenerator
from repro.gpu.costmodel import CostModel
from repro.gpu.spec import GPUSpec
from repro.kernels.attention import (
    AttentionShape,
    FlashDecodingKernel,
    FlashPrefillKernel,
)
from repro.kernels.base import KernelBase
from repro.kernels.elementwise import (
    ElementwiseAttentionKernel,
    ElementwiseGemmKernel,
    ElementwiseGemvKernel,
)
from repro.kernels.gemm import FP16GemmKernel, FP16GemvKernel, GemmShape
from repro.vq.quantizer import QuantizedTensor

#: Operations understood by :meth:`ComputeEngine.batch_latency_us`.
OPERATIONS = ("gemm", "gemv", "attention", "prefill_attention")

#: Default capacity of the per-engine latency memo.
DEFAULT_MEMO_SIZE = 4096


@dataclass
class LevelSweep:
    """Latency of every optimization level for one kernel workload."""

    name: str
    latencies_us: Dict[str, float]

    @property
    def best_level(self) -> str:
        return min(self.latencies_us, key=self.latencies_us.get)

    @property
    def best_us(self) -> float:
        return self.latencies_us[self.best_level]

    def reduction_vs(self, baseline: str = "GC") -> float:
        """Latency reduction of the best level vs a baseline level."""
        base = self.latencies_us[baseline]
        return 1.0 - self.best_us / base

    def reduction_of(self, level: str, baseline: str = "GC") -> float:
        """Latency reduction of one level vs a baseline level.

        Raises :class:`KeyError` if either level was not swept.
        """
        return 1.0 - self.latencies_us[level] / self.latencies_us[baseline]


class _LatencyMemo:
    """A small LRU cache for modelled latencies.

    Entries keep a strong reference to the quantized tensors of their
    key, so the ``id()``-based tensor keys stay valid for as long as the
    entry lives (CPython only recycles an id after the object is
    collected).
    """

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Tuple, Tuple[float, tuple]]" = OrderedDict()

    def get(self, key: Tuple) -> Optional[float]:
        if key in self._data:
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key][0]
        self.misses += 1
        return None

    def put(self, key: Tuple, value: float, pinned: tuple) -> None:
        self._data[key] = (value, pinned)
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


class ComputeEngine:
    """Runs generated kernels and baselines on one GPU spec."""

    def __init__(self, spec: GPUSpec, memo_size: int = DEFAULT_MEMO_SIZE):
        self.spec = spec
        self.generator = VQLLMCodeGenerator(spec)
        self.cost_model = CostModel(spec)
        self._memo = _LatencyMemo(memo_size)

    def latency_us(self, kernel) -> float:
        """Modelled latency of a kernel or generated kernel."""
        if isinstance(kernel, GeneratedKernel):
            return kernel.latency_us()
        if isinstance(kernel, KernelBase):
            return kernel.latency_us(self.spec)
        raise TypeError(f"cannot time object of type {type(kernel)!r}")

    def sweep(self, generate_fn, *args, name: str = "", **kwargs) -> LevelSweep:
        """Latency for every Tbl. IV level of one workload."""
        kernels = self.generator.sweep_levels(generate_fn, *args, **kwargs)
        latencies = {level: k.latency_us() for level, k in kernels.items()}
        return LevelSweep(name=name or "sweep", latencies_us=latencies)

    def compare(self, kernels: dict) -> dict:
        """Latency (us) for a dict of named kernels."""
        return {name: self.latency_us(k) for name, k in kernels.items()}

    # ------------------------------------------------------------------
    # Memoized batch-latency API
    # ------------------------------------------------------------------
    @staticmethod
    def _qt_key(qt: Optional[QuantizedTensor]) -> Optional[tuple]:
        """Cache-key component for a quantized tensor.

        ``id()`` distinguishes distinct tensors; config name and shape
        are included so a key is still meaningfully unequal if an id is
        ever compared across engines.  The memo pins the tensor, which
        keeps the id from being recycled while the entry is alive.
        """
        if qt is None:
            return None
        return (id(qt), qt.config.name, qt.shape)

    def batch_latency_us(
        self,
        operation: str,
        shape,
        qt: Optional[QuantizedTensor] = None,
        qt_v: Optional[QuantizedTensor] = None,
        level: str = "O4",
        bits: Optional[int] = None,
    ) -> float:
        """Memoized modelled latency of one batched operator.

        Parameters
        ----------
        operation:
            ``"gemm"`` / ``"gemv"`` (``shape`` is a
            :class:`~repro.kernels.gemm.GemmShape`), ``"attention"``
            (decode attention; :class:`~repro.kernels.attention.AttentionShape`)
            or ``"prefill_attention"`` (causal prefill over the same
            shape; FP16 only — prefill writes the cache, it does not
            dequantize it).
        qt, qt_v:
            Quantized operands.  ``qt`` alone selects the fused-VQ
            weight kernels; attention additionally takes the value-cache
            tensor ``qt_v`` (defaults to ``qt``).  ``None`` with
            ``bits=None`` selects the FP16 baseline.
        level:
            Tbl. IV optimization level for fused-VQ kernels.
        bits:
            Element-wise-quantized baseline at this bit width (mutually
            exclusive with ``qt``).

        Results are cached in a per-engine LRU keyed on every parameter
        above; the engine's GPU spec is implicit in the key because the
        cache is per-engine.
        """
        if operation not in OPERATIONS:
            raise ValueError(f"unknown operation {operation!r}; "
                             f"expected one of {OPERATIONS}")
        if qt is not None and bits is not None:
            raise ValueError("qt and bits are mutually exclusive")
        if qt_v is not None and qt is None:
            raise ValueError("qt_v without qt: pass the key-cache tensor "
                             "as qt (attention needs both)")
        if operation == "attention" and qt is not None and qt_v is None:
            qt_v = qt
        key = (operation, shape, level if qt is not None else None, bits,
               self._qt_key(qt), self._qt_key(qt_v))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = self._compute_latency_us(operation, shape, qt, qt_v,
                                         level, bits)
        self._memo.put(key, value, (qt, qt_v))
        return value

    def _compute_latency_us(self, operation, shape, qt, qt_v, level,
                            bits) -> float:
        if operation in ("gemm", "gemv"):
            if not isinstance(shape, GemmShape):
                raise TypeError(f"{operation} expects a GemmShape, "
                                f"got {type(shape)!r}")
            if qt is not None:
                generate = (self.generator.generate_gemm
                            if operation == "gemm"
                            else self.generator.generate_gemv)
                return generate(shape, qt, level=level).latency_us()
            if bits is not None:
                cls = (ElementwiseGemmKernel if operation == "gemm"
                       else ElementwiseGemvKernel)
                return cls(shape, bits=bits).latency_us(self.spec)
            cls = FP16GemmKernel if operation == "gemm" else FP16GemvKernel
            return cls(shape).latency_us(self.spec)
        if not isinstance(shape, AttentionShape):
            raise TypeError(f"{operation} expects an AttentionShape, "
                            f"got {type(shape)!r}")
        if operation == "prefill_attention":
            if qt is not None or bits is not None:
                raise ValueError("prefill attention is FP16 only: the "
                                 "prefill step writes the cache rather "
                                 "than dequantizing it")
            return FlashPrefillKernel(shape).latency_us(self.spec)
        if qt is not None:
            return self.generator.generate_attention(
                shape, qt, qt_v, level=level).latency_us()
        if bits is not None:
            return ElementwiseAttentionKernel(
                shape, bits=bits).latency_us(self.spec)
        return FlashDecodingKernel(shape).latency_us(self.spec)

    def memo_info(self) -> dict:
        """Hit/miss/size statistics of the latency memo."""
        return {
            "hits": self._memo.hits,
            "misses": self._memo.misses,
            "currsize": len(self._memo),
            "maxsize": self._memo.maxsize,
        }

    def memo_clear(self) -> None:
        """Drop every cached latency (tests use this for isolation)."""
        self._memo.clear()
