"""Compute engine: runs generated kernels and aggregates comparisons.

The engine is a convenience layer over the generator for the evaluation
harness: it sweeps optimization levels, compares against FP16 and
element-wise baselines, and computes the latency-reduction metrics the
paper reports (reduction vs GC, speedup vs FP16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.codegen import GeneratedKernel, VQLLMCodeGenerator
from repro.gpu.costmodel import CostModel
from repro.gpu.spec import GPUSpec
from repro.kernels.base import KernelBase


@dataclass
class LevelSweep:
    """Latency of every optimization level for one kernel workload."""

    name: str
    latencies_us: Dict[str, float]

    @property
    def best_level(self) -> str:
        return min(self.latencies_us, key=self.latencies_us.get)

    @property
    def best_us(self) -> float:
        return self.latencies_us[self.best_level]

    def reduction_vs(self, baseline: str = "GC") -> float:
        """Latency reduction of the best level vs a baseline level."""
        base = self.latencies_us[baseline]
        return 1.0 - self.best_us / base

    def reduction_of(self, level: str, baseline: str = "GC") -> float:
        """Latency reduction of one level vs a baseline level."""
        return 1.0 - self.latencies_us[level] / self.latencies_us[baseline]


class ComputeEngine:
    """Runs generated kernels and baselines on one GPU spec."""

    def __init__(self, spec: GPUSpec):
        self.spec = spec
        self.generator = VQLLMCodeGenerator(spec)
        self.cost_model = CostModel(spec)

    def latency_us(self, kernel) -> float:
        """Modelled latency of a kernel or generated kernel."""
        if isinstance(kernel, GeneratedKernel):
            return kernel.latency_us()
        if isinstance(kernel, KernelBase):
            return kernel.latency_us(self.spec)
        raise TypeError(f"cannot time object of type {type(kernel)!r}")

    def sweep(self, generate_fn, *args, name: str = "", **kwargs) -> LevelSweep:
        """Latency for every Tbl. IV level of one workload."""
        kernels = self.generator.sweep_levels(generate_fn, *args, **kwargs)
        latencies = {level: k.latency_us() for level, k in kernels.items()}
        return LevelSweep(name=name or "sweep", latencies_us=latencies)

    def compare(self, kernels: dict) -> dict:
        """Latency (us) for a dict of named kernels."""
        return {name: self.latency_us(k) for name, k in kernels.items()}
