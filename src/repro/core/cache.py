"""The codebook cache (Sec. V).

A software-managed cache that places codebook entries across the GPU
memory hierarchy by access frequency, with a *reorder-based static
mapping* instead of tags: entries are sorted hottest-first offline and
the quantized data is rewritten to the new indices, so locating an entry
at runtime is two integer comparisons —

- ``index < n_reg``                    -> thread-local registers,
- ``n_reg <= index < n_shared``        -> shared memory,
- ``index >= n_shared``                -> global memory.

``n_reg``/``n_shared`` default to the resource-slack heuristic but can be
overridden by the user, matching the paper's Load / Access / Switch API
(Sec. V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hotness import HotnessProfile, profile_hotness
from repro.core.slack import ResourceSlack
from repro.vq.quantizer import QuantizedTensor


@dataclass(frozen=True)
class CacheBoundaries:
    """The two placement boundaries of the codebook cache."""

    n_reg: int
    n_shared: int

    def __post_init__(self):
        if self.n_reg < 0 or self.n_shared < self.n_reg:
            raise ValueError(
                "boundaries must satisfy 0 <= n_reg <= n_shared "
                f"(got n_reg={self.n_reg}, n_shared={self.n_shared})"
            )

    def level_of(self, index: int) -> str:
        """Placement of a (frequency-reordered) entry index."""
        if index < self.n_reg:
            return "register"
        if index < self.n_shared:
            return "shared"
        return "global"


def plan_boundaries(
    slack: ResourceSlack,
    entry_bytes: int,
    n_entries: int,
    resident_books: int = 1,
    hot_entries: int = None,
    warp_size: int = 32,
) -> CacheBoundaries:
    """Size the cache from resource slack (Sec. V-B "Adaptivity").

    Register-resident entries are *warp-distributed*: the warp's 32
    threads each hold a slice of the hot-entry table and serve lookups
    with intra-warp shuffles, so one entry costs ``entry_bytes / 32``
    registers per thread.  (A per-thread copy of the 15-30 hot entries
    the paper reports for AQLM — 16 bytes each — would not fit a
    register file.)

    Shared-resident entries cost ``entry_bytes`` per block *per resident
    codebook*: a block that switches between ``resident_books`` books
    (CQ keeps one per channel group) caches the top entries of each.

    ``hot_entries`` (the mu+3sigma count from the hotness profile) caps
    the register level: entries beyond the extremely-hot set gain
    nothing from register residency but still pay shuffles.
    """
    if entry_bytes <= 0:
        raise ValueError("entry_bytes must be positive")
    if resident_books <= 0:
        raise ValueError("resident_books must be positive")
    reg_budget_bytes = slack.regs_per_thread * 4 * warp_size
    n_reg = min(n_entries, reg_budget_bytes // entry_bytes)
    if hot_entries is not None:
        n_reg = min(n_reg, max(0, hot_entries))
    per_book_smem = slack.smem_bytes // resident_books
    n_shared_extra = per_book_smem // entry_bytes
    n_shared = min(n_entries, n_reg + n_shared_extra)
    return CacheBoundaries(n_reg=int(n_reg), n_shared=int(n_shared))


class CodebookCache:
    """Frequency-reordered codebook cache over one quantized tensor.

    Implements the three-call user interface of Sec. V-C:

    - :meth:`load` — stage codebooks into the hierarchy, returning the
      boundaries (``CB_cached, n_reg,shared <- Load(CB, Slack)``);
    - :meth:`access` — fetch one entry during dequantization, recording
      which level served it;
    - :meth:`switch` — move to another scope group's codebook (GPTVQ
      trains per-tile codebooks; CQ per-channel-group).
    """

    def __init__(self, qt: QuantizedTensor,
                 profile: HotnessProfile = None):
        if profile is None:
            profile = profile_hotness(qt)
        self.profile = profile
        #: The tensor rewritten to hotness-descending entry numbering.
        self.tensor = qt.remap(profile.order)
        self.boundaries: CacheBoundaries = None
        self._group = 0
        self._residual = 0
        #: Access counts per level, for traffic verification in tests.
        self.level_hits = {"register": 0, "shared": 0, "global": 0}

    @property
    def n_entries(self) -> int:
        return self.tensor.config.lookup_entries

    @property
    def entry_bytes(self) -> int:
        return self.tensor.config.entry_bytes

    def load(self, slack: ResourceSlack,
             boundaries: CacheBoundaries = None) -> CacheBoundaries:
        """Stage the codebooks; returns (and stores) the boundaries.

        With no explicit ``boundaries`` the slack heuristic is applied —
        the paper's default — but callers may overwrite them.
        """
        if boundaries is None:
            boundaries = plan_boundaries(slack, self.entry_bytes,
                                         self.n_entries)
        self.boundaries = boundaries
        return boundaries

    def switch(self, group: int, residual: int = 0) -> None:
        """Point the cache at another codebook (Sec. V-C's Switch API)."""
        if not 0 <= group < self.tensor.codebooks.n_groups:
            raise IndexError(f"group {group} out of range")
        if not 0 <= residual < self.tensor.codebooks.residuals:
            raise IndexError(f"residual {residual} out of range")
        self._group = group
        self._residual = residual

    def access(self, index: int) -> np.ndarray:
        """Fetch one entry of the current codebook by reordered index.

        Returns the entry vector and records the serving level; raises
        if :meth:`load` has not been called (mirroring the real API's
        requirement that the cache be initialised first).
        """
        if self.boundaries is None:
            raise RuntimeError("call load() before access()")
        level = self.boundaries.level_of(index)
        self.level_hits[level] += 1
        book = self.tensor.codebooks.get(self._group, self._residual)
        return book.entries[index]

    # ------------------------------------------------------------------
    # Traffic/coverage summaries used by the kernel models
    # ------------------------------------------------------------------
    def coverage(self) -> dict:
        """Fraction of accesses served per level under the boundaries."""
        if self.boundaries is None:
            raise RuntimeError("call load() before coverage()")
        reg = self.profile.coverage(self.boundaries.n_reg)
        shared_total = self.profile.coverage(self.boundaries.n_shared)
        return {
            "register": reg,
            "shared": shared_total - reg,
            "global": 1.0 - shared_total,
        }

    def staged_bytes(self) -> dict:
        """Bytes staged per level when the cache is loaded.

        Register bytes are *per thread*; shared bytes are per block per
        codebook group that the block touches.
        """
        if self.boundaries is None:
            raise RuntimeError("call load() before staged_bytes()")
        b = self.boundaries
        return {
            "register_per_thread": b.n_reg * self.entry_bytes,
            "shared_per_book": (b.n_shared - b.n_reg) * self.entry_bytes,
        }

    def dequantize(self) -> np.ndarray:
        """Dequantize through the cache (numerically checks the reorder)."""
        return self.tensor.dequantize()
