"""Codebook-centric hierarchical fusion (Sec. VI-B, Alg. 1, Fig. 12).

A thread dequantizes whole sub-vectors (``vector_size`` consecutive
elements), but the downstream compute instruction wants data in its own
layout — ``mma`` fragments hold 2 consecutive elements per thread, a
GeMV/attention reduction wants 1.  Shared-memory fusion resolves the
mismatch with a smem round trip; register fusion resolves it with
intra-warp ``shfl.xor`` exchanges, provided the exchange pattern is
confined to small *mini-warps* by remapping which thread dequantizes
which sub-vector (Alg. 1).

The number of shuffles equals ``vector_size / required_layout - 1``
(Tbl. V's #Shuffle row); profiling says one smem round trip costs about
as much as five shuffles, so fusion happens in registers iff the shuffle
count is at or below ``SHUFFLE_THRESHOLD = 5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.gpu.shuffle import shfl_xor

#: Shared-memory round trip ~ 5x register shuffle cost (paper profiling).
SHUFFLE_THRESHOLD = 5

#: Elements per thread required by each computation's input layout.
REQUIRED_LAYOUT = {
    "gemm": 2,       # mma fragment: 2 consecutive fp16 per thread
    "gemv": 1,       # element-wise multiply-reduce
    "attention_k": 4,  # row-wise dot product consumes the dequantized row
    "attention_v": 1,  # column-wise weighted accumulation
}


def n_shuffles(vector_size: int, required_layout: int) -> int:
    """Shuffle instructions to convert dequant layout to compute layout.

    The exchange is an xor butterfly over a mini-warp of
    ``vector_size / required_layout`` threads, which takes mini-warp
    size - 1 selective shuffles (Fig. 12 shows 8/2 -> 4-thread mini-warps
    -> 3 shuffles).  A vector size at or below the required layout needs
    no exchange.
    """
    if vector_size <= 0 or required_layout <= 0:
        raise ValueError("sizes must be positive")
    if vector_size <= required_layout:
        return 0
    ratio = vector_size // required_layout
    if ratio * required_layout != vector_size:
        raise ValueError(
            f"vector_size {vector_size} must be a multiple of the "
            f"required layout {required_layout}"
        )
    if ratio & (ratio - 1):
        raise ValueError("layout ratio must be a power of two for xor exchange")
    return ratio - 1


@dataclass
class ThreadMapping:
    """Alg. 1's offline thread remapping.

    ``dequant_thread[w]`` is the thread assigned to dequantize the w-th
    sub-vector of the warp tile, chosen so all exchanges stay inside
    mini-warps of ``mini_warp_size`` threads.
    """

    dequant_thread: np.ndarray
    mini_warp_size: int
    mini_warps: List[List[int]]

    @property
    def n_shuffles(self) -> int:
        return self.mini_warp_size - 1 if self.mini_warp_size > 1 else 0

    @property
    def is_identity(self) -> bool:
        return bool(np.all(self.dequant_thread
                           == np.arange(self.dequant_thread.size)))


def thread_mapping(
    vector_size: int,
    required_layout: int,
    warp_size: int = 32,
    compute_tid: Optional[Callable[[int], int]] = None,
) -> ThreadMapping:
    """Compute the Alg. 1 thread mapping for one warp tile.

    The warp tile holds ``warp_size * vector_size`` elements; sub-vector
    ``w`` spans elements ``[w*vector_size, (w+1)*vector_size)``.  The
    computation consumes elements in chunks of ``required_layout``,
    with chunk ``ch`` owned by compute thread ``compute_tid(ch)``
    (default: ``ch % warp_size``, the round-robin fragment layout).

    Following Alg. 1: group dequant threads whose data feeds the same
    set of compute threads into mini-warps (lines 4-9), then remap
    member ``i`` of each mini-warp to dequantize the sub-vector owned by
    that mini-warp's ``i``-th compute-thread set (lines 10-11), which
    confines all exchanges to xor offsets within the mini-warp.
    """
    ratio = max(1, vector_size // max(required_layout, 1))
    if compute_tid is None:
        def compute_tid(ch: int) -> int:
            return ch % warp_size

    chunks_per_subvector = max(1, vector_size // required_layout)
    # Lines 2-6: which compute threads consume each sub-vector's data.
    consumer_sets = []
    for w in range(warp_size):
        first_chunk = w * chunks_per_subvector
        consumers = tuple(sorted({
            compute_tid(first_chunk + j) for j in range(chunks_per_subvector)
        }))
        consumer_sets.append(consumers)

    # Lines 7-9: group sub-vectors with identical consumer sets.
    mini_warp_of: dict = {}
    for w, consumers in enumerate(consumer_sets):
        mini_warp_of.setdefault(consumers, []).append(w)
    mini_warps = list(mini_warp_of.values())

    # Lines 10-11: the i-th member of each mini-warp dequantizes the
    # mini-warp's i-th sub-vector; members are the consumer threads
    # themselves so exchanges stay within the group.
    mapping = np.arange(warp_size)
    for consumers, members in mini_warp_of.items():
        # Threads available to this mini-warp: its consumer threads,
        # padded with the original holders if the group is larger.
        pool = list(consumers)
        for m in members:
            if m not in pool:
                pool.append(m)
        for i, w in enumerate(members):
            mapping[w] = pool[i % len(pool)]

    size = max(len(m) for m in mini_warps) if mini_warps else 1
    size = min(size, ratio) if ratio > 1 else 1
    return ThreadMapping(
        dequant_thread=mapping,
        mini_warp_size=ratio,
        mini_warps=mini_warps,
    )


def exchange_to_compute_layout(
    dequantized: np.ndarray, required_layout: int
) -> np.ndarray:
    """Functionally rearrange a warp's dequantized registers.

    Parameters
    ----------
    dequantized:
        Array (warp_size, vector_size): each lane's dequantized
        sub-vector, already produced under the Alg. 1 thread mapping so
        exchanges are confined to mini-warps of ``vector_size /
        required_layout`` lanes at xor offsets ``1..size-1``.
    required_layout:
        Elements per register chunk the computation expects.

    Returns
    -------
    numpy.ndarray
        Array (warp_size, vector_size) where lane ``l``'s row holds, in
        order, the chunks that compute thread ``l`` consumes — i.e. the
        transpose of the mini-warp's (lane, chunk) matrix, realised only
        with xor shuffles (verified against :func:`repro.gpu.shuffle.shfl_xor`).
    """
    warp_size, vector_size = dequantized.shape
    ratio = vector_size // required_layout
    if ratio <= 1:
        return dequantized.copy()
    if ratio & (ratio - 1):
        raise ValueError("layout ratio must be a power of two")

    chunks = dequantized.reshape(warp_size, ratio, required_layout)
    out = chunks.copy()
    # Selective butterfly: at offset ``off`` every lane exchanges chunk
    # slot ``(local_lane ^ off) % ratio`` with its partner, exactly the
    # reg[tid^off] = shfl(reg[tid^off], off) loop of Alg. 1.
    local = np.arange(warp_size) % ratio
    for off in range(1, ratio):
        slots = (local ^ off) % ratio
        lane_sel = np.arange(warp_size)
        contributed = out[lane_sel, slots]
        # shfl_xor within mini-warps: emulate per mini-warp group.
        received = contributed.copy()
        for base in range(0, warp_size, ratio):
            seg = slice(base, base + ratio)
            received[seg] = shfl_xor(contributed[seg], off, width=ratio)
        out[lane_sel, slots] = received
    return out.reshape(warp_size, vector_size)


@dataclass(frozen=True)
class FusionDecision:
    """Where fusion happens for one tensor, and its modelled costs."""

    #: ``register`` or ``shared``.
    level: str
    n_shuffles: int
    #: Fraction of dequantized data whose layout mismatches the compute
    #: layout (the K cache matches, the V cache does not — Fig. 6).
    mismatch_fraction: float

    @property
    def uses_register_fusion(self) -> bool:
        return self.level == "register"


def decide_fusion(
    vector_size: int,
    operation: str,
    mismatch_fraction: float = 1.0,
    threshold: int = SHUFFLE_THRESHOLD,
    enable_register: bool = True,
) -> FusionDecision:
    """Pick the fusion level for one operation (Alg. 2 lines 6-8).

    Register fusion is used when the required shuffle count is at or
    below the profiled threshold (5) and the caller has not disabled it
    (ablation levels O1-O3 use shared fusion).
    """
    required = REQUIRED_LAYOUT[operation]
    shuffles = n_shuffles(vector_size, required)
    if enable_register and shuffles <= threshold:
        return FusionDecision("register", shuffles, mismatch_fraction)
    return FusionDecision("shared", shuffles, mismatch_fraction)
