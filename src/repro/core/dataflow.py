"""Codebook-centric dataflow (Sec. VI-A).

The naive integration of VQ into a tiled kernel parallelizes along the
computation's natural axes, which makes many thread blocks load the same
codebooks (Fig. 5).  The codebook-centric dataflow re-partitions the task
along the *codebook switch axes* (Tbl. III) so each block loads each
codebook at most once (Fig. 11); axes that were reduction axes and are
now parallelized require an explicit global reduction.

The *split factor* controls how far the switch axes are parallelized:

    Traffic_reduce   = split_factor * output_size
    Traffic_codebook = original_codebook_traffic / split_factor

Both are monotone in the split factor with opposite signs, so the
modelled optimum equates them (the paper invokes the mean value theorem);
we take the real-valued balance point and clamp to the feasible integer
range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.vq.config import VQConfig

#: Tbl. III — axes of each computation, per VQ algorithm family.
#: Keys are (operation, scope); values are (all, reduce, switch) axis sets.
_AXES = {
    # Weight GeMM/GeMV: M rows, N columns, R residual.
    ("gemm", "tensor"): ("MNR", "MR", "R"),
    ("gemm", "tile"): ("MNR", "MR", "MN"),
    ("gemv", "tensor"): ("MNR", "MR", "R"),
    ("gemv", "tile"): ("MNR", "MR", "MN"),
    # Attention over the KV cache: B batch, H head, T token, C channel.
    # CQ switches codebooks along heads and channel groups; K-cache
    # reduction is along channels, V-cache reduction along tokens.
    ("attention_k", "channel_group"): ("BHTC", "C", "HC"),
    ("attention_v", "channel_group"): ("BHTC", "T", "HC"),
}


@dataclass(frozen=True)
class AxisSpec:
    """Reduce and codebook-switch axes of one computation (Tbl. III)."""

    operation: str
    all_axes: str
    reduce_axes: str
    switch_axes: str

    @property
    def conflict_axes(self) -> str:
        """Axes that are both reduced and codebook-switching.

        Parallelizing these (which the codebook-centric dataflow does)
        is what forces the explicit global reduction.
        """
        return "".join(a for a in self.reduce_axes if a in self.switch_axes)

    @property
    def needs_global_reduction(self) -> bool:
        return bool(self.conflict_axes)


def axes_for(operation: str, config: VQConfig) -> AxisSpec:
    """Look up Tbl. III for an operation under a VQ config's scope.

    ``operation`` is one of ``gemm``, ``gemv``, ``attention_k``,
    ``attention_v`` (attention kernels consult both K and V specs).
    """
    key = (operation, config.scope)
    if key not in _AXES:
        raise KeyError(
            f"no axis specification for operation={operation!r} with "
            f"scope={config.scope!r} (Tbl. III does not pair them)"
        )
    all_axes, reduce_axes, switch_axes = _AXES[key]
    return AxisSpec(operation, all_axes, reduce_axes, switch_axes)


def optimal_split_factor(
    codebook_traffic_bytes: float,
    output_bytes: float,
    max_split: int,
) -> int:
    """Balance duplicated-codebook traffic against reduction traffic.

    Minimises ``codebook_traffic / s + s * output_bytes`` over integer
    ``s`` in ``[1, max_split]``: the real-valued optimum is
    ``sqrt(codebook_traffic / output_bytes)``, and by convexity the
    best integer is whichever of its floor/ceil neighbours (clamped)
    has the lower objective — nearest-integer rounding can pick the
    wrong side when the optimum falls near ``x.5``.  Degenerate inputs
    (zero output or zero codebook traffic) resolve to the
    corresponding extreme.
    """
    if max_split < 1:
        raise ValueError("max_split must be >= 1")
    if codebook_traffic_bytes <= 0:
        return 1
    if output_bytes <= 0:
        return max_split
    balance = math.sqrt(codebook_traffic_bytes / output_bytes)
    lo = max(1, min(max_split, math.floor(balance)))
    hi = max(1, min(max_split, math.ceil(balance)))

    def traffic(s: int) -> float:
        return codebook_traffic_bytes / s + s * output_bytes

    return lo if traffic(lo) <= traffic(hi) else hi


@dataclass(frozen=True)
class DataflowPlan:
    """Chosen dataflow for one fused kernel."""

    #: ``naive`` (parallelize computation axes) or ``codebook_centric``.
    kind: str
    axis_spec: AxisSpec
    split_factor: int
    #: Modelled codebook global traffic under this plan, bytes.
    codebook_traffic_bytes: float
    #: Modelled global-reduction traffic under this plan, bytes.
    reduction_traffic_bytes: float

    @property
    def extra_kernel_launches(self) -> int:
        """A split reduction needs one extra (reduce) kernel launch."""
        return 1 if (self.kind == "codebook_centric"
                     and self.split_factor >= 1
                     and self.reduction_traffic_bytes > 0) else 0


def plan_dataflow(
    operation: str,
    config: VQConfig,
    naive_codebook_traffic: float,
    distinct_codebook_bytes: float,
    output_bytes: float,
    max_split: int,
    enable: bool = True,
) -> DataflowPlan:
    """Build the dataflow plan for a fused kernel.

    Parameters
    ----------
    operation:
        ``gemm`` / ``gemv`` / ``attention_k`` / ``attention_v``.
    naive_codebook_traffic:
        Global bytes the naive dataflow spends loading codebooks
        (duplicates included).
    distinct_codebook_bytes:
        Bytes of all distinct codebooks (the floor no dataflow can beat).
    output_bytes:
        Size of the kernel's output tensor, bytes — the unit of
        reduction traffic.
    max_split:
        Cap on the split factor (number of reduce-axis chunks that can
        be formed).
    enable:
        ``False`` produces the naive plan (used by the GC/SC/O1/O2
        ablation levels).
    """
    spec = axes_for(operation, config)
    if not enable:
        return DataflowPlan(
            kind="naive",
            axis_spec=spec,
            split_factor=1,
            codebook_traffic_bytes=naive_codebook_traffic,
            reduction_traffic_bytes=0.0,
        )
    split = optimal_split_factor(naive_codebook_traffic, output_bytes,
                                 max_split)
    codebook_traffic = max(
        distinct_codebook_bytes, naive_codebook_traffic / split)
    reduction = (split * output_bytes * 2.0
                 if spec.needs_global_reduction and split > 1 else 0.0)
    return DataflowPlan(
        kind="codebook_centric",
        axis_spec=spec,
        split_factor=split,
        codebook_traffic_bytes=codebook_traffic,
        reduction_traffic_bytes=reduction,
    )
