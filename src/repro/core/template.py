"""Kernel templates (Alg. 2's offline phase).

A :class:`KernelTemplate` packages what Alg. 2 derives before launch for
one (computation, VQ configuration) pair: the computation's axes, tile
and base resource shape, the fusion decision with its thread mapping,
the dataflow plan, and the cache boundaries.  The code generator
instantiates a template into a runnable kernel plus emitted source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cache import CacheBoundaries
from repro.core.dataflow import AxisSpec, axes_for
from repro.core.fusion import (
    REQUIRED_LAYOUT,
    FusionDecision,
    ThreadMapping,
    decide_fusion,
    thread_mapping,
)
from repro.core.heuristics import PlanKnobs
from repro.core.slack import ResourceSlack
from repro.vq.config import VQConfig

#: Base (codebook-free) resource shapes per computation kind, as the
#: compiler would report them for the fused kernels before the codebook
#: cache claims anything.  The GEMM shape is shared-memory-bound (like
#: double-buffered tiled GEMM), which is why O4's release of the
#: dequantization staging buffer buys occupancy.
BASE_RESOURCES = {
    "gemm": {"threads": 256, "regs": 64, "smem": 49152},
    "gemv": {"threads": 256, "regs": 52, "smem": 8192},
    "attention": {"threads": 256, "regs": 56, "smem": 32768},
}


@dataclass
class KernelTemplate:
    """Offline-derived parameters of one fused kernel (Alg. 2 lines 1-8)."""

    operation: str
    config: VQConfig
    knobs: PlanKnobs
    fusion: FusionDecision
    mapping: Optional[ThreadMapping]
    axis_spec: AxisSpec
    slack: Optional[ResourceSlack] = None
    extras: dict = field(default_factory=dict)

    @property
    def boundaries(self) -> Optional[CacheBoundaries]:
        return self.knobs.boundaries

    def describe(self) -> dict:
        """Human-readable summary of every chosen parameter."""
        out = {
            "operation": self.operation,
            "algorithm": self.config.name,
            "vq": self.config.spec_string(),
            "level": self.knobs.label,
            "placement": self.knobs.placement,
            "dataflow": ("codebook_centric" if self.knobs.dataflow
                         else "naive"),
            "fusion": self.fusion.level,
            "n_shuffles": self.fusion.n_shuffles,
            "switch_axes": self.axis_spec.switch_axes,
            "reduce_axes": self.axis_spec.reduce_axes,
        }
        if self.knobs.boundaries is not None:
            out["n_reg"] = self.knobs.boundaries.n_reg
            out["n_shared"] = self.knobs.boundaries.n_shared
        out.update(self.extras)
        return out


def build_template(operation: str, config: VQConfig,
                   knobs: PlanKnobs) -> KernelTemplate:
    """Assemble the offline template for an operation + config + knobs."""
    if operation not in BASE_RESOURCES:
        raise ValueError(f"unknown operation {operation!r}")
    fusion_op = "attention_v" if operation == "attention" else operation
    fusion = decide_fusion(
        config.vector_size, fusion_op,
        mismatch_fraction=1.0,
        threshold=knobs.shuffle_threshold,
        enable_register=knobs.register_fusion,
    )
    mapping = None
    if fusion.uses_register_fusion and fusion.n_shuffles > 0:
        mapping = thread_mapping(config.vector_size,
                                 REQUIRED_LAYOUT[fusion_op])
    axis_op = "attention_k" if operation == "attention" else operation
    axis_spec = axes_for(axis_op, config)
    return KernelTemplate(
        operation=operation,
        config=config,
        knobs=knobs,
        fusion=fusion,
        mapping=mapping,
        axis_spec=axis_spec,
    )
