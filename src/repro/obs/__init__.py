"""repro.obs — cross-layer observability for the serving stack.

Three pieces (see each module's docs):

- :mod:`repro.obs.trace` — :class:`Tracer` lifecycle/step recording
  with a near-zero-cost disabled path (:data:`NULL_TRACER`);
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and log-bucketed histograms with Prometheus-text and
  flat-dict export;
- :mod:`repro.obs.perfetto` / :mod:`repro.obs.report` — Chrome/Perfetto
  ``trace_event`` JSON export and the ``python -m repro.obs.report``
  markdown breakdown CLI.

Enable tracing with ``SimConfig(trace=True)`` / ``FleetConfig(trace=True)``
or the bench ``--trace-out`` / orchestrator ``--trace-dir`` flags.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perfetto import to_perfetto, write_perfetto
from .trace import (
    EVENT_NAMES,
    EVT_ADMITTED,
    EVT_EVICTED,
    EVT_PREEMPTED,
    EVT_PREFILL_CHUNK,
    EVT_REJECTED,
    NULL_TRACER,
    NullTracer,
    Tracer,
)

__all__ = [
    "Counter",
    "EVENT_NAMES",
    "EVT_ADMITTED",
    "EVT_EVICTED",
    "EVT_PREEMPTED",
    "EVT_PREFILL_CHUNK",
    "EVT_REJECTED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "to_perfetto",
    "write_perfetto",
]
