"""repro.obs — cross-layer observability for the serving stack.

Six pieces (see each module's docs):

- :mod:`repro.obs.trace` — :class:`Tracer` lifecycle/step recording
  with a near-zero-cost disabled path (:data:`NULL_TRACER`);
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and log-bucketed histograms with Prometheus-text and
  flat-dict export (histograms also export estimated
  ``_p50/_p95/_p99`` quantiles);
- :mod:`repro.obs.timeline` — :class:`TimelineCollector` windowed
  time-series telemetry over simulated time (queue depth, KV
  occupancy, per-window latency tails), sampled via SAMPLE events on
  the shared event heap;
- :mod:`repro.obs.slo` — :class:`SLOMonitor` multi-window burn-rate
  alerting and error-budget accounting over a timeline;
- :mod:`repro.obs.breakdown` — per-request latency decomposition
  (queue-wait / prefill / preemption-stall / decode) and tail-TTFT
  attribution;
- :mod:`repro.obs.perfetto` / :mod:`repro.obs.report` — Chrome/Perfetto
  ``trace_event`` JSON export (spans, instants and timeline counter
  tracks) and the ``python -m repro.obs.report`` markdown/HTML
  breakdown + dashboard CLI.

Enable tracing with ``SimConfig(trace=True)`` / ``FleetConfig(trace=True)``
or the bench ``--trace-out`` / orchestrator ``--trace-dir`` flags;
enable the timeline with ``SimConfig(timeline=TimelineConfig(...))`` /
``FleetConfig(timeline=...)`` or ``--timeline-out`` /
``--timeline-dir``.
"""

from .breakdown import breakdown_summary, request_breakdowns
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perfetto import to_perfetto, write_perfetto
from .slo import BurnRateRule, SLOAlert, SLOMonitor, SLOReport
from .timeline import (
    Timeline,
    TimelineCollector,
    TimelineConfig,
    TimelineWindow,
)
from .trace import (
    EVENT_NAMES,
    EVT_ADMITTED,
    EVT_EVICTED,
    EVT_PREEMPTED,
    EVT_PREFILL_CHUNK,
    EVT_REJECTED,
    NULL_TRACER,
    NullTracer,
    Tracer,
)

__all__ = [
    "BurnRateRule",
    "Counter",
    "EVENT_NAMES",
    "EVT_ADMITTED",
    "EVT_EVICTED",
    "EVT_PREEMPTED",
    "EVT_PREFILL_CHUNK",
    "EVT_REJECTED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SLOAlert",
    "SLOMonitor",
    "SLOReport",
    "Timeline",
    "TimelineCollector",
    "TimelineConfig",
    "TimelineWindow",
    "Tracer",
    "breakdown_summary",
    "request_breakdowns",
    "to_perfetto",
    "write_perfetto",
]
