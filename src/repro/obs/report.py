"""``python -m repro.obs.report`` — markdown breakdown of a Perfetto trace.

Consumes the ``trace_event`` JSON written by :mod:`repro.obs.perfetto`
(or by the ``--trace-out`` / ``--trace-dir`` flags that wrap it) and
renders the causal story behind a run's aggregate metrics:

- a **time breakdown**: total/mean queued vs prefill vs decode seconds
  across requests, with each phase's share of summed request lifetime;
- **latency percentiles**: TTFT (queued + prefill) and TPOT (decode
  time per generated token) — these reconcile with
  ``ServingReport.metrics()`` because both derive from the same
  simulated timestamps (percentiles replicate ``np.percentile``'s
  linear interpolation, see :func:`percentile`);
- **preemption causes**: per-replica preemption counts and recompute
  token totals (the only cause today is KV block exhaustion under
  paged admission);
- **per-replica load**: requests served, steps executed, busy seconds
  and the max/mean imbalance ratio across replicas.

The module is import-safe (pure stdlib) and the CLI writes markdown to
stdout or ``--out``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

__all__ = ["build_report", "load_trace", "percentile", "render_markdown"]

_PHASES = ("queued", "prefill", "decode")


def percentile(values: Sequence[float], q: float) -> float:
    """``np.percentile(values, q)`` with linear interpolation, in stdlib.

    Kept numerically identical to numpy's default method so the report
    reconciles with ``ServingReport`` aggregates bit-for-bit on the
    same inputs.
    """
    if not values:
        return math.nan
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(data[int(rank)])
    return data[lo] * (hi - rank) + data[hi] * (rank - lo)


def load_trace(path) -> dict:
    """Load and structurally validate a ``trace_event`` JSON file."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(
            f"{path}: not a trace_event JSON object (missing traceEvents)")
    if not isinstance(doc["traceEvents"], list):
        raise ValueError(f"{path}: traceEvents is not a list")
    return doc


def build_report(doc: dict) -> dict:
    """Digest a trace document into plain aggregate structures."""
    # Per-request phase spans, keyed by (pid, tid).
    spans: Dict[tuple, Dict[str, float]] = defaultdict(dict)
    req_args: Dict[tuple, Dict[str, float]] = defaultdict(dict)
    # Per-replica (pid) engine accounting.
    steps: Dict[int, int] = defaultdict(int)
    busy_us: Dict[int, float] = defaultdict(float)
    preemptions: Dict[int, int] = defaultdict(int)
    recompute_tokens: Dict[int, int] = defaultdict(int)
    evicted_blocks: Dict[int, int] = defaultdict(int)
    rejected = 0
    pid_names: Dict[int, str] = {}
    t_min, t_max = math.inf, -math.inf

    for ev in doc["traceEvents"]:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                pid_names[ev["pid"]] = ev["args"]["name"]
            continue
        ts = ev.get("ts")
        if ts is not None:
            t_min = min(t_min, ts)
            t_max = max(t_max, ts + ev.get("dur", 0.0))
        if ph == "X":
            if ev.get("cat") == "engine":
                steps[ev["pid"]] += 1
                busy_us[ev["pid"]] += ev["dur"]
            elif ev.get("cat") == "request":
                key = (ev["pid"], ev["tid"])
                spans[key][ev["name"]] = ev["dur"] / 1e6
                req_args[key].update(ev.get("args", {}))
        elif ph == "i":
            name = ev.get("name")
            if name == "preempted":
                preemptions[ev["pid"]] += 1
                recompute_tokens[ev["pid"]] += \
                    ev.get("args", {}).get("recompute_tokens", 0)
            elif name == "evicted":
                evicted_blocks[ev["pid"]] += \
                    ev.get("args", {}).get("evicted_blocks", 0)
            elif name == "rejected":
                rejected += 1

    # Phase aggregates across completed requests (all three spans seen).
    complete = {k: v for k, v in spans.items()
                if all(p in v for p in _PHASES)}
    phase_totals = {p: sum(v[p] for v in complete.values())
                    for p in _PHASES}
    ttft_ms = [(v["queued"] + v["prefill"]) * 1e3
               for v in complete.values()]
    tpot_ms: List[float] = []
    requests_per_pid: Dict[int, int] = defaultdict(int)
    for key, v in complete.items():
        requests_per_pid[key[0]] += 1
        out_tokens = req_args[key].get("output_tokens", 0)
        if out_tokens > 1:
            tpot_ms.append(v["decode"] * 1e3 / (out_tokens - 1))

    pids = sorted(set(steps) | set(requests_per_pid) | set(preemptions))
    replicas = []
    busy_values = []
    span_s = (t_max - t_min) / 1e6 if t_max > t_min else 0.0
    for pid in pids:
        busy_s = busy_us[pid] / 1e6
        busy_values.append(busy_s)
        replicas.append({
            "pid": pid,
            "name": pid_names.get(pid, f"pid {pid}"),
            "requests": requests_per_pid[pid],
            "steps": steps[pid],
            "busy_s": busy_s,
            "utilization": busy_s / span_s if span_s > 0 else 0.0,
            "preemptions": preemptions[pid],
            "recompute_tokens": recompute_tokens[pid],
            "evicted_blocks": evicted_blocks[pid],
        })
    mean_busy = sum(busy_values) / len(busy_values) if busy_values else 0.0
    imbalance = (max(busy_values) / mean_busy
                 if busy_values and mean_busy > 0 else 1.0)

    return {
        "name": doc.get("otherData", {}).get("name", "trace"),
        "n_requests": len(complete),
        "n_rejected": rejected,
        "n_preempted": sum(preemptions.values()),
        "span_s": span_s,
        "phase_totals_s": phase_totals,
        "ttft_ms": ttft_ms,
        "tpot_ms": tpot_ms,
        "replicas": replicas,
        "imbalance": imbalance,
    }


def _fmt(value: float, digits: int = 3) -> str:
    if value != value:  # NaN
        return "-"
    return f"{value:.{digits}f}"


def render_markdown(report: dict) -> str:
    """Render :func:`build_report` output as a markdown document."""
    lines = [f"# Trace report: {report['name']}", ""]
    lines.append(f"- requests completed: **{report['n_requests']}**"
                 f" · rejected: {report['n_rejected']}"
                 f" · preempted: {report['n_preempted']}")
    lines.append(f"- traced span: {_fmt(report['span_s'])} s"
                 f" · replicas: {len(report['replicas'])}"
                 f" · load imbalance (max/mean busy):"
                 f" {_fmt(report['imbalance'], 2)}x")
    lines.append("")

    lines.append("## Where request time goes")
    lines.append("")
    lines.append("| phase | total s | mean ms/req | share |")
    lines.append("|---|---|---|---|")
    total = sum(report["phase_totals_s"].values()) or math.nan
    n = report["n_requests"] or 1
    for phase in _PHASES:
        t = report["phase_totals_s"].get(phase, 0.0)
        lines.append(f"| {phase} | {_fmt(t)} | {_fmt(t * 1e3 / n)} "
                     f"| {_fmt(100.0 * t / total, 1)}% |")
    lines.append("")

    lines.append("## Latency percentiles")
    lines.append("")
    lines.append("| metric | p50 | p95 | p99 | mean |")
    lines.append("|---|---|---|---|---|")
    for label, values in (("TTFT ms", report["ttft_ms"]),
                          ("TPOT ms", report["tpot_ms"])):
        mean = sum(values) / len(values) if values else math.nan
        lines.append(
            f"| {label} | {_fmt(percentile(values, 50))} "
            f"| {_fmt(percentile(values, 95))} "
            f"| {_fmt(percentile(values, 99))} | {_fmt(mean)} |")
    lines.append("")

    if report["n_preempted"]:
        lines.append("## Preemptions")
        lines.append("")
        lines.append("All preemptions are recompute preemptions caused by "
                     "KV block exhaustion under paged admission.")
        lines.append("")
        lines.append("| replica | preemptions | recompute tokens "
                     "| evicted blocks |")
        lines.append("|---|---|---|---|")
        for rep in report["replicas"]:
            if rep["preemptions"] or rep["evicted_blocks"]:
                lines.append(f"| {rep['name']} | {rep['preemptions']} "
                             f"| {rep['recompute_tokens']} "
                             f"| {rep['evicted_blocks']} |")
        lines.append("")

    lines.append("## Per-replica load")
    lines.append("")
    lines.append("| replica | requests | steps | busy s | utilization |")
    lines.append("|---|---|---|---|---|")
    for rep in report["replicas"]:
        lines.append(f"| {rep['name']} | {rep['requests']} "
                     f"| {rep['steps']} | {_fmt(rep['busy_s'])} "
                     f"| {_fmt(100.0 * rep['utilization'], 1)}% |")
    lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a markdown breakdown of a repro.obs "
                    "Perfetto trace.")
    parser.add_argument("trace", help="trace_event JSON file "
                                      "(from --trace-out / --trace-dir)")
    parser.add_argument("--out", default=None,
                        help="write markdown here instead of stdout")
    args = parser.parse_args(argv)

    doc = load_trace(args.trace)
    markdown = render_markdown(build_report(doc))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(markdown)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
