"""``python -m repro.obs.report`` — markdown breakdown of a Perfetto trace.

Consumes the ``trace_event`` JSON written by :mod:`repro.obs.perfetto`
(or by the ``--trace-out`` / ``--trace-dir`` flags that wrap it) and
renders the causal story behind a run's aggregate metrics:

- a **time breakdown**: total/mean queued vs prefill vs
  preemption-stall vs decode seconds across requests
  (:mod:`repro.obs.breakdown`), aggregated overall *and* per replica
  for fleet (multi-pid) traces, with tail-TTFT attribution;
- **latency percentiles**: TTFT (queued + prefill) and TPOT (decode
  time per generated token) — these reconcile with
  ``ServingReport.metrics()`` because both derive from the same
  simulated timestamps (percentiles replicate ``np.percentile``'s
  linear interpolation, see :func:`percentile`);
- **preemption causes**: per-replica preemption counts and recompute
  token totals (the only cause today is KV block exhaustion under
  paged admission);
- **per-replica load**: requests served, steps executed, busy seconds
  and the max/mean imbalance ratio across replicas;
- a **dashboard** (``--dashboard`` / ``--html``): sparkline tables of
  the timeline counter tracks (``"C"`` events — queue depth, running
  batch, KV occupancy, windowed flow rates) plus the SLO alert
  history, when the trace carries them.

The module is import-safe (pure stdlib) and the CLI writes markdown to
stdout or ``--out``.
"""

from __future__ import annotations

import argparse
import html as _html
import json
import math
import sys
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

__all__ = [
    "build_report",
    "counter_series",
    "load_trace",
    "percentile",
    "render_dashboard",
    "render_html",
    "render_markdown",
    "sparkline",
]

_PHASES = ("queued", "prefill", "decode")
_SEGMENTS = ("queued", "prefill", "stall", "decode")


def percentile(values: Sequence[float], q: float) -> float:
    """``np.percentile(values, q)`` with linear interpolation, in stdlib.

    Kept numerically identical to numpy's default method so the report
    reconciles with ``ServingReport`` aggregates bit-for-bit on the
    same inputs.
    """
    if not values:
        return math.nan
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(data[int(rank)])
    return data[lo] * (hi - rank) + data[hi] * (rank - lo)


def load_trace(path) -> dict:
    """Load and structurally validate a ``trace_event`` JSON file."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(
            f"{path}: not a trace_event JSON object (missing traceEvents)")
    if not isinstance(doc["traceEvents"], list):
        raise ValueError(f"{path}: traceEvents is not a list")
    return doc


def build_report(doc: dict) -> dict:
    """Digest a trace document into plain aggregate structures."""
    # Per-request phase spans, keyed by (pid, tid).
    spans: Dict[tuple, Dict[str, float]] = defaultdict(dict)
    req_args: Dict[tuple, Dict[str, float]] = defaultdict(dict)
    # Per-replica (pid) engine accounting.
    steps: Dict[int, int] = defaultdict(int)
    busy_us: Dict[int, float] = defaultdict(float)
    preemptions: Dict[int, int] = defaultdict(int)
    recompute_tokens: Dict[int, int] = defaultdict(int)
    evicted_blocks: Dict[int, int] = defaultdict(int)
    rejected = 0
    pid_names: Dict[int, str] = {}
    t_min, t_max = math.inf, -math.inf

    for ev in doc["traceEvents"]:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                pid_names[ev["pid"]] = ev["args"]["name"]
            continue
        ts = ev.get("ts")
        if ts is not None:
            t_min = min(t_min, ts)
            t_max = max(t_max, ts + ev.get("dur", 0.0))
        if ph == "X":
            if ev.get("cat") == "engine":
                steps[ev["pid"]] += 1
                busy_us[ev["pid"]] += ev["dur"]
            elif ev.get("cat") == "request":
                key = (ev["pid"], ev["tid"])
                spans[key][ev["name"]] = ev["dur"] / 1e6
                req_args[key].update(ev.get("args", {}))
        elif ph == "i":
            name = ev.get("name")
            if name == "preempted":
                preemptions[ev["pid"]] += 1
                recompute_tokens[ev["pid"]] += \
                    ev.get("args", {}).get("recompute_tokens", 0)
            elif name == "evicted":
                evicted_blocks[ev["pid"]] += \
                    ev.get("args", {}).get("evicted_blocks", 0)
            elif name == "rejected":
                rejected += 1

    # Phase aggregates across completed requests (all three spans seen).
    complete = {k: v for k, v in spans.items()
                if all(p in v for p in _PHASES)}
    phase_totals = {p: sum(v[p] for v in complete.values())
                    for p in _PHASES}
    ttft_ms = [(v["queued"] + v["prefill"]) * 1e3
               for v in complete.values()]
    tpot_ms: List[float] = []
    requests_per_pid: Dict[int, int] = defaultdict(int)
    for key, v in complete.items():
        requests_per_pid[key[0]] += 1
        out_tokens = req_args[key].get("output_tokens", 0)
        if out_tokens > 1:
            tpot_ms.append(v["decode"] * 1e3 / (out_tokens - 1))

    pids = sorted(set(steps) | set(requests_per_pid) | set(preemptions))
    replicas = []
    busy_values = []
    span_s = (t_max - t_min) / 1e6 if t_max > t_min else 0.0
    for pid in pids:
        busy_s = busy_us[pid] / 1e6
        busy_values.append(busy_s)
        replicas.append({
            "pid": pid,
            "name": pid_names.get(pid, f"pid {pid}"),
            "requests": requests_per_pid[pid],
            "steps": steps[pid],
            "busy_s": busy_s,
            "utilization": busy_s / span_s if span_s > 0 else 0.0,
            "preemptions": preemptions[pid],
            "recompute_tokens": recompute_tokens[pid],
            "evicted_blocks": evicted_blocks[pid],
        })
    mean_busy = sum(busy_values) / len(busy_values) if busy_values else 0.0
    imbalance = (max(busy_values) / mean_busy
                 if busy_values and mean_busy > 0 else 1.0)

    # Lazy import: breakdown imports percentile from this module.
    from repro.obs.breakdown import breakdown_summary, request_breakdowns
    breakdown = breakdown_summary(request_breakdowns(doc))

    return {
        "name": doc.get("otherData", {}).get("name", "trace"),
        "n_requests": len(complete),
        "n_rejected": rejected,
        "n_preempted": sum(preemptions.values()),
        "span_s": span_s,
        "phase_totals_s": phase_totals,
        "ttft_ms": ttft_ms,
        "tpot_ms": tpot_ms,
        "replicas": replicas,
        "imbalance": imbalance,
        "breakdown": breakdown,
        "pid_names": pid_names,
    }


def _fmt(value: float, digits: int = 3) -> str:
    if value != value:  # NaN
        return "-"
    return f"{value:.{digits}f}"


def render_markdown(report: dict) -> str:
    """Render :func:`build_report` output as a markdown document."""
    lines = [f"# Trace report: {report['name']}", ""]
    lines.append(f"- requests completed: **{report['n_requests']}**"
                 f" · rejected: {report['n_rejected']}"
                 f" · preempted: {report['n_preempted']}")
    lines.append(f"- traced span: {_fmt(report['span_s'])} s"
                 f" · replicas: {len(report['replicas'])}"
                 f" · load imbalance (max/mean busy):"
                 f" {_fmt(report['imbalance'], 2)}x")
    lines.append("")

    lines.append("## Where request time goes")
    lines.append("")
    lines.append("| phase | total s | mean ms/req | share |")
    lines.append("|---|---|---|---|")
    total = sum(report["phase_totals_s"].values()) or math.nan
    n = report["n_requests"] or 1
    for phase in _PHASES:
        t = report["phase_totals_s"].get(phase, 0.0)
        lines.append(f"| {phase} | {_fmt(t)} | {_fmt(t * 1e3 / n)} "
                     f"| {_fmt(100.0 * t / total, 1)}% |")
    lines.append("")

    bd = report.get("breakdown")
    if bd and bd["n_requests"]:
        lines.append("## Latency breakdown")
        lines.append("")
        lines.append("Queue wait, prefill compute, preemption stall and "
                     "decode, summing exactly to end-to-end latency.")
        lines.append("")
        lines.append("| segment | total s | mean ms/req | share |")
        lines.append("|---|---|---|---|")
        n_bd = bd["n_requests"]
        for seg in _SEGMENTS:
            t = bd["totals_s"][seg]
            lines.append(f"| {seg} | {_fmt(t)} "
                         f"| {_fmt(t * 1e3 / n_bd)} "
                         f"| {_fmt(100.0 * bd['shares'][seg], 1)}% |")
        lines.append("")
        if len(bd["per_replica"]) > 1:
            names = report.get("pid_names", {})
            lines.append("### Per replica")
            lines.append("")
            lines.append("| replica | requests | queued s | prefill s "
                         "| stall s | decode s |")
            lines.append("|---|---|---|---|---|---|")
            for pid, agg in bd["per_replica"].items():
                label = names.get(pid, f"pid {pid}")
                lines.append(
                    f"| {label} | {agg['requests']} "
                    f"| {_fmt(agg['queued'])} | {_fmt(agg['prefill'])} "
                    f"| {_fmt(agg['stall'])} | {_fmt(agg['decode'])} |")
            lines.append("")
        tail = bd["tail_ttft_split"]
        overall = bd["overall_ttft_split"]
        lines.append(
            f"Tail TTFT (p{bd['ttft_tail_q']:g}, "
            f">= {_fmt(bd['ttft_tail_cut_ms'], 1)} ms, "
            f"{bd['tail_n']} requests) splits "
            f"{100 * tail['queued']:.0f}% queued / "
            f"{100 * tail['prefill']:.0f}% prefill / "
            f"{100 * tail['stall']:.0f}% stall, vs "
            f"{100 * overall['queued']:.0f}% / "
            f"{100 * overall['prefill']:.0f}% / "
            f"{100 * overall['stall']:.0f}% overall — dominant tail "
            f"phase: **{bd['tail_dominant_phase']}**.")
        lines.append("")

    lines.append("## Latency percentiles")
    lines.append("")
    lines.append("| metric | p50 | p95 | p99 | mean |")
    lines.append("|---|---|---|---|---|")
    for label, values in (("TTFT ms", report["ttft_ms"]),
                          ("TPOT ms", report["tpot_ms"])):
        mean = sum(values) / len(values) if values else math.nan
        lines.append(
            f"| {label} | {_fmt(percentile(values, 50))} "
            f"| {_fmt(percentile(values, 95))} "
            f"| {_fmt(percentile(values, 99))} | {_fmt(mean)} |")
    lines.append("")

    if report["n_preempted"]:
        lines.append("## Preemptions")
        lines.append("")
        lines.append("All preemptions are recompute preemptions caused by "
                     "KV block exhaustion under paged admission.")
        lines.append("")
        lines.append("| replica | preemptions | recompute tokens "
                     "| evicted blocks |")
        lines.append("|---|---|---|---|")
        for rep in report["replicas"]:
            if rep["preemptions"] or rep["evicted_blocks"]:
                lines.append(f"| {rep['name']} | {rep['preemptions']} "
                             f"| {rep['recompute_tokens']} "
                             f"| {rep['evicted_blocks']} |")
        lines.append("")

    lines.append("## Per-replica load")
    lines.append("")
    lines.append("| replica | requests | steps | busy s | utilization |")
    lines.append("|---|---|---|---|---|")
    for rep in report["replicas"]:
        lines.append(f"| {rep['name']} | {rep['requests']} "
                     f"| {rep['steps']} | {_fmt(rep['busy_s'])} "
                     f"| {_fmt(100.0 * rep['utilization'], 1)}% |")
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Dashboard: timeline counter tracks + SLO history as sparkline tables
# ----------------------------------------------------------------------
_SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Counter events whose args carry a generic value key keep the track
#: name instead (``kv_occupancy`` args are ``{"fraction": ...}``).
_GENERIC_ARG_KEYS = frozenset({"fraction", "rate", "value"})


def counter_series(doc: dict) -> Dict[int, Dict[str, List[tuple]]]:
    """Per-pid counter series from a trace's ``"C"`` events.

    Returns ``{pid: {series_name: [(t_s, value), ...]}}`` in time
    order.  Series names come from the counter args (``queue_depth``,
    ``arrivals_per_s``, ...); single-value counters like
    ``kv_occupancy`` use the track name.
    """
    series: Dict[int, Dict[str, List[tuple]]] = defaultdict(
        lambda: defaultdict(list))
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "C":
            continue
        pid = ev["pid"]
        for key, value in ev.get("args", {}).items():
            name = ev["name"] if key in _GENERIC_ARG_KEYS else key
            series[pid][name].append((ev["ts"] / 1e6, float(value)))
    return {pid: {name: sorted(points) for name, points in tracks.items()}
            for pid, tracks in series.items()}


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Unicode sparkline of a series, downsampled to ``width`` cells.

    Downsampling takes the max of each cell's bucket — a dashboard
    exists to surface spikes, and mean-pooling would erase exactly the
    windows worth looking at.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        per = len(vals) / width
        vals = [max(vals[int(i * per):max(int(i * per) + 1,
                                          int((i + 1) * per))])
                for i in range(width)]
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(vals)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int((v - lo) * scale)] for v in vals)


def _slo_events(doc: dict) -> List[dict]:
    return [ev for ev in doc["traceEvents"]
            if ev.get("ph") == "i" and ev.get("cat") == "slo"]


def render_dashboard(doc: dict) -> str:
    """Markdown dashboard: one sparkline table per replica plus the
    SLO alert history, from the trace's counter tracks alone (no
    separate timeline file needed)."""
    report = build_report(doc)
    counters = counter_series(doc)
    names = report.get("pid_names", {})
    lines = [f"# Dashboard: {report['name']}", ""]
    lines.append(f"- traced span: {_fmt(report['span_s'])} s"
                 f" · requests completed: {report['n_requests']}"
                 f" · rejected: {report['n_rejected']}"
                 f" · preempted: {report['n_preempted']}")
    lines.append("")

    if not counters:
        lines.append("_No timeline counter tracks in this trace — "
                     "re-run with `--timeline-out` (bench) or "
                     "`SimConfig(timeline=TimelineConfig(...))`._")
        lines.append("")
    for pid in sorted(counters):
        lines.append(f"## {names.get(pid, f'pid {pid}')}")
        lines.append("")
        lines.append("| series | trend | min | mean | max | last |")
        lines.append("|---|---|---|---|---|---|")
        for name, points in sorted(counters[pid].items()):
            vals = [v for _, v in points]
            mean = sum(vals) / len(vals)
            lines.append(
                f"| {name} | `{sparkline(vals)}` "
                f"| {_fmt(min(vals))} | {_fmt(mean)} "
                f"| {_fmt(max(vals))} | {_fmt(vals[-1])} |")
        lines.append("")

    slo_evs = _slo_events(doc)
    if slo_evs:
        lines.append("## SLO alerts")
        lines.append("")
        lines.append("| event | t (s) | peak burn |")
        lines.append("|---|---|---|")
        for ev in sorted(slo_evs, key=lambda e: e["ts"]):
            burn = ev.get("args", {}).get("peak_burn_rate",
                                          math.nan)
            lines.append(f"| {ev['name']} | {_fmt(ev['ts'] / 1e6)} "
                         f"| {_fmt(burn, 1)}x |")
        lines.append("")

    bd = report.get("breakdown")
    if bd and bd["n_requests"]:
        lines.append("## Latency breakdown")
        lines.append("")
        lines.append("| segment | share |")
        lines.append("|---|---|")
        for seg in _SEGMENTS:
            lines.append(
                f"| {seg} | {_fmt(100.0 * bd['shares'][seg], 1)}% |")
        lines.append("")
        lines.append(f"Dominant tail-TTFT phase "
                     f"(p{bd['ttft_tail_q']:g}): "
                     f"**{bd['tail_dominant_phase']}**.")
        lines.append("")
    return "\n".join(lines)


def render_html(markdown: str, title: str = "repro dashboard") -> str:
    """Self-contained HTML page from this module's own markdown.

    Handles exactly the constructs the renderers above emit (headers,
    pipe tables, lists, inline code/bold) — not a general markdown
    engine, just enough to open a dashboard in a browser.
    """
    out = ["<!DOCTYPE html>", "<html><head>",
           '<meta charset="utf-8">',
           f"<title>{_html.escape(title)}</title>",
           "<style>",
           "body{font-family:system-ui,sans-serif;margin:2em;"
           "max-width:72em}",
           "table{border-collapse:collapse;margin:1em 0}",
           "td,th{border:1px solid #ccc;padding:.3em .6em;"
           "text-align:left}",
           "code{font-family:monospace;white-space:pre}",
           "</style>", "</head><body>"]

    def inline(text: str) -> str:
        text = _html.escape(text)
        while "`" in text:
            pre, _, rest = text.partition("`")
            code, tick, rest = rest.partition("`")
            if not tick:
                text = pre + "`" + code
                break
            text = pre + f"<code>{code}</code>" + rest
        while "**" in text:
            pre, _, rest = text.partition("**")
            bold, mark, rest = rest.partition("**")
            if not mark:
                text = pre + "**" + bold
                break
            text = pre + f"<b>{bold}</b>" + rest
        return text

    in_table = False
    for line in markdown.splitlines():
        stripped = line.strip()
        is_row = stripped.startswith("|") and stripped.endswith("|")
        if in_table and not is_row:
            out.append("</table>")
            in_table = False
        if not stripped:
            continue
        if stripped.startswith("#"):
            level = len(stripped) - len(stripped.lstrip("#"))
            out.append(f"<h{level}>"
                       f"{inline(stripped[level:].strip())}</h{level}>")
        elif is_row:
            cells = [c.strip() for c in stripped.strip("|").split("|")]
            if all(set(c) <= set("-: ") for c in cells):
                continue  # separator row
            tag = "td" if in_table else "th"
            if not in_table:
                out.append("<table>")
                in_table = True
            out.append("<tr>" + "".join(
                f"<{tag}>{inline(c)}</{tag}>" for c in cells) + "</tr>")
        elif stripped.startswith("- "):
            out.append(f"<p>{inline(stripped[2:])}</p>")
        else:
            out.append(f"<p>{inline(stripped)}</p>")
    if in_table:
        out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a markdown breakdown of a repro.obs "
                    "Perfetto trace.")
    parser.add_argument("trace", help="trace_event JSON file "
                                      "(from --trace-out / --trace-dir)")
    parser.add_argument("--out", default=None,
                        help="write markdown here instead of stdout")
    parser.add_argument("--dashboard", action="store_true",
                        help="render the sparkline dashboard (timeline "
                             "counter tracks + SLO history) instead of "
                             "the trace report")
    parser.add_argument("--html", default=None, metavar="PATH",
                        help="additionally write the output as a "
                             "self-contained HTML page")
    args = parser.parse_args(argv)

    doc = load_trace(args.trace)
    if args.dashboard:
        markdown = render_dashboard(doc)
    else:
        markdown = render_markdown(build_report(doc))
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(render_html(
                markdown, title=doc.get("otherData", {}).get(
                    "name", "repro dashboard")))
        print(f"wrote {args.html}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(markdown)
        print(f"wrote {args.out}")
    elif not args.html:
        sys.stdout.write(markdown)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
