"""Multi-window SLO burn-rate monitoring over a timeline.

The SRE playbook's alerting strategy, applied to simulated serving:
define an *error budget* from an attainment target (99% of completions
must meet the per-request TTFT/TPOT limits → 1% may violate), then
alert on the *burn rate* — the ratio of the observed violation
fraction to the budget — evaluated over a pair of trailing windows.
A **long** window makes the alert represent real budget spend; a
**short** window makes it reset quickly once the incident drains
(without it, a long-window alert stays red long after recovery).  A
rule fires when *both* windows burn above its factor and clears when
either drops back below.

Input is a :class:`~repro.obs.timeline.Timeline` whose windows carry
per-window completion and violation counts (recorded when the
timeline's :class:`~repro.obs.timeline.TimelineConfig` carries SLO
limits) — or raw TTFT/TPOT samples, which :class:`SLOMonitor` can
re-judge against explicit limits for post-hoc what-if sweeps.  Output
is an :class:`SLOReport`: the budget account plus fire/clear
:class:`SLOAlert` events, which the serving/fleet reports attach and
the Perfetto export renders as instants.

Evaluation runs once at end of run over closed windows — never in the
simulation hot loop — and is a pure function of the timeline, so
report metrics stay bit-identical whether a monitor ran or not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.obs.timeline import Timeline, TimelineWindow

__all__ = [
    "BurnRateRule",
    "SLOAlert",
    "SLOMonitor",
    "SLOReport",
    "default_rules",
]


@dataclass(frozen=True)
class BurnRateRule:
    """One fast/slow window pair with its burn-rate threshold."""

    name: str
    #: Trailing long window (seconds of simulated time).
    long_s: float
    #: Trailing short window; must not exceed the long window.
    short_s: float
    #: Fire when both windows burn at >= this multiple of the budget.
    factor: float

    def __post_init__(self):
        if self.long_s <= 0 or self.short_s <= 0:
            raise ValueError("windows must be positive")
        if self.short_s > self.long_s:
            raise ValueError("short_s must not exceed long_s")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


def default_rules(window_s: float) -> List[BurnRateRule]:
    """The SRE fast/slow pair, scaled to the sampling window.

    Production practice uses 5m/1h at 14.4x and 30m/6h at 6x against a
    30-day budget; simulations run seconds, so the same *shape* is
    expressed in sampling windows: a fast rule catching sharp
    overload, a slow rule catching sustained slow burn.
    """
    return [
        BurnRateRule(name="fast", long_s=8 * window_s,
                     short_s=2 * window_s, factor=10.0),
        BurnRateRule(name="slow", long_s=32 * window_s,
                     short_s=8 * window_s, factor=2.0),
    ]


@dataclass(frozen=True)
class SLOAlert:
    """One fire(/clear) episode of one burn-rate rule."""

    rule: str
    fired_s: float
    #: ``None`` when the run ended with the alert still firing.
    cleared_s: Optional[float]
    #: Highest long-window burn rate observed while firing.
    peak_burn_rate: float

    @property
    def active_s(self) -> Optional[float]:
        if self.cleared_s is None:
            return None
        return self.cleared_s - self.fired_s

    def to_json(self) -> dict:
        return {"rule": self.rule, "fired_s": self.fired_s,
                "cleared_s": self.cleared_s,
                "peak_burn_rate": self.peak_burn_rate}


@dataclass
class SLOReport:
    """Error-budget account plus the alert history of one run."""

    target: float
    n_completions: int
    n_violations: int
    alerts: List[SLOAlert]

    @property
    def budget(self) -> float:
        """Allowed violation fraction (1 - target)."""
        return 1.0 - self.target

    @property
    def violation_fraction(self) -> float:
        return self.n_violations / self.n_completions \
            if self.n_completions else 0.0

    @property
    def attainment(self) -> float:
        """Fraction of completions that met the SLO."""
        return 1.0 - self.violation_fraction

    @property
    def budget_consumed(self) -> float:
        """Run-level budget spend as a multiple of the budget (1.0 =
        exactly spent, >1 = overspent)."""
        return self.violation_fraction / self.budget

    @property
    def fired(self) -> bool:
        return bool(self.alerts)

    def alerts_for(self, rule: str) -> List[SLOAlert]:
        return [a for a in self.alerts if a.rule == rule]

    def summary(self) -> str:
        lines = [
            f"SLO target {self.target:.2%}: attainment "
            f"{self.attainment:.2%} ({self.n_violations}/"
            f"{self.n_completions} violations, budget consumed "
            f"{self.budget_consumed:.1f}x)"]
        for a in self.alerts:
            cleared = (f"cleared {a.cleared_s:.2f}s"
                       if a.cleared_s is not None else "never cleared")
            lines.append(
                f"  alert[{a.rule}] fired {a.fired_s:.2f}s, {cleared}, "
                f"peak burn {a.peak_burn_rate:.1f}x")
        if not self.alerts:
            lines.append("  no burn-rate alerts fired")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {"target": self.target,
                "n_completions": self.n_completions,
                "n_violations": self.n_violations,
                "attainment": self.attainment,
                "budget_consumed": self.budget_consumed,
                "alerts": [a.to_json() for a in self.alerts]}


class _RuleState:
    """Mutable evaluation state of one rule during the window walk."""

    __slots__ = ("rule", "active", "fired_s", "peak", "alerts")

    def __init__(self, rule: BurnRateRule):
        self.rule = rule
        self.active = False
        self.fired_s = 0.0
        self.peak = 0.0
        self.alerts: List[SLOAlert] = []


class SLOMonitor:
    """Evaluates burn-rate rules against a timeline's windows.

    With ``ttft_s`` / ``tpot_s`` left ``None`` the monitor consumes the
    violation counts the collector recorded (the timeline must have
    run with SLO limits configured); passing limits re-judges every
    window's raw latency samples instead, enabling post-hoc "what if
    the SLO were tighter" sweeps over one recorded timeline.
    """

    def __init__(self, target: float = 0.99,
                 rules: Optional[Sequence[BurnRateRule]] = None,
                 ttft_s: Optional[float] = None,
                 tpot_s: Optional[float] = None):
        if not 0 < target < 1:
            raise ValueError("target must be in (0, 1)")
        if ttft_s is not None and ttft_s <= 0:
            raise ValueError("ttft_s must be positive")
        if tpot_s is not None and tpot_s <= 0:
            raise ValueError("tpot_s must be positive")
        self.target = target
        self.rules = list(rules) if rules is not None else None
        self.ttft_s = ttft_s
        self.tpot_s = tpot_s

    @property
    def rejudges(self) -> bool:
        return self.ttft_s is not None or self.tpot_s is not None

    def _counts(self, window: TimelineWindow) -> tuple:
        """(completions, violations) of one window under this monitor."""
        if not self.rejudges:
            return window.completions, window.slo_violations
        bad = 0
        if self.ttft_s is not None:
            limit_ms = self.ttft_s * 1e3
            bad = sum(1 for v in window.ttft_ms if v > limit_ms)
        if self.tpot_s is not None:
            limit_ms = self.tpot_s * 1e3
            bad += sum(1 for v in window.tpot_ms if v > limit_ms)
            # A completion can violate both limits; clamp to the
            # completion count so fractions stay in [0, 1].
            bad = min(bad, window.completions)
        return window.completions, bad

    @staticmethod
    def _trailing_burn(counts: List[tuple], i: int, span_windows: int,
                       budget: float) -> float:
        comp = viol = 0
        for j in range(max(0, i - span_windows + 1), i + 1):
            comp += counts[j][0]
            viol += counts[j][1]
        if comp == 0:
            return 0.0
        return (viol / comp) / budget

    def evaluate(self, timeline: Timeline) -> SLOReport:
        """Walk the (fleet-merged) windows and build the report."""
        cfg = timeline.config
        if (not self.rejudges
                and (cfg is None or not cfg.tracks_slo)):
            raise ValueError(
                "timeline recorded no SLO violation counts; run it "
                "with TimelineConfig(slo_ttft_s=...) or give the "
                "monitor explicit ttft_s/tpot_s limits")
        windows = timeline.merged()
        counts = [self._counts(w) for w in windows]
        budget = 1.0 - self.target
        rules = (self.rules if self.rules is not None
                 else default_rules(timeline.window_s))
        states = [_RuleState(rule) for rule in rules]
        for i, window in enumerate(windows):
            for st in states:
                rule = st.rule
                long_n = max(1, math.ceil(rule.long_s
                                          / timeline.window_s))
                short_n = max(1, math.ceil(rule.short_s
                                           / timeline.window_s))
                burn_long = self._trailing_burn(counts, i, long_n, budget)
                burn_short = self._trailing_burn(counts, i, short_n,
                                                 budget)
                firing = (burn_long >= rule.factor
                          and burn_short >= rule.factor)
                if firing and not st.active:
                    st.active = True
                    st.fired_s = window.t_end_s
                    st.peak = burn_long
                elif firing:
                    st.peak = max(st.peak, burn_long)
                elif st.active:
                    st.active = False
                    st.alerts.append(SLOAlert(
                        rule=rule.name, fired_s=st.fired_s,
                        cleared_s=window.t_end_s,
                        peak_burn_rate=st.peak))
        for st in states:
            if st.active:  # run ended mid-incident
                st.alerts.append(SLOAlert(
                    rule=st.rule.name, fired_s=st.fired_s,
                    cleared_s=None, peak_burn_rate=st.peak))
        alerts = [a for st in states for a in st.alerts]
        alerts.sort(key=lambda a: (a.fired_s, a.rule))
        return SLOReport(
            target=self.target,
            n_completions=sum(c for c, _ in counts),
            n_violations=sum(v for _, v in counts),
            alerts=alerts)
