"""Chrome/Perfetto ``trace_event`` JSON export for :class:`Tracer` buffers.

The output follows the JSON Object Format of the Trace Event spec (the
one ``ui.perfetto.dev`` and ``chrome://tracing`` both load): a
top-level object with a ``traceEvents`` array of phase-tagged events.
We emit four phases:

- ``"M"`` metadata naming processes and threads,
- ``"X"`` complete events (a span with ``ts`` + ``dur``, microseconds),
- ``"i"`` instant events for point occurrences,
- ``"C"`` counter events: one track per timeline series per replica
  (queue depth, running batch, KV occupancy, per-window flow rates)
  when a :class:`~repro.obs.timeline.Timeline` is passed, plus
  fire/clear instants for every :class:`~repro.obs.slo.SLOAlert` when
  an :class:`~repro.obs.slo.SLOReport` is.

Track layout: each replica is a *process* (``pid`` = replica id, or an
offset per simulator when merging several tracers), ``tid 0`` is the
engine track carrying one ``"X"`` span per executed iteration, and each
request gets its own thread (``tid = req_id + 1``) carrying the
``queued`` / ``prefill`` / ``decode`` lifecycle spans plus instant
markers for admissions, preemptions and rejections.  Evictions happen
to the replica's KV pool rather than one request, so they land on the
engine track.

Simulated time is seconds; the trace format wants microseconds, so
every timestamp is ``t_s * 1e6``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Union

from .trace import (
    EVENT_NAMES,
    EVT_ADMITTED,
    EVT_EVICTED,
    EVT_PREEMPTED,
    EVT_PREFILL_CHUNK,
    EVT_REJECTED,
    Tracer,
)

__all__ = ["to_perfetto", "write_perfetto"]

#: ``pid`` stride between merged tracers, so two simulators' replica 0
#: tracks never collide (no fleet is remotely this wide).
_PID_STRIDE = 10_000

#: args-dict key for the kind-specific ``value`` column of an event.
_VALUE_KEYS = {
    EVT_ADMITTED: "readmission",
    EVT_PREEMPTED: "recompute_tokens",
    EVT_REJECTED: "value",
    EVT_EVICTED: "evicted_blocks",
    EVT_PREFILL_CHUNK: "chunk_tokens",
}


def _emit_tracer(events: List[dict], tracer: Tracer, label: str,
                 pid_base: int) -> None:
    seen_pids: Dict[int, None] = {}
    seen_tids = set()

    def process(replica: int) -> int:
        pid = pid_base + replica
        if replica not in seen_pids:
            seen_pids[replica] = None
            name = f"{label} · replica {replica}" if label else \
                f"replica {replica}"
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": name}})
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": 0, "args": {"name": "engine"}})
        return pid

    def request_track(replica: int, req_id: int) -> int:
        pid = process(replica)
        tid = req_id + 1
        if (pid, tid) not in seen_tids:
            seen_tids.add((pid, tid))
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": f"req {req_id}"}})
        return tid

    for replica, t_s, dur_us, n_prefill, prefill_tokens, decode_batch, \
            kv_occupancy in tracer.steps:
        events.append({
            "ph": "X", "name": "step", "cat": "engine",
            "pid": process(replica), "tid": 0,
            "ts": t_s * 1e6, "dur": dur_us,
            "args": {"prefill_seqs": n_prefill,
                     "prefill_tokens": prefill_tokens,
                     "decode_batch": decode_batch,
                     "batch": n_prefill + decode_batch,
                     "kv_occupancy": kv_occupancy},
        })

    for req_id, replica, arrival_s, admitted_s, first_token_s, \
            finished_s, prompt_tokens, output_tokens, cached_tokens, \
            preemptions in tracer.requests:
        pid = process(replica)
        tid = request_track(replica, req_id)
        spans = [
            ("queued", arrival_s, admitted_s, {"prompt_tokens": prompt_tokens}),
            ("prefill", admitted_s, first_token_s,
             {"prompt_tokens": prompt_tokens,
              "cached_tokens": cached_tokens}),
            ("decode", first_token_s, finished_s,
             {"output_tokens": output_tokens, "preemptions": preemptions}),
        ]
        for name, t0, t1, args in spans:
            events.append({
                "ph": "X", "name": name, "cat": "request",
                "pid": pid, "tid": tid,
                "ts": t0 * 1e6, "dur": max(t1 - t0, 0.0) * 1e6,
                "args": args,
            })

    for kind, t_s, replica, req_id, value in tracer.events:
        if kind == EVT_PREFILL_CHUNK:
            # One per prefill chunk — high volume and already summarised
            # by the engine-track step args; skip to keep traces small.
            continue
        pid = process(replica)
        tid = 0 if req_id < 0 else request_track(replica, req_id)
        events.append({
            "ph": "i", "name": EVENT_NAMES[kind], "cat": "lifecycle",
            "pid": pid, "tid": tid, "ts": t_s * 1e6, "s": "t",
            "args": {_VALUE_KEYS[kind]: value},
        })


def _emit_timeline(events: List[dict], timeline, pid_base: int) -> None:
    """One ``"C"`` counter track per series per replica.

    A counter event at the window's *start* holding the window's value
    renders as a step function over the run: Perfetto draws each value
    until the next event, which is exactly the windowed semantics.
    Flow counts are emitted as per-second rates so different window
    lengths compare on one axis.
    """
    per_s = 1.0 / timeline.window_s
    for rid in timeline.replica_ids:
        pid = pid_base + rid
        for w in timeline.windows(rid):
            ts = w.t_start_s * 1e6
            events.append({
                "ph": "C", "name": "timeline", "pid": pid, "tid": 0,
                "ts": ts,
                "args": {
                    "arrivals_per_s": w.arrivals * per_s,
                    "completions_per_s": w.completions * per_s,
                    "rejections_per_s": w.rejections * per_s,
                    "preemptions_per_s": w.preemptions * per_s,
                },
            })
            events.append({
                "ph": "C", "name": "scheduler", "pid": pid, "tid": 0,
                "ts": ts,
                "args": {"queue_depth": w.queue_depth,
                         "running": w.running},
            })
            events.append({
                "ph": "C", "name": "kv_occupancy", "pid": pid, "tid": 0,
                "ts": ts, "args": {"fraction": w.kv_occupancy},
            })
            if w.prefix_lookups:
                events.append({
                    "ph": "C", "name": "prefix_hit_rate", "pid": pid,
                    "tid": 0, "ts": ts,
                    "args": {"rate": w.prefix_hit_rate},
                })


def _emit_slo(events: List[dict], slo, pid_base: int) -> None:
    """Global fire/clear instants (``s: "g"``) for every alert."""
    for alert in slo.alerts:
        events.append({
            "ph": "i", "name": f"slo_fire[{alert.rule}]", "cat": "slo",
            "pid": pid_base, "tid": 0, "ts": alert.fired_s * 1e6,
            "s": "g", "args": {"peak_burn_rate": alert.peak_burn_rate},
        })
        if alert.cleared_s is not None:
            events.append({
                "ph": "i", "name": f"slo_clear[{alert.rule}]",
                "cat": "slo", "pid": pid_base, "tid": 0,
                "ts": alert.cleared_s * 1e6, "s": "g",
                "args": {"peak_burn_rate": alert.peak_burn_rate},
            })


def to_perfetto(tracers: Union[Tracer, Mapping[str, Tracer]],
                name: str = "repro",
                timelines: Optional[Mapping[str, object]] = None,
                slo: Optional[Mapping[str, object]] = None) -> dict:
    """Render tracer buffers as a ``trace_event`` JSON object.

    ``tracers`` is one :class:`Tracer` or a mapping of label → tracer
    (e.g. one per bench mode); merged tracers get disjoint ``pid``
    ranges so their replica tracks sit side by side in the UI.
    ``timelines`` / ``slo`` optionally attach a
    :class:`~repro.obs.timeline.Timeline` (→ counter tracks) and an
    :class:`~repro.obs.slo.SLOReport` (→ fire/clear instants) per
    label; labels must match ``tracers`` keys, and a bare
    Timeline/SLOReport may be passed when ``tracers`` is one tracer.
    """
    if isinstance(tracers, Tracer):
        label = tracers.name
        tracers = {label: tracers}
        if timelines is not None and not isinstance(timelines, Mapping):
            timelines = {label: timelines}
        if slo is not None and not isinstance(slo, Mapping):
            slo = {label: slo}
    events: List[dict] = []
    for idx, (label, tracer) in enumerate(tracers.items()):
        pid_base = idx * _PID_STRIDE
        _emit_tracer(events, tracer, label if len(tracers) > 1 else "",
                     pid_base)
        if timelines and timelines.get(label) is not None:
            _emit_timeline(events, timelines[label], pid_base)
        if slo and slo.get(label) is not None:
            _emit_slo(events, slo[label], pid_base)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "name": name,
            "format": "repro.obs perfetto export",
            "version": 1,
        },
    }


def write_perfetto(path, tracers: Union[Tracer, Mapping[str, Tracer]],
                   name: str = "repro",
                   timelines: Optional[Mapping[str, object]] = None,
                   slo: Optional[Mapping[str, object]] = None) -> dict:
    """Write :func:`to_perfetto` output as JSON; returns the object."""
    doc = to_perfetto(tracers, name=name, timelines=timelines, slo=slo)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc
