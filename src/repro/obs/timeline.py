"""Windowed time-series telemetry over *simulated* time.

End-of-run aggregates (:mod:`repro.obs.metrics`) answer what a run did
on average; this module records how the run *evolved* — queue depth
climbing through a flash crowd, the KV pool saturating, per-window
TTFT tails blowing out — which is the signal an autoscaler (or an SLO
burn-rate monitor, :mod:`repro.obs.slo`) acts on.

Design mirrors the tracer contract (:mod:`repro.obs.trace`):

1. **Disabled sampling is bit-identical and near-free.**  The
   simulators guard every hook with one ``timeline is not None`` test,
   and SAMPLE events are excluded from every exported event counter
   (:class:`~repro.serve.events.EventStats.n_samples`), so a run's
   ``metrics()`` with sampling on is golden-tested equal to one with
   sampling off.
2. **Sampling is observation only.**  The collector reads scheduler
   state and appends to its own buffers; it never feeds back into
   scheduling, admission or time.

Time model: the simulators push periodic ``SAMPLE`` events onto the
shared event heap (:mod:`repro.serve.events`).  A SAMPLE at boundary
``t`` pops before any simulation event at ``t`` (kind sorts first), so
windows are half-open ``[start, end)``: per-window *flows* (arrivals,
completions, rejections) count events with timestamps in the window,
and *gauges* (queue depth, running batch, KV occupancy) are read at
the first heap pop at-or-after the boundary — the discrete-event
analogue of a scrape.  Completions are banked with their simulated
finish time and assigned at window close, because an iteration that
*starts* before a boundary can finish work *after* it.

Everything here takes simulated seconds as input and never reads the
wall clock or calls tracer methods (lint rule RPL009 enforces both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.report import percentile

__all__ = [
    "Timeline",
    "TimelineCollector",
    "TimelineConfig",
    "TimelineWindow",
]

#: Series names exposed by :meth:`Timeline.series` (one value per
#: window); also the counter tracks the Perfetto export emits.
SERIES_FIELDS = (
    "arrivals",
    "completions",
    "rejections",
    "preemptions",
    "queue_depth",
    "running",
    "kv_occupancy",
    "prefix_hit_rate",
)


@dataclass(frozen=True)
class TimelineConfig:
    """Sampling options, passed as ``SimConfig(timeline=...)`` /
    ``FleetConfig(timeline=...)``.

    ``slo_ttft_s`` / ``slo_tpot_s`` are optional per-request limits:
    when set, every window also counts SLO violations among its
    completions, which is what the burn-rate monitor
    (:class:`repro.obs.slo.SLOMonitor`) consumes, and the simulators
    attach an evaluated :class:`~repro.obs.slo.SLOReport` to the run
    report.  ``slo_target`` is the attainment objective the error
    budget is defined against (0.99 → 1% of completions may violate).
    """

    #: Window length in simulated seconds.
    window_s: float = 0.25
    #: Optional per-request TTFT limit (seconds) for SLO accounting.
    slo_ttft_s: Optional[float] = None
    #: Optional per-request TPOT limit (seconds) for SLO accounting.
    slo_tpot_s: Optional[float] = None
    #: Target attainment fraction the error budget derives from.
    slo_target: float = 0.99

    def __post_init__(self):
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.slo_ttft_s is not None and self.slo_ttft_s <= 0:
            raise ValueError("slo_ttft_s must be positive")
        if self.slo_tpot_s is not None and self.slo_tpot_s <= 0:
            raise ValueError("slo_tpot_s must be positive")
        if not 0 < self.slo_target < 1:
            raise ValueError("slo_target must be in (0, 1)")

    @property
    def tracks_slo(self) -> bool:
        return self.slo_ttft_s is not None or self.slo_tpot_s is not None


@dataclass(frozen=True)
class TimelineWindow:
    """One closed sampling window of one replica.

    Flow fields count events whose simulated timestamp fell in
    ``[t_start_s, t_end_s)``; gauge fields are the state observed at
    the window-closing sample.  ``ttft_ms`` / ``tpot_ms`` keep the raw
    per-completion samples so percentiles (and post-hoc SLO sweeps)
    need no re-simulation.
    """

    t_start_s: float
    t_end_s: float
    # -- flows over the window ----------------------------------------
    arrivals: int = 0
    completions: int = 0
    rejections: int = 0
    preemptions: int = 0
    prefix_lookups: int = 0
    prefix_hits: int = 0
    #: Completions violating the configured SLO limits (0 when the
    #: timeline ran without SLO limits).
    slo_violations: int = 0
    # -- gauges at the window boundary --------------------------------
    queue_depth: int = 0
    running: int = 0
    kv_occupancy: float = 0.0
    # -- raw latency samples of completions in the window -------------
    ttft_ms: Tuple[float, ...] = ()
    tpot_ms: Tuple[float, ...] = ()

    @property
    def duration_s(self) -> float:
        return self.t_end_s - self.t_start_s

    @property
    def prefix_hit_rate(self) -> float:
        """Windowed admission hit rate (0.0 with no lookups)."""
        return self.prefix_hits / self.prefix_lookups \
            if self.prefix_lookups else 0.0

    def ttft_p(self, q: float) -> float:
        """Windowed TTFT percentile in ms (NaN with no completions)."""
        return percentile(list(self.ttft_ms), q)

    def tpot_p(self, q: float) -> float:
        """Windowed TPOT percentile in ms (NaN with no samples)."""
        return percentile(list(self.tpot_ms), q)

    def to_json(self) -> dict:
        """Plain JSON-safe dict (raw samples included)."""
        return {
            "t_start_s": self.t_start_s,
            "t_end_s": self.t_end_s,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "rejections": self.rejections,
            "preemptions": self.preemptions,
            "prefix_lookups": self.prefix_lookups,
            "prefix_hits": self.prefix_hits,
            "slo_violations": self.slo_violations,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "kv_occupancy": self.kv_occupancy,
            "ttft_ms": list(self.ttft_ms),
            "tpot_ms": list(self.tpot_ms),
        }


@dataclass
class Timeline:
    """The finished product: per-replica window series of one run."""

    name: str
    window_s: float
    #: Replica id -> windows in time order (single-engine runs use
    #: replica 0).  Every replica has the same number of windows.
    replicas: Dict[int, List[TimelineWindow]] = field(default_factory=dict)
    config: Optional[TimelineConfig] = None

    @property
    def replica_ids(self) -> List[int]:
        return sorted(self.replicas)

    @property
    def n_windows(self) -> int:
        first = self.replica_ids
        return len(self.replicas[first[0]]) if first else 0

    def windows(self, replica: int = 0) -> List[TimelineWindow]:
        return self.replicas[replica]

    def series(self, name: str, replica: int = 0
               ) -> List[Tuple[float, float]]:
        """``[(t_end_s, value), ...]`` of one per-window series."""
        if name not in SERIES_FIELDS:
            raise KeyError(f"unknown series {name!r}; "
                           f"known: {list(SERIES_FIELDS)}")
        return [(w.t_end_s, getattr(w, name))
                for w in self.replicas[replica]]

    def merged(self) -> List[TimelineWindow]:
        """Fleet-wide windows: flows summed, gauges summed across
        replicas (queue depth and running batch add; kv_occupancy is
        averaged, being a fraction)."""
        ids = self.replica_ids
        if len(ids) == 1:
            return list(self.replicas[ids[0]])
        out = []
        for i in range(self.n_windows):
            rows = [self.replicas[rid][i] for rid in ids]
            out.append(TimelineWindow(
                t_start_s=rows[0].t_start_s,
                t_end_s=rows[0].t_end_s,
                arrivals=sum(r.arrivals for r in rows),
                completions=sum(r.completions for r in rows),
                rejections=sum(r.rejections for r in rows),
                preemptions=sum(r.preemptions for r in rows),
                prefix_lookups=sum(r.prefix_lookups for r in rows),
                prefix_hits=sum(r.prefix_hits for r in rows),
                slo_violations=sum(r.slo_violations for r in rows),
                queue_depth=sum(r.queue_depth for r in rows),
                running=sum(r.running for r in rows),
                kv_occupancy=sum(r.kv_occupancy for r in rows)
                / len(rows),
                ttft_ms=tuple(v for r in rows for v in r.ttft_ms),
                tpot_ms=tuple(v for r in rows for v in r.tpot_ms),
            ))
        return out

    def to_json(self) -> dict:
        """JSON-safe form (what ``--timeline-dir`` persists)."""
        return {
            "name": self.name,
            "window_s": self.window_s,
            "replicas": {str(rid): [w.to_json() for w in wins]
                         for rid, wins in sorted(self.replicas.items())},
        }


class _Accum:
    """Mutable per-replica accumulation of the currently open window."""

    __slots__ = ("arrivals", "rejections", "pending",
                 "prev_preemptions", "prev_lookups", "prev_hits")

    def __init__(self):
        self.arrivals = 0
        self.rejections = 0
        #: Completions banked with finish time, drained at window
        #: close: ``(finished_s, ttft_ms, tpot_ms_or_None, violated)``.
        self.pending: List[Tuple[float, float, Optional[float], bool]] = []
        self.prev_preemptions = 0
        self.prev_lookups = 0
        self.prev_hits = 0


class TimelineCollector:
    """Accumulates windows while a simulation runs.

    The owning simulator pushes a SAMPLE event at
    :attr:`next_sample_s`, calls :meth:`sample` when it pops (passing
    the live schedulers, one per replica), and re-pushes while work or
    arrivals remain; flows are fed through :meth:`on_arrival` /
    :meth:`on_reject` / :meth:`on_complete`.  :meth:`finalize` flushes
    the trailing partial window and returns the :class:`Timeline`.

    Every method takes simulated time as input; the collector is
    forbidden (lint rule RPL009) from reading the wall clock or
    calling tracer methods.
    """

    def __init__(self, config: TimelineConfig, n_replicas: int = 1,
                 name: str = "timeline", start_s: float = 0.0):
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.config = config
        self.name = name
        self.window_s = config.window_s
        self._start_s = start_s
        self._next_s = start_s + config.window_s
        self._accums = [_Accum() for _ in range(n_replicas)]
        self._windows: Dict[int, List[TimelineWindow]] = {
            rid: [] for rid in range(n_replicas)}

    @property
    def next_sample_s(self) -> float:
        """Boundary of the currently open window (next SAMPLE time)."""
        return self._next_s

    # -- flow hooks (hot path: appends and increments only) -----------
    def on_arrival(self, replica: int) -> None:
        """One request routed/admitted to ``replica``'s queue."""
        self._accums[replica].arrivals += 1

    def on_reject(self, replica: int) -> None:
        """One request rejected outright at arrival."""
        self._accums[replica].rejections += 1

    def on_complete(self, replica: int, seqs: Sequence, t_s: float) -> None:
        """Bank finished sequences (``SequenceState``) at time ``t_s``.

        ``t_s`` may lie past the open window's boundary (the iteration
        that produced the completions straddled it); assignment to a
        window happens at close time.
        """
        cfg = self.config
        pending = self._accums[replica].pending
        for s in seqs:
            req = s.request
            ttft_s = s.first_token_s - req.arrival_s
            tpot_s = None
            if req.output_tokens > 1:
                tpot_s = ((s.finished_s - s.first_token_s)
                          / (req.output_tokens - 1))
            violated = False
            if cfg.slo_ttft_s is not None and ttft_s > cfg.slo_ttft_s:
                violated = True
            if (cfg.slo_tpot_s is not None and tpot_s is not None
                    and tpot_s > cfg.slo_tpot_s):
                violated = True
            pending.append(
                (s.finished_s, ttft_s * 1e3,
                 None if tpot_s is None else tpot_s * 1e3, violated))

    # -- window closing -----------------------------------------------
    def _gauge(self, sched) -> Tuple[int, int, float, int, int, int]:
        queued = len(sched.waiting) + len(getattr(sched, "preempted", ()))
        running = len(sched.running)
        occupancy = float(getattr(sched, "kv_occupancy", 0.0))
        preemptions = int(getattr(sched, "n_preemptions", 0))
        lookups = hits = 0
        if getattr(sched, "prefix_caching", False):
            stats = sched.prefix_stats()
            if stats is not None:
                lookups = stats.n_lookups
                hits = stats.n_lookup_hits
        return queued, running, occupancy, preemptions, lookups, hits

    def _close(self, boundary_s: float, schedulers: Sequence,
               inclusive: bool = False) -> None:
        for rid, sched in enumerate(schedulers):
            acc = self._accums[rid]
            if inclusive:  # final flush: makespan completions count
                done, acc.pending = acc.pending, []
            else:  # half-open window: boundary completions wait
                done = [p for p in acc.pending if p[0] < boundary_s]
                acc.pending = [p for p in acc.pending
                               if p[0] >= boundary_s]
            queued, running, occupancy, preempt, lookups, hits = \
                self._gauge(sched)
            self._windows[rid].append(TimelineWindow(
                t_start_s=self._start_s,
                t_end_s=boundary_s,
                arrivals=acc.arrivals,
                completions=len(done),
                rejections=acc.rejections,
                preemptions=preempt - acc.prev_preemptions,
                prefix_lookups=lookups - acc.prev_lookups,
                prefix_hits=hits - acc.prev_hits,
                slo_violations=sum(1 for p in done if p[3]),
                queue_depth=queued,
                running=running,
                kv_occupancy=occupancy,
                ttft_ms=tuple(p[1] for p in done),
                tpot_ms=tuple(p[2] for p in done if p[2] is not None),
            ))
            acc.arrivals = 0
            acc.rejections = 0
            acc.prev_preemptions = preempt
            acc.prev_lookups = lookups
            acc.prev_hits = hits

    def sample(self, t_s: float, schedulers: Sequence) -> None:
        """Close the open window at its boundary (``t_s`` is the SAMPLE
        event's scheduled time, i.e. :attr:`next_sample_s`)."""
        self._close(self._next_s, schedulers)
        self._start_s = self._next_s
        self._next_s += self.window_s

    def finalize(self, t_end_s: float, schedulers: Sequence) -> Timeline:
        """Flush the trailing partial window and build the timeline.

        ``t_end_s`` is the run's makespan; a trailing window is only
        emitted when the run extended past the last closed boundary or
        activity is still banked (completions landing exactly on the
        final boundary would otherwise be lost to the half-open
        convention).
        """
        leftover = any(acc.pending or acc.arrivals or acc.rejections
                       for acc in self._accums)
        if t_end_s > self._start_s or leftover:
            self._close(max(t_end_s, self._start_s), schedulers,
                        inclusive=True)
        return Timeline(name=self.name, window_s=self.window_s,
                        replicas=self._windows, config=self.config)
