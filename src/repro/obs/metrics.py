"""Metrics registry: counters, gauges and log-bucketed histograms.

The serving stack keeps its operational counters as plain instance
attributes (``scheduler.n_preemptions``, ``allocator.n_evicted_blocks``,
``EventStats.n_idle_polls`` ...) because that is the cheapest thing to
increment in a hot loop.  :class:`MetricsRegistry` is the *export*
surface those attributes flow into at end of run: each subsystem
implements ``emit_metrics(registry, **labels)`` (see
:mod:`repro.serve.scheduler`, :mod:`repro.serve.paging`,
:mod:`repro.serve.prefix`, :mod:`repro.serve.events`,
:mod:`repro.cluster.fleet`), and the registry renders two views:

- :meth:`MetricsRegistry.to_flat_dict` — plain ``{name: number}``,
  merged into ``ServingReport.metrics()`` / ``FleetReport.metrics()``
  and thence into the ``BENCH_<pr>.json`` perf trajectory (histograms
  contribute ``<name>_count`` / ``<name>_sum`` plus interpolated
  ``<name>_p50`` / ``<name>_p95`` / ``<name>_p99`` estimates);
- :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format, for eyeballs and for scraping if the simulator ever runs
  behind a real endpoint.

Emission is *unconditional* (every run builds its registry, traced or
not) and reads only end-of-run state, so registry contents are a pure
function of the simulation — bit-identical with tracing on or off,
which the golden tests rely on.

Histograms are log-bucketed: bucket upper bounds form a geometric
series ``start * factor**i`` (Prometheus ``le`` semantics — a value
equal to a boundary falls in that bucket), with one overflow bucket
above the last boundary.  Latency-shaped data spans four orders of
magnitude; log buckets keep relative resolution constant across them.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterator, List, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _format_value(value) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - never stored
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        return [(self.name, self.labels, self.value)]

    def flat(self) -> Dict[str, float]:
        return {self.name + _label_suffix(self.labels): self.value}


class Gauge:
    """A point-in-time value (peaks, pool sizes, fractions)."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        return [(self.name, self.labels, self.value)]

    def flat(self) -> Dict[str, float]:
        return {self.name + _label_suffix(self.labels): self.value}


class Histogram:
    """A log-bucketed distribution with Prometheus ``le`` semantics.

    ``boundaries[i]`` is the inclusive upper bound of bucket ``i``
    (``start * factor**i``); one extra overflow bucket catches values
    above the last boundary.  :meth:`bucket_index` is the placement
    function the property tests pin: for any finite ``value``,
    ``boundaries[index - 1] < value <= boundaries[index]`` (with the
    obvious edge handling at both ends).
    """

    __slots__ = ("name", "help", "labels", "boundaries", "counts",
                 "total", "sum")
    kind = "histogram"

    def __init__(self, name: str, help: str = "", start: float = 0.001,
                 factor: float = 2.0, n_buckets: int = 32,
                 labels: Dict[str, str] | None = None):
        if start <= 0:
            raise ValueError("start must be positive")
        if factor <= 1:
            raise ValueError("factor must be > 1")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.boundaries = [start * factor ** i for i in range(n_buckets)]
        self.counts = [0] * (n_buckets + 1)  # +1 overflow bucket
        self.total = 0
        self.sum = 0.0

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls in (``le`` inclusive)."""
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} cannot observe NaN")
        return bisect_left(self.boundaries, value)

    def observe(self, value: float) -> None:
        self.counts[self.bucket_index(value)] += 1
        self.total += 1
        self.sum += value

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (ends at total)."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        out = []
        cumulative = self.cumulative_counts()
        for boundary, count in zip(self.boundaries, cumulative):
            le = dict(self.labels)
            le["le"] = _format_value(boundary)
            out.append((self.name + "_bucket", le, count))
        inf = dict(self.labels)
        inf["le"] = "+Inf"
        out.append((self.name + "_bucket", inf, cumulative[-1]))
        out.append((self.name + "_sum", self.labels, self.sum))
        out.append((self.name + "_count", self.labels, self.total))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Finds the first bucket whose cumulative count reaches the
        target rank, then interpolates *geometrically* within it —
        the natural interpolation for log-spaced bucket bounds (linear
        interpolation in log space).  The first bucket has no positive
        lower bound, so it interpolates linearly from 0; ranks landing
        in the overflow bucket clamp to the last boundary (the largest
        value the histogram can still localise).  Empty histograms
        estimate 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        running = 0
        for i, count in enumerate(self.counts):
            running += count
            if running >= rank and count:
                if i == len(self.boundaries):
                    return self.boundaries[-1]
                upper = self.boundaries[i]
                # Fraction of this bucket's count below the rank.
                frac = (rank - (running - count)) / count
                lower = self.boundaries[i - 1] if i else 0.0
                if lower <= 0.0:
                    return upper * frac
                return lower * (upper / lower) ** frac
        return self.boundaries[-1]  # pragma: no cover - rank <= total

    def flat(self) -> Dict[str, float]:
        suffix = _label_suffix(self.labels)
        out = {self.name + "_count" + suffix: self.total,
               self.name + "_sum" + suffix: self.sum}
        for q, tag in ((0.5, "_p50"), (0.95, "_p95"), (0.99, "_p99")):
            out[self.name + tag + suffix] = self.quantile(q)
        return out


class MetricsRegistry:
    """Get-or-create registry of metrics, keyed by name plus labels.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when the (name, labels) pair is already registered — asking for it
    as a different kind raises — so independent subsystems can emit
    into one registry without coordination.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        """Metrics in sorted full-name order (deterministic exports)."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = name + _label_suffix(labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {key!r} is a {existing.kind}, not a "
                    f"{cls.kind}")
            return existing
        metric = cls(name, help=help, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", start: float = 0.001,
                  factor: float = 2.0, n_buckets: int = 32,
                  **labels) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   start=start, factor=factor,
                                   n_buckets=n_buckets)

    # -- exports ---------------------------------------------------------
    def to_flat_dict(self) -> Dict[str, float]:
        """Plain JSON-safe ``{name: number}`` across every metric.

        This is what report ``metrics()`` dicts merge (and the perf
        trajectory persists): counters and gauges by full name,
        histograms as ``<name>_count`` / ``<name>_sum`` plus the
        interpolated ``<name>_p50`` / ``<name>_p95`` / ``<name>_p99``
        quantile estimates (full per-bucket detail stays in
        :meth:`to_prometheus`, where the format can carry it without
        exploding the trajectory's key space).
        """
        out: Dict[str, float] = {}
        for metric in self:
            out.update(metric.flat())
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (``# HELP``/``# TYPE``)."""
        lines: List[str] = []
        seen_headers = set()
        for metric in self:
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(f"{sample_name}{_label_suffix(labels)} "
                             f"{_format_value(value)}")
        return "\n".join(lines) + "\n"
