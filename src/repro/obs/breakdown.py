"""Per-request latency decomposition and tail-TTFT attribution.

Run-level percentiles say a run's TTFT p99 is high; this module says
*why*.  From a recorded trace (the ``trace_event`` JSON of
:mod:`repro.obs.perfetto`, or a live
:class:`~repro.obs.trace.Tracer`), each completed request's lifetime
is decomposed into four additive segments:

- **queued** — arrival to first admission (the ``queued`` span);
- **prefill** — first admission to first output token, *minus* any
  preemption stall that landed inside it;
- **stall** — time between a ``preempted`` instant and the matching
  re-admission instant (``readmission`` marker), summed per request.
  The lifecycle spans alone hide this: a preempted request's recompute
  wait is buried inside its prefill/decode spans;
- **decode** — first token to completion, minus decode-phase stall.

The segments sum to end-to-end latency exactly (tested as an
invariant), so phase shares are honest fractions of real time.  Tail
attribution then answers the paper-review question "what dominates
p99 TTFT?": among requests whose TTFT is at or above the tail
percentile, how does queue wait vs prefill compute split, compared to
the overall population — a scheduling problem reads as queued-share,
a compute problem as prefill-share.

Consumed by ``python -m repro.obs.report`` (tables + dashboard) and
importable directly for tests and notebooks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.obs.report import percentile

__all__ = ["breakdown_summary", "request_breakdowns",
           "tracer_breakdowns"]

_SEGMENTS = ("queued", "prefill", "stall", "decode")


def _pair_stalls(instants: List[tuple]) -> List[tuple]:
    """``(t_preempt, t_readmit)`` pairs from a request's instant list.

    ``instants`` is ``[(ts_s, name, readmission), ...]`` in time
    order.  Every ``preempted`` is matched with the next re-admission
    (``admitted`` carrying the readmission marker); an unmatched
    trailing preemption (request still stalled at trace end) is
    dropped — its wait never resolved into more progress.
    """
    pairs = []
    pending: Optional[float] = None
    for ts, name, readmission in instants:
        if name == "preempted":
            if pending is None:
                pending = ts
        elif name == "admitted" and readmission and pending is not None:
            pairs.append((pending, ts))
            pending = None
    return pairs


def request_breakdowns(doc: dict) -> List[dict]:
    """Per-request segment dicts from a ``trace_event`` document.

    Handles fleet (multi-pid) and merged multi-run traces: requests
    are keyed by ``(pid, tid)``, and each output row carries its
    ``pid`` so callers can aggregate per replica.  Only requests with
    all three lifecycle spans (completed within the trace) appear.
    """
    spans: Dict[tuple, Dict[str, tuple]] = defaultdict(dict)
    args: Dict[tuple, dict] = defaultdict(dict)
    instants: Dict[tuple, List[tuple]] = defaultdict(list)
    for ev in doc["traceEvents"]:
        ph = ev.get("ph")
        if ph == "X" and ev.get("cat") == "request":
            key = (ev["pid"], ev["tid"])
            spans[key][ev["name"]] = (ev["ts"] / 1e6,
                                      ev.get("dur", 0.0) / 1e6)
            args[key].update(ev.get("args", {}))
        elif ph == "i" and ev.get("name") in ("preempted", "admitted"):
            key = (ev["pid"], ev["tid"])
            instants[key].append(
                (ev["ts"] / 1e6, ev["name"],
                 ev.get("args", {}).get("readmission", 0)))

    out = []
    for key in sorted(spans):
        phases = spans[key]
        if not all(p in phases for p in ("queued", "prefill", "decode")):
            continue
        q_ts, q_dur = phases["queued"]
        p_ts, p_dur = phases["prefill"]
        d_ts, d_dur = phases["decode"]
        first_token_s = p_ts + p_dur
        prefill_stall = decode_stall = 0.0
        for t0, t1 in _pair_stalls(sorted(instants.get(key, []))):
            # A stall belongs to the phase it started in.
            if t0 < first_token_s:
                prefill_stall += t1 - t0
            else:
                decode_stall += t1 - t0
        out.append({
            "pid": key[0],
            "req_id": key[1] - 1,  # request tracks are tid = req_id + 1
            "queued": q_dur,
            "prefill": max(p_dur - prefill_stall, 0.0),
            "stall": prefill_stall + decode_stall,
            "decode": max(d_dur - decode_stall, 0.0),
            "ttft_s": q_dur + p_dur,
            "latency_s": q_dur + p_dur + d_dur,
            "output_tokens": args[key].get("output_tokens", 0),
            "preemptions": args[key].get("preemptions", 0),
        })
    return out


def tracer_breakdowns(tracer) -> List[dict]:
    """:func:`request_breakdowns` straight from a live tracer."""
    from repro.obs.perfetto import to_perfetto
    return request_breakdowns(to_perfetto(tracer))


def breakdown_summary(breakdowns: List[dict],
                      tail_q: float = 99.0) -> dict:
    """Aggregate a breakdown list into totals, shares and the tail
    attribution (which phase dominates TTFT at/above ``tail_q``)."""
    n = len(breakdowns)
    totals = {seg: sum(b[seg] for b in breakdowns) for seg in _SEGMENTS}
    grand = sum(totals.values())
    shares = {seg: (totals[seg] / grand if grand > 0 else 0.0)
              for seg in _SEGMENTS}

    per_replica: Dict[int, dict] = {}
    for b in breakdowns:
        agg = per_replica.setdefault(
            b["pid"], {seg: 0.0 for seg in _SEGMENTS} | {"requests": 0})
        agg["requests"] += 1
        for seg in _SEGMENTS:
            agg[seg] += b[seg]

    ttfts = [b["ttft_s"] for b in breakdowns]
    tail_cut = percentile(ttfts, tail_q)
    tail = [b for b in breakdowns if b["ttft_s"] >= tail_cut] \
        if n else []

    def _ttft_split(rows: List[dict]) -> dict:
        """Queue-wait vs prefill-compute vs stall shares of summed
        TTFT (decode never contributes to TTFT)."""
        queued = sum(r["queued"] for r in rows)
        stall = sum(min(r["stall"], max(r["ttft_s"] - r["queued"]
                                        - r["prefill"], 0.0))
                    for r in rows)
        prefill = sum(r["ttft_s"] for r in rows) - queued - stall
        total = queued + prefill + stall
        if total <= 0:
            return {"queued": 0.0, "prefill": 0.0, "stall": 0.0}
        return {"queued": queued / total, "prefill": prefill / total,
                "stall": stall / total}

    tail_split = _ttft_split(tail)
    overall_split = _ttft_split(breakdowns)
    dominant = max(tail_split, key=lambda k: (tail_split[k], k)) \
        if tail else None

    return {
        "n_requests": n,
        "totals_s": totals,
        "shares": shares,
        "per_replica": {
            pid: agg for pid, agg in sorted(per_replica.items())},
        "ttft_tail_q": tail_q,
        "ttft_tail_cut_ms": tail_cut * 1e3 if n else float("nan"),
        "tail_n": len(tail),
        "tail_ttft_split": tail_split,
        "overall_ttft_split": overall_split,
        "tail_dominant_phase": dominant,
    }
