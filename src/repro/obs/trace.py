"""Cross-layer run tracer with a near-zero-cost disabled path.

Aggregate metrics (:meth:`~repro.serve.simulator.ServingReport.metrics`)
answer *what* a run did; this module records *why* — per-request
lifecycle timelines and per-iteration batch composition — without
perturbing the simulation.  Two invariants shape the design:

1. **Disabled tracing is bit-identical and near-free.**  The default
   tracer is the module-level :data:`NULL_TRACER` singleton whose
   methods are no-ops; hot paths guard every recording site with
   ``if tracer.enabled:`` (one attribute read per iteration), so a
   run with tracing off takes the exact same arithmetic path as
   before this module existed.  Golden tests pin that.
2. **Enabled tracing is observation only.**  The tracer appends plain
   tuples to column-oriented list buffers — it never reads back into
   scheduling decisions, so metrics with tracing *on* are also
   bit-identical to tracing off (tested).

Three buffers, all lists of tuples (column meanings below):

- :attr:`Tracer.steps` — one row per executed iteration:
  ``(replica, t_start_s, dur_us, n_prefill_seqs, prefill_tokens,
  decode_batch, kv_occupancy)``;
- :attr:`Tracer.events` — instant events:
  ``(kind, t_s, replica, req_id, value)`` with ``kind`` one of the
  ``EVT_*`` constants (``value`` is kind-specific: recompute tokens
  for preemptions, evicted block count for evictions, chunk tokens
  for prefill chunks, 1 for a re-admission);
- :attr:`Tracer.requests` — one summary row per finished request:
  ``(req_id, replica, arrival_s, admitted_s, first_token_s,
  finished_s, prompt_tokens, output_tokens, cached_tokens,
  preemptions)``.  ``admitted_s`` is the *first* admission, so
  ``arrival -> admitted -> first_token -> finished`` partitions the
  lifetime into queued / prefill / decode spans (a preempted
  request's recompute time lands in its decode span).

Exporters live next door: :mod:`repro.obs.perfetto` renders the
buffers as Chrome/Perfetto ``trace_event`` JSON and
:mod:`repro.obs.report` turns that into a markdown time breakdown.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "EVT_ADMITTED",
    "EVT_EVICTED",
    "EVT_PREEMPTED",
    "EVT_PREFILL_CHUNK",
    "EVT_REJECTED",
    "EVENT_NAMES",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
]

#: Instant-event kinds (the ``kind`` column of :attr:`Tracer.events`).
EVT_ADMITTED = 0
EVT_PREEMPTED = 1
EVT_REJECTED = 2
EVT_EVICTED = 3
EVT_PREFILL_CHUNK = 4

#: Human-readable names, used by the exporters.
EVENT_NAMES = {
    EVT_ADMITTED: "admitted",
    EVT_PREEMPTED: "preempted",
    EVT_REJECTED: "rejected",
    EVT_EVICTED: "evicted",
    EVT_PREFILL_CHUNK: "prefill_chunk",
}


class NullTracer:
    """The disabled path: every recording method is a no-op.

    ``enabled`` is a class attribute, so the per-iteration guard
    ``if tracer.enabled:`` costs one attribute read and a branch.
    Use the shared :data:`NULL_TRACER` singleton rather than
    constructing instances.
    """

    __slots__ = ()
    enabled = False

    def step(self, replica, t_s, dur_us, plan, kv_occupancy) -> None:
        pass

    def event(self, kind, t_s, replica, req_id, value=0) -> None:
        pass

    def request(self, *row) -> None:
        pass

    def record_sequences(self, replica, seqs) -> None:
        pass


#: Module-level no-op tracer: the default value of every ``tracer``
#: attribute in the serving stack.
NULL_TRACER = NullTracer()


class Tracer:
    """Column-oriented buffers of one traced run (see module docs)."""

    __slots__ = ("name", "steps", "events", "requests")
    enabled = True

    def __init__(self, name: str = "trace"):
        self.name = name
        self.steps: List[Tuple] = []
        self.events: List[Tuple] = []
        self.requests: List[Tuple] = []

    # -- recording (hot path: keep these append-only) ------------------
    def step(self, replica: int, t_s: float, dur_us: float, plan,
             kv_occupancy: float) -> None:
        """Record one executed iteration and its prefill chunks.

        ``plan`` is a :class:`~repro.serve.scheduler.BatchPlan` (duck
        typed: ``prefill`` pairs and ``decode`` list) priced at
        ``dur_us``, starting at simulated second ``t_s``.
        """
        prefill = plan.prefill
        self.steps.append(
            (replica, t_s, dur_us, len(prefill),
             sum(chunk for _, chunk in prefill), len(plan.decode),
             kv_occupancy))
        if prefill:
            append = self.events.append
            for seq, chunk in prefill:
                append((EVT_PREFILL_CHUNK, t_s, replica,
                        seq.request.req_id, chunk))

    def event(self, kind: int, t_s: float, replica: int, req_id: int,
              value: int = 0) -> None:
        """Record one instant event (an ``EVT_*`` kind)."""
        self.events.append((kind, t_s, replica, req_id, value))

    def request(self, req_id: int, replica: int, arrival_s: float,
                admitted_s: float, first_token_s: float,
                finished_s: float, prompt_tokens: int, output_tokens: int,
                cached_tokens: int, preemptions: int) -> None:
        """Record one finished request's lifecycle summary row."""
        self.requests.append(
            (req_id, replica, arrival_s, admitted_s, first_token_s,
             finished_s, prompt_tokens, output_tokens, cached_tokens,
             preemptions))

    def record_sequences(self, replica: int, seqs) -> None:
        """Append request rows for finished
        :class:`~repro.serve.scheduler.SequenceState` objects (called
        once at end of run, not in the hot loop)."""
        for s in seqs:
            req = s.request
            self.request(req.req_id, replica, req.arrival_s, s.admitted_s,
                         s.first_token_s, s.finished_s, req.prompt_tokens,
                         req.output_tokens, s.cached_tokens, s.preemptions)

    # -- introspection --------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def replicas(self) -> List[int]:
        """Sorted replica ids appearing anywhere in the buffers."""
        ids = {row[0] for row in self.steps}
        ids.update(row[2] for row in self.events)
        ids.update(row[1] for row in self.requests)
        return sorted(ids)

    def events_of_kind(self, kind: int) -> List[Tuple]:
        """The instant events of one ``EVT_*`` kind, in record order."""
        return [row for row in self.events if row[0] == kind]
