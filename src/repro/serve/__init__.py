"""Continuous-batching serving simulator over the analytic stack.

The paper's evaluation stops at kernels and single-stream E2E latency;
this package extends the reproduction to the *serving* level — the
regime where VQ's KV-cache compression changes system behavior, because
a smaller cache admits more concurrent sequences at the same HBM
budget:

- :mod:`repro.serve.requests` — request traces (Poisson, bursty MMPP,
  replay) with heavy-tailed prompt/output length distributions;
- :mod:`repro.serve.scheduler` — iteration-level continuous batching
  with chunked prefill and two KV admission policies: worst-case
  reservations (``"reserve"``, no eviction ever) or vLLM-style paged
  block allocation with recompute preemption (``"paged"``), where the
  bytes-per-token comes from the
  :class:`~repro.vq.config.VQConfig` compression ratio;
- :mod:`repro.serve.paging` — the block pool behind paged admission
  (:class:`~repro.serve.paging.PagedKVAllocator`: free-list
  accounting, fragmentation stats);
- :mod:`repro.serve.prefix` — shared-prefix KV reuse over that pool
  (``prefix_caching=True``): a radix tree of ref-counted,
  rolling-hash-keyed blocks with LRU eviction and copy-on-write, so
  requests sharing a system prompt or chat history skip the prefill
  work for the cached prefix;
- :mod:`repro.serve.costs` — prices one scheduler iteration through the
  memoized :meth:`~repro.core.engine.ComputeEngine.batch_latency_us`;
- :mod:`repro.serve.simulator` — the discrete-event loop and the
  :class:`~repro.serve.simulator.ServingReport` metrics (throughput,
  TTFT, TPOT, latency percentiles).

See ``docs/architecture.md`` for the full data-flow picture and
:mod:`repro.bench.serving` / ``examples/serving_simulation.py`` for
ready-made FP16-vs-VQ comparisons.
"""

from repro.serve.api import FleetConfig, Report, SchedulerConfig, SimConfig
from repro.serve.costs import StepCostModel
from repro.serve.events import ARRIVAL, STEP, TRANSFER, EventLoop, EventStats
from repro.serve.paging import PagedKVAllocator, PagingStats
from repro.serve.prefix import (
    PrefixCache,
    PrefixCachingAllocator,
    PrefixStats,
    rolling_hash,
)
from repro.serve.requests import (
    LengthSampler,
    Request,
    bursty_trace,
    multi_turn_chat_trace,
    poisson_trace,
    replayed_trace,
    shared_prefix_trace,
    trace_stats,
)
from repro.serve.scheduler import (
    ADMISSION_POLICIES,
    BatchPlan,
    ContinuousBatchScheduler,
    KVBudget,
    SequenceState,
    kv_bytes_per_token,
    kv_codebook_bytes,
)
from repro.serve.simulator import (
    RequestRecord,
    ServingReport,
    ServingSimulator,
    percentile,
)

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL",
    "BatchPlan",
    "ContinuousBatchScheduler",
    "EventLoop",
    "EventStats",
    "FleetConfig",
    "KVBudget",
    "LengthSampler",
    "PagedKVAllocator",
    "PagingStats",
    "PrefixCache",
    "PrefixCachingAllocator",
    "PrefixStats",
    "Report",
    "Request",
    "RequestRecord",
    "STEP",
    "SchedulerConfig",
    "SequenceState",
    "ServingReport",
    "ServingSimulator",
    "SimConfig",
    "StepCostModel",
    "TRANSFER",
    "bursty_trace",
    "kv_bytes_per_token",
    "kv_codebook_bytes",
    "multi_turn_chat_trace",
    "percentile",
    "poisson_trace",
    "replayed_trace",
    "rolling_hash",
    "shared_prefix_trace",
    "trace_stats",
]
