"""Block-based (paged) KV-cache allocation.

Real serving engines do not reserve a request's worst-case KV footprint
at admission — vLLM-style paged attention carves the cache pool into
fixed-size *blocks* of ``block_tokens`` token slots each and hands them
out on demand as prefill and decode advance.  Admission then only needs
the *prompt's* blocks up front, so many more sequences run concurrently
than worst-case reservations would allow; the price is that the pool
can genuinely run out mid-generation, at which point the scheduler
preempts a sequence and recomputes it later.

:class:`PagedKVAllocator` is the memory-manager half of that design:
a free-list of interchangeable blocks (the simulator never needs block
*identities*, only counts — a block table adds nothing to an analytic
model), per-owner block accounting, and fragmentation statistics.  The
scheduling half — who gets blocks, who gets preempted — lives in
:class:`~repro.serve.scheduler.ContinuousBatchScheduler` under
``admission="paged"``.

Compression composes multiplicatively with paging: the bytes one block
occupies is ``block_tokens *`` the scheme's
:func:`~repro.serve.scheduler.kv_bytes_per_token`, so a CQ-4 cache
fits ~4x the blocks of FP16 in the same pool *and* each sequence's
internal fragmentation (the unused tail of its last block) shrinks by
the same factor in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.serve.sanitize import check, sanitize_enabled


@dataclass(frozen=True)
class PagingStats:
    """Point-in-time snapshot of a :class:`PagedKVAllocator`.

    ``fragmentation`` is *internal* fragmentation: the fraction of
    allocated token slots not backing a live token (the unused tail of
    each sequence's last block).  External fragmentation is structurally
    zero — blocks are interchangeable, so any free block serves any
    request.
    """

    total_blocks: int
    used_blocks: int
    free_blocks: int
    block_tokens: int
    peak_used_blocks: int
    n_owners: int
    used_tokens: int

    @property
    def used_fraction(self) -> float:
        return self.used_blocks / max(1, self.total_blocks)

    @property
    def fragmentation(self) -> float:
        slots = self.used_blocks * self.block_tokens
        if slots == 0:
            return 0.0
        return 1.0 - self.used_tokens / slots


class PagedKVAllocator:
    """Free-list allocator over a pool of fixed-size KV blocks.

    Parameters
    ----------
    total_blocks:
        Blocks in the pool (codebook overhead already carved out by
        :meth:`from_budget`).
    block_tokens:
        Token slots per block (vLLM's ``block_size``, typically 16).
    bytes_per_block:
        HBM bytes one block occupies under the cache scheme, for
        reporting only — allocation is counted in blocks.

    Owners are opaque hashable keys (the scheduler uses request ids).
    The allocator tracks, per owner, how many blocks it holds and how
    many token slots are live, which is what the fragmentation and
    occupancy statistics derive from.  Invariant (tested):
    ``used_blocks + free_blocks == total_blocks`` at all times.

    ``sanitize=True`` (or env ``REPRO_SANITIZE=1``) arms O(1) invariant
    checks on every operation plus :meth:`audit` /
    :meth:`audit_drained` full-heap sweeps; see
    :mod:`repro.serve.sanitize`.  Checks only read state, so sanitized
    runs are bit-identical on metrics.
    """

    def __init__(self, total_blocks: int, block_tokens: int,
                 bytes_per_block: float = 0.0, sanitize: bool = False):
        if total_blocks < 1:
            raise ValueError("total_blocks must be >= 1")
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.total_blocks = total_blocks
        self.block_tokens = block_tokens
        self.bytes_per_block = bytes_per_block
        self._held: Dict[int, int] = {}
        self._used_tokens: Dict[int, int] = {}
        self._used_blocks = 0
        self.peak_used_blocks = 0
        self.sanitize = sanitize_enabled(sanitize)
        #: Sanitize-mode shadow state: owners that currently hold an
        #: allocation, and owners whose allocation was already freed —
        #: a release hitting the second set is a double-free.  An owner
        #: the allocator has never seen is *not* an error (``release``
        #: documents "0 if unknown"), so direct API users stay valid.
        self._live_owners: Set[int] = set()
        self._freed_owners: Set[int] = set()

    @classmethod
    def from_budget(cls, budget, block_tokens: int,
                    sanitize: bool = False) -> "PagedKVAllocator":
        """Carve a :class:`~repro.serve.scheduler.KVBudget` into blocks.

        The resident-codebook overhead comes off the top (it is not
        pageable), then the remainder is divided into whole blocks —
        the sub-block remainder is the pool-level rounding loss paging
        accepts for O(1) allocation.
        """
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        bytes_per_block = block_tokens * budget.bytes_per_token
        pool = budget.capacity_bytes - budget.overhead_bytes
        total = int(pool // bytes_per_block)
        if total < 1:
            raise ValueError(
                f"budget holds {pool:.0f} bytes but one "
                f"{block_tokens}-token block needs {bytes_per_block:.0f}")
        return cls(total_blocks=total, block_tokens=block_tokens,
                   bytes_per_block=bytes_per_block, sanitize=sanitize)

    # -- accounting ----------------------------------------------------
    @property
    def used_blocks(self) -> int:
        # Maintained as a counter in ensure/release: this is read in
        # per-sequence scheduler loops, where re-summing _held would
        # make every iteration quadratic in the running batch.
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self.used_blocks

    @property
    def used_fraction(self) -> float:
        """Fraction of the pool currently allocated."""
        return self.used_blocks / self.total_blocks

    def holds(self, owner: int) -> int:
        """Blocks currently held by ``owner`` (0 if unknown)."""
        return self._held.get(owner, 0)

    def blocks_for_tokens(self, tokens: int) -> int:
        """Blocks needed to store ``tokens`` token slots (ceil)."""
        if tokens <= 0:
            return 0
        return -(-tokens // self.block_tokens)

    # -- allocation ----------------------------------------------------
    def ensure(self, owner: int, tokens: int) -> bool:
        """Grow ``owner``'s allocation to cover ``tokens`` live tokens.

        Allocates the missing blocks from the free list and returns
        ``True``; returns ``False`` (allocating nothing) when the free
        list cannot cover the growth — the caller then preempts or
        waits.  Shrinking never happens here: blocks are returned only
        by :meth:`release`.
        """
        need = self.blocks_for_tokens(tokens) - self.holds(owner)
        if need > self.free_blocks:
            return False
        if need > 0:
            self._held[owner] = self.holds(owner) + need
            self._used_blocks += need
            self.peak_used_blocks = max(self.peak_used_blocks,
                                        self._used_blocks)
        if tokens > self._used_tokens.get(owner, 0):
            self._used_tokens[owner] = tokens
        if self.sanitize:
            self._note_live(owner)
            check(0 <= self._used_blocks <= self.total_blocks,
                  f"used_blocks counter {self._used_blocks} outside "
                  f"[0, {self.total_blocks}] after ensure({owner!r})")
            check(self._used_tokens.get(owner, 0)
                  <= self.holds(owner) * self.block_tokens,
                  f"owner {owner!r} accounts "
                  f"{self._used_tokens.get(owner, 0)} tokens but holds "
                  f"only {self.holds(owner)} blocks")
        return True

    def release(self, owner: int) -> int:
        """Return all of ``owner``'s blocks to the free list."""
        if self.sanitize:
            self._note_freed(owner)
        self._used_tokens.pop(owner, None)
        freed = self._held.pop(owner, 0)
        self._used_blocks -= freed
        if self.sanitize:
            check(freed >= 0 and self._used_blocks >= 0,
                  f"release({owner!r}) drove used_blocks to "
                  f"{self._used_blocks} (freed {freed}); the free-list "
                  f"counter no longer matches per-owner holdings")
        return freed

    # -- sanitize mode -------------------------------------------------
    def _note_live(self, owner: int) -> None:
        self._live_owners.add(owner)
        self._freed_owners.discard(owner)

    def _note_freed(self, owner: int) -> None:
        check(owner not in self._freed_owners,
              f"double free: owner {owner!r} released twice without an "
              f"intervening allocation")
        if owner in self._live_owners:
            self._live_owners.discard(owner)
            self._freed_owners.add(owner)

    def notify_admitted(self, owner: int) -> None:
        """Sanitize-mode hook: the scheduler declares ``owner`` live at
        admission, so a release before any allocation is still tracked
        against double-free.  No-op when sanitize mode is off."""
        if self.sanitize:
            check(owner not in self._live_owners,
                  f"owner {owner!r} admitted while already live "
                  f"(admission without release)")
            self._note_live(owner)

    def audit(self) -> None:
        """Full-heap sweep of every redundant invariant (O(owners)).

        Run by the simulators at drain when sanitize mode is on; callable
        any time the allocator is quiescent (between operations).
        """
        held_sum = sum(self._held.values())
        check(self._used_blocks == held_sum,
              f"used_blocks counter {self._used_blocks} != "
              f"sum of per-owner holdings {held_sum}")
        for owner, blocks in self._held.items():
            check(blocks > 0,
                  f"owner {owner!r} holds a non-positive block count "
                  f"{blocks}")
        for owner, tokens in self._used_tokens.items():
            check(tokens <= self.holds(owner) * self.block_tokens,
                  f"owner {owner!r} accounts {tokens} tokens but holds "
                  f"only {self.holds(owner)} blocks")
        check(self.used_blocks + self.free_blocks == self.total_blocks,
              f"conservation broken: used {self.used_blocks} + free "
              f"{self.free_blocks} != total {self.total_blocks}")
        check(0 <= self.peak_used_blocks <= self.total_blocks,
              f"peak_used_blocks {self.peak_used_blocks} outside "
              f"[0, {self.total_blocks}]")

    def audit_drained(self) -> None:
        """:meth:`audit` plus drained-pool checks: after every sequence
        finished, no owner may hold blocks or token accounting."""
        self.audit()
        check(not self._held,
              f"{len(self._held)} owner(s) still hold blocks after "
              f"drain: {sorted(self._held)[:5]}")
        check(not self._used_tokens,
              f"{len(self._used_tokens)} owner(s) still account tokens "
              f"after drain: {sorted(self._used_tokens)[:5]}")
        check(self._used_blocks == 0,
              f"used_blocks is {self._used_blocks} after drain")

    def stats(self) -> PagingStats:
        """Snapshot for reports and tests."""
        return PagingStats(
            total_blocks=self.total_blocks,
            used_blocks=self.used_blocks,
            free_blocks=self.free_blocks,
            block_tokens=self.block_tokens,
            peak_used_blocks=self.peak_used_blocks,
            n_owners=len(self._held),
            used_tokens=sum(self._used_tokens.values()),
        )

    def emit_metrics(self, registry, **labels) -> None:
        """Emit pool-level gauges into a
        :class:`~repro.obs.metrics.MetricsRegistry` (end-of-run
        snapshot; subclasses add their own counters on top)."""
        snap = self.stats()
        registry.gauge(
            "kv_blocks_total", "KV blocks in the paged pool",
            **labels).set(snap.total_blocks)
        registry.gauge(
            "kv_blocks_peak_used", "Peak KV blocks allocated at once",
            **labels).set(snap.peak_used_blocks)
        registry.gauge(
            "kv_block_tokens", "Token slots per KV block",
            **labels).set(snap.block_tokens)
        registry.gauge(
            "kv_fragmentation",
            "Internal fragmentation of allocated blocks at run end",
            **labels).set(snap.fragmentation)
