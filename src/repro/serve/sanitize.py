"""Runtime sanitizer for the KV allocators (ASan for the block pool).

The paged allocator and the prefix radix tree maintain redundant
bookkeeping — counters beside dicts, ref tallies beside per-node refs —
because the hot paths need O(1) reads.  Redundancy is where corruption
hides: a missed decrement stays invisible until a golden metric drifts
thousands of iterations later.  Sanitize mode makes the redundancy
*checked*: cheap O(1) invariant checks on every allocator operation,
plus a full-heap audit when a simulation drains.

Activation (either is sufficient):

- ``SchedulerConfig(sanitize=True)`` (or ``SimConfig`` /
  ``FleetConfig``, which thread it down), or
- environment ``REPRO_SANITIZE=1`` — so CI can re-run the entire test
  suite sanitized without touching call sites.

Checks only *read* engine state and raise :class:`SanitizeError`;
they never write, so a sanitized run is bit-identical on metrics to an
unsanitized one (tested in ``tests/test_sanitize.py``).

What is caught:

- double-free: a second ``release`` of an owner whose blocks were
  already freed;
- refcount corruption: per-node radix refs disagreeing with the
  ``n_referenced`` tally or with the locks live sequences hold;
- accounting drift: ``used_blocks`` counter vs the per-owner dict,
  token counts exceeding backing blocks, pool conservation
  (used + free == total);
- tree corruption: a node whose rolling hash does not chain from its
  parent, broken parent/child links, wrong-size blocks;
- leaks at drain: owners, locks or referenced blocks surviving after
  every sequence finished.
"""

from __future__ import annotations

import os

__all__ = ["SanitizeError", "sanitize_enabled"]


class SanitizeError(RuntimeError):
    """An allocator invariant does not hold (engine bug, not user error).

    Raised only in sanitize mode; carries a message naming the broken
    invariant and the observed values.
    """


def sanitize_enabled(flag: bool = False) -> bool:
    """Fold an explicit config flag with the ``REPRO_SANITIZE`` env var.

    The env var is read at *allocator construction*, not import, so a
    test can toggle it with ``monkeypatch.setenv`` per case.
    """
    if flag:
        return True
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def check(condition: bool, message: str) -> None:
    """Raise :class:`SanitizeError` unless ``condition`` holds."""
    if not condition:
        raise SanitizeError(message)
