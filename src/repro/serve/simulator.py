"""Discrete-event continuous-batching serving simulator.

:class:`ServingSimulator` replays a request trace
(:mod:`repro.serve.requests`) through a
:class:`~repro.serve.scheduler.ContinuousBatchScheduler`, pricing each
iteration with a :class:`~repro.serve.costs.StepCostModel`.  Time is
owned by the shared event core (:class:`~repro.serve.events.EventLoop`
— arrivals are heap events, the engine's iteration boundary advances
the loop's clock), and each boundary runs the standard serving-engine
loop:

1. admit every request that has arrived by ``now``;
2. ask the scheduler for an iteration plan (decodes + prefill chunks);
3. if nothing is runnable, fast-forward the clock to the next arrival;
4. otherwise execute the plan: advance the clock by its modelled
   latency and commit token progress.

The output is a :class:`ServingReport` with the request-level metrics
serving papers report: sustained request/token throughput, time to
first token (TTFT), time per output token (TPOT), and p50/p95/p99
end-to-end latency.

See ``docs/architecture.md`` for how this sits on top of the analytic
kernel stack.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOMonitor
from repro.obs.timeline import TimelineCollector
from repro.obs.trace import EVT_EVICTED, EVT_REJECTED, NULL_TRACER, Tracer
from repro.serve.api import SimConfig
from repro.serve.costs import StepCostModel
from repro.serve.events import ARRIVAL, SAMPLE, EventLoop
from repro.serve.requests import Request
from repro.serve.scheduler import ContinuousBatchScheduler, SequenceState

#: Sentinel distinguishing "kwarg not passed" from any real value.
_UNSET = object()


def observe_request_metrics(registry: MetricsRegistry, records,
                            n_rejected: int = 0) -> None:
    """Emit request-outcome counters and latency histograms.

    Shared by the serving and fleet report builders; runs once at end
    of run over the completed :class:`RequestRecord` list (never in
    the hot loop), so registry contents are identical with tracing on
    or off.
    """
    registry.counter(
        "requests_completed_total",
        "Requests that finished decoding").inc(len(records))
    registry.counter(
        "requests_rejected_total",
        "Requests rejected at arrival (KV footprint over budget)",
    ).inc(n_rejected)
    ttft = registry.histogram(
        "ttft_ms", "Time to first token (ms)",
        start=1.0, factor=2.0, n_buckets=24)
    tpot = registry.histogram(
        "tpot_ms", "Time per output token after the first (ms)",
        start=0.25, factor=2.0, n_buckets=20)
    latency = registry.histogram(
        "latency_s", "End-to-end request latency (s)",
        start=0.001, factor=2.0, n_buckets=24)
    for r in records:
        ttft.observe(r.ttft_s * 1e3)
        if r.output_tokens > 1:
            tpot.observe(r.tpot_s * 1e3)
        latency.observe(r.latency_s)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of a sequence."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of an empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class RequestRecord:
    """Timing record of one completed request."""

    req_id: int
    arrival_s: float
    first_token_s: float
    finished_s: float
    prompt_tokens: int
    output_tokens: int
    queued_s: float
    #: Prompt tokens served from the prefix cache at the last
    #: admission (0 without prefix caching).
    cached_tokens: int = 0

    @property
    def ttft_s(self) -> float:
        """Time to first token: arrival to first output token."""
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to last token."""
        return self.finished_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Time per output token after the first (0 for 1-token outputs)."""
        if self.output_tokens <= 1:
            return 0.0
        return ((self.finished_s - self.first_token_s)
                / (self.output_tokens - 1))


@dataclass
class ServingReport:
    """Aggregate metrics of one simulated serving run."""

    name: str
    records: List[RequestRecord]
    makespan_s: float
    n_iterations: int
    peak_seqs: int
    peak_kv_utilization: float
    #: Requests whose KV footprint exceeded the budget outright and
    #: were rejected at arrival (never admitted, not in ``records``).
    n_rejected: int = 0
    #: Admission policy of the scheduler that produced this report.
    admission: str = "reserve"
    #: Peak fraction of the KV budget actually resident in HBM (live
    #: tokens for reserve admission, allocated blocks for paged).
    peak_kv_occupancy: float = 0.0
    #: Recompute preemptions fired (paged admission only).
    n_preempted: int = 0
    #: Whether the scheduler shared KV blocks across common prefixes.
    prefix_caching: bool = False
    #: Fraction of admissions that matched at least one cached block.
    prefix_hit_rate: float = 0.0
    #: Fraction of looked-up prompt tokens served from the cache.
    cached_token_fraction: float = 0.0
    #: Cached blocks reclaimed by LRU eviction over the run.
    n_evicted_blocks: int = 0
    #: Copy-on-write block copies: the prompt's next block was cached
    #: but had to be recomputed privately because the prompt ends
    #: inside it (e.g. a fully cached prompt recomputing its last
    #: block for logits).
    n_cow_copies: int = 0
    #: Event-loop statistics of the run (:class:`~repro.serve.events.
    #: EventStats`), surfaced into :meth:`metrics`.
    event_stats: Optional[object] = None
    #: The run's :class:`~repro.obs.metrics.MetricsRegistry`; its flat
    #: dict is merged into :meth:`metrics` and its Prometheus text is
    #: available via ``registry.to_prometheus()``.
    registry: Optional[object] = None
    #: The run's :class:`~repro.obs.trace.Tracer` when the simulation
    #: ran with ``SimConfig(trace=True)``, else ``None``.
    tracer: Optional[object] = None
    #: The run's :class:`~repro.obs.timeline.Timeline` when it ran
    #: with ``SimConfig(timeline=...)``, else ``None``.  Never merged
    #: into :meth:`metrics` — windowed series are an observability
    #: product, and metrics stay bit-identical with sampling on/off.
    timeline: Optional[object] = None
    #: Evaluated :class:`~repro.obs.slo.SLOReport` when the timeline
    #: config carried SLO limits, else ``None``.
    slo: Optional[object] = None

    # -- throughput ----------------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def throughput_rps(self) -> float:
        """Sustained request throughput over the makespan."""
        return self.n_requests / self.makespan_s if self.makespan_s else 0.0

    @property
    def output_tokens_per_s(self) -> float:
        total = sum(r.output_tokens for r in self.records)
        return total / self.makespan_s if self.makespan_s else 0.0

    # -- latency -------------------------------------------------------
    def ttft_s(self, q: float = 50.0) -> float:
        """TTFT percentile (0.0 when nothing completed)."""
        if not self.records:
            return 0.0
        return percentile([r.ttft_s for r in self.records], q)

    def tpot_s(self, q: float = 50.0) -> float:
        """TPOT percentile over multi-token requests (0.0 if none)."""
        values = [r.tpot_s for r in self.records if r.output_tokens > 1]
        if not values:
            return 0.0
        return percentile(values, q)

    def latency_s(self, q: float = 50.0) -> float:
        """End-to-end latency percentile (0.0 when nothing completed)."""
        if not self.records:
            return 0.0
        return percentile([r.latency_s for r in self.records], q)

    def metrics(self) -> dict:
        """Flat JSON-safe metric dict (plain ``int``/``float`` values).

        This is the structured form the experiment orchestrator
        persists to the ``BENCH_<pr>.json`` perf trajectory; keys are
        shared with :meth:`repro.cluster.fleet.FleetReport.metrics`
        where the concepts coincide, so trajectory deltas can compare
        serving and fleet trials uniformly.  Derived quantities are
        stored exactly as computed (no rounding): JSON round-trips
        Python floats losslessly, which is what lets golden tests pin
        persisted metrics bit-identical.
        """
        out = {
            "n_requests": self.n_requests,
            "n_rejected": self.n_rejected,
            "makespan_s": self.makespan_s,
            "n_iterations": self.n_iterations,
            "throughput_rps": self.throughput_rps,
            "output_tokens_per_s": self.output_tokens_per_s,
            "ttft_p50_ms": self.ttft_s(50) * 1e3,
            "ttft_p95_ms": self.ttft_s(95) * 1e3,
            "tpot_p50_ms": self.tpot_s(50) * 1e3,
            "latency_p50_s": self.latency_s(50),
            "latency_p99_s": self.latency_s(99),
            "peak_seqs": self.peak_seqs,
            "peak_kv_utilization": self.peak_kv_utilization,
            "peak_kv_occupancy": self.peak_kv_occupancy,
            "n_preempted": self.n_preempted,
            "prefix_hit_rate": self.prefix_hit_rate,
            "cached_token_fraction": self.cached_token_fraction,
            "n_evicted_blocks": self.n_evicted_blocks,
            "n_cow_copies": self.n_cow_copies,
        }
        if self.event_stats is not None:
            out["n_events"] = self.event_stats.n_events
            out["n_arrivals"] = self.event_stats.n_arrivals
            out["n_step_events"] = self.event_stats.n_step_events
            out["n_idle_polls"] = self.event_stats.n_idle_polls
        if self.registry is not None:
            # Registry metrics never shadow the canonical keys above.
            for key, value in self.registry.to_flat_dict().items():
                out.setdefault(key, value)
        return out

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.name}: {self.n_requests} requests in "
            f"{self.makespan_s:.2f} s ({self.n_iterations} iterations)",
            f"  throughput : {self.throughput_rps:6.2f} req/s, "
            f"{self.output_tokens_per_s:8.1f} output tok/s",
            f"  TTFT       : p50 {self.ttft_s(50) * 1e3:8.1f} ms, "
            f"p95 {self.ttft_s(95) * 1e3:8.1f} ms",
            f"  TPOT       : p50 {self.tpot_s(50) * 1e3:8.2f} ms/token",
            f"  latency    : p50 {self.latency_s(50):6.2f} s, "
            f"p95 {self.latency_s(95):6.2f} s, "
            f"p99 {self.latency_s(99):6.2f} s",
            f"  concurrency: peak {self.peak_seqs} seqs, "
            f"peak KV use {self.peak_kv_utilization:.0%} "
            f"({self.admission}), "
            f"occupancy {self.peak_kv_occupancy:.0%}",
        ]
        if self.prefix_caching:
            lines.append(
                f"  prefix     : {self.prefix_hit_rate:.0%} admissions "
                f"hit, {self.cached_token_fraction:.0%} of prompt tokens "
                f"cached, {self.n_evicted_blocks} blocks evicted")
        if self.n_preempted:
            lines.append(f"  preempted  : {self.n_preempted} recompute "
                         "preemptions")
        if self.n_rejected:
            lines.append(f"  rejected   : {self.n_rejected} requests "
                         "exceeded the KV budget")
        if self.slo is not None:
            lines.extend("  " + ln for ln in
                         self.slo.summary().splitlines())
        return "\n".join(lines)


class ServingSimulator:
    """Drives a trace through scheduler + cost model to a report."""

    def __init__(self, scheduler: ContinuousBatchScheduler,
                 cost_model: StepCostModel, name: str = _UNSET,
                 config: Optional[SimConfig] = None):
        if config is not None:
            if name is not _UNSET:
                raise TypeError(
                    "pass either config= or the legacy name= kwarg, "
                    "not both")
        else:
            if name is not _UNSET:
                warnings.warn(
                    "passing simulator options as individual kwargs is "
                    "deprecated; pass config=SimConfig(...) "
                    "(repro.serve.api)", DeprecationWarning, stacklevel=2)
                config = SimConfig(name=name)
            else:
                config = SimConfig()
        self.config = config
        self.scheduler = scheduler
        self.cost_model = cost_model
        self.name = config.name

    def run(self, trace: Sequence[Request],
            max_iterations: Optional[int] = None) -> ServingReport:
        """Simulate the full trace; returns the metric report.

        ``max_iterations`` defaults to the config's cap.
        """
        if max_iterations is None:
            max_iterations = self.config.max_iterations
        pending = sorted(trace, key=lambda r: r.arrival_s)
        if not pending:
            raise ValueError("empty trace")
        loop = EventLoop()
        for req in pending:
            loop.push(req.arrival_s, ARRIVAL, req)
        now_s = 0.0
        sched = self.scheduler
        tracer = Tracer(name=self.name) if self.config.trace else NULL_TRACER
        self.tracer = tracer
        if tracer.enabled:
            sched.tracer = tracer
        timeline = (TimelineCollector(self.config.timeline,
                                      n_replicas=1, name=self.name)
                    if self.config.timeline is not None else None)
        arrivals_left = len(pending)
        if timeline is not None:
            loop.push(timeline.next_sample_s, SAMPLE, None)
        finished: List[SequenceState] = []
        iterations = 0
        peak_kv = 0.0
        last_evicted = 0

        rejected: List[Request] = []
        while True:
            while True:
                nxt = loop.peek()
                if nxt is None or nxt[0] > now_s:
                    break
                t_evt, kind, req = loop.pop()
                if kind == SAMPLE:
                    # Telemetry boundary: close the window, keep
                    # sampling while the run can still produce events.
                    timeline.sample(t_evt, (sched,))
                    if arrivals_left or sched.has_work:
                        loop.push(timeline.next_sample_s, SAMPLE, None)
                    continue
                arrivals_left -= 1
                if not sched.fits(req):
                    # Could never be admitted: reject up front (a real
                    # server returns 4xx) instead of wedging the queue.
                    rejected.append(req)
                    if tracer.enabled:
                        tracer.event(EVT_REJECTED, req.arrival_s, 0,
                                     req.req_id)
                    if timeline is not None:
                        timeline.on_reject(0)
                    continue
                sched.submit(req)
                if timeline is not None:
                    timeline.on_arrival(0)

            plan = sched.schedule(now_s)
            if plan.empty:
                nxt = loop.peek()
                while nxt is not None and nxt[1] == SAMPLE:
                    # Idle telemetry boundary: close the window without
                    # advancing now_s — the clock only follows
                    # simulation events, so makespan (and every other
                    # metric) stays bit-identical with sampling on.
                    t_evt, _, _ = loop.pop()
                    timeline.sample(t_evt, (sched,))
                    if arrivals_left:
                        loop.push(timeline.next_sample_s, SAMPLE, None)
                    nxt = loop.peek()
                if nxt is not None:
                    # Idle: fast-forward to the next arrival.
                    now_s = max(now_s, nxt[0])
                    continue
                if not sched.has_work:
                    break  # drained
                # Unreachable by construction (a self-preempting decode
                # frees blocks for prefill, and re-admission runs at the
                # top of schedule()) — but a stall must never silently
                # drop in-flight requests, so fail loudly, matching
                # Replica.step in the fleet layer.
                raise RuntimeError(
                    "scheduler made no progress with work pending "
                    f"({len(sched.running)} running, "
                    f"{len(sched.waiting)} waiting, "
                    f"{len(getattr(sched, 'preempted', ()))} preempted)")

            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError(
                    f"simulation exceeded {max_iterations} iterations; "
                    "the offered load likely diverges")
            step_us = self.cost_model.step_us(plan)
            t0 = now_s
            now_s += step_us / 1e6
            peak_kv = max(peak_kv, sched.kv_utilization)
            if tracer.enabled:
                tracer.step(0, t0, step_us, plan, sched.kv_occupancy)
                evicted = getattr(getattr(sched, "allocator", None),
                                  "n_evicted_blocks", 0)
                if evicted > last_evicted:
                    tracer.event(EVT_EVICTED, t0, 0, -1,
                                 evicted - last_evicted)
                    last_evicted = evicted
            done = sched.complete(plan, now_s)
            finished.extend(done)
            if timeline is not None and done:
                timeline.on_complete(0, done, now_s)

        alloc = getattr(sched, "allocator", None)
        if alloc is not None and alloc.sanitize:
            # Full-heap audit at drain: every sequence finished, so the
            # pool must be back to empty (only reads state; raises
            # SanitizeError on any broken invariant).
            alloc.audit_drained()

        records = [
            RequestRecord(
                req_id=s.request.req_id,
                arrival_s=s.request.arrival_s,
                first_token_s=s.first_token_s,
                finished_s=s.finished_s,
                prompt_tokens=s.request.prompt_tokens,
                output_tokens=s.request.output_tokens,
                queued_s=s.admitted_s - s.request.arrival_s,
                cached_tokens=s.cached_tokens,
            )
            for s in finished
        ]
        records.sort(key=lambda r: r.req_id)
        if tracer.enabled:
            tracer.record_sequences(0, finished)
        self.last_event_stats = loop.stats
        registry = MetricsRegistry()
        # Duck-typed schedulers (equivalence-test stand-ins) may not
        # emit; the run still gets event-loop and request metrics.
        emit = getattr(sched, "emit_metrics", None)
        if emit is not None:
            emit(registry)
        loop.stats.emit_metrics(registry)
        observe_request_metrics(registry, records,
                                n_rejected=len(rejected))
        prefix = (sched.prefix_stats()
                  if getattr(sched, "prefix_caching", False) else None)
        timeline_obj = slo_report = None
        if timeline is not None:
            timeline_obj = timeline.finalize(now_s, (sched,))
            if self.config.timeline.tracks_slo:
                slo_report = SLOMonitor(
                    target=self.config.timeline.slo_target,
                ).evaluate(timeline_obj)
        return ServingReport(
            name=self.name,
            records=records,
            makespan_s=now_s,
            n_iterations=iterations,
            peak_seqs=sched.peak_seqs,
            peak_kv_utilization=peak_kv,
            n_rejected=len(rejected),
            admission=getattr(sched, "admission", "reserve"),
            peak_kv_occupancy=getattr(sched, "peak_kv_occupancy", 0.0),
            n_preempted=getattr(sched, "n_preemptions", 0),
            prefix_caching=prefix is not None,
            prefix_hit_rate=prefix.hit_rate if prefix else 0.0,
            cached_token_fraction=(prefix.cached_token_fraction
                                   if prefix else 0.0),
            n_evicted_blocks=prefix.n_evicted_blocks if prefix else 0,
            n_cow_copies=prefix.n_cow_copies if prefix else 0,
            event_stats=loop.stats,
            registry=registry,
            tracer=tracer if tracer.enabled else None,
            timeline=timeline_obj,
            slo=slo_report,
        )
