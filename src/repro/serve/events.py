"""Global event heap: the time source of the fast-path simulators.

Before this module, time lived in two places: the single-engine
simulator kept a ``_Clock`` it bumped per iteration, and the fleet
simulator kept one clock *per replica* and lockstepped all of them to
every arrival (``for rep in replicas: rep.advance_to(t)``) so the
router could inspect consistent state — an O(replicas x arrivals) scan
that polls mostly-idle replicas.

:class:`EventLoop` replaces both with one ``heapq`` ordered by
simulated time.  Event kinds:

- :data:`ARRIVAL` — a request hits the front end;
- :data:`STEP` — a replica (or the single engine) reaches its next
  iteration boundary;
- :data:`TRANSFER` — reserved for cross-replica work movement
  (prefill/decode disaggregation, the ROADMAP item this core exists
  to unlock); no current producer.
- :data:`SAMPLE` — a periodic telemetry boundary
  (:mod:`repro.obs.timeline`): pure observation, never simulation.
  SAMPLE pops are counted separately (``EventStats.n_samples``) and
  excluded from every exported counter, so a run's ``metrics()`` stays
  bit-identical with sampling on or off.

Ordering is ``(time, kind, seq)``: at equal time an ARRIVAL pops
before a STEP, which reproduces the lockstep contract exactly — a
replica advances only while strictly *behind* an arrival
(``now_s < t``), and an iteration boundary landing exactly on the
arrival instant waits until after routing.  SAMPLE sorts before both,
so timeline windows are half-open ``[start, end)`` — an arrival landing
exactly on a window boundary counts in the *next* window.  ``seq`` is
a monotone tiebreaker so payloads never need comparing.

Because replicas interact only through routing, popping in global time
order is *bit-identical* to the lockstep schedule: each replica's
iteration chain is a function of its own submissions and clock, and
the router still sees every replica advanced to (or past) each arrival
instant.  What changes is who gets touched — an idle replica simply is
not in the heap, so sparse-arrival fleets stop paying the
poll-everyone tax (:class:`EventStats` counts exactly that;
``tests/test_serve_events.py`` pins the drop and the equivalence).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

__all__ = ["ARRIVAL", "SAMPLE", "STEP", "TRANSFER", "EventLoop",
           "EventStats"]

#: Event kinds, in tie-break priority order (lower pops first at equal
#: simulated time — see the module docstring for why
#: SAMPLE < ARRIVAL < STEP).
SAMPLE = -1
ARRIVAL = 0
STEP = 1
TRANSFER = 2


@dataclass
class EventStats:
    """Counters of one event-loop run (wakeup accounting).

    ``n_step_events`` is the number of times a worker was *woken* to
    run one iteration — under the heap this equals the iterations that
    actually execute, whereas the old lockstep driver additionally
    polled every replica at every arrival (``replicas x arrivals``
    activations, almost all no-ops on sparse traces).  ``n_idle_polls``
    counts wakeups that found no runnable work; the heap keeps it at
    zero by construction, and the regression test holds it there.
    """

    n_events: int = 0
    n_arrivals: int = 0
    n_step_events: int = 0
    n_transfers: int = 0
    n_idle_polls: int = 0
    #: Timeline SAMPLE pops.  Deliberately *not* part of ``n_events``
    #: and never exported by :meth:`emit_metrics`: the sampling cadence
    #: is an observability knob, and report metrics must stay
    #: bit-identical whether a run sampled or not.
    n_samples: int = 0

    def emit_metrics(self, registry, **labels) -> None:
        """Emit these counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` (``n_idle_polls``
        stays zero by construction — exporting it makes the invariant
        monitorable, not just testable)."""
        registry.counter(
            "events_total", "Events popped from the global heap",
            **labels).inc(self.n_events)
        registry.counter(
            "events_arrivals_total", "ARRIVAL events popped",
            **labels).inc(self.n_arrivals)
        registry.counter(
            "events_steps_total", "STEP wakeups popped",
            **labels).inc(self.n_step_events)
        registry.counter(
            "events_transfers_total", "TRANSFER events popped",
            **labels).inc(self.n_transfers)
        registry.counter(
            "events_idle_polls_total",
            "Wakeups that found no runnable work",
            **labels).inc(self.n_idle_polls)


class EventLoop:
    """A ``heapq``-based future event list over simulated seconds."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self.stats = EventStats()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def push(self, time_s: float, kind: int, payload: Any = None) -> None:
        """Schedule ``payload`` at ``time_s`` (stable FIFO at ties)."""
        self._seq += 1
        heapq.heappush(self._heap, (time_s, kind, self._seq, payload))

    def peek(self) -> Optional[Tuple[float, int, Any]]:
        """The next event without popping it, or ``None``."""
        if not self._heap:
            return None
        time_s, kind, _, payload = self._heap[0]
        return time_s, kind, payload

    def pop(self) -> Tuple[float, int, Any]:
        """Remove and return the next ``(time_s, kind, payload)``."""
        time_s, kind, _, payload = heapq.heappop(self._heap)
        st = self.stats
        if kind == SAMPLE:
            # Observation only: excluded from every exported counter.
            st.n_samples += 1
            return time_s, kind, payload
        st.n_events += 1
        if kind == ARRIVAL:
            st.n_arrivals += 1
        elif kind == STEP:
            st.n_step_events += 1
        else:
            st.n_transfers += 1
        return time_s, kind, payload
