"""Continuous-batching scheduler with KV-cache memory accounting.

The scheduler implements the iteration-level (Orca-style) continuous
batching loop used by modern LLM serving engines:

- every iteration, all running sequences in the *decode* phase
  contribute one token each, in round-robin priority so a tight token
  budget never starves the tail of the batch;
- leftover token budget goes to *prefill*, chunked so a long prompt
  never starves decodes (chunked prefill);
- memory is governed by one of two admission policies:

  ``admission="reserve"``
      a request is admitted only when its worst-case KV-cache footprint
      (prompt + maximum output tokens) fits in the HBM budget, so there
      is never a mid-generation eviction — simple, but occupancy is
      bounded by reservations that mostly go unused;

  ``admission="paged"``
      KV memory is a pool of fixed-size blocks
      (:class:`~repro.serve.paging.PagedKVAllocator`, vLLM-style)
      allocated on demand as prefill/decode advance.  Admission needs
      only the *prompt's* blocks, so far more sequences run
      concurrently; when the pool runs dry the scheduler preempts the
      most recently admitted sequence via *recompute* — its blocks are
      freed and its prompt (plus tokens generated so far) is
      re-prefilled when it is re-admitted, FCFS ahead of the waiting
      queue.

KV memory is where VQ earns its keep at the serving level: the budget's
bytes-per-token comes from :func:`kv_bytes_per_token`, which scales the
FP16 footprint of :attr:`repro.llm.config.LlamaConfig.kv_bytes_per_token`
by a :class:`~repro.vq.config.VQConfig` compression ratio (e.g. CQ-2
stores 12.5% of FP16), minus a one-off resident-codebook overhead
(:func:`kv_codebook_bytes`).  At an equal HBM budget a VQ cache
therefore admits ~4-8x more concurrent sequences — and under paged
admission it also packs ~4-8x more *blocks*, which is what the
simulator turns into sustained-throughput numbers.

See ``docs/architecture.md`` for how the scheduler plugs into the
simulator and cost model.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.llm.config import LlamaConfig
from repro.vq.config import VQConfig

from repro.obs.trace import EVT_ADMITTED, EVT_PREEMPTED, NULL_TRACER
from repro.serve.api import SchedulerConfig
from repro.serve.paging import PagedKVAllocator
from repro.serve.prefix import PrefixCachingAllocator, PrefixStats
from repro.serve.requests import Request

#: Admission policies :class:`ContinuousBatchScheduler` understands.
ADMISSION_POLICIES = ("reserve", "paged")

#: Sentinel distinguishing "kwarg not passed" from any real value, so
#: the constructor can warn only on *explicit* legacy kwargs.
_UNSET = object()


def kv_bytes_per_token(config: LlamaConfig,
                       vq: Optional[VQConfig] = None,
                       bits: Optional[int] = None) -> float:
    """KV-cache bytes one token occupies across all layers.

    ``vq`` scales the FP16 footprint by the codes-only compression ratio
    (codebooks are accounted separately — they are shared across tokens,
    see :func:`kv_codebook_bytes`).  ``bits`` models an element-wise
    quantized cache (e.g. qServe's INT4) at ``bits/16`` of FP16.
    """
    if vq is not None and bits is not None:
        raise ValueError("vq and bits are mutually exclusive")
    fp16 = float(config.kv_bytes_per_token)
    if vq is not None:
        return fp16 * vq.compression_ratio
    if bits is not None:
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        return fp16 * bits / 16.0
    return fp16


def kv_codebook_bytes(config: LlamaConfig, vq: VQConfig) -> float:
    """Resident codebook storage for a VQ KV cache (both K and V).

    CQ trains one codebook per channel group (``hidden / vector_size``
    groups) per residual level, independently for keys and values in
    every layer.  This is a fixed overhead, shared by all sequences.
    """
    groups = config.hidden // vq.vector_size
    per_side = groups * vq.residuals * vq.codebook_bytes
    return float(2 * per_side * config.n_layers)


@dataclass
class KVBudget:
    """An HBM allowance for KV-cache storage.

    ``capacity_bytes`` is the pool available to the cache (model
    weights, activations and fragmentation margin already subtracted);
    ``overhead_bytes`` (resident codebooks) is taken off the top.
    """

    capacity_bytes: float
    bytes_per_token: float
    overhead_bytes: float = 0.0

    def __post_init__(self):
        if self.bytes_per_token <= 0:
            raise ValueError("bytes_per_token must be positive")
        if self.capacity_bytes <= self.overhead_bytes:
            raise ValueError("capacity does not even fit the overhead")

    @classmethod
    def for_model(cls, config: LlamaConfig, capacity_bytes: float,
                  vq: Optional[VQConfig] = None,
                  bits: Optional[int] = None) -> "KVBudget":
        """Budget for one model under FP16, VQ or element-wise caching."""
        overhead = kv_codebook_bytes(config, vq) if vq is not None else 0.0
        return cls(capacity_bytes=capacity_bytes,
                   bytes_per_token=kv_bytes_per_token(config, vq, bits),
                   overhead_bytes=overhead)

    @staticmethod
    def gpu_kv_capacity(spec, weight_bytes: float,
                        reserve_fraction: float = 0.1) -> float:
        """KV pool left on one GPU: DRAM minus margin minus weights.

        Shared by :meth:`for_gpu` and the cluster layer's per-shard
        budgets (:func:`repro.bench.cluster.replica_kv_budget`), so the
        reserve semantics cannot drift between them.
        """
        if getattr(spec, "dram_bytes", 0.0) <= 0:
            raise ValueError(
                f"{getattr(spec, 'name', spec)!r} has no dram_bytes set; "
                "pass an explicit capacity via for_model instead")
        if not 0 <= reserve_fraction < 1:
            raise ValueError("reserve_fraction must be in [0, 1)")
        capacity = spec.dram_bytes * (1 - reserve_fraction) - weight_bytes
        if capacity <= 0:
            raise ValueError(
                f"resident weights ({weight_bytes / 1e9:.1f} GB) do not "
                f"leave KV room on {spec.name} ({spec.dram_gb:.0f} GB)")
        return capacity

    @classmethod
    def for_gpu(cls, config: LlamaConfig, spec,
                vq: Optional[VQConfig] = None,
                bits: Optional[int] = None,
                weight_bytes: Optional[float] = None,
                reserve_fraction: float = 0.1) -> "KVBudget":
        """Budget derived from a :class:`~repro.gpu.spec.GPUSpec`.

        The KV pool is what remains of the chip's ``dram_bytes`` after
        a ``reserve_fraction`` margin (activations, CUDA context,
        fragmentation) and the resident model weights — FP16 weights
        (``2 * param_count``) unless ``weight_bytes`` overrides, e.g.
        for quantized weights or a tensor-parallel shard.
        """
        if weight_bytes is None:
            weight_bytes = 2.0 * config.param_count
        capacity = cls.gpu_kv_capacity(spec, weight_bytes, reserve_fraction)
        return cls.for_model(config, capacity, vq=vq, bits=bits)

    @property
    def max_tokens(self) -> int:
        """Maximum tokens resident at once under this budget."""
        return int((self.capacity_bytes - self.overhead_bytes)
                   // self.bytes_per_token)


@dataclass
class SequenceState:
    """Scheduler-side state of one admitted request."""

    request: Request
    #: Monotonic first-admission rank (scheduler bookkeeping: preempted
    #: sequences re-admit in this order, keeping re-admission FCFS).
    admission_no: int = 0
    #: Prompt (plus recompute) tokens already prefilled.
    prefilled: int = 0
    #: Output tokens generated so far.
    generated: int = 0
    #: Generated tokens converted back into prefill work by recompute
    #: preemptions (their KV was freed; they re-prefill with the prompt).
    restart_tokens: int = 0
    #: Prompt tokens served from the prefix cache at the most recent
    #: admission (they count as prefilled without prefill work).
    cached_tokens: int = 0
    #: Times this sequence was preempted.
    preemptions: int = 0
    #: Simulation time of admission, first output token, completion.
    admitted_s: float = 0.0
    first_token_s: Optional[float] = None
    finished_s: Optional[float] = None

    @property
    def prefill_target(self) -> int:
        """Tokens this sequence must prefill before (re-)entering decode."""
        return self.request.prompt_tokens + self.restart_tokens

    @property
    def prefill_remaining(self) -> int:
        return self.prefill_target - self.prefilled

    @property
    def in_decode(self) -> bool:
        """Prefill complete and still generating."""
        return self.prefill_remaining == 0 and not self.finished

    @property
    def finished(self) -> bool:
        return self.generated >= self.request.output_tokens

    @property
    def context_tokens(self) -> int:
        """Tokens currently in this sequence's KV cache.

        ``generated`` tokens whose KV was dropped by a preemption count
        only once they are re-prefilled (they are inside ``prefilled``
        via :attr:`prefill_target`), hence the ``restart_tokens``
        correction.
        """
        return self.prefilled + self.generated - self.restart_tokens

    @property
    def reserved_tokens(self) -> int:
        """Worst-case KV tokens reserved for this sequence."""
        return self.request.total_tokens


@dataclass
class BatchPlan:
    """One iteration's work: prefill chunks plus decode sequences."""

    prefill: List[Tuple[SequenceState, int]] = field(default_factory=list)
    decode: List[SequenceState] = field(default_factory=list)
    #: Scheduler-stamped value of :meth:`mean_context` (set on the
    #: reserve fast path from an incrementally maintained context sum;
    #: ``None`` means "derive from ``decode``").  The sum is exact
    #: integer arithmetic either way, so the cached value is
    #: bit-identical to the derived one.
    cached_mean_context: Optional[float] = None
    #: True when ``decode`` is exactly the scheduler's decoding set (one
    #: round-robin rotation of it) — lets ``complete`` detect finished
    #: sequences with one vectorized counter update instead of a
    #: per-sequence property scan.
    full_decode: bool = False

    @property
    def prefill_tokens(self) -> int:
        return sum(chunk for _, chunk in self.prefill)

    @property
    def decode_batch(self) -> int:
        return len(self.decode)

    @property
    def total_tokens(self) -> int:
        return self.prefill_tokens + self.decode_batch

    @property
    def empty(self) -> bool:
        return not self.prefill and not self.decode

    @property
    def prompt_completions(self) -> int:
        """Prefill entries whose chunk completes the prompt this
        iteration — each samples a first token through the LM head.
        Evaluate *before* :meth:`ContinuousBatchScheduler.complete`
        applies the plan (the cost model prices the plan first)."""
        return sum(1 for seq, chunk in self.prefill
                   if chunk == seq.prefill_remaining)

    def mean_context(self) -> float:
        """Mean decode context length (tokens already in cache)."""
        if self.cached_mean_context is not None:
            return self.cached_mean_context
        if not self.decode:
            return 0.0
        return sum(s.context_tokens for s in self.decode) / len(self.decode)


class ContinuousBatchScheduler:
    """Iteration-level scheduler over a KV budget and a token budget.

    Parameters
    ----------
    budget:
        The KV-cache memory allowance.
    config:
        A :class:`~repro.serve.api.SchedulerConfig` carrying every
        option below — the preferred construction surface.  Passing the
        options as individual kwargs still works but is deprecated
        (emits :class:`DeprecationWarning`); the two paths are
        equivalence-tested.
    token_budget:
        Maximum tokens processed per iteration (decode tokens + prefill
        chunk), the knob vLLM calls ``max_num_batched_tokens``.
    max_seqs:
        Maximum concurrently admitted sequences (attention batch cap).
    admission:
        ``"reserve"`` (default) reserves each request's worst-case
        footprint at admission; ``"paged"`` allocates fixed-size blocks
        on demand and preempts-by-recompute on exhaustion.
    block_tokens:
        Token slots per KV block under paged admission (vLLM's
        ``block_size``); ignored for ``"reserve"``.
    watermark_frac:
        Fraction of the block pool paged admission keeps free as a
        hedge against immediate preemption of a just-admitted sequence
        (vLLM's ``watermark``); ignored for ``"reserve"``.
    prefix_caching:
        Share KV blocks across requests with a common prompt prefix
        (requires ``admission="paged"`` and requests that carry
        ``prompt_ids``).  Admission matches the prompt against a radix
        tree of cached blocks
        (:class:`~repro.serve.prefix.PrefixCachingAllocator`): cached
        tokens are credited as already prefilled — they skip the
        prefill GEMM/attention work but still count toward context
        length for decode attention — and finished/preempted sequences
        commit their full blocks back into the tree instead of freeing
        them, where they stay resident until LRU eviction reclaims
        them for live sequences.
    """

    def __init__(self, budget: KVBudget, token_budget: int = _UNSET,
                 max_seqs: int = _UNSET, admission: str = _UNSET,
                 block_tokens: int = _UNSET, watermark_frac: float = _UNSET,
                 prefix_caching: bool = _UNSET,
                 config: Optional[SchedulerConfig] = None):
        legacy = {name: value for name, value in (
            ("token_budget", token_budget), ("max_seqs", max_seqs),
            ("admission", admission), ("block_tokens", block_tokens),
            ("watermark_frac", watermark_frac),
            ("prefix_caching", prefix_caching)) if value is not _UNSET}
        if config is not None:
            if legacy:
                raise TypeError(
                    "pass either config= or legacy scheduler kwargs, not "
                    f"both (got {sorted(legacy)})")
        else:
            if legacy:
                warnings.warn(
                    "passing scheduler options as individual kwargs is "
                    "deprecated; pass config=SchedulerConfig(...) "
                    "(repro.serve.api)", DeprecationWarning, stacklevel=2)
            config = SchedulerConfig(**legacy)
        token_budget = config.token_budget
        max_seqs = config.max_seqs
        admission = config.admission
        block_tokens = config.block_tokens
        watermark_frac = config.watermark_frac
        prefix_caching = config.prefix_caching
        if token_budget < 1:
            raise ValueError("token_budget must be >= 1")
        if max_seqs < 1:
            raise ValueError("max_seqs must be >= 1")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {admission!r}; "
                             f"expected one of {ADMISSION_POLICIES}")
        if not 0 <= watermark_frac < 1:
            raise ValueError("watermark_frac must be in [0, 1)")
        if prefix_caching and admission != "paged":
            raise ValueError("prefix_caching requires admission='paged'")
        self.config = config
        self.budget = budget
        self.token_budget = token_budget
        self.max_seqs = max_seqs
        self.admission = admission
        self.prefix_caching = prefix_caching
        self.allocator: Optional[PagedKVAllocator] = None
        self._watermark_blocks = 0
        if admission == "paged":
            alloc_cls = (PrefixCachingAllocator if prefix_caching
                         else PagedKVAllocator)
            self.allocator = alloc_cls.from_budget(
                budget, block_tokens, sanitize=config.sanitize)
            self._watermark_blocks = int(self.allocator.total_blocks
                                         * watermark_frac)
        self.waiting: Deque[Request] = deque()
        #: Preempted sequences awaiting re-admission (ahead of
        #: ``waiting`` — they are older than anything still queued).
        self.preempted: Deque[SequenceState] = deque()
        self.running: List[SequenceState] = []
        self.reserved_tokens = 0
        #: Reserve-mode fast-path state.  ``running`` is partitioned
        #: (in running order) into ``_prefilling`` and ``_decoding`` so
        #: :meth:`schedule` never scans the whole batch; the two
        #: integer context sums back :attr:`kv_occupancy` and
        #: :meth:`BatchPlan.mean_context` without per-sequence property
        #: walks; ``_dec_remaining`` holds output-tokens-left per
        #: decoding sequence (aligned with ``_decoding``) so full-batch
        #: iterations detect completions with one vectorized compare.
        #: All of it is redundant bookkeeping over the same integers
        #: the object attributes hold — results stay bit-identical.
        #: Paged admission (preemption, block clipping) keeps the
        #: original object path untouched.
        self._decoding: List[SequenceState] = []
        self._prefilling: List[SequenceState] = []
        self._decode_ctx_sum = 0
        self._running_ctx_sum = 0
        self._dec_remaining = np.zeros(0, dtype=np.int64)
        self._dec_dirty = False
        #: Lazy-decrement offset for ``_dec_remaining``: true remaining
        #: is ``stored - _dec_base``, so a full-rotation iteration
        #: "decrements every element" by bumping the scalar.
        self._dec_base = 0
        #: Smallest *true* remaining (meaningful only while
        #: ``_dec_remaining`` is non-empty) — completions are
        #: impossible while > 0, so full-rotation iterations skip the
        #: finished scan entirely.
        self._dec_min = 0
        #: ``budget.max_tokens`` is a derived property; hot paths read
        #: it every iteration, so cache it (budgets are never mutated
        #: after scheduler construction).
        self._max_tokens = budget.max_tokens
        self._admission_counter = 0
        #: Round-robin start offset for decode-slot priority.
        self._decode_offset = 0
        #: High-water marks and counters, for reporting.
        self.peak_seqs = 0
        self.peak_reserved_tokens = 0
        self.peak_kv_occupancy = 0.0
        self.n_preemptions = 0
        #: Observability hooks (:mod:`repro.obs`): the default
        #: :data:`~repro.obs.trace.NULL_TRACER` makes every
        #: ``if tracer.enabled:`` recording guard near-free.  The
        #: simulator that owns this scheduler swaps in a live tracer
        #: (and its replica id) when tracing is on.
        self.tracer = NULL_TRACER
        self.trace_replica = 0
        #: Simulated time of the in-flight :meth:`schedule` call —
        #: preemption fires deep inside plan building where ``now_s``
        #: is not threaded, so it is stashed here (traced runs only).
        self._trace_now_s = 0.0

    # -- queue management ----------------------------------------------
    def fits(self, request: Request) -> bool:
        """Whether this request could ever complete under the budget."""
        if self.allocator is not None:
            return (self.allocator.blocks_for_tokens(request.total_tokens)
                    <= self.allocator.total_blocks)
        return request.total_tokens <= self._max_tokens

    def submit(self, request: Request) -> None:
        """Enqueue an arrived request (FCFS)."""
        if not self.fits(request):
            if self.allocator is not None:
                raise ValueError(
                    f"request {request.req_id} needs "
                    f"{self.allocator.blocks_for_tokens(request.total_tokens)}"
                    f" KV blocks but the pool holds "
                    f"{self.allocator.total_blocks}")
            raise ValueError(
                f"request {request.req_id} needs {request.total_tokens} "
                f"KV tokens but the budget holds {self.budget.max_tokens}")
        self.waiting.append(request)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.preempted or self.running)

    @property
    def kv_utilization(self) -> float:
        """Fraction of the KV budget currently held against admission.

        Reserve mode: worst-case reservations over capacity.  Paged
        mode: allocated blocks over the pool (what actually gates
        allocation).
        """
        if self.allocator is not None:
            return self.allocator.used_fraction
        return self.reserved_tokens / max(1, self._max_tokens)

    @property
    def kv_occupancy(self) -> float:
        """Fraction of the KV budget *actually resident* in HBM.

        Reserve mode: live context tokens over capacity — typically far
        below :attr:`kv_utilization`, because worst-case reservations
        sit idle until the tokens materialise.  Paged mode: allocated
        blocks over the pool (blocks are resident bytes; the gap to
        live tokens is the internal fragmentation the allocator's
        :meth:`~repro.serve.paging.PagedKVAllocator.stats` reports).
        Prefix caching adds the cached-but-unreferenced tree blocks —
        they hold bytes until evicted.
        """
        if self.allocator is not None:
            frac = getattr(self.allocator, "resident_fraction", None)
            return self.allocator.used_fraction if frac is None else frac
        # Incrementally maintained integer sum — exactly equal to
        # ``sum(s.context_tokens for s in self.running)``.
        return self._running_ctx_sum / max(1, self._max_tokens)

    def prefix_stats(self) -> Optional[PrefixStats]:
        """Hit/miss/evict counters (``None`` unless prefix caching)."""
        if not self.prefix_caching:
            return None
        return self.allocator.prefix_stats()

    def emit_metrics(self, registry, **labels) -> None:
        """Emit scheduler counters and high-water marks into a
        :class:`~repro.obs.metrics.MetricsRegistry` (end-of-run only,
        so the same run yields the same registry with tracing on or
        off).  Delegates to the allocator for pool-level metrics."""
        registry.counter(
            "sched_admissions_total", "First-time sequence admissions",
            **labels).inc(self._admission_counter)
        registry.counter(
            "sched_preemptions_total", "Recompute preemptions fired",
            **labels).inc(self.n_preemptions)
        registry.gauge(
            "sched_peak_seqs", "Peak concurrently running sequences",
            **labels).set(self.peak_seqs)
        registry.gauge(
            "sched_peak_reserved_tokens",
            "Peak worst-case KV token reservation (reserve admission)",
            **labels).set(self.peak_reserved_tokens)
        registry.gauge(
            "kv_peak_occupancy",
            "Peak fraction of the KV budget resident in HBM",
            **labels).set(self.peak_kv_occupancy)
        if self.allocator is not None:
            self.allocator.emit_metrics(registry, **labels)

    @property
    def kv_pressure(self) -> float:
        """Near-term KV demand over capacity, counting the queue.

        Unlike :attr:`kv_utilization` this includes what *queued* work
        will need — worst-case reservations in reserve mode, observed
        block usage plus queued prompts' blocks in paged mode — so a
        router sees pressure build before admission does.
        """
        if self.allocator is not None:
            alloc = self.allocator
            queued = sum(alloc.blocks_for_tokens(s.prefill_target + 1)
                         for s in self.preempted)
            queued += sum(alloc.blocks_for_tokens(r.prompt_tokens + 1)
                          for r in self.waiting)
            return (alloc.used_blocks + queued) / alloc.total_blocks
        demand = (self.reserved_tokens
                  + sum(r.total_tokens for r in self.waiting))
        return demand / max(1, self._max_tokens)

    @property
    def kv_fragmentation(self) -> float:
        """Internal fragmentation of the paged pool (0.0 for reserve).

        Single source of truth is the allocator's own stats — the
        scheduler does not keep a second, subtly different tally.
        """
        if self.allocator is None:
            return 0.0
        return self.allocator.stats().fragmentation

    # -- admission -----------------------------------------------------
    def _admit(self, now_s: float) -> None:
        """Move queued work to running while memory and seats last.

        Admission is FCFS without holes: skipping ahead of a large
        request would starve it.  Preempted sequences re-enter first —
        they predate everything still waiting.
        """
        if self.allocator is not None:
            self._admit_paged(now_s)
        else:
            while self.waiting and len(self.running) < self.max_seqs:
                nxt = self.waiting[0]
                if (self.reserved_tokens + nxt.total_tokens
                        > self._max_tokens):
                    break
                self.waiting.popleft()
                seq = self._new_sequence(nxt, now_s)
                self.running.append(seq)
                self.reserved_tokens += nxt.total_tokens
                # prompt_tokens >= 1 (Request validation), so a fresh
                # sequence always starts in the prefill partition.
                self._prefilling.append(seq)
                self._running_ctx_sum += seq.context_tokens
        self.peak_seqs = max(self.peak_seqs, len(self.running))
        self.peak_reserved_tokens = max(self.peak_reserved_tokens,
                                        self.reserved_tokens)

    def _admit_paged(self, now_s: float) -> None:
        """Admit while the free list covers each candidate's prefill.

        Only the prompt (plus the first sampled token's slot) is
        required up front — that is the whole point of paging — but the
        check also counts the *outstanding* prefill demand of already
        running sequences, so a burst of admissions cannot promise the
        same free blocks twice.  Under prefix caching, blocks the
        radix tree already holds for the candidate's prompt are not
        demanded (a feasibility ``peek``; the blocks are matched and
        locked only when the candidate is actually admitted).
        """
        alloc = self.allocator
        committed = sum(
            max(0, alloc.blocks_for_tokens(s.prefill_target + 1)
                - alloc.holds(s.request.req_id))
            for s in self.running)
        while (len(self.running) < self.max_seqs
               and (self.preempted or self.waiting)):
            known = None
            if self.preempted:
                cand = self.preempted[0]
                req = cand.request
                target = cand.prefill_target
                if self.prefix_caching:
                    known = self._known_ids(req, cand.restart_tokens)
            else:
                req = self.waiting[0]
                target = req.prompt_tokens
                if self.prefix_caching:
                    known = self._known_ids(req, 0)
            cached_blocks = 0
            if known is not None:
                cached_blocks = alloc.peek(known) // alloc.block_tokens
            need = max(0, alloc.blocks_for_tokens(target + 1)
                       - cached_blocks)
            watermark = self._watermark_blocks if self.running else 0
            if committed + need + watermark > alloc.free_blocks:
                break
            if self.preempted:
                seq = self.preempted.popleft()
                if self.tracer.enabled:
                    # Re-admission after preemption (value=1 marks it).
                    self.tracer.event(EVT_ADMITTED, now_s,
                                      self.trace_replica,
                                      seq.request.req_id, 1)
            else:
                seq = self._new_sequence(self.waiting.popleft(), now_s)
            if alloc.sanitize:
                # Declare the owner live before any allocation so a
                # release with zero blocks still counts for the
                # double-free check.
                alloc.notify_admitted(req.req_id)
            if known is not None:
                cached = alloc.match_and_lock(req.req_id, known)
                seq.prefilled = cached
                seq.cached_tokens = cached
            self.running.append(seq)
            committed += need

    @staticmethod
    def _known_ids(request: Request, generated: int):
        """Token ids resident after (re-)prefilling ``request`` with
        ``generated`` recompute tokens — ``None`` when the request
        carries no ids (prefix caching is then a per-request no-op)."""
        if request.prompt_ids is None:
            return None
        ids = request.prompt_ids
        if generated > 0 and request.output_ids is not None:
            ids = ids + request.output_ids[:generated]
        return ids

    def _resident_ids(self, seq: SequenceState):
        """Ids of the tokens currently in ``seq``'s KV cache (prompt
        first), for committing full blocks into the prefix tree."""
        ids = self._known_ids(seq.request, seq.generated)
        if ids is None:
            return None
        return ids[:seq.context_tokens]

    def _release_blocks(self, seq: SequenceState) -> None:
        """Free ``seq``'s blocks — committing them to the prefix tree
        first when prefix caching is on and the ids are known."""
        if self.prefix_caching:
            self.allocator.release(seq.request.req_id,
                                   token_ids=self._resident_ids(seq))
        else:
            self.allocator.release(seq.request.req_id)

    def _new_sequence(self, request: Request,
                      now_s: float) -> SequenceState:
        """First admission of a request (stamps its FCFS rank)."""
        self._admission_counter += 1
        if self.tracer.enabled:
            self.tracer.event(EVT_ADMITTED, now_s, self.trace_replica,
                              request.req_id)
        return SequenceState(request=request, admitted_s=now_s,
                             admission_no=self._admission_counter)

    # -- preemption ----------------------------------------------------
    def _preempt(self, victim: SequenceState,
                 evicted_ids: set) -> None:
        """Evict ``victim`` by recompute: free its blocks, queue it for
        re-admission with its generated tokens folded into prefill.

        Under prefix caching the victim's full blocks are committed to
        the tree rather than freed — if they survive until re-admission
        the recompute is (mostly) a cache hit.
        """
        self._release_blocks(victim)
        self.running.remove(victim)
        evicted_ids.add(id(victim))
        victim.prefilled = 0
        victim.restart_tokens = victim.generated
        victim.preemptions += 1
        # Insert by first-admission rank: victims of one iteration fall
        # youngest-first, and a victim of a *later* iteration may be
        # older or younger than what is already queued — either way
        # re-admission must stay FCFS.
        pos = 0
        while (pos < len(self.preempted)
               and self.preempted[pos].admission_no < victim.admission_no):
            pos += 1
        self.preempted.insert(pos, victim)
        self.n_preemptions += 1
        if self.tracer.enabled:
            # value = tokens that will be recomputed at re-admission.
            self.tracer.event(EVT_PREEMPTED, self._trace_now_s,
                              self.trace_replica, victim.request.req_id,
                              victim.restart_tokens)

    def _pick_victim(self, plan: BatchPlan) -> Optional[SequenceState]:
        """Youngest-admitted running sequence not already granted work
        in this plan (it may be the sequence asking for blocks).

        Youngest means highest :attr:`SequenceState.admission_no`, not
        tail position — re-admitted preempted sequences append to the
        tail of ``running`` but keep their original (older) rank, and
        re-evicting one would throw away its just-paid re-prefill.
        """
        planned = {id(s) for s in plan.decode}
        planned.update(id(s) for s, _ in plan.prefill)
        victim: Optional[SequenceState] = None
        for cand in self.running:
            if id(cand) in planned:
                continue
            if victim is None or cand.admission_no > victim.admission_no:
                victim = cand
        return victim

    def _grow_for_decode(self, seq: SequenceState, plan: BatchPlan,
                         evicted_ids: set) -> bool:
        """Allocate ``seq``'s next token slot, preempting as needed.

        Returns ``False`` when ``seq`` cannot decode this iteration —
        either it was itself the preemption victim, or every other
        running sequence is already committed to the plan.
        """
        alloc = self.allocator
        rid = seq.request.req_id
        while not alloc.ensure(rid, seq.context_tokens + 1):
            victim = self._pick_victim(plan)
            if victim is None:
                return False
            self._preempt(victim, evicted_ids)
            if victim is seq:
                return False
        return True

    def _clip_prefill_chunk(self, seq: SequenceState, chunk: int) -> int:
        """Shrink a prefill chunk to what the free list can back now.

        Prefill never preempts — decodes hold that privilege — it just
        takes fewer tokens and resumes next iteration.  A chunk that
        completes the prompt takes the sampled token's slot too when it
        fits; otherwise that slot is deferred to the sequence's first
        decode (whose ``ensure`` may preempt), so a full pool can never
        wedge a one-token-from-done prefill at zero progress.
        """
        alloc = self.allocator
        rid = seq.request.req_id
        kv = seq.context_tokens
        capacity = (alloc.holds(rid) + alloc.free_blocks) * alloc.block_tokens
        avail = capacity - kv
        chunk = min(chunk, avail)
        if chunk < 1:
            return 0
        target = kv + chunk
        if chunk == seq.prefill_remaining and chunk + 1 <= avail:
            target += 1
        if not alloc.ensure(rid, target):  # pragma: no cover - avail bounds
            return 0
        return chunk

    # -- iteration planning --------------------------------------------
    def schedule(self, now_s: float = 0.0) -> BatchPlan:
        """Plan one iteration: decodes first, then chunked prefill.

        Decode slots are granted in round-robin order (a rotating start
        offset over the decoding sequences), so when ``token_budget``
        is smaller than the decoding batch every sequence still makes
        progress within a bounded number of iterations instead of the
        head of ``running`` draining first while the tail starves.
        """
        if self.tracer.enabled:
            self._trace_now_s = now_s
        self._admit(now_s)
        plan = BatchPlan()
        budget = self.token_budget
        #: Sequences preempted while building *this* plan (paged only) —
        #: an id set, so skipping them costs O(1) per candidate instead
        #: of an equality scan of ``running``.
        evicted_ids: set = set()
        if self.allocator is None:
            # Reserve mode maintains the decode partition incrementally
            # (running order, same as the ``in_decode`` scan would
            # yield): prefill completes strictly in running order —
            # earlier sequences drain the chunk budget first — so
            # appending on entry preserves it.
            candidates = self._decoding
        else:
            candidates = [s for s in self.running if s.in_decode]
        if candidates and budget > 0:
            start = self._decode_offset % len(candidates)
            if self.allocator is None and budget >= len(candidates):
                # Fast path: the whole rotation is granted — emit it as
                # one slice concatenation.  ``(start + granted) % len``
                # is ``start`` again when every candidate is granted.
                plan.decode = candidates[start:] + candidates[:start]
                plan.full_decode = True
                plan.cached_mean_context = (self._decode_ctx_sum
                                            / len(candidates))
                budget -= len(candidates)
                self._decode_offset = start
            else:
                granted = 0
                for seq in candidates[start:] + candidates[:start]:
                    if budget <= 0:
                        break
                    if id(seq) in evicted_ids:
                        continue  # preempted as a victim earlier this plan
                    if (self.allocator is not None
                            and not self._grow_for_decode(seq, plan,
                                                          evicted_ids)):
                        continue
                    plan.decode.append(seq)
                    budget -= 1
                    granted += 1
                self._decode_offset = (start + granted) % len(candidates)
        prefill_src = (self._prefilling if self.allocator is None
                       else self.running)
        for seq in list(prefill_src):
            if budget <= 0:
                break
            if seq.prefill_remaining > 0:
                chunk = min(seq.prefill_remaining, budget)
                if self.allocator is not None:
                    chunk = self._clip_prefill_chunk(seq, chunk)
                    if chunk < 1:
                        continue
                plan.prefill.append((seq, chunk))
                budget -= chunk
        return plan

    def complete(self, plan: BatchPlan, now_s: float) -> List[SequenceState]:
        """Apply one executed iteration; return sequences that finished.

        A sequence whose prefill completes emits its first output token
        in the same iteration (the last prefill chunk's logits feed the
        sampler), which is when TTFT stops ticking.  After a recompute
        preemption the same rule re-applies: the iteration completing
        the re-prefill samples the *next* token.
        """
        if self.allocator is None:
            return self._complete_reserve(plan, now_s)
        finished: List[SequenceState] = []
        for seq, chunk in plan.prefill:
            seq.prefilled += chunk
            if seq.prefill_remaining == 0:
                seq.generated += 1
                if seq.first_token_s is None:
                    seq.first_token_s = now_s
        for seq in plan.decode:
            seq.generated += 1
            if seq.first_token_s is None:
                seq.first_token_s = now_s
        # High-water mark of resident KV, before finished sequences free.
        self.peak_kv_occupancy = max(self.peak_kv_occupancy,
                                     self.kv_occupancy)
        for seq in list(self.running):
            if seq.finished:
                seq.finished_s = now_s
                self.running.remove(seq)
                self._release_blocks(seq)
                finished.append(seq)
        return finished

    def _complete_reserve(self, plan: BatchPlan,
                          now_s: float) -> List[SequenceState]:
        """Reserve-mode :meth:`complete`: same transitions, maintained
        incrementally over the fast-path partitions.

        Only sequences granted a token this iteration can newly finish,
        so the finished scan never walks ``running``: a full-rotation
        decode grant is checked with one vectorized decrement of
        ``_dec_remaining`` (``full_decode`` plans), anything else falls
        back to scanning just the decode partition.  The vectorized
        decrement itself is lazy — a scalar ``_dec_base`` offset stands
        in for subtracting 1 from every element, and ``_dec_min``
        (smallest true remaining) proves most iterations cannot finish
        anyone, so the steady-state cost per iteration is two integer
        ops, not an array pass.  All sums are integer arithmetic —
        metrics stay bit-identical to the original whole-batch scans.
        """
        entrants: List[SequenceState] = []
        for seq, chunk in plan.prefill:
            seq.prefilled += chunk
            self._running_ctx_sum += chunk
            if seq.prefill_remaining == 0:
                seq.generated += 1
                self._running_ctx_sum += 1
                if seq.first_token_s is None:
                    seq.first_token_s = now_s
                # Completions are a prefix of the prefill partition
                # (earlier sequences drain the budget first), so this
                # removal hits index 0 and is O(1).
                self._prefilling.remove(seq)
                entrants.append(seq)
        for seq in plan.decode:
            seq.generated += 1
            if seq.first_token_s is None:
                seq.first_token_s = now_s
        n_decode = len(plan.decode)
        self._running_ctx_sum += n_decode
        self._decode_ctx_sum += n_decode
        # High-water mark of resident KV, before finished sequences free.
        self.peak_kv_occupancy = max(self.peak_kv_occupancy,
                                     self.kv_occupancy)
        decode_done: List[SequenceState] = []
        if plan.full_decode and n_decode == len(self._decoding):
            if self._dec_dirty:
                # Rebuild post-increment: values already reflect this
                # iteration's token, so no decrement on this branch.
                self._dec_remaining = np.fromiter(
                    (s.request.output_tokens - s.generated
                     for s in self._decoding),
                    dtype=np.int64, count=n_decode)
                self._dec_base = 0
                self._dec_dirty = False
                self._dec_min = int(self._dec_remaining.min())
            else:
                # Lazy decrement of the whole array: true remaining is
                # ``stored - _dec_base``.
                self._dec_base += 1
                self._dec_min -= 1
            if n_decode and self._dec_min <= 0:
                done = self._dec_remaining <= self._dec_base
                decode_done = [self._decoding[i]
                               for i in np.nonzero(done)[0]]
                self._dec_remaining = self._dec_remaining[~done]
                self._dec_min = (int(self._dec_remaining.min())
                                 - self._dec_base
                                 if self._dec_remaining.size else 0)
        elif n_decode:
            self._dec_dirty = True
            decode_done = [s for s in self._decoding if s.finished]
        # Decode finishers precede entrant finishers in running order:
        # decode entry follows running order, and entrants are the
        # youngest decoders-to-be.
        finished = decode_done + [s for s in entrants if s.finished]
        if finished:
            for seq in finished:
                seq.finished_s = now_s
                self.reserved_tokens -= seq.reserved_tokens
                self._running_ctx_sum -= seq.context_tokens
            dead = {id(s) for s in finished}
            self.running[:] = [s for s in self.running if id(s) not in dead]
            if decode_done:
                for seq in decode_done:
                    self._decode_ctx_sum -= seq.context_tokens
                self._decoding[:] = [s for s in self._decoding
                                     if id(s) not in dead]
        live = [s for s in entrants if not s.finished]
        if live:
            for seq in live:
                self._decoding.append(seq)
                self._decode_ctx_sum += seq.context_tokens
            if not self._dec_dirty:
                vals = [s.request.output_tokens - s.generated
                        for s in live]
                vmin = min(vals)
                self._dec_min = (vmin if self._dec_remaining.size == 0
                                 else min(self._dec_min, vmin))
                self._dec_remaining = np.concatenate(
                    [self._dec_remaining,
                     np.array(vals, dtype=np.int64) + self._dec_base])
        return finished
