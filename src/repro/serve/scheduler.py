"""Continuous-batching scheduler with KV-cache memory accounting.

The scheduler implements the iteration-level (Orca-style) continuous
batching loop used by modern LLM serving engines:

- every iteration, all running sequences in the *decode* phase
  contribute one token each;
- leftover token budget goes to *prefill*, chunked so a long prompt
  never starves decodes (chunked prefill);
- a request is admitted only when its worst-case KV-cache footprint
  (prompt + maximum output tokens) fits in the HBM budget, so there is
  never a mid-generation eviction.

KV memory is where VQ earns its keep at the serving level: the budget's
bytes-per-token comes from :func:`kv_bytes_per_token`, which scales the
FP16 footprint of :attr:`repro.llm.config.LlamaConfig.kv_bytes_per_token`
by a :class:`~repro.vq.config.VQConfig` compression ratio (e.g. CQ-2
stores 12.5% of FP16), minus a one-off resident-codebook overhead
(:func:`kv_codebook_bytes`).  At an equal HBM budget a VQ cache
therefore admits ~4-8x more concurrent sequences, which is what the
simulator turns into sustained-throughput numbers.

See ``docs/architecture.md`` for how the scheduler plugs into the
simulator and cost model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.llm.config import LlamaConfig
from repro.vq.config import VQConfig

from repro.serve.requests import Request


def kv_bytes_per_token(config: LlamaConfig,
                       vq: Optional[VQConfig] = None,
                       bits: Optional[int] = None) -> float:
    """KV-cache bytes one token occupies across all layers.

    ``vq`` scales the FP16 footprint by the codes-only compression ratio
    (codebooks are accounted separately — they are shared across tokens,
    see :func:`kv_codebook_bytes`).  ``bits`` models an element-wise
    quantized cache (e.g. qServe's INT4) at ``bits/16`` of FP16.
    """
    if vq is not None and bits is not None:
        raise ValueError("vq and bits are mutually exclusive")
    fp16 = float(config.kv_bytes_per_token)
    if vq is not None:
        return fp16 * vq.compression_ratio
    if bits is not None:
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        return fp16 * bits / 16.0
    return fp16


def kv_codebook_bytes(config: LlamaConfig, vq: VQConfig) -> float:
    """Resident codebook storage for a VQ KV cache (both K and V).

    CQ trains one codebook per channel group (``hidden / vector_size``
    groups) per residual level, independently for keys and values in
    every layer.  This is a fixed overhead, shared by all sequences.
    """
    groups = config.hidden // vq.vector_size
    per_side = groups * vq.residuals * vq.codebook_bytes
    return float(2 * per_side * config.n_layers)


@dataclass
class KVBudget:
    """An HBM allowance for KV-cache storage.

    ``capacity_bytes`` is the pool available to the cache (model
    weights, activations and fragmentation margin already subtracted);
    ``overhead_bytes`` (resident codebooks) is taken off the top.
    """

    capacity_bytes: float
    bytes_per_token: float
    overhead_bytes: float = 0.0

    def __post_init__(self):
        if self.bytes_per_token <= 0:
            raise ValueError("bytes_per_token must be positive")
        if self.capacity_bytes <= self.overhead_bytes:
            raise ValueError("capacity does not even fit the overhead")

    @classmethod
    def for_model(cls, config: LlamaConfig, capacity_bytes: float,
                  vq: Optional[VQConfig] = None,
                  bits: Optional[int] = None) -> "KVBudget":
        """Budget for one model under FP16, VQ or element-wise caching."""
        overhead = kv_codebook_bytes(config, vq) if vq is not None else 0.0
        return cls(capacity_bytes=capacity_bytes,
                   bytes_per_token=kv_bytes_per_token(config, vq, bits),
                   overhead_bytes=overhead)

    @staticmethod
    def gpu_kv_capacity(spec, weight_bytes: float,
                        reserve_fraction: float = 0.1) -> float:
        """KV pool left on one GPU: DRAM minus margin minus weights.

        Shared by :meth:`for_gpu` and the cluster layer's per-shard
        budgets (:func:`repro.bench.cluster.replica_kv_budget`), so the
        reserve semantics cannot drift between them.
        """
        if getattr(spec, "dram_bytes", 0.0) <= 0:
            raise ValueError(
                f"{getattr(spec, 'name', spec)!r} has no dram_bytes set; "
                "pass an explicit capacity via for_model instead")
        if not 0 <= reserve_fraction < 1:
            raise ValueError("reserve_fraction must be in [0, 1)")
        capacity = spec.dram_bytes * (1 - reserve_fraction) - weight_bytes
        if capacity <= 0:
            raise ValueError(
                f"resident weights ({weight_bytes / 1e9:.1f} GB) do not "
                f"leave KV room on {spec.name} ({spec.dram_gb:.0f} GB)")
        return capacity

    @classmethod
    def for_gpu(cls, config: LlamaConfig, spec,
                vq: Optional[VQConfig] = None,
                bits: Optional[int] = None,
                weight_bytes: Optional[float] = None,
                reserve_fraction: float = 0.1) -> "KVBudget":
        """Budget derived from a :class:`~repro.gpu.spec.GPUSpec`.

        The KV pool is what remains of the chip's ``dram_bytes`` after
        a ``reserve_fraction`` margin (activations, CUDA context,
        fragmentation) and the resident model weights — FP16 weights
        (``2 * param_count``) unless ``weight_bytes`` overrides, e.g.
        for quantized weights or a tensor-parallel shard.
        """
        if weight_bytes is None:
            weight_bytes = 2.0 * config.param_count
        capacity = cls.gpu_kv_capacity(spec, weight_bytes, reserve_fraction)
        return cls.for_model(config, capacity, vq=vq, bits=bits)

    @property
    def max_tokens(self) -> int:
        """Maximum tokens resident at once under this budget."""
        return int((self.capacity_bytes - self.overhead_bytes)
                   // self.bytes_per_token)


@dataclass
class SequenceState:
    """Scheduler-side state of one admitted request."""

    request: Request
    #: Prompt tokens already prefilled.
    prefilled: int = 0
    #: Output tokens generated so far.
    generated: int = 0
    #: Simulation time of admission, first output token, completion.
    admitted_s: float = 0.0
    first_token_s: Optional[float] = None
    finished_s: Optional[float] = None

    @property
    def prefill_remaining(self) -> int:
        return self.request.prompt_tokens - self.prefilled

    @property
    def in_decode(self) -> bool:
        """Prefill complete and still generating."""
        return self.prefill_remaining == 0 and not self.finished

    @property
    def finished(self) -> bool:
        return self.generated >= self.request.output_tokens

    @property
    def context_tokens(self) -> int:
        """Tokens currently in this sequence's KV cache."""
        return self.prefilled + self.generated

    @property
    def reserved_tokens(self) -> int:
        """Worst-case KV tokens reserved for this sequence."""
        return self.request.total_tokens


@dataclass
class BatchPlan:
    """One iteration's work: prefill chunks plus decode sequences."""

    prefill: List[Tuple[SequenceState, int]] = field(default_factory=list)
    decode: List[SequenceState] = field(default_factory=list)

    @property
    def prefill_tokens(self) -> int:
        return sum(chunk for _, chunk in self.prefill)

    @property
    def decode_batch(self) -> int:
        return len(self.decode)

    @property
    def total_tokens(self) -> int:
        return self.prefill_tokens + self.decode_batch

    @property
    def empty(self) -> bool:
        return not self.prefill and not self.decode

    def mean_context(self) -> float:
        """Mean decode context length (tokens already in cache)."""
        if not self.decode:
            return 0.0
        return sum(s.context_tokens for s in self.decode) / len(self.decode)


class ContinuousBatchScheduler:
    """Iteration-level scheduler over a KV budget and a token budget.

    Parameters
    ----------
    budget:
        The KV-cache memory allowance; admission reserves each request's
        worst-case footprint against it.
    token_budget:
        Maximum tokens processed per iteration (decode tokens + prefill
        chunk), the knob vLLM calls ``max_num_batched_tokens``.
    max_seqs:
        Maximum concurrently admitted sequences (attention batch cap).
    """

    def __init__(self, budget: KVBudget, token_budget: int = 2048,
                 max_seqs: int = 64):
        if token_budget < 1:
            raise ValueError("token_budget must be >= 1")
        if max_seqs < 1:
            raise ValueError("max_seqs must be >= 1")
        self.budget = budget
        self.token_budget = token_budget
        self.max_seqs = max_seqs
        self.waiting: Deque[Request] = deque()
        self.running: List[SequenceState] = []
        self.reserved_tokens = 0
        #: High-water marks, for reporting.
        self.peak_seqs = 0
        self.peak_reserved_tokens = 0

    # -- queue management ----------------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue an arrived request (FCFS)."""
        if request.total_tokens > self.budget.max_tokens:
            raise ValueError(
                f"request {request.req_id} needs {request.total_tokens} "
                f"KV tokens but the budget holds {self.budget.max_tokens}")
        self.waiting.append(request)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)

    @property
    def kv_utilization(self) -> float:
        """Fraction of the KV budget currently reserved."""
        return self.reserved_tokens / max(1, self.budget.max_tokens)

    def _admit(self, now_s: float) -> None:
        """Move waiting requests to running while memory and seats last.

        Admission is FCFS without holes: skipping ahead of a large
        request would starve it (head-of-line blocking is the fair
        price of no-eviction reservations).
        """
        while self.waiting and len(self.running) < self.max_seqs:
            nxt = self.waiting[0]
            if (self.reserved_tokens + nxt.total_tokens
                    > self.budget.max_tokens):
                break
            self.waiting.popleft()
            self.running.append(SequenceState(request=nxt, admitted_s=now_s))
            self.reserved_tokens += nxt.total_tokens
        self.peak_seqs = max(self.peak_seqs, len(self.running))
        self.peak_reserved_tokens = max(self.peak_reserved_tokens,
                                        self.reserved_tokens)

    # -- iteration planning --------------------------------------------
    def schedule(self, now_s: float = 0.0) -> BatchPlan:
        """Plan one iteration: decodes first, then chunked prefill."""
        self._admit(now_s)
        plan = BatchPlan()
        budget = self.token_budget
        for seq in self.running:
            if seq.in_decode and budget > 0:
                plan.decode.append(seq)
                budget -= 1
        for seq in self.running:
            if budget <= 0:
                break
            if seq.prefill_remaining > 0:
                chunk = min(seq.prefill_remaining, budget)
                plan.prefill.append((seq, chunk))
                budget -= chunk
        return plan

    def complete(self, plan: BatchPlan, now_s: float) -> List[SequenceState]:
        """Apply one executed iteration; return sequences that finished.

        A sequence whose prefill completes emits its first output token
        in the same iteration (the last prefill chunk's logits feed the
        sampler), which is when TTFT stops ticking.
        """
        finished: List[SequenceState] = []
        for seq, chunk in plan.prefill:
            seq.prefilled += chunk
            if seq.prefill_remaining == 0:
                seq.generated += 1
                seq.first_token_s = now_s
        for seq in plan.decode:
            seq.generated += 1
            if seq.first_token_s is None:
                seq.first_token_s = now_s
        for seq in list(self.running):
            if seq.finished:
                seq.finished_s = now_s
                self.running.remove(seq)
                self.reserved_tokens -= seq.reserved_tokens
                finished.append(seq)
        return finished
