"""Typed configuration facade and unified report surface.

The simulator grew one constructor kwarg at a time — by PR 6 a serving
run threaded six scheduler knobs plus simulator and fleet options
through every call site.  This module is the stable public surface that
replaces that sprawl:

- :class:`SchedulerConfig` / :class:`SimConfig` / :class:`FleetConfig`
  are frozen dataclasses describing a scheduler, a single-engine
  simulation and a fleet simulation.  Each has a ``build`` method that
  produces the live object; the underlying constructors
  (:class:`~repro.serve.scheduler.ContinuousBatchScheduler`,
  :class:`~repro.serve.simulator.ServingSimulator`,
  :class:`~repro.cluster.fleet.FleetSimulator`) also accept
  ``config=`` directly.
- Legacy keyword arguments on those constructors still work but emit a
  :class:`DeprecationWarning` naming the config class to use instead;
  the two paths are equivalence-tested (``tests/test_serve_api.py``).
  Positional/keyword *objects* (budget, cost model, replicas) are not
  deprecated — only the scalar option sprawl is.
- :class:`Report` is the structural protocol both
  :class:`~repro.serve.simulator.ServingReport` and
  :class:`~repro.cluster.fleet.FleetReport` satisfy: ``metrics()``
  returns the flat JSON-safe dict the experiment orchestrator
  persists, ``summary()`` the human-readable block.

Deprecation policy: legacy kwargs are kept working for one PR cycle
after their replacement lands, warning on every explicit use, and are
removed only when no in-repo call site needs them.  Configs are frozen
so they can be shared across replicas and processes (the orchestrator
pickles them into its worker pool) without aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Protocol, runtime_checkable

from repro.obs.timeline import TimelineConfig

__all__ = [
    "FleetConfig",
    "Report",
    "SchedulerConfig",
    "SimConfig",
]


@runtime_checkable
class Report(Protocol):
    """What every simulation report exposes, regardless of layer.

    ``metrics()`` is the flat JSON-safe dict (plain ``int``/``float``
    values, losslessly serialisable) persisted to the perf trajectory;
    ``summary()`` is the multi-line human-readable form.  The protocol
    is structural (``runtime_checkable``): any object with conforming
    methods counts, which is how :class:`~repro.serve.simulator.
    ServingReport` and :class:`~repro.cluster.fleet.FleetReport`
    implement it without a shared base class.
    """

    def metrics(self) -> dict:  # pragma: no cover - protocol stub
        ...

    def summary(self) -> str:  # pragma: no cover - protocol stub
        ...


@dataclass(frozen=True)
class SchedulerConfig:
    """Options of one :class:`~repro.serve.scheduler.
    ContinuousBatchScheduler` (everything but the KV budget, which is
    workload state, not configuration)."""

    #: Max tokens per iteration (vLLM's ``max_num_batched_tokens``).
    token_budget: int = 2048
    #: Max concurrently admitted sequences.
    max_seqs: int = 64
    #: ``"reserve"`` (worst-case reservations) or ``"paged"`` (block
    #: pool with recompute preemption).
    admission: str = "reserve"
    #: Token slots per KV block under paged admission.
    block_tokens: int = 16
    #: Fraction of the block pool kept free at admission time.
    watermark_frac: float = 0.01
    #: Share KV blocks across common prompt prefixes (paged only).
    prefix_caching: bool = False
    #: Arm allocator invariant checks (:mod:`repro.serve.sanitize`):
    #: O(1) per-operation plus a full-heap audit at drain.  Env
    #: ``REPRO_SANITIZE=1`` turns this on without touching configs.
    #: Checks only read state — metrics stay bit-identical.
    sanitize: bool = False

    def build(self, budget) -> "ContinuousBatchScheduler":
        """A fresh scheduler over ``budget`` with these options."""
        from repro.serve.scheduler import ContinuousBatchScheduler
        return ContinuousBatchScheduler(budget, config=self)


@dataclass(frozen=True)
class SimConfig:
    """One single-engine serving simulation: scheduler options plus
    the simulator's own knobs."""

    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    name: str = "serving"
    #: Iteration cap before the run aborts (diverging offered load).
    max_iterations: int = 1_000_000
    #: Record per-request lifecycle and per-step timelines
    #: (:mod:`repro.obs`).  Off by default: the disabled path is
    #: bit-identical and near-free.
    trace: bool = False
    #: Sample windowed time-series telemetry over simulated time
    #: (:class:`~repro.obs.timeline.TimelineConfig`, or ``None`` to
    #: disable).  Same contract as tracing: reported metrics are
    #: bit-identical on or off.
    timeline: Optional[TimelineConfig] = None
    #: Arm allocator sanitize mode for the run (threaded down to the
    #: scheduler config; see :attr:`SchedulerConfig.sanitize`).
    sanitize: bool = False

    def build(self, budget, cost_model) -> "ServingSimulator":
        """A fresh simulator: scheduler over ``budget``, this config."""
        from repro.serve.simulator import ServingSimulator
        sched_cfg = (replace(self.scheduler, sanitize=True)
                     if self.sanitize and not self.scheduler.sanitize
                     else self.scheduler)
        return ServingSimulator(sched_cfg.build(budget), cost_model,
                                config=self)


@dataclass(frozen=True)
class FleetConfig:
    """One fleet simulation: per-replica scheduler options, routing
    policy and the fleet driver's knobs."""

    scheduler: SchedulerConfig = field(
        default_factory=lambda: SchedulerConfig(max_seqs=128))
    #: Routing policy name (see :data:`repro.cluster.fleet.POLICIES`)
    #: or a :class:`~repro.cluster.fleet.RouterPolicy` instance.
    policy: object = "jsq"
    name: str = "fleet"
    #: Per-replica iteration cap before the run aborts.
    max_iterations: int = 1_000_000
    #: Record per-request lifecycle and per-step timelines across all
    #: replicas (:mod:`repro.obs`); disabled path is bit-identical.
    trace: bool = False
    #: Sample windowed per-replica time-series telemetry
    #: (:class:`~repro.obs.timeline.TimelineConfig`, or ``None`` to
    #: disable); reported metrics are bit-identical on or off.
    timeline: Optional[TimelineConfig] = None
    #: Arm allocator sanitize mode on every replica (threaded down to
    #: the scheduler config; see :attr:`SchedulerConfig.sanitize`).
    sanitize: bool = False

    def with_policy(self, policy) -> "FleetConfig":
        """This config with a different routing policy (stateful
        policies must be fresh per run, hence the helper)."""
        return replace(self, policy=policy)

    def build(self, n_replicas: int, budget, cost_model,
              name: Optional[str] = None) -> "FleetSimulator":
        """A fleet of ``n_replicas`` identical fresh replicas.

        Every replica gets its own scheduler over (a copy of the
        accounting for) ``budget``; the cost model is shared, which is
        safe — it is read-only at simulation time.
        """
        from repro.cluster.fleet import FleetSimulator, Replica
        cfg = self if name is None else replace(self, name=name)
        sched_cfg = (replace(self.scheduler, sanitize=True)
                     if self.sanitize and not self.scheduler.sanitize
                     else self.scheduler)
        replicas = [Replica(i, sched_cfg.build(budget), cost_model)
                    for i in range(n_replicas)]
        return FleetSimulator(replicas, config=cfg)
