"""Shared-prefix KV reuse: a radix tree of ref-counted paged blocks.

:mod:`repro.serve.paging` treats KV blocks as interchangeable counts;
this module gives them *identity* so requests that share a prompt
prefix — thousands of requests behind one system prompt, or a chat
session re-sending its whole history every turn — can share the blocks
instead of recomputing them (vLLM's automatic prefix caching, SGLang's
radix attention).

Design:

- **Block identity.**  A cached block is one radix-tree node holding
  exactly ``block_tokens`` token ids.  Nodes are keyed by a *rolling
  hash* chained from the parent (:func:`rolling_hash`), so looking up a
  prompt is one hash-and-compare per block; stored token ids are
  verified on every hop, so a hash collision degrades to a miss, never
  to a wrong hit.
- **Ref counting.**  Matching a prompt locks the matched path
  (``ref += 1`` on every node); ``release`` unlocks it.  Referenced
  blocks are pinned; because locks are always path prefixes, a
  referenced node's ancestors are referenced too, so the unreferenced
  nodes form downward-closed subtrees.
- **LRU eviction.**  Unreferenced *leaves* are evicted
  least-recently-used when the free list cannot cover an allocation —
  cached blocks are a second-class tenant of the pool: resident while
  memory is idle, reclaimed the moment a live sequence needs the block.
- **Copy-on-write.**  Only *full* blocks are shared, and at least one
  prompt token must always be recomputed (its logits feed the
  sampler).  When the block holding that tail is itself cached — the
  prompt's next block matches a tree node exactly, typically because
  the whole prompt is cached — the sequence cannot extend the shared
  copy in place: it recomputes those tokens into a *private copy* of
  the cached block (``n_cow_copies`` in the stats).  A prompt that
  *diverges* inside a block shares nothing there — that is a plain
  miss, not a COW.

:class:`PrefixCachingAllocator` extends
:class:`~repro.serve.paging.PagedKVAllocator` with the tree while
keeping its interface, so
:class:`~repro.serve.scheduler.ContinuousBatchScheduler` under
``prefix_caching=True`` reuses the paged admission/preemption machinery
unchanged: ``holds`` counts shared + private blocks, ``free_blocks``
counts truly-free *plus evictable* blocks, and the conservation
invariant ``used + free == total`` still holds with ``used`` = blocks
referenced by live sequences.

Compression interacts directly: a CQ-4 pool holds ~4x the FP16 block
count at equal HBM, so at equal memory the compressed cache sustains a
much deeper shared-prefix tree before eviction sets in — higher hit
rates on the same workload, which is the headline
``examples/prefix_caching.py`` checks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.paging import PagedKVAllocator, PagingStats
from repro.serve.sanitize import check

#: Multiplier/modulus of the polynomial rolling hash (64-bit prime
#: modulus; the multiplier is a large odd constant well-spread mod 2^61).
_HASH_MULT = 1_000_003
_HASH_MOD = (1 << 61) - 1


def rolling_hash(parent_hash: int, tokens: Sequence[int]) -> int:
    """Chained polynomial hash of one block's token ids.

    The parent's hash seeds the polynomial, so equal blocks at
    different tree positions hash differently — a block's identity is
    its *full prefix*, not just its own tokens.
    """
    h = parent_hash
    for t in tokens:
        h = (h * _HASH_MULT + int(t) + 1) % _HASH_MOD
    return h


class _RadixNode:
    """One cached full block: token ids plus tree and LRU bookkeeping."""

    __slots__ = ("key", "tokens", "parent", "children", "ref", "last_used")

    def __init__(self, key: int, tokens: Tuple[int, ...],
                 parent: Optional["_RadixNode"]):
        self.key = key
        self.tokens = tokens
        self.parent = parent
        self.children: Dict[int, _RadixNode] = {}
        self.ref = 0
        self.last_used = 0


@dataclass(frozen=True)
class PrefixStats:
    """Cumulative hit/miss/evict counters of a prefix cache."""

    #: Prompt lookups performed (one per admission of an id-carrying
    #: request, including re-admissions after preemption).
    n_lookups: int
    #: Lookups that matched at least one cached block.
    n_lookup_hits: int
    #: Prompt tokens served from cache across all lookups.
    hit_tokens: int
    #: Prompt tokens that had to be prefilled.
    miss_tokens: int
    #: Cached blocks reclaimed by LRU eviction.
    n_evicted_blocks: int
    #: Private copies of *cached* blocks: the prompt's next block was
    #: in the tree but had to be recomputed privately because the
    #: prompt ends inside it (at least the final token's logits are
    #: always recomputed).  In-block divergence is a miss, not a COW.
    n_cow_copies: int
    #: Full blocks inserted into the tree by sequence release.
    n_committed_blocks: int
    #: Tree blocks currently resident (referenced + evictable).
    cached_blocks: int
    #: Tree blocks currently referenced by live sequences.
    referenced_blocks: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit at least one block."""
        return self.n_lookup_hits / max(1, self.n_lookups)

    @property
    def cached_token_fraction(self) -> float:
        """Fraction of looked-up prompt tokens served from cache."""
        return self.hit_tokens / max(1, self.hit_tokens + self.miss_tokens)


class PrefixCache:
    """Radix tree over full KV blocks with ref counts and LRU eviction.

    Pure tree logic — which blocks exist, which are locked, which to
    evict; pool accounting (how many blocks memory affords) lives in
    :class:`PrefixCachingAllocator`.  ``block_tokens`` is the node
    granularity; only exact multiples are ever stored.
    """

    def __init__(self, block_tokens: int):
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.block_tokens = block_tokens
        self._root = _RadixNode(key=0, tokens=(), parent=None)
        self._n_nodes = 0
        self._n_referenced = 0
        self._tick = 0

    # -- size ----------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        """Resident tree blocks (each occupies one pool block)."""
        return self._n_nodes

    @property
    def n_referenced(self) -> int:
        """Tree blocks locked by at least one live sequence."""
        return self._n_referenced

    @property
    def n_evictable(self) -> int:
        """Tree blocks reclaimable (transitively: unreferenced subtrees
        fall leaf-by-leaf, and locks are path prefixes, so every
        unreferenced block is eventually evictable)."""
        return self._n_nodes - self._n_referenced

    # -- lookup --------------------------------------------------------
    def _walk(self, token_ids: Sequence[int],
              max_blocks: int) -> List[_RadixNode]:
        bt = self.block_tokens
        node = self._root
        path: List[_RadixNode] = []
        for b in range(max_blocks):
            tokens = tuple(token_ids[b * bt:(b + 1) * bt])
            child = node.children.get(rolling_hash(node.key, tokens))
            if child is None or child.tokens != tokens:
                break
            path.append(child)
            node = child
        return path

    def match(self, token_ids: Sequence[int],
              max_blocks: int) -> List[_RadixNode]:
        """Longest cached full-block prefix of ``token_ids`` (deepest
        first ``<= max_blocks`` blocks), LRU-touched but *not* locked."""
        path = self._walk(token_ids, max_blocks)
        self._tick += 1
        for node in path:
            node.last_used = self._tick
        return path

    # -- ref counting --------------------------------------------------
    def lock(self, nodes: Sequence[_RadixNode]) -> None:
        """Pin ``nodes`` (a root-down path) against eviction."""
        for node in nodes:
            if node.ref == 0:
                self._n_referenced += 1
            node.ref += 1

    def unlock(self, nodes: Sequence[_RadixNode]) -> None:
        """Drop one reference from each of ``nodes``."""
        for node in nodes:
            if node.ref < 1:  # pragma: no cover - internal misuse
                raise RuntimeError("unlock of an unreferenced block")
            node.ref -= 1
            if node.ref == 0:
                self._n_referenced -= 1

    # -- insertion -----------------------------------------------------
    def insert(self, token_ids: Sequence[int],
               n_blocks: int) -> Tuple[int, int]:
        """Ensure the first ``n_blocks`` full blocks of ``token_ids``
        are in the tree.

        Returns ``(created, duplicates)``: blocks newly added (the
        caller donates one pool block each) and blocks already present
        beyond the walk the caller knew about (the caller frees its
        private copies — concurrent requests that missed the same
        prefix converge on one resident copy).
        """
        bt = self.block_tokens
        node = self._root
        created = 0
        dups = 0
        self._tick += 1
        for b in range(n_blocks):
            tokens = tuple(token_ids[b * bt:(b + 1) * bt])
            key = rolling_hash(node.key, tokens)
            child = node.children.get(key)
            if child is not None and child.tokens == tokens:
                dups += 1
            else:
                if child is not None:
                    # Hash collision: keep the resident block, treat
                    # the new one as uncacheable from here down.
                    break
                child = _RadixNode(key=key, tokens=tokens, parent=node)
                node.children[key] = child
                self._n_nodes += 1
                created += 1
            child.last_used = self._tick
            node = child
        return created, dups

    # -- eviction ------------------------------------------------------
    def evict_lru(self, n: int) -> int:
        """Evict up to ``n`` unreferenced leaves, least recently used
        first (evicting a leaf may expose its parent).  Returns the
        number of blocks actually reclaimed.

        One DFS collects every evictable leaf into a ``last_used``
        heap; parents join the heap as their last child falls — so a
        bulk reclaim costs one tree walk plus a heap pop per block,
        not a fresh walk per block.  Ties on ``last_used`` break by
        DFS discovery order, which is deterministic.
        """
        if n <= 0:
            return 0
        heap: List[tuple] = []
        order = itertools.count()
        stack = [self._root]
        while stack:
            node = stack.pop()
            for child in node.children.values():
                if child.children:
                    stack.append(child)
                elif child.ref == 0:
                    heapq.heappush(heap,
                                   (child.last_used, next(order), child))
        evicted = 0
        while evicted < n and heap:
            _, _, victim = heapq.heappop(heap)
            parent = victim.parent
            del parent.children[victim.key]
            self._n_nodes -= 1
            evicted += 1
            if (parent is not self._root and not parent.children
                    and parent.ref == 0):
                heapq.heappush(heap,
                               (parent.last_used, next(order), parent))
        return evicted


class PrefixCachingAllocator(PagedKVAllocator):
    """Paged allocator whose blocks can be shared through a radix tree.

    Accounting (the conservation invariant stays
    ``used_blocks + free_blocks == total_blocks``):

    - *private* blocks — held by exactly one sequence (its uncached
      suffix and generated tokens), tracked by the parent class;
    - *shared* blocks — tree nodes locked by ``match_and_lock``; they
      count once in ``used_blocks`` no matter how many sequences hold
      them;
    - *evictable* blocks — unreferenced tree nodes; counted in
      ``free_blocks`` because :meth:`ensure` reclaims them on demand,
      so admission sees the capacity it can actually get.

    ``release(owner, token_ids=...)`` commits the owner's full private
    blocks into the tree instead of freeing them — that is how the
    cache warms — and drops the owner's locks on shared blocks.
    """

    def __init__(self, total_blocks: int, block_tokens: int,
                 bytes_per_block: float = 0.0, sanitize: bool = False):
        super().__init__(total_blocks, block_tokens, bytes_per_block,
                         sanitize=sanitize)
        self.cache = PrefixCache(block_tokens)
        self._shared: Dict[int, List[_RadixNode]] = {}
        self.n_lookups = 0
        self.n_lookup_hits = 0
        self.hit_tokens = 0
        self.miss_tokens = 0
        self.n_evicted_blocks = 0
        self.n_cow_copies = 0
        self.n_committed_blocks = 0

    # -- accounting overrides ------------------------------------------
    @property
    def used_blocks(self) -> int:
        """Blocks referenced by live sequences (private + shared,
        shared counted once)."""
        return self._used_blocks + self.cache.n_referenced

    @property
    def raw_free_blocks(self) -> int:
        """Blocks on the free list proper (no eviction needed)."""
        return (self.total_blocks - self._used_blocks
                - self.cache.n_blocks)

    @property
    def resident_fraction(self) -> float:
        """Fraction of the pool holding bytes — live sequences' blocks
        *plus* cached-but-unreferenced tree blocks (they are resident
        HBM until evicted, which is what occupancy should report)."""
        return ((self._used_blocks + self.cache.n_blocks)
                / self.total_blocks)

    def holds(self, owner: int) -> int:
        """Private plus shared blocks backing ``owner``'s tokens."""
        return (self._held.get(owner, 0)
                + len(self._shared.get(owner, ())))

    def shared_blocks(self, owner: int) -> int:
        """Cached blocks ``owner`` is sharing (0 if none)."""
        return len(self._shared.get(owner, ()))

    # -- prefix lookup -------------------------------------------------
    def _matchable_blocks(self, token_ids: Sequence[int]) -> int:
        # At least one prompt token must be computed (its logits feed
        # the sampler), so a fully cached prompt still recomputes its
        # last block from a private copy-on-write copy.
        return max(0, (len(token_ids) - 1) // self.block_tokens)

    def peek(self, token_ids: Sequence[int]) -> int:
        """Cached-token count a :meth:`match_and_lock` would return,
        without locking or touching the stats (admission feasibility
        checks run every scheduling round; only real admissions should
        count as lookups)."""
        if not token_ids:
            return 0
        path = self.cache._walk(token_ids, self._matchable_blocks(token_ids))
        return len(path) * self.block_tokens

    def match_and_lock(self, owner: int, token_ids: Sequence[int]) -> int:
        """Match ``token_ids`` against the tree, lock the matched path
        for ``owner``, and return the cached token count.

        The owner must hold nothing yet (fresh admission or re-admission
        after a preemption released everything).
        """
        if self.holds(owner) != 0:
            raise RuntimeError(f"owner {owner!r} already holds blocks")
        if not token_ids:
            return 0
        matchable = self._matchable_blocks(token_ids)
        path = self.cache.match(token_ids, matchable)
        # Copy-on-write: the prompt diverges (or ends) inside the next
        # block — if that block is cached, a shared copy cannot be
        # extended in place, so the sequence recomputes those tokens
        # into a private copy.
        bt = self.block_tokens
        if len(path) == matchable:
            # The un-matchable tail is never empty: matchable is capped
            # at (len(token_ids) - 1) // bt.
            tail = tuple(token_ids[matchable * bt:(matchable + 1) * bt])
            parent = path[-1] if path else self.cache._root
            child = parent.children.get(rolling_hash(parent.key, tail))
            if child is not None and child.tokens == tail:
                self.n_cow_copies += 1
        self.cache.lock(path)
        if path:
            self._shared[owner] = path
        if self.sanitize:
            self._note_live(owner)
        cached = len(path) * bt
        self.n_lookups += 1
        if path:
            self.n_lookup_hits += 1
        self.hit_tokens += cached
        self.miss_tokens += len(token_ids) - cached
        if cached > 0:
            self._used_tokens[owner] = cached
        return cached

    # -- allocation override -------------------------------------------
    def ensure(self, owner: int, tokens: int) -> bool:
        """Grow ``owner`` to ``tokens`` live tokens, evicting
        unreferenced cached blocks LRU when the free list runs short."""
        need = self.blocks_for_tokens(tokens) - self.holds(owner)
        if need > self.raw_free_blocks:
            evicted = self.cache.evict_lru(need - self.raw_free_blocks)
            self.n_evicted_blocks += evicted
        if need > self.raw_free_blocks:
            return False
        if need > 0:
            self._held[owner] = self._held.get(owner, 0) + need
            self._used_blocks += need
            self.peak_used_blocks = max(self.peak_used_blocks,
                                        self.used_blocks)
        if tokens > self._used_tokens.get(owner, 0):
            self._used_tokens[owner] = tokens
        if self.sanitize:
            self._note_live(owner)
            check(self.raw_free_blocks >= 0,
                  f"free list overdrawn: raw_free_blocks is "
                  f"{self.raw_free_blocks} after ensure({owner!r})")
            check(self._used_tokens.get(owner, 0)
                  <= self.holds(owner) * self.block_tokens,
                  f"owner {owner!r} accounts "
                  f"{self._used_tokens.get(owner, 0)} tokens but holds "
                  f"only {self.holds(owner)} blocks (private + shared)")
        return True

    # -- release / commit ----------------------------------------------
    def release(self, owner: int,
                token_ids: Optional[Sequence[int]] = None) -> int:
        """Unlock ``owner``'s shared blocks and free its private ones —
        after committing every full private block whose ids are known
        (``token_ids`` = the ids of the owner's resident tokens, prompt
        first) into the tree, where it stays resident as cached.

        Returns the number of blocks returned to the free list (blocks
        that became cached are resident, not free).
        """
        if self.sanitize:
            self._note_freed(owner)
        shared = self._shared.pop(owner, [])
        if token_ids:
            bt = self.block_tokens
            live = min(len(token_ids), self._used_tokens.get(owner, 0))
            committable = live // bt
            if committable > len(shared):
                created, dups = self.cache.insert(token_ids, committable)
                # Committed blocks leave the owner's private count:
                # created ones transfer into the tree (still resident),
                # duplicates collapse onto the resident copy (freed).
                moved = created + max(0, dups - len(shared))
                moved = min(moved, self._held.get(owner, 0))
                if moved:
                    self._held[owner] = self._held.get(owner, 0) - moved
                    self._used_blocks -= moved
                self.n_committed_blocks += created
        self.cache.unlock(shared)
        self._used_tokens.pop(owner, None)
        freed = self._held.pop(owner, 0)
        self._used_blocks -= freed
        if self.sanitize:
            check(self._used_blocks >= 0,
                  f"release({owner!r}) drove the private-block counter "
                  f"to {self._used_blocks}")
        return freed

    # -- stats ---------------------------------------------------------
    def stats(self) -> PagingStats:
        """Snapshot with sharing-aware token accounting.

        Shared blocks are full by construction and counted once in
        ``used_blocks`` even when several owners report them in their
        token counts, so live slots are each owner's *private* tokens
        (tokens beyond its shared prefix) plus one full block per
        referenced tree node — keeping ``fragmentation`` in [0, 1].
        """
        bt = self.block_tokens
        private_live = sum(
            max(0, tokens - len(self._shared.get(owner, ())) * bt)
            for owner, tokens in self._used_tokens.items())
        return PagingStats(
            total_blocks=self.total_blocks,
            used_blocks=self.used_blocks,
            free_blocks=self.free_blocks,
            block_tokens=bt,
            peak_used_blocks=self.peak_used_blocks,
            n_owners=len(set(self._held) | set(self._shared)),
            used_tokens=private_live + self.cache.n_referenced * bt,
        )

    def prefix_stats(self) -> PrefixStats:
        """Snapshot of the hit/miss/evict counters."""
        return PrefixStats(
            n_lookups=self.n_lookups,
            n_lookup_hits=self.n_lookup_hits,
            hit_tokens=self.hit_tokens,
            miss_tokens=self.miss_tokens,
            n_evicted_blocks=self.n_evicted_blocks,
            n_cow_copies=self.n_cow_copies,
            n_committed_blocks=self.n_committed_blocks,
            cached_blocks=self.cache.n_blocks,
            referenced_blocks=self.cache.n_referenced,
        )

    def emit_metrics(self, registry, **labels) -> None:
        """Pool gauges (super) plus radix-tree hit/miss counters."""
        super().emit_metrics(registry, **labels)
        registry.counter(
            "prefix_lookups_total", "Prefix-cache admission lookups",
            **labels).inc(self.n_lookups)
        registry.counter(
            "prefix_lookup_hits_total",
            "Lookups matching at least one cached block",
            **labels).inc(self.n_lookup_hits)
        registry.counter(
            "prefix_hit_tokens_total",
            "Prompt tokens served from the prefix cache",
            **labels).inc(self.hit_tokens)
        registry.counter(
            "prefix_miss_tokens_total",
            "Looked-up prompt tokens that had to be computed",
            **labels).inc(self.miss_tokens)
        registry.counter(
            "prefix_evicted_blocks_total",
            "Cached blocks reclaimed by LRU eviction",
            **labels).inc(self.n_evicted_blocks)
        registry.counter(
            "prefix_cow_copies_total", "Copy-on-write block copies",
            **labels).inc(self.n_cow_copies)
        registry.counter(
            "prefix_committed_blocks_total",
            "Full blocks committed into the radix tree",
            **labels).inc(self.n_committed_blocks)
        registry.gauge(
            "prefix_cached_blocks", "Tree blocks resident at run end",
            **labels).set(self.cache.n_blocks)
        registry.gauge(
            "prefix_referenced_blocks",
            "Tree blocks referenced by live sequences at run end",
            **labels).set(self.cache.n_referenced)

    # -- sanitize mode -------------------------------------------------
    def audit(self) -> None:
        """Base-pool audit plus a full radix-tree consistency sweep.

        The tree walk verifies, for every node: the rolling hash chains
        from the parent (``key == rolling_hash(parent.key, tokens)``),
        parent/child links are mutual, blocks are exactly
        ``block_tokens`` wide, refs are non-negative, and every
        referenced node has a referenced parent (locks are path
        prefixes).  Tallies (``n_nodes``, ``n_referenced``) and the sum
        of per-node refs are re-derived and compared against the O(1)
        counters and the locks live sequences hold.
        """
        super().audit()
        cache = self.cache
        n_nodes = 0
        n_ref = 0
        ref_sum = 0
        stack = [cache._root]
        while stack:
            node = stack.pop()
            for key, child in node.children.items():
                n_nodes += 1
                check(child.parent is node,
                      f"node {child.key} has a stale parent link")
                check(child.key == key,
                      f"node keyed {key} in its parent's children map "
                      f"carries key {child.key}")
                check(child.key == rolling_hash(node.key, child.tokens),
                      f"node {child.key} does not hash-chain from its "
                      f"parent {node.key}: the tree no longer matches "
                      f"its lookup keys")
                check(len(child.tokens) == self.block_tokens,
                      f"node {child.key} stores {len(child.tokens)} "
                      f"tokens; only full {self.block_tokens}-token "
                      f"blocks may be cached")
                check(child.ref >= 0,
                      f"node {child.key} has negative ref {child.ref}")
                if child.ref > 0:
                    n_ref += 1
                    check(node is cache._root or node.ref > 0,
                          f"node {child.key} is referenced but its "
                          f"parent is not; locks must be path prefixes")
                ref_sum += child.ref
                stack.append(child)
        check(n_nodes == cache._n_nodes,
              f"tree holds {n_nodes} nodes but the n_nodes tally says "
              f"{cache._n_nodes}")
        check(n_ref == cache._n_referenced,
              f"{n_ref} nodes are referenced but the n_referenced "
              f"tally says {cache._n_referenced}")
        lock_sum = sum(len(path) for path in self._shared.values())
        check(ref_sum == lock_sum,
              f"node refs sum to {ref_sum} but live sequences hold "
              f"{lock_sum} locks (refcount leak)")
        for owner, path in self._shared.items():
            prev = cache._root
            for node in path:
                check(node.parent is prev,
                      f"owner {owner!r}'s locked path is not a "
                      f"root-down path")
                check(node.ref >= 1,
                      f"owner {owner!r} locks node {node.key} whose "
                      f"ref is {node.ref}")
                prev = node
        check(self._used_blocks + cache.n_blocks + self.raw_free_blocks
              == self.total_blocks,
              f"pool partition broken: private {self._used_blocks} + "
              f"cached {cache.n_blocks} + free {self.raw_free_blocks} "
              f"!= total {self.total_blocks}")

    def audit_drained(self) -> None:
        """Drained audit: additionally, no live sequence may still lock
        tree blocks (cached-but-unreferenced residents are fine — a
        warm cache is the point)."""
        check(not self._shared,
              f"{len(self._shared)} owner(s) still lock cached blocks "
              f"after drain: {sorted(self._shared)[:5]}")
        check(self.cache.n_referenced == 0,
              f"{self.cache.n_referenced} tree blocks still referenced "
              f"after drain")
        super().audit_drained()

    def check_conservation(self) -> None:
        """Assert the pool partition: private + tree + free == total.

        Called by tests and the self-checking example; raises
        ``AssertionError`` on any leak.
        """
        assert (self._used_blocks + self.cache.n_blocks
                + self.raw_free_blocks == self.total_blocks)
        assert self.used_blocks + self.free_blocks == self.total_blocks
        assert self.cache.n_referenced <= self.cache.n_blocks
