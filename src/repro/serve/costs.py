"""Iteration cost model for the serving simulator.

:class:`StepCostModel` prices one scheduler iteration
(:class:`~repro.serve.scheduler.BatchPlan`) in microseconds using the
same kernel models as the per-kernel experiments:

- decode tokens are costed as one decode step of
  :func:`repro.llm.model.decode_operator_shapes` at the batch size and
  (bucketed) mean context length, through the engine's memoized
  :meth:`~repro.core.engine.ComputeEngine.batch_latency_us`;
- prefill chunks are costed as GEMMs over the chunk's tokens plus FP16
  causal flash-prefill attention (prefill *writes* the cache; VQ
  encoding of new tokens is the < 1 us/token online step the paper
  measures as negligible);
- element-wise operators (norms, RoPE, activations) as bandwidth-bound
  passes, as in :mod:`repro.bench.e2e`.

Batch sizes and context lengths are bucketed (rounded up to a small
geometric grid) before keying the engine cache, so a simulation of
thousands of iterations evaluates only a few dozen distinct kernels —
everything else is a cache hit.  Bucketing rounds *up*, making the
model slightly conservative rather than optimistic.

On the simulator hot path even a cache *hit* used to be expensive:
one decode step re-built a dozen shape objects and walked the engine's
LRU per operator.  Each model instance therefore keeps precomputed
bucket tables — plain dicts keyed by the bucketed inputs, holding the
finished per-iteration totals for :meth:`~StepCostModel.decode_step_us`
(``(batch_bucket, seq_bucket)``), :meth:`~StepCostModel.prefill_us`
(chunk/total/context buckets) and :meth:`~StepCostModel.first_token_us`
(batch bucket).  The first evaluation of a bucket runs the full
operator walk; every later iteration in the same bucket is a single
dict lookup returning the *identical* float, so the tables are
invisible to the golden bit-identity tests.  Subclasses that reshape
operators (:class:`repro.cluster.costs.ShardedStepCostModel`) inherit
the tables per instance, with their collective terms memoized inside
the totals.

Prefix caching needs no special handling here: the scheduler credits
cached prompt tokens as already prefilled, so :meth:`~StepCostModel.
prefill_us` is only ever called for the uncached suffix — with
``context_tokens`` covering the cached prefix, which charges exactly
the suffix queries' attention over the full (cached + new) context and
no GEMM/attention work for the cached tokens themselves.  Cached
tokens still count toward decode context length, priced as usual by
:meth:`~StepCostModel.decode_step_us`.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence, Tuple

from repro.core.engine import ComputeEngine
from repro.gpu.costmodel import LAUNCH_OVERHEAD_S
from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.llm.config import LlamaConfig
from repro.llm.model import decode_operator_shapes
from repro.vq.quantizer import QuantizedTensor

from repro.serve.scheduler import BatchPlan

#: Default batch-size buckets (rounded up; extended by doubling).
BATCH_BUCKETS = (1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128)

#: Kernel launches per layer of the element-wise operators (as in
#: :mod:`repro.bench.e2e`).
ELEMENTWISE_LAUNCHES = 8


def bucket_up(value: int, buckets: Sequence[int]) -> int:
    """Round ``value`` up to the nearest bucket, doubling past the end."""
    if value <= 0:
        raise ValueError("value must be positive")
    i = bisect.bisect_left(buckets, value)
    if i < len(buckets):
        return buckets[i]
    b = buckets[-1]
    while b < value:
        b *= 2
    return b


class StepCostModel:
    """Prices scheduler iterations for one (GPU, model, mode) triple.

    Quantized operands are passed in directly (the bench layer maps
    serving-mode names to sample tensors, see
    :func:`repro.bench.serving.make_cost_model`):

    - ``weight_qt`` / ``weight_bits`` — fused-VQ or element-wise
      quantized weights (both ``None`` means FP16 weights);
    - ``kv_qt`` (a (K, V) pair) / ``kv_bits`` — the KV-cache scheme
      used by decode attention;
    - the LM head always stays FP16, as in the paper's E2E setup.
    """

    def __init__(
        self,
        engine: ComputeEngine,
        config: LlamaConfig,
        weight_qt: Optional[QuantizedTensor] = None,
        weight_bits: Optional[int] = None,
        kv_qt: Optional[Tuple[QuantizedTensor, QuantizedTensor]] = None,
        kv_bits: Optional[int] = None,
        level: str = "O4",
        seq_bucket: int = 256,
        batch_buckets: Sequence[int] = BATCH_BUCKETS,
    ):
        if weight_qt is not None and weight_bits is not None:
            raise ValueError("weight_qt and weight_bits are exclusive")
        if kv_qt is not None and kv_bits is not None:
            raise ValueError("kv_qt and kv_bits are exclusive")
        if seq_bucket < 1:
            raise ValueError("seq_bucket must be >= 1")
        self.engine = engine
        self.config = config
        self.weight_qt = weight_qt
        self.weight_bits = weight_bits
        self.kv_qt = kv_qt
        self.kv_bits = kv_bits
        self.level = level
        self.seq_bucket = seq_bucket
        self.batch_buckets = tuple(sorted(batch_buckets))
        #: Precomputed bucket tables (see module docstring): finished
        #: per-iteration totals keyed by bucketed inputs, so the hot
        #: path is one dict hit instead of an operator walk.
        self._decode_table: dict = {}
        self._prefill_table: dict = {}
        self._first_token_table: dict = {}
        self._table_hits = 0

    # -- bucketing -----------------------------------------------------
    def _bucket_batch(self, batch: int) -> int:
        return bucket_up(batch, self.batch_buckets)

    def _bucket_seq(self, tokens: float) -> int:
        # Ceil the fractional mean context *before* the ceil-div: the
        # module contract is that bucketing rounds up (conservative),
        # and truncating first would drop e.g. 256.4 into the 256
        # bucket instead of 512.
        b = self.seq_bucket
        t = math.ceil(max(1.0, tokens))
        return max(b, -(-t // b) * b)

    # -- operator pricing ----------------------------------------------
    def _gemv_us(self, shape: GemmShape, fp16: bool = False) -> float:
        if fp16 or (self.weight_qt is None and self.weight_bits is None):
            return self.engine.batch_latency_us("gemv", shape)
        if self.weight_bits is not None:
            return self.engine.batch_latency_us("gemv", shape,
                                                bits=self.weight_bits)
        return self.engine.batch_latency_us("gemv", shape,
                                            qt=self.weight_qt,
                                            level=self.level)

    def _gemm_us(self, shape: GemmShape, fp16: bool = False) -> float:
        if fp16 or (self.weight_qt is None and self.weight_bits is None):
            return self.engine.batch_latency_us("gemm", shape)
        if self.weight_bits is not None:
            return self.engine.batch_latency_us("gemm", shape,
                                                bits=self.weight_bits)
        return self.engine.batch_latency_us("gemm", shape,
                                            qt=self.weight_qt,
                                            level=self.level)

    def _attention_us(self, shape: AttentionShape) -> float:
        if self.kv_qt is not None:
            qt_k, qt_v = self.kv_qt
            return self.engine.batch_latency_us("attention", shape,
                                                qt=qt_k, qt_v=qt_v,
                                                level=self.level)
        if self.kv_bits is not None:
            return self.engine.batch_latency_us("attention", shape,
                                                bits=self.kv_bits)
        return self.engine.batch_latency_us("attention", shape)

    def _elementwise_us(self, elements: int) -> float:
        """Bandwidth-bound read+write pass plus launch overheads."""
        bytes_moved = elements * 2 * 2
        bw = self.engine.spec.dram_bytes_per_s * 0.75
        quantized = not (self.weight_qt is None and self.weight_bits is None)
        extra = 1.3 if quantized else 1.0
        return (bytes_moved * extra / bw
                + ELEMENTWISE_LAUNCHES * LAUNCH_OVERHEAD_S) * 1e6

    # -- sharding hooks (identity on one GPU) --------------------------
    # A tensor-parallel subclass (repro.cluster.costs) reshapes each
    # operator for one shard and adds collective time per iteration;
    # keeping the hooks here lets the pricing loops below stay the
    # single source of truth for *what* an iteration runs.
    def _shard_gemm(self, name: str, shape: GemmShape) -> GemmShape:
        return shape

    def _shard_attention(self, shape: AttentionShape) -> AttentionShape:
        return shape

    def _decode_collective_us(self, batch: int) -> float:
        return 0.0

    def _prefill_collective_us(self, tokens: int) -> float:
        return 0.0

    def _sample_collective_us(self, batch: int) -> float:
        return 0.0

    # -- iteration pricing ---------------------------------------------
    def decode_step_us(self, batch: int, context_tokens: float) -> float:
        """One decode iteration: ``batch`` sequences, mean context."""
        if batch < 1:
            return 0.0
        b = self._bucket_batch(batch)
        s = self._bucket_seq(context_tokens)
        cached = self._decode_table.get((b, s))
        if cached is not None:
            self._table_hits += 1
            return cached
        total = 0.0
        for op in decode_operator_shapes(self.config, b, s):
            if op.kind == "gemv":
                shape = self._shard_gemm(op.name,
                                         GemmShape(m=op.m, n=op.n, k=op.k))
                total += self._gemv_us(
                    shape, fp16=op.name == "lm_head") * op.count
            elif op.kind == "attention":
                shape = self._shard_attention(
                    AttentionShape(batch=op.batch, heads=op.heads,
                                   seq_len=op.seq_len,
                                   head_dim=op.head_dim))
                total += self._attention_us(shape) * op.count
            else:
                total += self._elementwise_us(op.elements) * op.count
        total += self._decode_collective_us(b)
        self._decode_table[(b, s)] = total
        return total

    def _prefill_attn_cum_us(self, tokens: float) -> float:
        """Cumulative causal-attention cost of prefilling ``tokens``.

        FP16 flash-prefill over the (bucketed) first ``tokens`` of the
        prompt; 0 for an empty prefix.  Chunk costs are differences of
        this cumulative curve, so they telescope: however a prompt is
        chunked, the attention charges sum to the whole-prompt cost.
        """
        if tokens < 1:
            return 0.0
        cfg = self.config
        shape = self._shard_attention(
            AttentionShape(batch=1, heads=cfg.n_heads,
                           seq_len=self._bucket_seq(tokens),
                           head_dim=cfg.head_dim))
        return self.engine.batch_latency_us("prefill_attention", shape)

    def prefill_us(self, new_tokens: int,
                   context_tokens: float = 0.0) -> float:
        """One prefill chunk of ``new_tokens`` prompt tokens.

        Projections and MLP run as GEMMs over the chunk; attention is
        charged *incrementally* — the cumulative causal cost through
        ``context + new`` tokens minus the part already billed to
        earlier chunks — so chunked and unchunked prefill of the same
        prompt cost the same (the chunk's queries are new, the cached
        keys were paid for when their own chunk ran).  The LM head is
        not applied during prefill — the first sampled token is costed
        with the iteration that completes the prompt.
        """
        if new_tokens < 1:
            return 0.0
        cfg = self.config
        t = self._bucket_seq(new_tokens)
        # The attention term depends only on the bucketed cumulative
        # token counts, so the finished total is memoizable on the
        # bucket triple (0 stands for "no context": the cumulative
        # curve is 0.0 below one token, before any bucketing).
        total_tokens = context_tokens + new_tokens
        key = (t,
               self._bucket_seq(total_tokens) if total_tokens >= 1 else 0,
               self._bucket_seq(context_tokens) if context_tokens >= 1
               else 0)
        cached = self._prefill_table.get(key)
        if cached is not None:
            self._table_hits += 1
            return cached
        h, inter = cfg.hidden, cfg.intermediate
        gemm_us = 0.0
        for name, n, k in (("qkv_proj", 3 * h, h),
                           ("o_proj", h, h),
                           ("gate_up_proj", 2 * inter, h),
                           ("down_proj", h, inter)):
            gemm_us += self._gemm_us(
                self._shard_gemm(name, GemmShape(m=t, n=n, k=k)))
        attn_us = (self._prefill_attn_cum_us(context_tokens + new_tokens)
                   - self._prefill_attn_cum_us(context_tokens))
        attn_us = max(0.0, attn_us)
        ew_us = self._elementwise_us(t * (4 * h + 2 * inter))
        total = ((gemm_us + attn_us + ew_us) * cfg.n_layers
                 + self._prefill_collective_us(t))
        self._prefill_table[key] = total
        return total

    def first_token_us(self, n_completing: int) -> float:
        """Sampling cost of the prompt-completing sequences.

        :meth:`prefill_us` deliberately excludes the LM head — the
        first sampled token is costed with the iteration that completes
        the prompt.  This is that charge: one FP16 LM-head GEMV over
        the completing sequences' final hidden states plus an
        element-wise sampler pass (final norm + a read of the logits).
        """
        if n_completing < 1:
            return 0.0
        cfg = self.config
        b = self._bucket_batch(n_completing)
        cached = self._first_token_table.get(b)
        if cached is not None:
            self._table_hits += 1
            return cached
        shape = self._shard_gemm("lm_head",
                                 GemmShape(m=b, n=cfg.vocab, k=cfg.hidden))
        total = (self._gemv_us(shape, fp16=True)
                 + self._elementwise_us(b * (cfg.hidden + cfg.vocab))
                 + self._sample_collective_us(b))
        self._first_token_table[b] = total
        return total

    def table_info(self) -> dict:
        """Occupancy and hit count of the bucket memo tables.

        These tables sit *in front of* the engine's latency memo: a hot
        serving loop mostly repeats a handful of bucketed (batch,
        context) shapes, so repeats resolve here and the engine memo
        only ever sees each distinct bucket combination once.
        """
        return {
            "hits": self._table_hits,
            "decode_entries": len(self._decode_table),
            "prefill_entries": len(self._prefill_table),
            "first_token_entries": len(self._first_token_table),
        }

    def step_us(self, plan: BatchPlan) -> float:
        """Price one scheduler iteration (prefill chunks + decodes).

        Call *before* applying the plan
        (:meth:`~repro.serve.scheduler.ContinuousBatchScheduler.complete`
        mutates the per-sequence progress this pricing reads).
        """
        total = 0.0
        if plan.decode:
            total += self.decode_step_us(plan.decode_batch,
                                         plan.mean_context())
        for seq, chunk in plan.prefill:
            total += self.prefill_us(chunk, seq.prefilled)
        total += self.first_token_us(plan.prompt_completions)
        return total
