"""Request traces for the serving simulator.

A trace is a list of :class:`Request` objects sorted by arrival time.
Five arrival processes are provided:

- :func:`poisson_trace` — memoryless arrivals at a constant offered
  rate, the standard open-loop serving benchmark;
- :func:`bursty_trace` — a two-state Markov-modulated Poisson process
  alternating between a calm and a burst rate, which is what production
  traffic looks like at minute granularity;
- :func:`flash_crowd_trace` — a *scheduled* rate spike (calm → crowd →
  calm at known times), the incident-shaped workload SLO burn-rate
  alerting is exercised against: unlike :func:`bursty_trace` the
  overload interval is deterministic, so a test can assert an alert
  fires inside it and clears after the drain;
- :func:`replayed_trace` — explicit timestamps and lengths, for
  replaying measured production traces;
- :func:`shared_prefix_trace` — every request starts with the same
  system prompt (synthesized token ids), the workload automatic prefix
  caching exists for;
- :func:`multi_turn_chat_trace` — sessions of consecutive turns where
  turn *k*'s prompt is the concatenated history (system prompt, earlier
  user messages *and* earlier assistant outputs), so a prefix cache can
  serve all but the newest user message from memory.

Prompt and output lengths come from a clipped lognormal
(:class:`LengthSampler`): LLM serving length distributions are
heavy-tailed — most prompts are short, a few are near the context
limit — and the tail is what stresses KV-cache capacity.

The session-aware generators synthesize deterministic *token ids*
(``Request.prompt_ids`` / ``Request.output_ids``) so block hashing in
:mod:`repro.serve.prefix` is meaningful; the classic generators leave
them ``None`` and behave exactly as before.

Everything is deterministic given a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Request:
    """One serving request: arrive, prefill the prompt, decode tokens."""

    req_id: int
    #: Arrival time, seconds since trace start.
    arrival_s: float
    #: Prompt length in tokens (prefill work).
    prompt_tokens: int
    #: Number of tokens to generate (decode work).
    output_tokens: int
    #: Synthesized prompt token ids (``len == prompt_tokens``), only
    #: set by the session-aware generators; ``None`` disables prefix
    #: caching for this request.
    prompt_ids: Optional[Tuple[int, ...]] = None
    #: Synthesized output token ids (``len == output_tokens``), so a
    #: later turn's prompt can embed this turn's generated history.
    output_ids: Optional[Tuple[int, ...]] = None
    #: Chat-session identity (``None`` for standalone requests); the
    #: ``prefix-affinity`` fleet router hashes on it.
    session_id: Optional[int] = None
    #: Turn index within the session (0 for the first or only turn).
    turn: int = 0

    def __post_init__(self):
        if self.prompt_tokens < 1:
            raise ValueError("prompt_tokens must be >= 1")
        if self.output_tokens < 1:
            raise ValueError("output_tokens must be >= 1")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if (self.prompt_ids is not None
                and len(self.prompt_ids) != self.prompt_tokens):
            raise ValueError("prompt_ids must have prompt_tokens entries")
        if (self.output_ids is not None
                and len(self.output_ids) != self.output_tokens):
            raise ValueError("output_ids must have output_tokens entries")
        if self.turn < 0:
            raise ValueError("turn must be >= 0")

    @property
    def total_tokens(self) -> int:
        """Tokens the request will hold in the KV cache at completion."""
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class LengthSampler:
    """Clipped-lognormal token-length distribution.

    ``mean`` is the approximate mean of the *unclipped* distribution;
    ``cv`` its coefficient of variation (sigma/mean).  Samples are
    rounded to integers and clipped to ``[lo, hi]``.
    """

    mean: float
    cv: float = 0.5
    lo: int = 1
    hi: int = 8192

    def __post_init__(self):
        if self.mean <= 0:
            raise ValueError("mean must be positive")
        if self.cv < 0:
            raise ValueError("cv must be >= 0")
        if not 1 <= self.lo <= self.hi:
            raise ValueError("need 1 <= lo <= hi")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        if self.cv == 0:
            raw = np.full(n, self.mean)
        else:
            # Lognormal parameterised to hit the requested mean and cv.
            sigma2 = math.log(1.0 + self.cv ** 2)
            mu = math.log(self.mean) - sigma2 / 2
            raw = rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)
        return np.clip(np.rint(raw), self.lo, self.hi).astype(int)


def _build(arrivals: Sequence[float], prompts: Sequence[int],
           outputs: Sequence[int]) -> List[Request]:
    order = np.argsort(arrivals, kind="stable")
    return [
        Request(req_id=i, arrival_s=float(arrivals[j]),
                prompt_tokens=int(prompts[j]), output_tokens=int(outputs[j]))
        for i, j in enumerate(order)
    ]


def poisson_trace(
    rate_rps: float,
    n_requests: int,
    prompt: LengthSampler = LengthSampler(mean=512),
    output: LengthSampler = LengthSampler(mean=128),
    seed: int = 0,
) -> List[Request]:
    """Open-loop Poisson arrivals at ``rate_rps`` requests per second."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps) - gaps[0]  # first arrival at t=0
    return _build(arrivals, prompt.sample(rng, n_requests),
                  output.sample(rng, n_requests))


def bursty_trace(
    rate_rps: float,
    n_requests: int,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    mean_phase_s: float = 10.0,
    prompt: LengthSampler = LengthSampler(mean=512),
    output: LengthSampler = LengthSampler(mean=128),
    seed: int = 0,
) -> List[Request]:
    """Two-state MMPP arrivals averaging roughly ``rate_rps``.

    The process alternates exponentially-distributed calm and burst
    phases; bursts last ``burst_fraction`` of the time on average and
    run at ``burst_factor`` times the calm rate, with the calm rate set
    so the long-run average matches ``rate_rps``.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if burst_factor < 1:
        raise ValueError("burst_factor must be >= 1")
    if not 0 < burst_fraction < 1:
        raise ValueError("burst_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    calm_rate = rate_rps / (1 + burst_fraction * (burst_factor - 1))
    rates = (calm_rate, calm_rate * burst_factor)
    phase_means = (mean_phase_s * (1 - burst_fraction),
                   mean_phase_s * burst_fraction)
    arrivals = []
    t = 0.0
    state = 0
    while len(arrivals) < n_requests:
        phase_end = t + rng.exponential(phase_means[state])
        while len(arrivals) < n_requests:
            t += rng.exponential(1.0 / rates[state])
            if t > phase_end:
                t = phase_end
                break
            arrivals.append(t)
        state = 1 - state
    arrivals = np.asarray(arrivals) - arrivals[0]
    return _build(arrivals, prompt.sample(rng, n_requests),
                  output.sample(rng, n_requests))


def flash_crowd_trace(
    rate_rps: float,
    duration_s: float,
    crowd_factor: float = 8.0,
    crowd_start_s: Optional[float] = None,
    crowd_duration_s: Optional[float] = None,
    prompt: LengthSampler = LengthSampler(mean=512),
    output: LengthSampler = LengthSampler(mean=128),
    seed: int = 0,
) -> List[Request]:
    """Piecewise-constant-rate Poisson arrivals with one flash crowd.

    Arrivals run at ``rate_rps`` for ``duration_s`` seconds except
    during ``[crowd_start_s, crowd_start_s + crowd_duration_s)``, where
    the rate multiplies by ``crowd_factor`` (defaults: the crowd
    occupies the middle fifth of the trace).  The piecewise process is
    simulated by thinning a Poisson process at the peak rate, so the
    phase boundaries are exact — the trace's overload interval is known
    a priori, which is what lets SLO tests assert *when* an alert must
    fire rather than just whether.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if crowd_factor < 1:
        raise ValueError("crowd_factor must be >= 1")
    if crowd_start_s is None:
        crowd_start_s = 0.4 * duration_s
    if crowd_duration_s is None:
        crowd_duration_s = 0.2 * duration_s
    if not 0 <= crowd_start_s < duration_s:
        raise ValueError("crowd_start_s must fall inside the trace")
    if crowd_duration_s <= 0:
        raise ValueError("crowd_duration_s must be positive")
    rng = np.random.default_rng(seed)
    peak = rate_rps * crowd_factor
    crowd_end_s = min(crowd_start_s + crowd_duration_s, duration_s)
    arrivals = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= duration_s:
            break
        in_crowd = crowd_start_s <= t < crowd_end_s
        # Thinning: keep with probability rate(t) / peak.
        if in_crowd or rng.random() < 1.0 / crowd_factor:
            arrivals.append(t)
    if not arrivals:
        raise ValueError(
            "trace came out empty; raise rate_rps or duration_s")
    n = len(arrivals)
    return _build(np.asarray(arrivals), prompt.sample(rng, n),
                  output.sample(rng, n))


def replayed_trace(
    arrivals_s: Sequence[float],
    prompt_tokens: Sequence[int],
    output_tokens: Sequence[int],
    time_scale: float = 1.0,
) -> List[Request]:
    """Build a trace from measured timestamps and lengths.

    ``time_scale`` stretches (> 1) or compresses (< 1) the replay, which
    is how load sweeps over a fixed production trace are done.
    """
    if not (len(arrivals_s) == len(prompt_tokens) == len(output_tokens)):
        raise ValueError("arrivals, prompts and outputs must align")
    if len(arrivals_s) == 0:
        raise ValueError("empty trace")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    base = min(arrivals_s)
    arrivals = [(a - base) * time_scale for a in arrivals_s]
    return _build(arrivals, list(prompt_tokens), list(output_tokens))


def _token_ids(rng: np.random.Generator, n: int,
               vocab: int) -> Tuple[int, ...]:
    """``n`` synthesized token ids drawn uniformly from the vocabulary."""
    return tuple(int(t) for t in rng.integers(0, vocab, size=n))


def _finish(requests: List[Request]) -> List[Request]:
    """Sort by arrival and stamp ``req_id`` = arrival rank (ties keep
    generation order), matching the convention of :func:`_build`."""
    order = sorted(range(len(requests)),
                   key=lambda i: (requests[i].arrival_s, i))
    return [
        Request(req_id=rank, arrival_s=requests[i].arrival_s,
                prompt_tokens=requests[i].prompt_tokens,
                output_tokens=requests[i].output_tokens,
                prompt_ids=requests[i].prompt_ids,
                output_ids=requests[i].output_ids,
                session_id=requests[i].session_id,
                turn=requests[i].turn)
        for rank, i in enumerate(order)
    ]


def shared_prefix_trace(
    rate_rps: float,
    n_requests: int,
    system_tokens: int = 512,
    prompt: LengthSampler = LengthSampler(mean=128),
    output: LengthSampler = LengthSampler(mean=96),
    vocab: int = 32000,
    seed: int = 0,
) -> List[Request]:
    """Poisson arrivals that all share one ``system_tokens``-long prefix.

    Every request's prompt is the same synthesized system prompt
    followed by a unique user message (length from ``prompt``), which is
    the canonical automatic-prefix-caching workload: after the first
    request warms the tree, only the user suffix misses.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if system_tokens < 1:
        raise ValueError("system_tokens must be >= 1")
    if vocab < 2:
        raise ValueError("vocab must be >= 2")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps) - gaps[0]
    suffixes = prompt.sample(rng, n_requests)
    outputs = output.sample(rng, n_requests)
    system = _token_ids(rng, system_tokens, vocab)
    requests = []
    for i in range(n_requests):
        user = _token_ids(rng, int(suffixes[i]), vocab)
        requests.append(Request(
            req_id=i, arrival_s=float(arrivals[i]),
            prompt_tokens=system_tokens + len(user),
            output_tokens=int(outputs[i]),
            prompt_ids=system + user,
            output_ids=_token_ids(rng, int(outputs[i]), vocab),
            session_id=i, turn=0))
    return _finish(requests)


def multi_turn_chat_trace(
    n_sessions: int,
    turns: int,
    rate_rps: float = 2.0,
    think_s: float = 8.0,
    system_tokens: int = 256,
    user: LengthSampler = LengthSampler(mean=64),
    output: LengthSampler = LengthSampler(mean=96),
    vocab: int = 32000,
    shared_system: bool = True,
    seed: int = 0,
) -> List[Request]:
    """Chat sessions whose turn-*k* prompt re-sends the whole history.

    Sessions open with Poisson arrivals at ``rate_rps``; within a
    session, turn *k* arrives an exponential think time (mean
    ``think_s``) after turn *k-1*.  Turn *k*'s prompt ids are the
    system prompt, all earlier user messages and *assistant outputs*
    of the session, then the new user message — so with a prefix cache
    only the new message (plus, once, the system prompt) needs
    prefill.  ``shared_system=True`` (an assistant product: one system
    prompt for everyone) lets sessions share each other's root blocks;
    ``False`` (per-tenant system prompts) makes every session's tree
    private, which is the workload where session-affine routing is the
    difference between hits and misses.  The open-loop trace does not
    wait for turn *k-1* to complete; if the engine has not finished it
    by the next arrival the prefix merely misses (a ``think_s`` well
    above typical completion time makes that rare).
    """
    if n_sessions < 1:
        raise ValueError("n_sessions must be >= 1")
    if turns < 1:
        raise ValueError("turns must be >= 1")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if think_s <= 0:
        raise ValueError("think_s must be positive")
    if system_tokens < 1:
        raise ValueError("system_tokens must be >= 1")
    if vocab < 2:
        raise ValueError("vocab must be >= 2")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n_sessions)
    opens = np.cumsum(gaps) - gaps[0]
    system = _token_ids(rng, system_tokens, vocab)
    requests = []
    for s in range(n_sessions):
        history = (system if shared_system
                   else _token_ids(rng, system_tokens, vocab))
        t = float(opens[s])
        user_lens = user.sample(rng, turns)
        out_lens = output.sample(rng, turns)
        for k in range(turns):
            msg = _token_ids(rng, int(user_lens[k]), vocab)
            out = _token_ids(rng, int(out_lens[k]), vocab)
            prompt_ids = history + msg
            requests.append(Request(
                req_id=0, arrival_s=t,
                prompt_tokens=len(prompt_ids),
                output_tokens=len(out),
                prompt_ids=prompt_ids, output_ids=out,
                session_id=s, turn=k))
            history = prompt_ids + out
            t += float(rng.exponential(think_s))
    return _finish(requests)


def trace_stats(trace: List[Request]) -> dict:
    """Summary statistics of a trace (for logging and docs)."""
    arrivals = np.array([r.arrival_s for r in trace])
    span = float(arrivals[-1] - arrivals[0]) if len(trace) > 1 else 0.0
    return {
        "n_requests": len(trace),
        "duration_s": span,
        "offered_rps": len(trace) / span if span > 0 else float("inf"),
        "mean_prompt_tokens": float(np.mean([r.prompt_tokens
                                             for r in trace])),
        "mean_output_tokens": float(np.mean([r.output_tokens
                                             for r in trace])),
        "total_tokens": int(sum(r.total_tokens for r in trace)),
    }
