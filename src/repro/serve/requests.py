"""Request traces for the serving simulator.

A trace is a list of :class:`Request` objects sorted by arrival time.
Three arrival processes are provided:

- :func:`poisson_trace` — memoryless arrivals at a constant offered
  rate, the standard open-loop serving benchmark;
- :func:`bursty_trace` — a two-state Markov-modulated Poisson process
  alternating between a calm and a burst rate, which is what production
  traffic looks like at minute granularity;
- :func:`replayed_trace` — explicit timestamps and lengths, for
  replaying measured production traces.

Prompt and output lengths come from a clipped lognormal
(:class:`LengthSampler`): LLM serving length distributions are
heavy-tailed — most prompts are short, a few are near the context
limit — and the tail is what stresses KV-cache capacity.

Everything is deterministic given a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class Request:
    """One serving request: arrive, prefill the prompt, decode tokens."""

    req_id: int
    #: Arrival time, seconds since trace start.
    arrival_s: float
    #: Prompt length in tokens (prefill work).
    prompt_tokens: int
    #: Number of tokens to generate (decode work).
    output_tokens: int

    def __post_init__(self):
        if self.prompt_tokens < 1:
            raise ValueError("prompt_tokens must be >= 1")
        if self.output_tokens < 1:
            raise ValueError("output_tokens must be >= 1")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")

    @property
    def total_tokens(self) -> int:
        """Tokens the request will hold in the KV cache at completion."""
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class LengthSampler:
    """Clipped-lognormal token-length distribution.

    ``mean`` is the approximate mean of the *unclipped* distribution;
    ``cv`` its coefficient of variation (sigma/mean).  Samples are
    rounded to integers and clipped to ``[lo, hi]``.
    """

    mean: float
    cv: float = 0.5
    lo: int = 1
    hi: int = 8192

    def __post_init__(self):
        if self.mean <= 0:
            raise ValueError("mean must be positive")
        if self.cv < 0:
            raise ValueError("cv must be >= 0")
        if not 1 <= self.lo <= self.hi:
            raise ValueError("need 1 <= lo <= hi")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        if self.cv == 0:
            raw = np.full(n, self.mean)
        else:
            # Lognormal parameterised to hit the requested mean and cv.
            sigma2 = math.log(1.0 + self.cv ** 2)
            mu = math.log(self.mean) - sigma2 / 2
            raw = rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)
        return np.clip(np.rint(raw), self.lo, self.hi).astype(int)


def _build(arrivals: Sequence[float], prompts: Sequence[int],
           outputs: Sequence[int]) -> List[Request]:
    order = np.argsort(arrivals, kind="stable")
    return [
        Request(req_id=i, arrival_s=float(arrivals[j]),
                prompt_tokens=int(prompts[j]), output_tokens=int(outputs[j]))
        for i, j in enumerate(order)
    ]


def poisson_trace(
    rate_rps: float,
    n_requests: int,
    prompt: LengthSampler = LengthSampler(mean=512),
    output: LengthSampler = LengthSampler(mean=128),
    seed: int = 0,
) -> List[Request]:
    """Open-loop Poisson arrivals at ``rate_rps`` requests per second."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps) - gaps[0]  # first arrival at t=0
    return _build(arrivals, prompt.sample(rng, n_requests),
                  output.sample(rng, n_requests))


def bursty_trace(
    rate_rps: float,
    n_requests: int,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    mean_phase_s: float = 10.0,
    prompt: LengthSampler = LengthSampler(mean=512),
    output: LengthSampler = LengthSampler(mean=128),
    seed: int = 0,
) -> List[Request]:
    """Two-state MMPP arrivals averaging roughly ``rate_rps``.

    The process alternates exponentially-distributed calm and burst
    phases; bursts last ``burst_fraction`` of the time on average and
    run at ``burst_factor`` times the calm rate, with the calm rate set
    so the long-run average matches ``rate_rps``.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if burst_factor < 1:
        raise ValueError("burst_factor must be >= 1")
    if not 0 < burst_fraction < 1:
        raise ValueError("burst_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    calm_rate = rate_rps / (1 + burst_fraction * (burst_factor - 1))
    rates = (calm_rate, calm_rate * burst_factor)
    phase_means = (mean_phase_s * (1 - burst_fraction),
                   mean_phase_s * burst_fraction)
    arrivals = []
    t = 0.0
    state = 0
    while len(arrivals) < n_requests:
        phase_end = t + rng.exponential(phase_means[state])
        while len(arrivals) < n_requests:
            t += rng.exponential(1.0 / rates[state])
            if t > phase_end:
                t = phase_end
                break
            arrivals.append(t)
        state = 1 - state
    arrivals = np.asarray(arrivals) - arrivals[0]
    return _build(arrivals, prompt.sample(rng, n_requests),
                  output.sample(rng, n_requests))


def replayed_trace(
    arrivals_s: Sequence[float],
    prompt_tokens: Sequence[int],
    output_tokens: Sequence[int],
    time_scale: float = 1.0,
) -> List[Request]:
    """Build a trace from measured timestamps and lengths.

    ``time_scale`` stretches (> 1) or compresses (< 1) the replay, which
    is how load sweeps over a fixed production trace are done.
    """
    if not (len(arrivals_s) == len(prompt_tokens) == len(output_tokens)):
        raise ValueError("arrivals, prompts and outputs must align")
    if len(arrivals_s) == 0:
        raise ValueError("empty trace")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    base = min(arrivals_s)
    arrivals = [(a - base) * time_scale for a in arrivals_s]
    return _build(arrivals, list(prompt_tokens), list(output_tokens))


def trace_stats(trace: List[Request]) -> dict:
    """Summary statistics of a trace (for logging and docs)."""
    arrivals = np.array([r.arrival_s for r in trace])
    span = float(arrivals[-1] - arrivals[0]) if len(trace) > 1 else 0.0
    return {
        "n_requests": len(trace),
        "duration_s": span,
        "offered_rps": len(trace) / span if span > 0 else float("inf"),
        "mean_prompt_tokens": float(np.mean([r.prompt_tokens
                                             for r in trace])),
        "mean_output_tokens": float(np.mean([r.output_tokens
                                             for r in trace])),
        "total_tokens": int(sum(r.total_tokens for r in trace)),
    }
