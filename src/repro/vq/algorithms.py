"""Published VQ algorithm configurations (Tbl. II).

===========  ==================  ===========  =======  ========  =========
Algorithm    Compression (FP16)  Vector size  #Entry   Residual  Scope
===========  ==================  ===========  =======  ========  =========
QuiP#-4      25%                 8            65536*   2         tensor
AQLM-3       18.75%              8            4096     2         tensor
GPTVQ-2      12.5%               4            256      1         tile
CQ-4         25%                 2            256      1         channel
CQ-2         12.5%               4            256      1         channel
===========  ==================  ===========  =======  ========  =========

(*) QuiP# uses a lattice codebook: 65536 nominal entries but every lookup
reads one of 256 stored base entries plus bit operations.

``make_config`` returns the :class:`~repro.vq.config.VQConfig` for a
name; ``make_quantizer`` wraps it in a ready
:class:`~repro.vq.quantizer.VectorQuantizer`.
"""

from __future__ import annotations

from typing import Optional

from repro.vq.config import VQConfig
from repro.vq.quantizer import VectorQuantizer

#: All algorithm presets from Tbl. II, by canonical name.
ALGORITHMS = {
    "quip#-4": VQConfig(
        name="QuiP#-4",
        vector_size=8,
        index_bits=16,
        residuals=2,
        scope="tensor",
        lattice=True,
    ),
    "aqlm-3": VQConfig(
        name="AQLM-3",
        vector_size=8,
        index_bits=12,
        residuals=2,
        scope="tensor",
    ),
    "gptvq-2": VQConfig(
        name="GPTVQ-2",
        vector_size=4,
        index_bits=8,
        residuals=1,
        scope="tile",
        tile_shape=(256, 256),
    ),
    "cq-4": VQConfig(
        name="CQ-4",
        vector_size=2,
        index_bits=8,
        residuals=1,
        scope="channel_group",
    ),
    "cq-2": VQConfig(
        name="CQ-2",
        vector_size=4,
        index_bits=8,
        residuals=1,
        scope="channel_group",
    ),
}

#: Which kernel family each algorithm's paper pairs it with: the first
#: three quantize weights (GeMM/GeMV), CQ quantizes the KV cache
#: (attention).
WEIGHT_ALGOS = ("quip#-4", "aqlm-3", "gptvq-2")
KV_ALGOS = ("cq-4", "cq-2")


def canonical_name(name: str) -> str:
    """Normalise an algorithm name to its ALGORITHMS key."""
    key = name.lower().strip().replace(" ", "").replace("_", "-")
    if key in ALGORITHMS:
        return key
    aliases = {
        "quip4": "quip#-4", "quip#4": "quip#-4", "quip-4": "quip#-4",
        "quipsharp-4": "quip#-4",
        "aqlm3": "aqlm-3",
        "gptvq2": "gptvq-2",
        "cq4": "cq-4", "cq2": "cq-2",
    }
    if key in aliases:
        return aliases[key]
    raise KeyError(
        f"unknown VQ algorithm {name!r}; known: {sorted(ALGORITHMS)}"
    )


def make_config(name: str) -> VQConfig:
    """Return the Tbl. II configuration for an algorithm name."""
    return ALGORITHMS[canonical_name(name)]


def make_quantizer(
    name: str,
    seed: int = 0,
    kmeans_iters: int = 15,
    train_sample: Optional[int] = 65536,
) -> VectorQuantizer:
    """Build a ready-to-use quantizer for a named algorithm."""
    return VectorQuantizer(
        make_config(name),
        seed=seed,
        kmeans_iters=kmeans_iters,
        train_sample=train_sample,
    )
