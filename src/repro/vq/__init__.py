"""Vector-quantization substrate.

Implements the VQ pipeline of the paper's Fig. 1 — sub-vector splitting,
k-means codebook training, residual quantization, index packing — plus
the five published algorithm configurations of Tbl. II (QuiP#-4, AQLM-3,
GPTVQ-2, CQ-4, CQ-2) with their codebook *scoping* rules (which part of a
tensor shares which codebook), and the element-wise quantization
baselines (AWQ-like weight INT4, QoQ-like KV INT4) used in Fig. 16/17.

This is the entry of the data flow documented in
``docs/architecture.md``: VQConfig -> quantizer -> codegen -> cost
model -> engine -> serve.
"""

from repro.vq.algorithms import ALGORITHMS, make_config, make_quantizer
from repro.vq.codebook import Codebook, CodebookSet
from repro.vq.config import VQConfig
from repro.vq.elementwise import (
    ElementwiseQuantized,
    awq_quantize_weight,
    dequantize_elementwise,
    qoq_quantize_kv,
    quantize_elementwise,
)
from repro.vq.kmeans import kmeans
from repro.vq.packing import pack_indices, unpack_indices, unpack_cost_ops
from repro.vq.quantizer import QuantizedTensor, VectorQuantizer

__all__ = [
    "ALGORITHMS",
    "Codebook",
    "CodebookSet",
    "ElementwiseQuantized",
    "QuantizedTensor",
    "VQConfig",
    "VectorQuantizer",
    "awq_quantize_weight",
    "dequantize_elementwise",
    "kmeans",
    "make_config",
    "make_quantizer",
    "pack_indices",
    "qoq_quantize_kv",
    "quantize_elementwise",
    "unpack_cost_ops",
    "unpack_indices",
]
