"""Codebook containers.

A :class:`Codebook` is one table of entries (one residual level of one
scope group).  A :class:`CodebookSet` holds all codebooks of a quantized
tensor organised as ``[group][residual]`` and knows how many bytes a
kernel must stage per group — the quantity Tbl. V calls "Codebook/block".
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class Codebook:
    """One table of quantization points (cluster centroids)."""

    def __init__(self, entries: np.ndarray, element_bytes: int = 2):
        entries = np.asarray(entries, dtype=np.float32)
        if entries.ndim != 2:
            raise ValueError(
                f"entries must be (n_entries, vector_size), got {entries.shape}"
            )
        self.entries = entries
        self.element_bytes = element_bytes

    @property
    def n_entries(self) -> int:
        return self.entries.shape[0]

    @property
    def vector_size(self) -> int:
        return self.entries.shape[1]

    @property
    def entry_bytes(self) -> int:
        """Storage of one entry, bytes."""
        return self.vector_size * self.element_bytes

    @property
    def nbytes(self) -> int:
        """Storage of the whole codebook, bytes."""
        return self.n_entries * self.entry_bytes

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Gather entries: result shape = indices.shape + (vector_size,)."""
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0
                             or indices.max() >= self.n_entries):
            raise IndexError(
                f"index out of range for codebook with {self.n_entries} entries"
            )
        return self.entries[indices]

    def reordered(self, permutation: np.ndarray) -> "Codebook":
        """Return a codebook with rows permuted (old index -> new row).

        ``permutation[new_index] = old_index``; used by the codebook
        cache's frequency reordering.
        """
        permutation = np.asarray(permutation)
        if sorted(permutation.tolist()) != list(range(self.n_entries)):
            raise ValueError("permutation must be a permutation of all entries")
        return Codebook(self.entries[permutation], self.element_bytes)


class CodebookSet:
    """All codebooks of one quantized tensor: ``books[group][residual]``."""

    def __init__(self, books: Sequence[Sequence[Codebook]]):
        if not books or not books[0]:
            raise ValueError("CodebookSet needs at least one codebook")
        residuals = len(books[0])
        for group in books:
            if len(group) != residuals:
                raise ValueError("all groups must have the same residual count")
        self.books: List[List[Codebook]] = [list(g) for g in books]

    @property
    def n_groups(self) -> int:
        return len(self.books)

    @property
    def residuals(self) -> int:
        return len(self.books[0])

    @property
    def vector_size(self) -> int:
        return self.books[0][0].vector_size

    @property
    def n_entries(self) -> int:
        return self.books[0][0].n_entries

    def get(self, group: int, residual: int) -> Codebook:
        return self.books[group][residual]

    @property
    def bytes_per_group(self) -> int:
        """Bytes a kernel stages to dequantize one group (all residuals)."""
        return sum(book.nbytes for book in self.books[0])

    @property
    def nbytes(self) -> int:
        """Total codebook storage across all groups and residuals."""
        return sum(book.nbytes for group in self.books for book in group)

    def stacked_entries(self, residual: int = 0) -> np.ndarray:
        """Entries of one residual level stacked as (groups, entries, dim)."""
        return np.stack([g[residual].entries for g in self.books])
