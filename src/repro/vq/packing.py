"""Index bit-packing.

Quantized tensors store codebook indices at ``index_bits`` per code.
Aligned widths (8/16 bits, and power-of-two sub-byte widths) unpack with
one shift/mask; AQLM's 12-bit format straddles byte boundaries and costs
extra decode instructions — the paper attributes AQLM-3's behaviour in
Fig. 13/14 to exactly this.  :func:`unpack_cost_ops` exposes that cost to
the performance model.
"""

from __future__ import annotations

import numpy as np


def pack_indices(indices: np.ndarray, bits: int) -> np.ndarray:
    """Pack an array of indices into a dense little-endian bitstream.

    Parameters
    ----------
    indices:
        Integer array; every value must fit in ``bits`` bits.
    bits:
        Width per index, 1..16.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of ceil(n * bits / 8) bytes.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    flat = np.asarray(indices).ravel().astype(np.uint64)
    if flat.size and flat.max() >= (1 << bits):
        raise ValueError(f"an index does not fit in {bits} bits")
    total_bits = flat.size * bits
    out = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    positions = np.arange(flat.size, dtype=np.uint64) * bits
    for b in range(bits):
        bitvals = (flat >> np.uint64(b)) & np.uint64(1)
        absolute = positions + np.uint64(b)
        byte_idx = (absolute >> np.uint64(3)).astype(np.int64)
        bit_in_byte = (absolute & np.uint64(7)).astype(np.uint8)
        np.bitwise_or.at(out, byte_idx,
                         (bitvals.astype(np.uint8) << bit_in_byte))
    return out


def unpack_indices(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_indices`: recover ``count`` indices."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    packed = np.asarray(packed, dtype=np.uint8)
    if count < 0:
        raise ValueError("count must be non-negative")
    needed = (count * bits + 7) // 8
    if packed.size < needed:
        raise ValueError(
            f"packed stream too short: {packed.size} bytes < {needed} needed"
        )
    out = np.zeros(count, dtype=np.uint64)
    positions = np.arange(count, dtype=np.uint64) * bits
    for b in range(bits):
        absolute = positions + np.uint64(b)
        byte_idx = (absolute >> np.uint64(3)).astype(np.int64)
        bit_in_byte = (absolute & np.uint64(7)).astype(np.uint8)
        bitvals = (packed[byte_idx] >> bit_in_byte) & np.uint8(1)
        out |= bitvals.astype(np.uint64) << np.uint64(b)
    return out.astype(np.int64)


def is_aligned(bits: int) -> bool:
    """Whether a width unpacks with a single shift/mask.

    Byte and halfword widths, and power-of-two sub-byte widths, never
    straddle a byte boundary when densely packed.
    """
    return bits in (1, 2, 4, 8, 16)


def unpack_cost_ops(bits: int) -> int:
    """Decode instructions per index for the performance model.

    Aligned widths cost one extract; misaligned widths (e.g. AQLM's 12
    bits) cost a two-word load, shift, or-combine and mask — modelled as
    three operations, matching the paper's observation that AQLM's
    unpacking depresses its compute-pipeline utilization.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    return 1 if is_aligned(bits) else 3
