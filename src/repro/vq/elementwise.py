"""Element-wise quantization baselines.

The paper compares VQ-LLM against state-of-the-art element-wise methods
at equal equivalent bit-width: AWQ (weight-only INT4, group-wise scales)
for GeMM/GeMV and QoQ (KV INT4, per-head per-token-group scales) for
attention, both as integrated in qServe.  These baselines quantize each
scalar independently against a uniform grid — the property that limits
them to ~4 bits (Fig. 2's Cartesian-grid illustration).

We implement symmetric-zero-point affine quantization with per-group
scaling, which is the arithmetic core of both methods.  The accuracy
experiments (Fig. 2, Fig. 17-right proxy) compare its reconstruction
error against VQ on correlated data; the kernel experiments reuse the
bit-width and dequantization cost (one multiply-add per element, no
codebook) in the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ElementwiseQuantized:
    """An element-wise quantized 2-D tensor (codes + per-group scales)."""

    codes: np.ndarray
    scales: np.ndarray
    zeros: np.ndarray
    bits: int
    group_size: int
    shape: tuple

    @property
    def quantized_bytes(self) -> float:
        """Storage of codes plus FP16 scale/zero per group."""
        n = self.shape[0] * self.shape[1]
        code_bytes = n * self.bits / 8.0
        meta_bytes = self.scales.size * 2.0 * 2.0
        return code_bytes + meta_bytes

    def dequantize(self) -> np.ndarray:
        """Reconstruct the tensor from codes and scales."""
        return dequantize_elementwise(self)


def quantize_elementwise(
    tensor: np.ndarray, bits: int, group_size: int = 128
) -> ElementwiseQuantized:
    """Affine (asymmetric) per-group quantization along rows.

    Each contiguous run of ``group_size`` elements within a row shares
    one FP16 scale and zero point.  ``bits`` in [2, 8].
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim != 2:
        raise ValueError(f"expected 2-D tensor, got shape {tensor.shape}")
    if not 2 <= bits <= 8:
        raise ValueError("bits must be in [2, 8]")
    rows, cols = tensor.shape
    if cols % group_size:
        raise ValueError(
            f"columns ({cols}) must be divisible by group_size ({group_size})"
        )
    qmax = (1 << bits) - 1
    grouped = tensor.reshape(rows, cols // group_size, group_size)
    lo = grouped.min(axis=2, keepdims=True)
    hi = grouped.max(axis=2, keepdims=True)
    span = np.maximum(hi - lo, 1e-12)
    scales = span / qmax
    zeros = lo
    codes = np.clip(np.round((grouped - zeros) / scales), 0, qmax)
    return ElementwiseQuantized(
        codes=codes.astype(np.int16),
        scales=scales.astype(np.float32),
        zeros=zeros.astype(np.float32),
        bits=bits,
        group_size=group_size,
        shape=tensor.shape,
    )


def dequantize_elementwise(q: ElementwiseQuantized) -> np.ndarray:
    """Inverse of :func:`quantize_elementwise`."""
    grouped = (q.codes.astype(np.float64) * q.scales.astype(np.float64)
               + q.zeros.astype(np.float64))
    return grouped.reshape(q.shape)


@dataclass
class AWQQuantized(ElementwiseQuantized):
    """AWQ result: group-affine codes plus a per-column saliency scale.

    Dequantization divides the group-affine reconstruction by the
    per-column scale applied before quantization, recovering the
    original weight domain.
    """

    col_scale: np.ndarray = None

    def dequantize(self) -> np.ndarray:
        scaled = dequantize_elementwise(
            ElementwiseQuantized(self.codes, self.scales, self.zeros,
                                 self.bits, self.group_size, self.shape))
        return scaled / self.col_scale[None, :]

    @property
    def quantized_bytes(self) -> float:
        base = ElementwiseQuantized.quantized_bytes.fget(self)
        return base + self.col_scale.size * 2.0


def awq_quantize_weight(
    weight: np.ndarray,
    bits: int = 4,
    group_size: int = 128,
    n_grid: int = 20,
) -> AWQQuantized:
    """AWQ-like activation-aware weight quantization.

    AWQ's insight is to scale salient weight channels before uniform
    quantization and search the scaling exponent for minimum error.
    Without activation statistics we use the weight's own per-channel
    magnitude as the saliency proxy, which preserves the published
    algorithm's structure (scale -> quantize -> descale, exponent grid
    search).
    """
    weight = np.asarray(weight, dtype=np.float64)
    saliency = np.maximum(np.abs(weight).mean(axis=0), 1e-8)
    saliency = saliency / saliency.mean()
    best = None
    best_err = np.inf
    for i in range(n_grid):
        alpha = i / max(n_grid - 1, 1)
        s = saliency ** alpha
        q = quantize_elementwise(weight * s[None, :], bits, group_size)
        candidate = AWQQuantized(
            codes=q.codes, scales=q.scales, zeros=q.zeros, bits=bits,
            group_size=group_size, shape=weight.shape, col_scale=s)
        err = float(np.mean((candidate.dequantize() - weight) ** 2))
        if err < best_err:
            best_err = err
            best = candidate
    return best


def qoq_quantize_kv(
    kv: np.ndarray, bits: int = 4, group_size: int = 64
) -> ElementwiseQuantized:
    """QoQ-like KV-cache quantization: per-token-group INT4.

    The KV cache is laid out (tokens, channels); QoQ quantizes with
    fine-grained groups along channels per token block.  We reuse the
    affine per-group scheme with the KV-typical smaller group size.
    """
    return quantize_elementwise(kv, bits=bits, group_size=group_size)
