"""VQ algorithm configuration.

The paper parameterises every VQ algorithm with three numbers (Tbl. I),
written ``VQ<vector_size, index_bits, residuals>``:

- *vector size*: elements quantized together into one code;
- *#Entry* = ``2 ** index_bits`` quantization points per codebook;
- *Residual*: how many rounds of residual quantization are applied.

On top of those, real algorithms differ in *scope* — which slice of a
tensor is quantized against which codebook (Sec. III-C):

- QuiP# and AQLM train one codebook (per residual) for the whole tensor;
- GPTVQ trains one codebook per (256, 256) weight tile;
- CQ trains one codebook per channel group (every ``vector_size``
  channels of every head share a codebook across all tokens).

QuiP# additionally uses a lattice codebook: 2^16 nominal entries, but
each lookup touches only 256 stored entries plus bit manipulation, and
entries are stored compactly (1 byte per element), giving the 2 KB
codebook of Tbl. V.
"""

from __future__ import annotations

from dataclasses import dataclass

#: FP16 element size, bytes.
FP16_BYTES = 2

#: Valid codebook scopes (see module docstring).
SCOPES = ("tensor", "tile", "channel_group")


@dataclass(frozen=True)
class VQConfig:
    """One vector-quantization configuration, VQ<vector, bits, residual>."""

    name: str
    vector_size: int
    #: Bits per stored index (log2 of the nominal entry count).
    index_bits: int
    residuals: int
    #: Codebook scoping rule: ``tensor``, ``tile`` or ``channel_group``.
    scope: str = "tensor"
    #: Tile shape for ``tile`` scope (rows, cols) of a 2-D weight.
    tile_shape: tuple = (256, 256)
    #: Lattice codebook: lookups touch only ``lattice_lookup_entries``
    #: stored entries (bit tricks cover the rest), stored at 1 B/element.
    lattice: bool = False
    lattice_lookup_entries: int = 256

    def __post_init__(self):
        if self.vector_size <= 0:
            raise ValueError("vector_size must be positive")
        if not 1 <= self.index_bits <= 16:
            raise ValueError("index_bits must be in [1, 16]")
        if self.residuals < 1:
            raise ValueError("residuals must be >= 1")
        if self.scope not in SCOPES:
            raise ValueError(f"scope must be one of {SCOPES}, got {self.scope}")

    @property
    def n_entries(self) -> int:
        """Nominal number of entries per codebook (#Entry in Tbl. I)."""
        return 1 << self.index_bits

    @property
    def lookup_entries(self) -> int:
        """Entries actually materialised for lookup.

        Equal to :attr:`n_entries` except for lattice codebooks (QuiP#),
        which store only a small base table.
        """
        if self.lattice:
            return min(self.n_entries, self.lattice_lookup_entries)
        return self.n_entries

    @property
    def entry_element_bytes(self) -> int:
        """Bytes per stored codebook element (1 for lattice, 2 for FP16)."""
        return 1 if self.lattice else FP16_BYTES

    @property
    def entry_bytes(self) -> int:
        """Bytes of one stored codebook entry."""
        return self.vector_size * self.entry_element_bytes

    @property
    def codebook_bytes(self) -> int:
        """Bytes of one materialised codebook (one residual level)."""
        return self.lookup_entries * self.entry_bytes

    @property
    def bits_per_element(self) -> float:
        """Equivalent bits per original FP16 element."""
        return self.index_bits * self.residuals / self.vector_size

    @property
    def compression_ratio(self) -> float:
        """Compressed size as a fraction of FP16 (Tbl. II column 2)."""
        return self.bits_per_element / 16.0

    @property
    def aligned_index(self) -> bool:
        """Whether stored indices are byte/halfword aligned.

        AQLM's 12-bit format is misaligned and needs extra unpack/decode
        instructions, which the paper calls out repeatedly.
        """
        return self.index_bits in (8, 16) or self.index_bits in (1, 2, 4)

    def codes_per_row(self, row_elements: int) -> int:
        """Number of sub-vector codes covering one row of the tensor."""
        if row_elements % self.vector_size:
            raise ValueError(
                f"row of {row_elements} elements is not divisible by "
                f"vector_size={self.vector_size}"
            )
        return row_elements // self.vector_size

    def quantized_bytes(self, n_elements: int) -> float:
        """Storage for the codes of ``n_elements`` original elements."""
        n_codes = n_elements / self.vector_size
        return n_codes * self.residuals * self.index_bits / 8.0

    def spec_string(self) -> str:
        """Render as the paper's VQ<x,y,z> notation."""
        return f"VQ<{self.vector_size},{self.index_bits},{self.residuals}>"

    def __str__(self) -> str:
        return f"{self.name} {self.spec_string()}"
