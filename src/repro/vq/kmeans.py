"""K-means clustering for codebook training.

The typical VQ pipeline (Fig. 1) clusters sub-vectors with k-means and
uses the centroids as codebook entries.  This is a dependency the paper
takes from the quantization literature; we implement Lloyd's algorithm
with k-means++ seeding, chunked distance computation (so large tensors do
not materialise an N x K distance matrix), and empty-cluster repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """Centroids and assignments from one k-means run."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def _chunked_assign(
    data: np.ndarray, centroids: np.ndarray, chunk: int = 65536
) -> tuple:
    """Nearest-centroid assignment without a full distance matrix.

    Uses the ||x||^2 - 2 x.c + ||c||^2 expansion; the ||x||^2 term is
    constant per point so it is skipped for argmin and added back for the
    inertia.
    """
    n = data.shape[0]
    assignments = np.empty(n, dtype=np.int64)
    partial = np.empty(n, dtype=np.float64)
    c_sq = np.einsum("kd,kd->k", centroids, centroids)
    for start in range(0, n, chunk):
        block = data[start:start + chunk]
        scores = block @ centroids.T
        scores *= -2.0
        scores += c_sq[None, :]
        idx = np.argmin(scores, axis=1)
        assignments[start:start + chunk] = idx
        partial[start:start + chunk] = scores[np.arange(block.shape[0]), idx]
    x_sq = np.einsum("nd,nd->n", data, data)
    inertia = float(np.sum(partial + x_sq))
    return assignments, max(inertia, 0.0)


#: Whether this numpy build's ``Generator.choice(n, p=...)`` is
#: reproduced bit-for-bit by the inlined cumsum/searchsorted draw
#: (``None`` until probed once).
_FAST_CHOICE: Optional[bool] = None


def _fast_choice_matches() -> bool:
    """Probe whether the inlined draw replicates ``Generator.choice``.

    ``Generator.choice`` with probabilities builds the normalized CDF
    and searchsorts a single ``random()`` draw; the inlined version
    skips only the (quadratic-feeling) argument validation.  If a numpy
    build ever changes the underlying algorithm, this probe fails and
    seeding falls back to ``choice`` itself — trading speed for the
    seeded-stream compatibility the codebook tests pin.
    """
    for seed in range(3):
        probs = np.random.default_rng(99 + seed).random(17)
        probs /= probs.sum()
        want = np.random.default_rng(seed).choice(probs.size, p=probs)
        cdf = np.cumsum(probs)
        cdf /= cdf[-1]
        got = cdf.searchsorted(np.random.default_rng(seed).random(),
                               side="right")
        if int(want) != int(got):
            return False
    return True


def _distance_choice(d2: np.ndarray, total: float,
                     rng: np.random.Generator) -> int:
    """One distance-proportional index draw.

    Bit-equal to ``rng.choice(n, p=d2 / total)`` — same CDF arithmetic,
    same single ``random()`` consumed from the stream — without the
    per-call probability validation, which dominates k-means++ seeding
    time for large samples.
    """
    global _FAST_CHOICE
    if _FAST_CHOICE is None:
        _FAST_CHOICE = _fast_choice_matches()
    if not _FAST_CHOICE:  # pragma: no cover - numpy-version dependent
        return int(rng.choice(d2.shape[0], p=d2 / total))
    cdf = np.cumsum(d2 / total)
    cdf /= cdf[-1]
    return int(cdf.searchsorted(rng.random(), side="right"))


def _kmeanspp_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """K-means++ seeding (distance-proportional sampling)."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = rng.integers(n)
    centroids[0] = data[first]
    d2 = np.sum((data - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids.
            centroids[i:] = data[rng.integers(n, size=k - i)]
            break
        choice = _distance_choice(d2, total, rng)
        centroids[i] = data[choice]
        d2 = np.minimum(d2, np.sum((data - centroids[i]) ** 2, axis=1))
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    max_iters: int = 25,
    seed: int = 0,
    sample: Optional[int] = 262144,
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster ``data`` (N, D) into ``k`` centroids.

    Parameters
    ----------
    data:
        Points to cluster, shape (N, D).
    k:
        Number of clusters; if ``k >= N`` the points themselves (padded
        by resampling) are returned as centroids.
    max_iters:
        Lloyd iteration cap.
    seed:
        Deterministic RNG seed.
    sample:
        If set and N exceeds it, training runs on a uniform subsample of
        this size (assignments are still computed for all points at the
        end).  Codebook quality is insensitive to this for the tensor
        sizes used here, and it keeps training tractable.
    tol:
        Relative inertia-improvement threshold for early stopping.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (N, D), got shape {data.shape}")
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    if k <= 0:
        raise ValueError("k must be positive")
    rng = np.random.default_rng(seed)

    if k >= n:
        reps = data[rng.integers(n, size=k)]
        reps[:n] = data
        assignments, inertia = _chunked_assign(data, reps)
        return KMeansResult(reps, assignments, inertia, 0)

    train = data
    if sample is not None and n > sample:
        train = data[rng.choice(n, size=sample, replace=False)]

    centroids = _kmeanspp_init(train, k, rng)
    prev_inertia = np.inf
    iterations = 0
    for iterations in range(1, max_iters + 1):
        assignments, inertia = _chunked_assign(train, centroids)
        counts = np.bincount(assignments, minlength=k).astype(np.float64)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, train)
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        empty = np.flatnonzero(~nonempty)
        if empty.size:
            # Re-seed empty clusters at the points farthest from their
            # centroid to split the largest clusters.
            d2 = np.sum((train - centroids[assignments]) ** 2, axis=1)
            worst = np.argsort(d2)[-empty.size:]
            centroids[empty] = train[worst]
        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-12):
            break
        prev_inertia = inertia

    assignments, inertia = _chunked_assign(data, centroids)
    return KMeansResult(centroids, assignments, inertia, iterations)
