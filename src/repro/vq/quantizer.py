"""Vector quantizer: the typical VQ pipeline of Fig. 1.

Splits a 2-D tensor into ``vector_size`` sub-vectors along the last axis,
trains one codebook per scope group per residual level with k-means,
encodes each sub-vector as the index of its nearest centroid, and
iterates on the residual.  Lattice codebooks (QuiP#) are emulated with a
sign-magnitude decomposition: 256 stored magnitude entries x ``2**v``
sign masks give ``2**(8+v)`` nominal entries while lookups touch only the
256-entry base table — the property Tbl. II footnotes.

The result, :class:`QuantizedTensor`, is what kernels consume: packed
codes + a :class:`~repro.vq.codebook.CodebookSet`, with helpers for
dequantization, effective-lookup index streams (for hotness profiling)
and code remapping (for the codebook cache's frequency reorder).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.vq.codebook import Codebook, CodebookSet
from repro.vq.config import VQConfig
from repro.vq.kmeans import kmeans


def _assign_nearest(data: np.ndarray, centroids: np.ndarray,
                    chunk: int = 65536) -> np.ndarray:
    """Nearest-centroid index for each row of ``data`` (chunked)."""
    out = np.empty(data.shape[0], dtype=np.int64)
    c_sq = np.einsum("kd,kd->k", centroids, centroids)
    for start in range(0, data.shape[0], chunk):
        block = data[start:start + chunk]
        scores = block @ centroids.T
        scores *= -2.0
        scores += c_sq[None, :]
        out[start:start + chunk] = np.argmin(scores, axis=1)
    return out


class QuantizedTensor:
    """A VQ-compressed 2-D tensor: codes, group map and codebooks."""

    def __init__(
        self,
        config: VQConfig,
        shape: tuple,
        codes: np.ndarray,
        group_map: np.ndarray,
        codebooks: CodebookSet,
    ):
        rows, cols = shape
        n_sub = cols // config.vector_size
        if codes.shape != (rows, n_sub, config.residuals):
            raise ValueError(
                f"codes shape {codes.shape} does not match tensor shape "
                f"{shape} under {config.spec_string()}"
            )
        if group_map.shape != (rows, n_sub):
            raise ValueError("group_map shape mismatch")
        self.config = config
        self.shape = tuple(shape)
        self.codes = codes
        self.group_map = group_map
        self.codebooks = codebooks

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[1]

    @property
    def n_subvectors(self) -> int:
        return self.codes.shape[1]

    @property
    def n_groups(self) -> int:
        return self.codebooks.n_groups

    @property
    def quantized_bytes(self) -> float:
        """Storage of the packed codes."""
        return self.config.quantized_bytes(self.rows * self.cols)

    @property
    def total_bytes(self) -> float:
        """Codes plus all codebooks."""
        return self.quantized_bytes + self.codebooks.nbytes

    def lookup_indices(self) -> np.ndarray:
        """Effective codebook-lookup index per code.

        For lattice configs this strips the sign mask and returns the
        base-table index actually used for the shared-memory lookup; for
        plain configs it is the code itself.  Shape matches :attr:`codes`.
        """
        if self.config.lattice:
            return self.codes & (self.config.lattice_lookup_entries - 1)
        return self.codes

    def _decode_codes(self, residual: int) -> np.ndarray:
        """Dequantize one residual level, shape (rows, n_sub, vector)."""
        stacked = self.codebooks.stacked_entries(residual)
        codes_r = self.codes[:, :, residual]
        if self.config.lattice:
            base = codes_r & (self.config.lattice_lookup_entries - 1)
            masks = codes_r >> 8
            vecs = stacked[self.group_map, base].astype(np.float64)
            v = self.config.vector_size
            bits = (masks[..., None] >> np.arange(v)) & 1
            signs = np.where(bits > 0, 1.0, -1.0)
            return vecs * signs
        return stacked[self.group_map, codes_r].astype(np.float64)

    def dequantize(self) -> np.ndarray:
        """Reconstruct the full tensor (residual levels accumulated)."""
        total = np.zeros(
            (self.rows, self.n_subvectors, self.config.vector_size))
        for r in range(self.config.residuals):
            total += self._decode_codes(r)
        return total.reshape(self.rows, self.cols)

    def remap(self, permutations: np.ndarray) -> "QuantizedTensor":
        """Apply a frequency reorder: new codebooks + remapped codes.

        Parameters
        ----------
        permutations:
            ``perm[new_index] = old_index`` over *effective lookup*
            indices; applied identically to every group and residual
            (the paper reorders at tensor level).

        Returns
        -------
        QuantizedTensor
            Equivalent tensor whose effective lookup index 0 is the most
            frequently accessed entry.
        """
        perm = np.asarray(permutations)
        n_lookup = self.config.lookup_entries
        if sorted(perm.tolist()) != list(range(n_lookup)):
            raise ValueError("permutations must permute all lookup entries")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(n_lookup)

        new_books = [
            [book.reordered(perm) for book in group]
            for group in self.codebooks.books
        ]
        if self.config.lattice:
            base = self.codes & (n_lookup - 1)
            masks = self.codes & ~(n_lookup - 1)
            new_codes = masks | inverse[base]
        else:
            new_codes = inverse[self.codes]
        return QuantizedTensor(self.config, self.shape, new_codes,
                               self.group_map, CodebookSet(new_books))

    def reconstruction_error(self, original: np.ndarray) -> float:
        """Mean squared reconstruction error against ``original``."""
        original = np.asarray(original, dtype=np.float64)
        if original.shape != self.shape:
            raise ValueError("original shape mismatch")
        diff = self.dequantize() - original
        return float(np.mean(diff * diff))


class VectorQuantizer:
    """Trains codebooks and encodes tensors for one :class:`VQConfig`."""

    def __init__(
        self,
        config: VQConfig,
        seed: int = 0,
        kmeans_iters: int = 15,
        train_sample: Optional[int] = 65536,
    ):
        self.config = config
        self.seed = seed
        self.kmeans_iters = kmeans_iters
        self.train_sample = train_sample
        if config.lattice and config.index_bits != 8 + config.vector_size:
            raise ValueError(
                "lattice emulation stores an 8-bit base index plus one sign "
                f"bit per element, so index_bits must be "
                f"{8 + config.vector_size} for vector_size="
                f"{config.vector_size}"
            )

    # ------------------------------------------------------------------
    # Scope grouping
    # ------------------------------------------------------------------
    def group_map(self, rows: int, n_sub: int) -> np.ndarray:
        """Scope group of each (row, sub-vector) code position."""
        cfg = self.config
        if cfg.scope == "tensor":
            return np.zeros((rows, n_sub), dtype=np.int64)
        if cfg.scope == "channel_group":
            # One codebook per group of vector_size channels (CQ).
            return np.broadcast_to(
                np.arange(n_sub, dtype=np.int64)[None, :], (rows, n_sub)
            ).copy()
        # tile scope (GPTVQ): one codebook per (tile_r, tile_c) weight tile.
        tile_r, tile_c = cfg.tile_shape
        if tile_c % cfg.vector_size:
            raise ValueError("tile width must be a multiple of vector_size")
        tiles_per_row = math.ceil(n_sub * cfg.vector_size / tile_c)
        row_tile = np.arange(rows, dtype=np.int64) // tile_r
        col_tile = (np.arange(n_sub, dtype=np.int64)
                    * cfg.vector_size) // tile_c
        return row_tile[:, None] * tiles_per_row + col_tile[None, :]

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        """Quantize a 2-D tensor, training codebooks per group."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if tensor.ndim != 2:
            raise ValueError(f"expected a 2-D tensor, got shape {tensor.shape}")
        cfg = self.config
        rows, cols = tensor.shape
        if cols % cfg.vector_size:
            raise ValueError(
                f"columns ({cols}) must be divisible by vector_size "
                f"({cfg.vector_size})"
            )
        n_sub = cols // cfg.vector_size
        sub = tensor.reshape(rows, n_sub, cfg.vector_size)
        groups = self.group_map(rows, n_sub)
        n_groups = int(groups.max()) + 1

        codes = np.zeros((rows, n_sub, cfg.residuals), dtype=np.int64)
        books = [[None] * cfg.residuals for _ in range(n_groups)]
        for g in range(n_groups):
            mask = groups == g
            data = sub[mask]
            if data.size == 0:
                raise ValueError(f"scope group {g} has no sub-vectors")
            for r in range(cfg.residuals):
                book, idx = self._encode_level(data, level_seed=g * 131 + r)
                books[g][r] = book
                codes[mask, r] = idx
                data = data - self._decode_level(book, idx)
        return QuantizedTensor(cfg, tensor.shape, codes, groups,
                               CodebookSet(books))

    def _encode_level(self, data: np.ndarray, level_seed: int):
        """Train one codebook level and encode ``data`` against it."""
        cfg = self.config
        if cfg.lattice:
            return self._encode_lattice(data, level_seed)
        km = kmeans(
            data,
            cfg.n_entries,
            max_iters=self.kmeans_iters,
            seed=self.seed + level_seed,
            sample=self.train_sample,
        )
        book = Codebook(km.centroids, cfg.entry_element_bytes)
        return book, km.assignments

    def _encode_lattice(self, data: np.ndarray, level_seed: int):
        """Sign-magnitude lattice emulation (QuiP#-style).

        The base table holds 256 magnitude patterns; the code's high bits
        are the per-element sign mask.  Lookups at dequantization time
        touch only the base table.
        """
        cfg = self.config
        mags = np.abs(data)
        km = kmeans(
            mags,
            cfg.lattice_lookup_entries,
            max_iters=self.kmeans_iters,
            seed=self.seed + level_seed,
            sample=self.train_sample,
        )
        base_idx = km.assignments
        sign_bits = (data >= 0).astype(np.int64)
        weights = (1 << np.arange(cfg.vector_size, dtype=np.int64))
        masks = sign_bits @ weights
        codes = (masks << 8) | base_idx
        book = Codebook(km.centroids, cfg.entry_element_bytes)
        return book, codes

    def _decode_level(self, book: Codebook, codes: np.ndarray) -> np.ndarray:
        """Dequantize one level's codes against one codebook."""
        cfg = self.config
        if not cfg.lattice:
            return book.entries[codes].astype(np.float64)
        base = codes & (cfg.lattice_lookup_entries - 1)
        masks = codes >> 8
        bits = (masks[..., None] >> np.arange(cfg.vector_size)) & 1
        signs = np.where(bits > 0, 1.0, -1.0)
        return book.entries[base].astype(np.float64) * signs
