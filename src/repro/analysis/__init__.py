"""Project-aware static analysis for the reproduction tree.

The repo's correctness story rests on bit-identical determinism:
golden tests pin metrics across refactors, ``run_sweep`` must be
invariant to worker count, and the BENCH regression gate compares
floats exactly.  The bug classes that break those guarantees are
narrow and recurring — an unseeded RNG call, a wall-clock read inside
an engine, a tracer record that is not guarded by ``tracer.enabled``,
an argparse flag colliding with an existing dest — and each has
shipped at least once before this pass existed.

:mod:`repro.analysis` is an AST-based lint framework with a registry
of project-specific rules (codes ``RPL001``..), JSON/text reporters
and a committed baseline file for grandfathered findings, exposed as
``python -m repro.analysis``.  See ``docs/architecture.md`` §10 for
the rule catalog and the baseline workflow.
"""

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    analyze_paths,
    iter_python_files,
    register,
)
from repro.analysis.baseline import Baseline, BaselineError

# Importing the rules module populates the registry.
import repro.analysis.rules  # noqa: F401

__all__ = [
    "AnalysisContext",
    "Baseline",
    "BaselineError",
    "Finding",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "register",
]
