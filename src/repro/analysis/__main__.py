"""CLI for the project lint pass: ``python -m repro.analysis``.

Default invocation scans ``src tools examples`` against the committed
baseline (``tools/analysis_baseline.json``) and prints new findings.
``--check`` is the CI gate: it additionally fails on stale baseline
entries and entries with empty justifications.  ``--update-baseline``
rewrites the baseline to cover the current findings, preserving
existing justifications (new entries get an empty justification that
``--check`` will refuse until a human fills it in).

Exit status: 0 clean, 1 findings / parse errors / baseline problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis import Baseline, BaselineError, all_rules, analyze_paths

_DEFAULT_PATHS = ["src", "tools", "examples"]
_DEFAULT_BASELINE = "tools/analysis_baseline.json"


def _fingerprint_path(fingerprint: str) -> str:
    """The path component of ``code:path:message``."""
    parts = fingerprint.split(":", 2)
    return parts[1] if len(parts) == 3 else ""


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific determinism lint pass (RPL rules).")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files/directories to analyze "
                             f"(default: {' '.join(_DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", default=_DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {_DEFAULT_BASELINE})")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: also fail on stale baseline "
                             "entries and missing justifications")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to cover current "
                             "findings (keeps existing justifications)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0

    paths = [Path(p) for p in (args.paths or _DEFAULT_PATHS)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 1

    findings, errors = analyze_paths(paths)

    baseline_path = Path(args.baseline)
    try:
        baseline = (Baseline.load(baseline_path)
                    if baseline_path.exists() else Baseline())
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.update_baseline:
        updated = Baseline.from_findings(findings, previous=baseline)
        updated.save(baseline_path)
        empty = updated.missing_justifications()
        print(f"wrote {baseline_path} with {len(updated.entries)} "
              f"entr{'y' if len(updated.entries) == 1 else 'ies'}")
        for fp in empty:
            print(f"  needs justification: {fp}")
        return 0

    new, baselined, stale = baseline.split(findings)
    # A baseline entry is stale only if the file it points at was
    # actually scanned — running the pass on a subtree (e.g. a single
    # fixture) must not invalidate the rest of the baseline.
    scanned = {f.path for f in findings} | {
        str(Path(p).as_posix()) for path in paths
        for p in ([path] if path.is_file() else sorted(path.rglob("*.py")))}
    stale = [fp for fp in stale if _fingerprint_path(fp) in scanned]
    unjustified = (baseline.missing_justifications()
                   if args.check and baseline_path.exists() else [])

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_json() for f in new],
            "baselined": len(baselined),
            "stale": stale,
            "unjustified": unjustified,
            "errors": errors,
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
        for err in errors:
            print(f"parse error: {err}")
        for fp in stale:
            print(f"stale baseline entry (delete it): {fp}")
        for fp in unjustified:
            print(f"baseline entry needs a justification: {fp}")
        summary = (f"{len(new)} finding{'s' if len(new) != 1 else ''}, "
                   f"{len(baselined)} baselined")
        if stale:
            summary += f", {len(stale)} stale"
        print(summary)

    failed = bool(new or errors)
    if args.check:
        failed = failed or bool(stale or unjustified)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
