"""The project rule catalog (RPL001..RPL009).

Every rule here is grounded in a bug this repo actually shipped (or
nearly shipped) — see each rule's ``rationale``.  Rules are syntactic:
they inspect the AST without importing the analyzed code, so the pass
is safe to run on broken trees and costs milliseconds, and a finding
always names a concrete source location.

The rules deliberately favour precision over recall — e.g. RPL003
recognises a ``tracer.*`` record call only through a direct
``tracer``-named attribute chain, and the guard must be a lexically
enclosing ``if`` whose test reads ``<tracer>.enabled``.  Aliasing the
tracer into a differently-named local defeats the rule; the convention
(and review) is to not do that.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    ParsedFile,
    ProjectRule,
    Rule,
    register,
)

__all__ = ["attr_chain"]


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted source form of a Name/Attribute chain, else ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything
    with a non-name base (calls, subscripts) yields ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal(node: ast.AST) -> Optional[str]:
    """Last identifier of a Name/Attribute chain (``self.x.tracer`` ->
    ``"tracer"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _build_parents(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


# ----------------------------------------------------------------------
# RPL001 — unseeded RNG
# ----------------------------------------------------------------------
#: Constructors of explicitly-seeded RNG state are fine; everything
#: else on the legacy global-state modules is a determinism leak.
_RNG_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
    "Random", "SystemRandom", "seed",
}


@register
class UnseededRandomRule(Rule):
    code = "RPL001"
    title = ("no unseeded random/np.random module-level calls — thread "
             "a seeded Generator")
    rationale = (
        "Simulation results must be a pure function of (config, seed); "
        "a np.random.* or random.* global-state draw silently breaks "
        "golden tests and worker-count-invariant sweeps.")

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) < 2 or parts[-1] in _RNG_ALLOWED:
                continue
            if parts[:-1] in (["np", "random"], ["numpy", "random"],
                              ["random"]):
                yield self.finding(
                    parsed, node,
                    f"unseeded global-state RNG call {chain}(); thread "
                    f"a seeded np.random.Generator instead")


# ----------------------------------------------------------------------
# RPL002 — wall clock inside engines
# ----------------------------------------------------------------------
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    code = "RPL002"
    title = "no wall-clock reads (time.time, datetime.now) in src/repro"
    rationale = (
        "Engines own simulated time; a wall-clock read that leaks into "
        "scheduling or metrics makes runs machine-dependent.  Real "
        "wall-time measurement (perf harnesses) belongs in tools/ or "
        "goes in the baseline with a justification.")

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        if "src/repro/" not in parsed.path:
            return
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain in _WALL_CLOCK:
                    yield self.finding(
                        parsed, node,
                        f"wall-clock call {chain}() inside src/repro; "
                        f"simulated components must take time as input")


# ----------------------------------------------------------------------
# RPL003 — unguarded tracer record calls
# ----------------------------------------------------------------------
_TRACER_METHODS = {"step", "event", "request", "record_sequences"}


@register
class UnguardedTracerRule(Rule):
    code = "RPL003"
    title = "tracer record calls must be guarded by `if tracer.enabled:`"
    rationale = (
        "The disabled tracing path must stay one attribute read per "
        "iteration (perf-smoke gates traced<=1.5x untraced); an "
        "unguarded tracer.*() call puts a no-op method dispatch on the "
        "hot path and defeats the NULL_TRACER design.")

    def _is_tracer_expr(self, node: ast.AST) -> bool:
        term = _terminal(node)
        return term is not None and term.endswith("tracer")

    def _is_guard(self, test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if (isinstance(sub, ast.Attribute) and sub.attr == "enabled"
                    and self._is_tracer_expr(sub.value)):
                return True
        return False

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        if parsed.path.endswith("obs/trace.py"):
            return  # the Tracer implementation itself
        parents: Optional[Dict[ast.AST, ast.AST]] = None
        for node in ast.walk(parsed.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TRACER_METHODS
                    and self._is_tracer_expr(node.func.value)):
                continue
            if parents is None:
                parents = _build_parents(parsed.tree)
            cur: Optional[ast.AST] = node
            guarded = False
            while cur is not None:
                parent = parents.get(cur)
                if (isinstance(parent, ast.If) and cur in parent.body
                        and self._is_guard(parent.test)):
                    guarded = True
                    break
                if isinstance(parent, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    break  # guards don't cross function boundaries
                cur = parent
            if not guarded:
                name = attr_chain(node.func) or node.func.attr
                yield self.finding(
                    parsed, node,
                    f"unguarded tracer record call {name}(); wrap it in "
                    f"`if tracer.enabled:` to keep the disabled path free")


# ----------------------------------------------------------------------
# RPL004 — argparse flag/dest collisions
# ----------------------------------------------------------------------
@register
class ArgparseCollisionRule(Rule):
    code = "RPL004"
    title = "argparse option-string/dest collisions within one function"
    rationale = (
        "PR 8 shipped --trace both as an arrival-process choice and a "
        "timeline toggle; argparse raises only at runtime, after the "
        "CLI is already wired.  All add_argument calls in one function "
        "are treated as one namespace (parsers plus their groups).")

    @staticmethod
    def _dest_of(call: ast.Call) -> Tuple[List[str], Optional[str]]:
        options = [a.value for a in call.args
                   if isinstance(a, ast.Constant)
                   and isinstance(a.value, str)]
        dest = None
        for kw in call.keywords:
            if kw.arg == "dest" and isinstance(kw.value, ast.Constant):
                dest = kw.value.value
        if dest is None and options:
            longs = [o for o in options if o.startswith("--")]
            first = longs[0] if longs else options[0]
            dest = first.lstrip("-").replace("-", "_")
        return options, dest

    @staticmethod
    def _own_add_argument_calls(scope: ast.AST) -> List[ast.Call]:
        """``add_argument`` calls directly in ``scope``, not descending
        into nested function definitions (those are their own
        namespace)."""
        out: List[ast.Call] = []
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_argument"):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        out.sort(key=lambda n: (n.lineno, n.col_offset))
        return out

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        scopes = [n for n in ast.walk(parsed.tree)
                  if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        scopes.append(parsed.tree)  # module-level parsers
        for scope in scopes:
            seen_options: Dict[str, int] = {}
            seen_dests: Dict[str, int] = {}
            for node in self._own_add_argument_calls(scope):
                options, dest = self._dest_of(node)
                for opt in options:
                    if opt in seen_options:
                        yield self.finding(
                            parsed, node,
                            f"option string {opt!r} already added at "
                            f"line {seen_options[opt]}")
                    else:
                        seen_options[opt] = node.lineno
                if dest is not None:
                    if dest in seen_dests:
                        yield self.finding(
                            parsed, node,
                            f"dest {dest!r} collides with the argument "
                            f"added at line {seen_dests[dest]}")
                    else:
                        seen_dests[dest] = node.lineno


# ----------------------------------------------------------------------
# RPL005 — config dataclass <-> CLI builder schema drift
# ----------------------------------------------------------------------
#: The typed config facade (repro/serve/api.py) classes whose fields
#: must stay reachable from the bench CLI builders.
_CONFIG_CLASSES = ("SchedulerConfig", "SimConfig", "FleetConfig")

#: Fields that are structural, not CLI knobs (nested configs and run
#: naming are always set programmatically).
_STRUCTURAL_FIELDS = {"scheduler", "name"}


@register
class ConfigSchemaDriftRule(ProjectRule):
    code = "RPL005"
    title = ("config dataclass fields must round-trip through the "
             "bench CLI builders")
    rationale = (
        "SchedulerConfig/SimConfig/FleetConfig are the public config "
        "surface; a field added (or renamed) without wiring the "
        "repro.bench argparse builders silently strands the knob — "
        "sweeps claim coverage they don't have.")

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        facts = ctx.facts.setdefault(self.code, {
            "fields": {},       # class -> {field: (path, line)}
            "calls": [],        # (class, kwarg, path, line)
            "bench_kwargs": set(),
            "bench_dests": set(),
        })
        if parsed.path.endswith("repro/serve/api.py"):
            for node in parsed.tree.body:
                if (isinstance(node, ast.ClassDef)
                        and node.name in _CONFIG_CLASSES):
                    fields = {}
                    for stmt in node.body:
                        if (isinstance(stmt, ast.AnnAssign)
                                and isinstance(stmt.target, ast.Name)
                                and not stmt.target.id.startswith("_")):
                            fields[stmt.target.id] = (parsed.path,
                                                      stmt.lineno)
                    facts["fields"][node.name] = fields
        in_bench = "repro/bench/" in parsed.path
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            if in_bench:
                for kw in node.keywords:
                    if kw.arg is not None:
                        facts["bench_kwargs"].add(kw.arg)
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "add_argument"):
                    _, dest = ArgparseCollisionRule._dest_of(node)
                    if dest is not None:
                        facts["bench_dests"].add(dest)
            name = _terminal(node.func)
            if name in _CONFIG_CLASSES:
                for kw in node.keywords:
                    if kw.arg is not None:
                        facts["calls"].append(
                            (name, kw.arg, parsed.path, node.lineno))
        return ()

    def finalize(self, ctx: AnalysisContext) -> Iterable[Finding]:
        facts = ctx.facts.get(self.code)
        if not facts or not facts["fields"]:
            return  # api.py not in the analyzed set: nothing to check
        for cls, kwarg, path, line in facts["calls"]:
            fields = facts["fields"].get(cls)
            if fields is not None and kwarg not in fields:
                yield Finding(
                    code=self.code, path=path, line=line,
                    message=f"unknown field {kwarg!r} passed to {cls}() "
                            f"(schema drift against repro/serve/api.py)")
        reachable = facts["bench_kwargs"] | facts["bench_dests"]
        for cls, fields in sorted(facts["fields"].items()):
            for field_name, (path, line) in sorted(fields.items()):
                if field_name in _STRUCTURAL_FIELDS:
                    continue
                if field_name not in reachable:
                    yield Finding(
                        code=self.code, path=path, line=line,
                        message=f"{cls}.{field_name} is not settable from "
                                f"any repro.bench CLI builder (no kwarg "
                                f"or argparse dest matches)")


# ----------------------------------------------------------------------
# RPL006 — deprecation shims must emit DeprecationWarning
# ----------------------------------------------------------------------
_DEPRECATION_CATEGORIES = {"DeprecationWarning",
                           "PendingDeprecationWarning", "FutureWarning"}


@register
class DeprecationCategoryRule(Rule):
    code = "RPL006"
    title = ("warnings.warn about deprecation must pass a "
             "DeprecationWarning category")
    rationale = (
        "The api.py deprecation policy keeps legacy kwargs one PR "
        "cycle behind a DeprecationWarning; a shim warning with the "
        "default UserWarning category breaks `-W error::"
        "DeprecationWarning` test filters and user expectations.")

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain not in ("warnings.warn", "warn"):
                continue
            mentions = any(
                isinstance(sub, ast.Constant)
                and isinstance(sub.value, str)
                and "deprecat" in sub.value.lower()
                for arg in node.args[:1] for sub in ast.walk(arg))
            if not mentions:
                continue
            category = None
            if len(node.args) >= 2:
                category = _terminal(node.args[1])
            for kw in node.keywords:
                if kw.arg == "category":
                    category = _terminal(kw.value)
            if category not in _DEPRECATION_CATEGORIES:
                yield self.finding(
                    parsed, node,
                    "deprecation message warned without a "
                    "DeprecationWarning category")


# ----------------------------------------------------------------------
# RPL007 — set iteration feeding ordered output
# ----------------------------------------------------------------------
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetIterationRule(Rule):
    code = "RPL007"
    title = "no iteration over sets (ordering nondeterminism); sort first"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "seeds; a set-driven loop that fills a metrics/report dict "
        "makes output ordering (and tie-breaking) nondeterministic.  "
        "Iterate sorted(...) instead.")

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(parsed.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        parsed, it,
                        "iterating a set produces nondeterministic "
                        "order; wrap it in sorted(...)")


# ----------------------------------------------------------------------
# RPL008 — bare round() on heuristics
# ----------------------------------------------------------------------
@register
class BareRoundRule(Rule):
    code = "RPL008"
    title = "no bare round() — banker's rounding is seed-sensitive"
    rationale = (
        "round() rounds halves to even, so a cost/split heuristic "
        "built on it flips direction at exact .5 boundaries (the PR-3 "
        "optimal_split_factor bug).  Use int(x + 0.5), math.floor/"
        "ceil, or compare both neighbours explicitly.")

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(parsed.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "round"):
                yield self.finding(
                    parsed, node,
                    "bare round() uses banker's rounding; pick an "
                    "explicit rounding direction")


# ----------------------------------------------------------------------
# RPL009 — timeline/SLO sampling code purity
# ----------------------------------------------------------------------
#: The windowed-telemetry modules held to the observation-only bar.
_SAMPLING_PATHS = ("obs/timeline.py", "obs/slo.py")


@register
class SamplingPurityRule(Rule):
    code = "RPL009"
    title = ("timeline/SLO sampling code must not touch the tracer or "
             "read the wall clock")
    rationale = (
        "The timeline collector's contract is bit-identity: end-of-run "
        "metrics equal with sampling on or off, windows advancing on "
        "simulated time only.  A Tracer record call from obs/timeline "
        "or obs/slo (guarded or not — trace events are the simulator's "
        "job) couples sampling to tracing state, and a wall-clock read "
        "makes window contents machine-dependent; either breaks the "
        "golden on/off parity tests.")

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        if not parsed.path.endswith(_SAMPLING_PATHS):
            return
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain in _WALL_CLOCK:
                yield self.finding(
                    parsed, node,
                    f"wall-clock call {chain}() in sampling code; "
                    f"windows must advance on simulated time only")
                continue
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TRACER_METHODS):
                term = _terminal(node.func.value)
                if term is not None and term.endswith("tracer"):
                    name = chain or node.func.attr
                    yield self.finding(
                        parsed, node,
                        f"tracer record call {name}() in sampling code "
                        f"(even guarded): the collector observes "
                        f"schedulers; trace events belong to the "
                        f"simulator")
