"""Committed baseline of grandfathered findings.

A finding in the baseline is *known and accepted*: it is suppressed
from the report (counted, not listed) so ``--check`` can gate CI on
*new* findings only.  Every entry carries a mandatory human
``justification`` — the baseline is a list of documented exceptions,
not a mute button — and ``--check`` fails on entries whose
justification is empty or whose finding no longer exists (stale
entries must be deleted, keeping the file honest).

Matching is by :attr:`~repro.analysis.core.Finding.fingerprint`
(code + path + message, no line number), so grandfathered findings
survive unrelated edits that shift line numbers.  ``count`` bounds how
many identical findings one entry may absorb (default 1); an extra
occurrence of a baselined pattern is a new finding.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.core import Finding

__all__ = ["Baseline", "BaselineError"]

_SCHEMA = 1


class BaselineError(ValueError):
    """Malformed baseline file or invalid entry."""


@dataclass
class Baseline:
    """Fingerprint -> (justification, count) map with JSON round-trip."""

    entries: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or "entries" not in raw:
            raise BaselineError(f"{path}: expected an object with 'entries'")
        if raw.get("schema") != _SCHEMA:
            raise BaselineError(
                f"{path}: unsupported schema {raw.get('schema')!r} "
                f"(expected {_SCHEMA})")
        entries: Dict[str, Tuple[str, int]] = {}
        for entry in raw["entries"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise BaselineError(
                    f"{path}: every entry needs a 'fingerprint'")
            fp = entry["fingerprint"]
            if fp in entries:
                raise BaselineError(f"{path}: duplicate fingerprint {fp!r}")
            count = entry.get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise BaselineError(f"{path}: count must be a positive "
                                    f"int, got {count!r}")
            entries[fp] = (str(entry.get("justification", "")), count)
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema": _SCHEMA,
            "entries": [
                {"fingerprint": fp, "justification": just, "count": count}
                for fp, (just, count) in sorted(self.entries.items())
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    def split(self, findings: List[Finding]
              ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Partition findings into (new, baselined) + stale fingerprints.

        A baselined entry absorbs up to ``count`` findings with its
        fingerprint; further occurrences are new.  Entries matching
        nothing are stale.
        """
        budget = Counter({fp: count
                          for fp, (_, count) in self.entries.items()})
        matched: set = set()
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            fp = finding.fingerprint
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                matched.add(fp)
                old.append(finding)
            else:
                new.append(finding)
        stale = sorted(fp for fp in self.entries if fp not in matched)
        return new, old, stale

    def missing_justifications(self) -> List[str]:
        """Fingerprints whose justification is empty (``--check`` fails)."""
        return sorted(fp for fp, (just, _) in self.entries.items()
                      if not just.strip())

    @classmethod
    def from_findings(cls, findings: List[Finding],
                      previous: "Baseline" = None) -> "Baseline":
        """Baseline covering ``findings``, keeping prior justifications."""
        counts = Counter(f.fingerprint for f in findings)
        prev = previous.entries if previous is not None else {}
        return cls(entries={
            fp: (prev.get(fp, ("", 1))[0], n)
            for fp, n in counts.items()
        })
