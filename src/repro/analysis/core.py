"""Rule registry, findings and the two-pass analysis driver.

A *rule* is a class with a stable ``code`` (``RPLnnn``), a one-line
``title`` and a ``check`` method yielding :class:`Finding` objects for
one parsed file.  Most rules are purely local (one file at a time);
rules that need cross-file facts — e.g. config-dataclass fields versus
the CLI builders that set them — subclass :class:`ProjectRule` and run
after every file has been collected.

The driver (:func:`analyze_paths`) therefore makes two passes:

1. parse every file once, let each rule ``collect`` per-file facts
   into the shared :class:`AnalysisContext` and emit local findings;
2. let project rules emit findings from the collected facts.

Findings are deterministic: files are walked in sorted order and every
rule emits in source order, so the report is stable across runs and
machines (the analysis pass holds itself to the determinism bar it
enforces).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Type

__all__ = [
    "AnalysisContext",
    "Finding",
    "ParsedFile",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "register",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a file location.

    ``fingerprint`` (code + path + message, no line number) is what the
    baseline matches on, so a finding stays grandfathered when
    unrelated edits shift it a few lines.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    @property
    def fingerprint(self) -> str:
        return f"{self.code}:{self.path}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.code} {self.message}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class ParsedFile:
    """One analyzed source file: path (repo-relative), text and AST."""

    path: str
    source: str
    tree: ast.AST

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


@dataclass
class AnalysisContext:
    """Shared state of one analysis run.

    ``root`` is the directory findings are reported relative to.
    ``facts`` is a free-form blackboard local rules write during pass 1
    (keyed by rule code) and project rules read during pass 2.
    """

    root: Path
    files: List[ParsedFile] = field(default_factory=list)
    facts: Dict[str, object] = field(default_factory=dict)

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()


class Rule:
    """Base class of a local (single-file) rule."""

    #: Stable rule identifier, e.g. ``"RPL003"``.
    code: str = ""
    #: One-line human description, shown by ``--list-rules``.
    title: str = ""
    #: Why the rule exists (the past bug it guards against).
    rationale: str = ""

    def check(self, parsed: ParsedFile,
              ctx: AnalysisContext) -> Iterable[Finding]:
        """Yield findings for one file (may also record facts)."""
        return ()

    def finding(self, parsed: ParsedFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(code=self.code, message=message, path=parsed.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))


class ProjectRule(Rule):
    """A rule that also runs once over the whole collected project."""

    def finalize(self, ctx: AnalysisContext) -> Iterable[Finding]:
        """Yield findings after every file has been collected."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"{cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".benchmarks", "node_modules",
              "lint_fixtures"}


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Python files under ``paths`` (files pass through), sorted."""
    out = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
            continue
        for sub in sorted(path.rglob("*.py")):
            # Skip-dirs are judged below the scanned root, so passing
            # a fixture directory explicitly still analyzes it while a
            # scan of tests/ walks past it.
            if not any(part in _SKIP_DIRS
                       for part in sub.relative_to(path).parts):
                out.append(sub)
    seen = set()
    for path in sorted(out):
        if path not in seen:
            seen.add(path)
            yield path


def analyze_paths(paths: Iterable[Path], root: Optional[Path] = None,
                  rules: Optional[List[Rule]] = None,
                  ) -> tuple[List[Finding], List[str]]:
    """Run the two-pass analysis; returns (findings, parse errors).

    Syntax errors do not abort the run — the offending file is skipped
    and reported in the error list (and makes the CLI exit non-zero),
    so one broken file cannot hide findings in the rest of the tree.
    """
    root = (root or Path.cwd()).resolve()
    rules = all_rules() if rules is None else rules
    ctx = AnalysisContext(root=root)
    findings: List[Finding] = []
    errors: List[str] = []
    for path in iter_python_files(paths):
        rel = ctx.relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{rel}: {exc.__class__.__name__}: {exc}")
            continue
        parsed = ParsedFile(path=rel, source=source, tree=tree)
        ctx.files.append(parsed)
        for rule in rules:
            findings.extend(rule.check(parsed, ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.finalize(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, errors
