"""FP16 GEMM / GEMV kernels (cutlass-like baselines).

The GEMM model follows the classic double-buffered tiled dataflow: each
block computes a (BM, BN) output tile, staging (BM, BK) activation and
(BK, BN) weight tiles through shared memory.  The GEMV model is the
memory-bound split-K variant used for decode-phase projections.

Counters follow from the tiling arithmetic:

- every activation tile is re-read once per weight-column block and vice
  versa, so DRAM traffic is ``M*K*ceil(N/BN) + K*N*ceil(M/BM)`` elements;
- shared->register traffic is ``M*N*K * (1/BM + 1/BN)`` elements (each
  multiply reads one element of A and one of W from shared memory,
  amortized across the tile);
- FLOPs are ``2*M*N*K``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.counters import PerfCounters
from repro.gpu.spec import GPUSpec
from repro.kernels.base import FP16, FP32, KernelBase, TileConfig

#: Default cutlass-style GEMM tiling on Ada/Ampere.
GEMM_TILE = TileConfig(
    block_m=128, block_n=128, block_k=32,
    threads=256, regs_per_thread=128,
    smem_bytes=2 * (128 + 128) * 32 * FP16,  # double-buffered A and W tiles
)

#: GEMV tiling: one block per slice of output columns, split along K.
GEMV_TILE = TileConfig(
    block_m=16, block_n=128, block_k=512,
    threads=256, regs_per_thread=64,
    smem_bytes=8 * 1024,
)


@dataclass(frozen=True)
class GemmShape:
    """C[M, N] = A[M, K] @ W[K, N]."""

    m: int
    n: int
    k: int

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    @property
    def output_bytes(self) -> float:
        return float(self.m * self.n * FP16)


def gemv_split_k(shape: GemmShape, spec: GPUSpec,
                 tile: TileConfig = GEMV_TILE) -> int:
    """Split-K factor that fills the GPU for a skinny GEMV."""
    n_blocks = math.ceil(shape.n / tile.block_n)
    target = 2 * spec.sm_count
    if n_blocks >= target:
        return 1
    max_split = max(1, shape.k // tile.block_k)
    return min(max_split, math.ceil(target / n_blocks))


#: cutlass's threadblock swizzling keeps sibling tiles' operands in L2,
#: cutting the DRAM side of the tile re-reads; the fused VQ kernels and
#: AWQ kernels do not implement swizzling (the paper notes integrating
#: with cutlass's tiling is future work), so only this baseline gets it.
CUTLASS_L2_REUSE = 0.35


class FP16GemmKernel(KernelBase):
    """Compute-bound tiled FP16 GEMM (cutlass-like, with L2 reuse)."""

    name = "fp16-gemm"

    def __init__(self, shape: GemmShape, a: Optional[np.ndarray] = None,
                 w: Optional[np.ndarray] = None,
                 tile: TileConfig = GEMM_TILE):
        self.shape = shape
        self.tile = tile
        self.a = a
        self.w = w

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s, t = self.shape, self.tile
        m_tiles = math.ceil(s.m / t.block_m)
        n_tiles = math.ceil(s.n / t.block_n)
        a_bytes = s.m * s.k * FP16 * max(1.0, n_tiles * CUTLASS_L2_REUSE)
        w_bytes = s.k * s.n * FP16 * max(1.0, m_tiles * CUTLASS_L2_REUSE)
        smem_reads = s.m * s.n * s.k * (1 / t.block_m + 1 / t.block_n) * FP16
        c = PerfCounters(
            dram_bytes=a_bytes + w_bytes + s.output_bytes,
            global_to_shared_bytes=a_bytes + w_bytes,
            shared_to_reg_bytes=smem_reads,
            shared_transactions=(a_bytes + w_bytes + smem_reads) / 128,
            flops=s.flops,
            smem_per_block=t.smem_bytes,
            regs_per_thread=t.regs_per_thread,
            threads_per_block=t.threads,
            grid_blocks=m_tiles * n_tiles,
        )
        return c

    def execute(self):
        if self.a is None or self.w is None:
            return None
        return self.a @ self.w


class FP16GemvKernel(KernelBase):
    """Memory-bound split-K FP16 GEMV (decode-phase projection)."""

    name = "fp16-gemv"

    def __init__(self, shape: GemmShape, a: Optional[np.ndarray] = None,
                 w: Optional[np.ndarray] = None,
                 tile: TileConfig = GEMV_TILE):
        if shape.m > 64:
            raise ValueError("GEMV kernel expects a small batch dimension")
        self.shape = shape
        self.tile = tile
        self.a = a
        self.w = w

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s, t = self.shape, self.tile
        split_k = gemv_split_k(s, spec, t)
        n_blocks = math.ceil(s.n / t.block_n)
        grid = n_blocks * split_k
        w_bytes = s.k * s.n * FP16
        a_bytes = s.m * s.k * FP16 * n_blocks  # broadcast per column block
        reduction = (split_k * s.m * s.n * FP32 * 2) if split_k > 1 else 0.0
        c = PerfCounters(
            dram_bytes=w_bytes + a_bytes + s.output_bytes,
            global_to_shared_bytes=a_bytes,
            shared_to_reg_bytes=a_bytes,
            shared_transactions=2 * a_bytes / 128,
            reduction_bytes=reduction,
            kernel_launches=1 + (1 if split_k > 1 else 0),
            flops=s.flops,
            smem_per_block=t.smem_bytes,
            regs_per_thread=t.regs_per_thread,
            threads_per_block=t.threads,
            grid_blocks=grid,
            notes={"split_k": split_k},
        )
        return c

    def execute(self):
        if self.a is None or self.w is None:
            return None
        return self.a @ self.w
