"""Kernel models over the GPU substrate.

Every kernel produces (a) a numerically correct output via numpy and
(b) a :class:`~repro.gpu.counters.PerfCounters` record from which the
cost model derives latency.  FP16 baselines follow cutlass-style tiled
GEMM/GEMV and FlashAttention / FlashDecoding (plus paged variants);
element-wise quantization kernels model AWQ (weights) and QoQ (KV);
:mod:`repro.kernels.vq_fused` is the parametric fused VQ kernel that the
GC/SC baselines and all VQ-LLM optimization levels share.
"""

from repro.kernels.attention import (
    AttentionShape,
    FlashAttentionKernel,
    FlashDecodingKernel,
    PagedFlashAttentionKernel,
    PagedFlashDecodingKernel,
)
from repro.kernels.base import KernelResult, TileConfig
from repro.kernels.elementwise import (
    ElementwiseAttentionKernel,
    ElementwiseGemmKernel,
    ElementwiseGemvKernel,
)
from repro.kernels.gemm import FP16GemmKernel, FP16GemvKernel, GemmShape
from repro.kernels.vq_fused import VQAttentionKernel, VQGemmKernel, VQGemvKernel

__all__ = [
    "AttentionShape",
    "ElementwiseAttentionKernel",
    "ElementwiseGemmKernel",
    "ElementwiseGemvKernel",
    "FP16GemmKernel",
    "FP16GemvKernel",
    "FlashAttentionKernel",
    "FlashDecodingKernel",
    "GemmShape",
    "KernelResult",
    "PagedFlashAttentionKernel",
    "PagedFlashDecodingKernel",
    "TileConfig",
    "VQAttentionKernel",
    "VQGemmKernel",
    "VQGemvKernel",
]
