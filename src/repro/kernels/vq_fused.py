"""Fused VQ dequantization + computation kernels.

One parametric model covers the paper's whole design space: the naive
GC/SC baselines (Sec. III) and every VQ-LLM optimization level (Tbl. IV)
are the same kernel with different :class:`~repro.core.heuristics.PlanKnobs`:

==== =============================================================
GC   codebooks in global memory, naive dataflow, shared fusion
SC   all entries in shared memory, naive dataflow, shared fusion
O1   hierarchical cache (shared level only)
O2   hierarchical cache (+ register level)
O3   + codebook-centric dataflow
O4   + codebook-centric hierarchical fusion (register level)
==== =============================================================

Counter derivations (all per launch):

- quantized payload, activations and outputs move once per tile pass,
  exactly like the FP16 counterparts;
- codebook staging traffic = (block loads under the dataflow) x (bytes
  staged per block), where the naive dataflow makes every block of the
  grid stage every codebook its tile touches (Fig. 5) and the
  codebook-centric dataflow loads each codebook once per owning block
  (Fig. 11);
- global-resident entries (GC, and the cold tail of the hierarchical
  cache) cost one 32 B sector per L1 miss, with the hit rate from
  :func:`repro.gpu.memory.l1_hit_rate`;
- bank-conflict replays are measured on the tensor's real index stream
  with :class:`repro.gpu.banks.BankConflictModel`;
- shared fusion pays the layout round trip of Fig. 6 (registers ->
  shared -> registers) on the mismatched fraction of dequantized data;
  register fusion replaces it with ``n_shuffles`` warp shuffles per
  sub-vector and releases the staging buffer's shared memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.fusion import decide_fusion
from repro.core.heuristics import PlanKnobs
from repro.core.template import BASE_RESOURCES
from repro.core.hotness import HotnessProfile, profile_hotness
from repro.gpu.banks import BankConflictModel
from repro.gpu.counters import PerfCounters
from repro.gpu.memory import l1_hit_rate
from repro.gpu.spec import GPUSpec
from repro.kernels.attention import BLOCK_TOKENS, AttentionShape
from repro.kernels.base import FP16, FP32, KernelBase
from repro.kernels.gemm import GEMM_TILE, GEMV_TILE, GemmShape, gemv_split_k
from repro.llm.attention import attention_decode
from repro.vq.config import VQConfig
from repro.vq.packing import unpack_cost_ops
from repro.vq.quantizer import QuantizedTensor

#: DRAM sector fetched per L1 miss, bytes.
SECTOR_BYTES = 32
#: Exposed stall cycles per dependent codebook lookup that hits /
#: misses the L1 (scattered loads cannot be prefetched or coalesced).
L1_HIT_STALL = 40
L1_MISS_STALL = 300
#: Cap on sampled lookup indices for conflict statistics.
STREAM_SAMPLE = 131072


@dataclass
class _CodebookEffects:
    """Placement-dependent counter deltas of the codebook cache."""

    smem_bytes: int = 0
    regs_per_thread: int = 0
    global_to_shared: float = 0.0
    dram_codebook: float = 0.0
    shared_to_reg: float = 0.0
    conflict_transactions: float = 0.0
    #: Intra-warp shuffles serving register-resident (warp-distributed)
    #: entries.
    shuffle_ops: float = 0.0
    #: Warp-serial stall cycles from dependent global codebook lookups.
    stall_cycles: float = 0.0
    #: Uncoalesced L1 transactions of global codebook lookups (each lane
    #: touches its own sector; they share the L1/shared-memory port).
    l1_transactions: float = 0.0


def _sample_stream(qt: QuantizedTensor,
                   profile: Optional[HotnessProfile]) -> np.ndarray:
    """Sampled lookup-index stream, frequency-reordered when profiled."""
    idx = qt.lookup_indices().ravel()
    if idx.size > STREAM_SAMPLE:
        stride = idx.size // STREAM_SAMPLE
        idx = idx[::stride][:STREAM_SAMPLE]
    if profile is None:
        return idx
    inverse = np.empty(profile.n_entries, dtype=np.int64)
    inverse[profile.order] = np.arange(profile.n_entries)
    return inverse[idx]


def _codebook_effects(
    spec: GPUSpec,
    knobs: PlanKnobs,
    config: VQConfig,
    profile: HotnessProfile,
    stream: np.ndarray,
    lookups: float,
    n_books_per_block: int,
    loading_blocks: float,
) -> _CodebookEffects:
    """Counter deltas for one quantized operand's codebook accesses."""
    entry_bytes = config.entry_bytes
    entry_words = max(1, math.ceil(entry_bytes / 4))
    full_book = config.codebook_bytes
    eff = _CodebookEffects()
    warp_accesses = lookups / spec.warp_size
    model = BankConflictModel(spec, entry_bytes)

    if knobs.placement == "global":
        working_set = n_books_per_block * full_book
        skew = min(0.9, profile.coverage(max(1, profile.n_entries // 8)))
        hit = l1_hit_rate(working_set, spec.l1_bytes, entry_bytes,
                          spec.cacheline_bytes, skew=skew)
        eff.dram_codebook = lookups * (1.0 - hit) * SECTOR_BYTES
        eff.stall_cycles = lookups * (hit * L1_HIT_STALL
                                      + (1.0 - hit) * L1_MISS_STALL)
        eff.l1_transactions = lookups
        return eff

    if knobs.placement == "shared_all":
        eff.smem_bytes = n_books_per_block * full_book
        eff.global_to_shared = loading_blocks * n_books_per_block * full_book
        eff.shared_to_reg = lookups * entry_bytes
        degree = model.average_degree(stream, 0, None)
        eff.conflict_transactions = warp_accesses * max(0.0,
                                                        degree - entry_words)
        return eff

    # Hierarchical codebook cache (O1/O2+).  Register-resident entries
    # are warp-distributed: the warp's lanes each hold a slice and serve
    # lookups via shuffle, so per-thread register cost is entry_bytes/32
    # per entry and each register hit costs entry_words shuffles.
    b = knobs.boundaries
    n_reg, n_shared = b.n_reg, b.n_shared
    cov_reg = profile.coverage(n_reg)
    cov_cached = profile.coverage(n_shared)
    cold = 1.0 - cov_cached
    eff.smem_bytes = (n_shared - n_reg) * entry_bytes * n_books_per_block
    eff.regs_per_thread = math.ceil(
        n_reg * entry_bytes / (4 * spec.warp_size))
    staged = n_shared * entry_bytes
    eff.global_to_shared = loading_blocks * n_books_per_block * staged
    # The cold tail that stays in global memory is itself a small
    # working set, so the hardware L1 backs those lookups.
    tail_entries = max(0, config.lookup_entries - n_shared)
    tail_bytes = tail_entries * entry_bytes * n_books_per_block
    tail_hit = l1_hit_rate(tail_bytes, spec.l1_bytes, entry_bytes,
                           spec.cacheline_bytes, skew=0.3) if cold else 1.0
    cold_lookups = lookups * cold
    eff.dram_codebook = cold_lookups * (1.0 - tail_hit) * SECTOR_BYTES
    eff.stall_cycles = cold_lookups * (tail_hit * L1_HIT_STALL
                                       + (1.0 - tail_hit) * L1_MISS_STALL)
    eff.l1_transactions = cold_lookups
    eff.shared_to_reg = lookups * (cov_cached - cov_reg) * entry_bytes
    eff.shuffle_ops = lookups * cov_reg * entry_words
    degree = model.average_degree(stream, n_reg, n_shared)
    eff.conflict_transactions = warp_accesses * max(0.0,
                                                    degree - entry_words)
    return eff


class _VQFusedBase(KernelBase):
    """Counter plumbing shared by the three fused-kernel families."""

    def __init__(self, knobs: PlanKnobs):
        self.knobs = knobs

    def _assemble(
        self,
        spec: GPUSpec,
        *,
        dram_payload: float,
        global_to_shared: float,
        shared_to_reg: float,
        shared_transactions: float,
        flops: float,
        dequant_ops: float,
        unpack_ops: float,
        reduction_bytes: float,
        kernel_launches: int,
        grid_blocks: int,
        threads: int,
        base_regs: int,
        base_smem: int,
        effects: list,
        fusion_roundtrip_bytes: float,
        shuffle_ops: float,
        notes: dict,
    ) -> PerfCounters:
        smem = base_smem + sum(e.smem_bytes for e in effects)
        regs = base_regs + max((e.regs_per_thread for e in effects),
                               default=0)
        regs = min(regs, spec.max_regs_per_thread)
        g2s_cb = sum(e.global_to_shared for e in effects)
        dram_cb = sum(e.dram_codebook for e in effects)
        s2r_cb = sum(e.shared_to_reg for e in effects)
        conflicts = sum(e.conflict_transactions for e in effects)
        shuffle_ops += sum(e.shuffle_ops for e in effects)
        stall_cycles = sum(e.stall_cycles for e in effects)
        l1_tx = sum(e.l1_transactions for e in effects)
        total_s2r = shared_to_reg + s2r_cb + fusion_roundtrip_bytes
        total_g2s = global_to_shared + g2s_cb
        return PerfCounters(
            dram_bytes=dram_payload + g2s_cb + dram_cb,
            codebook_dram_bytes=g2s_cb + dram_cb,
            global_to_shared_bytes=total_g2s,
            shared_to_reg_bytes=total_s2r,
            reg_to_shared_bytes=fusion_roundtrip_bytes,
            shared_transactions=(total_g2s + total_s2r
                                 + fusion_roundtrip_bytes) / 128
            + shared_transactions + l1_tx,
            bank_conflict_transactions=conflicts,
            shuffle_ops=shuffle_ops,
            stall_cycles=stall_cycles,
            flops=flops,
            dequant_ops=dequant_ops,
            unpack_ops=unpack_ops,
            reduction_bytes=reduction_bytes,
            kernel_launches=kernel_launches,
            smem_per_block=int(smem),
            regs_per_thread=int(regs),
            threads_per_block=threads,
            grid_blocks=int(grid_blocks),
            notes=notes,
        )


class VQGemmKernel(_VQFusedBase):
    """Fused VQ-dequant + GEMM (weight-quantized prefill projection).

    The weight is quantized as (N, K) with sub-vectors along K (the
    reduction axis), which is how AQLM/QuiP#/GPTVQ lay it out.
    """

    name = "vq-gemm"
    op_key = "gemm"

    def __init__(self, shape: GemmShape, qt: QuantizedTensor,
                 knobs: PlanKnobs,
                 profile: Optional[HotnessProfile] = None,
                 a: Optional[np.ndarray] = None):
        super().__init__(knobs)
        self.shape = shape
        self.qt = qt
        self.profile = profile if profile is not None else profile_hotness(qt)
        self.a = a

    def _tiles(self):
        t = GEMM_TILE if self.op_key == "gemm" else GEMV_TILE
        s = self.shape
        return t, math.ceil(s.m / t.block_m), math.ceil(s.n / t.block_n)

    def _books_per_block(self, block_n: int) -> int:
        """Distinct codebooks one block's weight slice touches (naive)."""
        cfg = self.qt.config
        if cfg.scope == "tensor":
            return 1 if cfg.lattice else cfg.residuals
        if cfg.scope == "tile":
            tile_r, tile_c = cfg.tile_shape
            return (math.ceil(block_n / tile_r)
                    * math.ceil(self.shape.k / tile_c) * cfg.residuals)
        raise ValueError(
            f"scope {cfg.scope!r} does not quantize weights")

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s, cfg = self.shape, self.qt.config
        tile, m_tiles, n_tiles = self._tiles()
        grid = m_tiles * n_tiles
        w_passes = m_tiles if self.op_key == "gemm" else 1

        codes_bytes = cfg.quantized_bytes(s.n * s.k) * w_passes
        a_bytes = float(s.m * s.k * FP16 * n_tiles)
        lookups = (s.n * s.k / cfg.vector_size) * cfg.residuals * w_passes
        dequant_ops = float(s.n * s.k) * cfg.residuals * w_passes
        unpack_ops = lookups * unpack_cost_ops(cfg.index_bits)
        flops = s.flops
        reduction = 0.0
        launches = 1
        loading_blocks = float(grid)
        n_books = self._books_per_block(tile.block_n)
        grid_blocks = grid
        notes = {"level": self.knobs.label, "books_per_block": n_books}

        split_k = 1
        if self.op_key == "gemv":
            split_k = gemv_split_k(s, spec, tile)
            grid_blocks = grid * split_k
            loading_blocks = float(grid_blocks)
            if split_k > 1:
                reduction += split_k * s.m * s.n * FP32 * 2
                launches += 1
            notes["split_k"] = split_k

        if self.knobs.dataflow:
            if cfg.scope == "tensor" and cfg.residuals > 1:
                # Residual-parallel dataflow: each block owns one
                # residual's codebook; the non-quantized operand and the
                # multiply work are duplicated per residual and partial
                # outputs reduce globally (the paper's "redundant
                # computation" cost for QuiP#/AQLM GeMM).
                apply_split = True
                if self.knobs.dataflow_adaptive:
                    # Adaptive guard: splitting residuals only pays when
                    # the kernel is memory-bound and codebook staging is
                    # a meaningful share of its traffic.
                    intensity = flops / max(1.0, codes_bytes + a_bytes)
                    balance = spec.peak_flops / spec.dram_bytes_per_s
                    naive_cb = (loading_blocks * n_books
                                * cfg.codebook_bytes)
                    apply_split = (intensity < balance
                                   and naive_cb > 0.1 * (codes_bytes
                                                         + a_bytes))
                if apply_split:
                    grid_blocks *= cfg.residuals
                    loading_blocks = float(grid_blocks)
                    n_books = 1
                    flops *= cfg.residuals
                    a_bytes *= cfg.residuals
                    reduction += cfg.residuals * s.m * s.n * FP32 * 2
                    launches += 1
                    notes["dataflow"] = "residual_split"
                else:
                    notes["dataflow"] = "skipped(adaptive)"
            elif cfg.scope == "tile":
                # Align block columns to codebook tiles, removing the
                # tile_rows / block_n duplication of Fig. 5.
                tile_r, _ = cfg.tile_shape
                dup = max(1, tile_r // tile.block_n)
                loading_blocks /= dup
                notes["dataflow"] = f"tile_aligned(dup={dup})"

        stream = _sample_stream(
            self.qt,
            self.profile if self.knobs.placement == "hierarchical" else None)
        effects = [_codebook_effects(
            spec, self.knobs, cfg, self.profile, stream, lookups,
            n_books, loading_blocks)]

        mismatch = 1.0
        fusion = decide_fusion(cfg.vector_size, self.op_key, mismatch,
                               self.knobs.shuffle_threshold,
                               enable_register=self.knobs.register_fusion)
        base = BASE_RESOURCES[self.op_key]
        staging_bytes = min(2 * tile.block_n * tile.block_k * FP16,
                            base["smem"] // 2)
        base_smem = base["smem"]
        roundtrip = 0.0
        shuffles = 0.0
        if fusion.uses_register_fusion:
            base_smem -= staging_bytes
            shuffles = ((s.n * s.k / cfg.vector_size) * w_passes
                        * fusion.n_shuffles * mismatch)
        else:
            roundtrip = float(s.n * s.k) * w_passes * FP16 * mismatch
        notes["fusion"] = fusion.level
        notes["n_shuffles"] = fusion.n_shuffles

        smem_compute_reads = (s.m * s.n * s.k
                              * (1 / tile.block_m + 1 / tile.block_n) * FP16)
        return self._assemble(
            spec,
            dram_payload=codes_bytes + a_bytes + s.output_bytes + reduction * 0,
            global_to_shared=a_bytes + codes_bytes,
            shared_to_reg=smem_compute_reads,
            shared_transactions=smem_compute_reads / 128,
            flops=flops,
            dequant_ops=dequant_ops,
            unpack_ops=unpack_ops,
            reduction_bytes=reduction,
            kernel_launches=launches,
            grid_blocks=grid_blocks,
            threads=base["threads"],
            base_regs=base["regs"],
            base_smem=base_smem,
            effects=effects,
            fusion_roundtrip_bytes=roundtrip,
            shuffle_ops=shuffles,
            notes=notes,
        )

    def execute(self):
        if self.a is None:
            return None
        return self.a @ self.qt.dequantize().T


class VQGemvKernel(VQGemmKernel):
    """Fused VQ-dequant + GEMV (weight-quantized decode projection)."""

    name = "vq-gemv"
    op_key = "gemv"

    def __init__(self, shape: GemmShape, qt: QuantizedTensor,
                 knobs: PlanKnobs,
                 profile: Optional[HotnessProfile] = None,
                 a: Optional[np.ndarray] = None):
        if shape.m > 64:
            raise ValueError("GEMV kernel expects a small batch dimension")
        super().__init__(shape, qt, knobs, profile, a)


class VQAttentionKernel(_VQFusedBase):
    """Fused VQ-dequant + decode attention (CQ-quantized KV cache).

    Follows the FlashDecoding dataflow when naive, and Fig. 11's
    per-codebook partitioning when the codebook-centric dataflow is on.
    The K cache's dequantization layout matches its row-wise reduction
    (no round trip); the V cache's column-wise accumulation mismatches
    (Fig. 6), so fusion costs apply to the V half.
    """

    name = "vq-attention"
    op_key = "attention"

    def __init__(self, shape: AttentionShape,
                 qt_k: QuantizedTensor, qt_v: QuantizedTensor,
                 knobs: PlanKnobs,
                 profile_k: Optional[HotnessProfile] = None,
                 profile_v: Optional[HotnessProfile] = None,
                 q: Optional[np.ndarray] = None,
                 k_cache: Optional[np.ndarray] = None,
                 v_cache: Optional[np.ndarray] = None):
        super().__init__(knobs)
        self.shape = shape
        self.qt_k = qt_k
        self.qt_v = qt_v
        self.profile_k = (profile_k if profile_k is not None
                          else profile_hotness(qt_k))
        self.profile_v = (profile_v if profile_v is not None
                          else profile_hotness(qt_v))
        self.q, self.k_cache, self.v_cache = q, k_cache, v_cache

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s, cfg = self.shape, self.qt_k.config
        bh = s.batch * s.heads
        books_per_head = s.head_dim // cfg.vector_size
        n_kv_elements = 2.0 * s.batch * s.heads * s.seq_len * s.head_dim

        codes_bytes = 2 * cfg.quantized_bytes(
            s.batch * s.heads * s.seq_len * s.head_dim)
        lookups_each = (s.batch * s.heads * s.seq_len * s.head_dim
                        / cfg.vector_size) * cfg.residuals
        dequant_ops = n_kv_elements * cfg.residuals
        unpack_ops = 2 * lookups_each * unpack_cost_ops(cfg.index_bits)
        flops = s.flops
        q_bytes = float(bh * s.head_dim * FP16)
        reduction = 0.0
        launches = 1
        notes = {"level": self.knobs.label,
                 "books_per_block": books_per_head}

        if self.knobs.dataflow:
            # Fig. 11: one block per (batch, head, channel group); the
            # K-part's partial inner products reduce globally, then a
            # second phase applies softmax weights to the V partials.
            grid_blocks = bh * books_per_head
            loading_blocks = float(grid_blocks)  # one book each, K then V
            n_books = 1
            score_bytes = bh * s.seq_len * FP32
            reduction = 3.0 * score_bytes  # write partials, reduce, re-read
            launches = 2
            base_smem = 4 * BLOCK_TOKENS * cfg.vector_size * FP16 + 4096
            notes["dataflow"] = "per_codebook"
        else:
            max_chunks = max(1, s.seq_len // BLOCK_TOKENS)
            chunks = 1 if bh >= 2 * spec.sm_count else min(
                max_chunks, math.ceil(2 * spec.sm_count / bh))
            grid_blocks = bh * chunks
            if chunks > 1:
                reduction = grid_blocks * (s.head_dim + 2) * FP32 * 2
                launches = 2
            loading_blocks = float(grid_blocks)
            n_books = books_per_head
            base_smem = 2 * BLOCK_TOKENS * s.head_dim * FP16
            notes["token_chunks"] = chunks

        reordered = self.knobs.placement == "hierarchical"
        stream_k = _sample_stream(self.qt_k,
                                  self.profile_k if reordered else None)
        stream_v = _sample_stream(self.qt_v,
                                  self.profile_v if reordered else None)
        effects = [
            _codebook_effects(spec, self.knobs, cfg, self.profile_k,
                              stream_k, lookups_each, n_books,
                              loading_blocks),
            _codebook_effects(spec, self.knobs, cfg, self.profile_v,
                              stream_v, lookups_each, n_books,
                              loading_blocks),
        ]
        # The QK and PV phases run sequentially within a block, so the K
        # and V codebooks reuse one staging buffer: shared memory is the
        # max of the two demands, not the sum (traffic still counts both).
        smem_k, smem_v = effects[0].smem_bytes, effects[1].smem_bytes
        effects[0].smem_bytes = max(smem_k, smem_v)
        effects[1].smem_bytes = 0
        regs_k, regs_v = (effects[0].regs_per_thread,
                          effects[1].regs_per_thread)
        effects[0].regs_per_thread = max(regs_k, regs_v)
        effects[1].regs_per_thread = 0

        # K half: dequant layout matches the reduction (Fig. 6) — no
        # fusion cost.  V half: full mismatch.
        fusion = decide_fusion(cfg.vector_size, "attention_v", 1.0,
                               self.knobs.shuffle_threshold,
                               enable_register=self.knobs.register_fusion)
        v_elements = n_kv_elements / 2.0
        roundtrip = 0.0
        shuffles = 0.0
        if fusion.uses_register_fusion:
            staging = BLOCK_TOKENS * s.head_dim * FP16
            base_smem = max(base_smem - staging, 2048)
            shuffles = (v_elements / cfg.vector_size) * fusion.n_shuffles
        else:
            roundtrip = v_elements * FP16
        notes["fusion"] = fusion.level
        notes["n_shuffles"] = fusion.n_shuffles

        return self._assemble(
            spec,
            dram_payload=codes_bytes + q_bytes + s.output_bytes,
            global_to_shared=codes_bytes,
            shared_to_reg=codes_bytes,
            shared_transactions=codes_bytes / 128,
            flops=flops,
            dequant_ops=dequant_ops,
            unpack_ops=unpack_ops,
            reduction_bytes=reduction,
            kernel_launches=launches,
            grid_blocks=grid_blocks,
            threads=BASE_RESOURCES["attention"]["threads"],
            base_regs=BASE_RESOURCES["attention"]["regs"],
            base_smem=int(base_smem),
            effects=effects,
            fusion_roundtrip_bytes=roundtrip,
            shuffle_ops=shuffles,
            notes=notes,
        )

    def execute(self):
        if self.q is None or self.k_cache is None or self.v_cache is None:
            return None
        return attention_decode(self.q, self.k_cache, self.v_cache)
