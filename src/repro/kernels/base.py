"""Shared kernel abstractions."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.costmodel import CostModel, LatencyBreakdown
from repro.gpu.counters import PerfCounters
from repro.gpu.spec import GPUSpec

#: FP16 element size, bytes.
FP16 = 2
#: FP32 partial/accumulator size, bytes.
FP32 = 4


@dataclass(frozen=True)
class TileConfig:
    """Thread-block tiling and per-block resources of one kernel."""

    block_m: int
    block_n: int
    block_k: int
    threads: int
    regs_per_thread: int
    smem_bytes: int

    def grid(self, m: int, n: int) -> int:
        """Blocks needed to tile an (m, n) output."""
        return math.ceil(m / self.block_m) * math.ceil(n / self.block_n)


@dataclass
class KernelResult:
    """Everything one modelled kernel run produces."""

    name: str
    counters: PerfCounters
    latency: LatencyBreakdown
    output: Optional[np.ndarray] = None

    @property
    def latency_us(self) -> float:
        return self.latency.total_us


class KernelBase:
    """Mixin wiring counters through the cost model."""

    name = "kernel"

    def counters(self, spec: GPUSpec) -> PerfCounters:
        raise NotImplementedError

    def execute(self):
        """Numerically compute the kernel's output (None if not bound)."""
        return None

    def result(self, spec: GPUSpec, run_numerics: bool = False) -> KernelResult:
        """Counters + modelled latency (+ output when requested)."""
        counters = self.counters(spec)
        latency = CostModel(spec).latency(counters)
        output = self.execute() if run_numerics else None
        return KernelResult(self.name, counters, latency, output)

    def latency_us(self, spec: GPUSpec) -> float:
        """Modelled latency in microseconds."""
        return self.result(spec).latency_us
