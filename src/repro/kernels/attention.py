"""FP16 attention kernels: FlashAttention / FlashDecoding and paged variants.

Decode attention is a memory-bound scan of the KV cache.  FlashDecoding
additionally splits the token axis across thread blocks so small batches
still fill the GPU, at the cost of a global partial-softmax reduction —
which is why it beats FlashAttention at batch 1 and why the paper uses it
as the strongest FP16 baseline (Fig. 18).

Paged variants add page-table indirection: one table read per page and a
small coalescing penalty on the KV stream, modelling vLLM-style paged KV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.counters import PerfCounters
from repro.gpu.spec import GPUSpec
from repro.kernels.base import FP16, FP32, KernelBase
from repro.llm.attention import attention_decode, attention_prefill

#: Tokens per KV tile staged in shared memory.
BLOCK_TOKENS = 64
#: Threads per attention block.
ATTN_THREADS = 256
#: Registers per thread (accumulators + softmax state).
ATTN_REGS = 64
#: Paged-KV page size in tokens and per-page table entry bytes.
PAGE_TOKENS = 16
PAGE_ENTRY_BYTES = 8
#: Coalescing penalty of scattered pages on the KV stream.
PAGE_TRAFFIC_FACTOR = 1.05


@dataclass(frozen=True)
class AttentionShape:
    """Decode attention: (B, H, C) queries against a (B, H, T, C) cache."""

    batch: int
    heads: int
    seq_len: int
    head_dim: int

    @property
    def kv_bytes(self) -> float:
        """FP16 bytes of the K and V caches together."""
        return 2.0 * self.batch * self.heads * self.seq_len \
            * self.head_dim * FP16

    @property
    def flops(self) -> float:
        """QK dot products + PV accumulation."""
        return 4.0 * self.batch * self.heads * self.seq_len * self.head_dim

    @property
    def output_bytes(self) -> float:
        return float(self.batch * self.heads * self.head_dim * FP16)


class _DecodeAttentionBase(KernelBase):
    """Shared counter arithmetic of the FP16 decode-attention family."""

    #: Whether the token axis is split across blocks (FlashDecoding).
    split_tokens = True
    #: Whether the KV cache is paged.
    paged = False

    def __init__(self, shape: AttentionShape,
                 q: Optional[np.ndarray] = None,
                 k: Optional[np.ndarray] = None,
                 v: Optional[np.ndarray] = None):
        self.shape = shape
        self.q, self.k, self.v = q, k, v

    def _chunks(self, spec: GPUSpec) -> int:
        s = self.shape
        if not self.split_tokens:
            return 1
        max_chunks = max(1, s.seq_len // BLOCK_TOKENS)
        bh = s.batch * s.heads
        target = 2 * spec.sm_count
        if bh >= target:
            return 1
        return min(max_chunks, math.ceil(target / bh))

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s = self.shape
        chunks = self._chunks(spec)
        grid = s.batch * s.heads * chunks
        kv_bytes = s.kv_bytes
        table_bytes = 0.0
        if self.paged:
            kv_bytes *= PAGE_TRAFFIC_FACTOR
            table_bytes = (s.batch * s.heads * chunks
                           * math.ceil(s.seq_len / PAGE_TOKENS)
                           * PAGE_ENTRY_BYTES / max(chunks, 1))
        q_bytes = grid * s.head_dim * FP16
        reduction = (grid * (s.head_dim + 2) * FP32 * 2) if chunks > 1 else 0.0
        smem = 2 * BLOCK_TOKENS * s.head_dim * FP16  # K tile + V tile
        c = PerfCounters(
            dram_bytes=kv_bytes + q_bytes + table_bytes + s.output_bytes,
            global_to_shared_bytes=kv_bytes,
            shared_to_reg_bytes=kv_bytes,
            shared_transactions=2 * kv_bytes / 128,
            reduction_bytes=reduction,
            kernel_launches=1 + (1 if chunks > 1 else 0),
            flops=s.flops,
            smem_per_block=smem,
            regs_per_thread=ATTN_REGS,
            threads_per_block=ATTN_THREADS,
            grid_blocks=grid,
            notes={"token_chunks": chunks, "paged": self.paged},
        )
        return c

    def execute(self):
        if self.q is None or self.k is None or self.v is None:
            return None
        return attention_decode(self.q, self.k, self.v)


class FlashDecodingKernel(_DecodeAttentionBase):
    """FlashDecoding: token-split decode attention (the paper's baseline)."""

    name = "flash-decoding"
    split_tokens = True
    paged = False


class FlashAttentionKernel(_DecodeAttentionBase):
    """FlashAttention run in decode mode: one block per (batch, head)."""

    name = "flash-attention"
    split_tokens = False
    paged = False


class PagedFlashDecodingKernel(_DecodeAttentionBase):
    """FlashDecoding over a vLLM-style paged KV cache."""

    name = "paged-flash-decoding"
    split_tokens = True
    paged = True


class PagedFlashAttentionKernel(_DecodeAttentionBase):
    """FlashAttention (no token split) over a paged KV cache."""

    name = "paged-flash-attention"
    split_tokens = False
    paged = True


class FlashPrefillKernel(KernelBase):
    """FP16 causal prefill attention (used by the E2E prefill ledger)."""

    name = "flash-prefill"

    def __init__(self, shape: AttentionShape,
                 q: Optional[np.ndarray] = None,
                 k: Optional[np.ndarray] = None,
                 v: Optional[np.ndarray] = None):
        self.shape = shape
        self.q, self.k, self.v = q, k, v

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s = self.shape
        t = s.seq_len
        q_tiles = math.ceil(t / 64)
        grid = s.batch * s.heads * q_tiles
        qkv_bytes = 3 * s.batch * s.heads * t * s.head_dim * FP16
        kv_reread = s.batch * s.heads * t * s.head_dim * FP16 * (q_tiles - 1)
        flops = 2.0 * s.batch * s.heads * t * t * s.head_dim * 2 / 2
        smem = (64 + 2 * BLOCK_TOKENS) * s.head_dim * FP16
        return PerfCounters(
            dram_bytes=qkv_bytes + kv_reread
            + s.batch * s.heads * t * s.head_dim * FP16,
            global_to_shared_bytes=qkv_bytes + kv_reread,
            shared_to_reg_bytes=qkv_bytes + kv_reread,
            shared_transactions=2 * (qkv_bytes + kv_reread) / 128,
            flops=flops,
            smem_per_block=smem,
            regs_per_thread=128,
            threads_per_block=ATTN_THREADS,
            grid_blocks=grid,
        )

    def execute(self):
        if self.q is None or self.k is None or self.v is None:
            return None
        return attention_prefill(self.q, self.k, self.v, causal=True)
