"""Element-wise quantization kernels (AWQ / QoQ style).

These are the paper's strongest competitors (Fig. 16/17): weights or KV
compressed to INT4/INT8 with per-group scales, dequantized inline with a
single multiply-add per element — no codebooks, no layout mismatch, no
bank-conflict exposure.  Traffic is the quantized payload plus the scale
metadata; compute adds one cheap dequant op per element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu.counters import PerfCounters
from repro.gpu.spec import GPUSpec
from repro.kernels.attention import (
    ATTN_REGS,
    ATTN_THREADS,
    BLOCK_TOKENS,
    AttentionShape,
)
from repro.kernels.base import FP16, FP32, KernelBase
from repro.kernels.gemm import GEMM_TILE, GEMV_TILE, GemmShape, gemv_split_k
from repro.vq.elementwise import ElementwiseQuantized


def _quant_payload_bytes(n_elements: float, bits: int,
                         group_size: int) -> float:
    """Codes + FP16 scale and zero per group."""
    return n_elements * bits / 8.0 + (n_elements / group_size) * 2 * FP16


@dataclass
class ElementwiseGemmKernel(KernelBase):
    """AWQ-style W4A16 GEMM (prefill projections)."""

    shape: GemmShape
    bits: int = 4
    group_size: int = 128
    a: Optional[np.ndarray] = None
    quantized: Optional[ElementwiseQuantized] = None

    name = "awq-gemm"

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s, t = self.shape, GEMM_TILE
        m_tiles = math.ceil(s.m / t.block_m)
        n_tiles = math.ceil(s.n / t.block_n)
        a_bytes = s.m * s.k * FP16 * n_tiles
        w_bytes = _quant_payload_bytes(s.k * s.n, self.bits,
                                       self.group_size) * m_tiles
        smem_reads = s.m * s.n * s.k * (1 / t.block_m + 1 / t.block_n) * FP16
        return PerfCounters(
            dram_bytes=a_bytes + w_bytes + s.output_bytes,
            global_to_shared_bytes=a_bytes + w_bytes,
            shared_to_reg_bytes=smem_reads,
            shared_transactions=(a_bytes + w_bytes + smem_reads) / 128,
            flops=s.flops,
            dequant_ops=float(s.k * s.n) * m_tiles,
            unpack_ops=float(s.k * s.n) * m_tiles,
            smem_per_block=t.smem_bytes,
            regs_per_thread=t.regs_per_thread,
            threads_per_block=t.threads,
            grid_blocks=m_tiles * n_tiles,
        )

    def execute(self):
        if self.a is None or self.quantized is None:
            return None
        return self.a @ self.quantized.dequantize()


@dataclass
class ElementwiseGemvKernel(KernelBase):
    """AWQ-style W4A16 GEMV (decode projections)."""

    shape: GemmShape
    bits: int = 4
    group_size: int = 128
    a: Optional[np.ndarray] = None
    quantized: Optional[ElementwiseQuantized] = None

    name = "awq-gemv"

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s, t = self.shape, GEMV_TILE
        split_k = gemv_split_k(s, spec, t)
        n_blocks = math.ceil(s.n / t.block_n)
        w_bytes = _quant_payload_bytes(s.k * s.n, self.bits, self.group_size)
        a_bytes = s.m * s.k * FP16 * n_blocks
        reduction = (split_k * s.m * s.n * FP32 * 2) if split_k > 1 else 0.0
        return PerfCounters(
            dram_bytes=w_bytes + a_bytes + s.output_bytes,
            global_to_shared_bytes=a_bytes,
            shared_to_reg_bytes=a_bytes,
            shared_transactions=2 * a_bytes / 128,
            reduction_bytes=reduction,
            kernel_launches=1 + (1 if split_k > 1 else 0),
            flops=s.flops,
            dequant_ops=float(s.k * s.n),
            unpack_ops=float(s.k * s.n),
            smem_per_block=t.smem_bytes,
            regs_per_thread=t.regs_per_thread,
            threads_per_block=t.threads,
            grid_blocks=n_blocks * split_k,
        )

    def execute(self):
        if self.a is None or self.quantized is None:
            return None
        return self.a @ self.quantized.dequantize()


@dataclass
class ElementwiseAttentionKernel(KernelBase):
    """QoQ-style KV4 decode attention (token-split like FlashDecoding)."""

    shape: AttentionShape
    bits: int = 4
    group_size: int = 64
    q: Optional[np.ndarray] = None
    k_quant: Optional[ElementwiseQuantized] = None
    v_quant: Optional[ElementwiseQuantized] = None

    name = "qoq-attention"

    def counters(self, spec: GPUSpec) -> PerfCounters:
        s = self.shape
        bh = s.batch * s.heads
        max_chunks = max(1, s.seq_len // BLOCK_TOKENS)
        chunks = 1 if bh >= 2 * spec.sm_count else min(
            max_chunks, math.ceil(2 * spec.sm_count / bh))
        grid = bh * chunks
        n_kv = 2.0 * s.batch * s.heads * s.seq_len * s.head_dim
        kv_bytes = _quant_payload_bytes(n_kv, self.bits, self.group_size)
        q_bytes = grid * s.head_dim * FP16
        reduction = (grid * (s.head_dim + 2) * FP32 * 2) if chunks > 1 else 0.0
        smem = 2 * BLOCK_TOKENS * s.head_dim * FP16
        return PerfCounters(
            dram_bytes=kv_bytes + q_bytes + s.output_bytes,
            global_to_shared_bytes=kv_bytes,
            shared_to_reg_bytes=kv_bytes,
            shared_transactions=2 * kv_bytes / 128,
            reduction_bytes=reduction,
            kernel_launches=1 + (1 if chunks > 1 else 0),
            flops=s.flops,
            dequant_ops=n_kv,
            unpack_ops=n_kv,
            smem_per_block=smem,
            regs_per_thread=ATTN_REGS,
            threads_per_block=ATTN_THREADS,
            grid_blocks=grid,
            notes={"token_chunks": chunks},
        )

    def execute(self):
        if self.q is None or self.k_quant is None or self.v_quant is None:
            return None
        from repro.llm.attention import attention_decode
        b, h, t, c = (self.shape.batch, self.shape.heads,
                      self.shape.seq_len, self.shape.head_dim)
        k = self.k_quant.dequantize().reshape(b, h, t, c)
        v = self.v_quant.dequantize().reshape(b, h, t, c)
        return attention_decode(self.q, k, v)
