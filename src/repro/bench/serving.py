"""Serving-level experiment: FP16 vs quantized KV caches at equal HBM.

This wires the kernel-level reproduction into :mod:`repro.serve`: the
same serving modes as the E2E ledger (:data:`repro.bench.e2e.MODES`)
are simulated under continuous batching with a *fixed* HBM allowance
for the KV cache.  Compression changes two things at once:

- decode kernels get cheaper (fused VQ attention reads fewer bytes);
- bytes-per-token shrinks, so admission control packs 4-8x more
  concurrent sequences into the same memory.

The second effect dominates at high offered load — FP16 saturates its
KV budget and queues, while the VQ modes keep admitting — which is the
system-level argument for VQ caches that per-kernel latency sweeps
cannot show.

Two mode families are supported:

- the full-stack E2E modes (``fp16`` / ``qserve`` / ``vq4`` / ``vq2``),
  which also quantize weights.  Note that VQ *weights* slow down the
  compute-bound prefill GEMMs (dequantization adds scalar work that the
  tensor cores cannot hide there), so full-stack throughput mixes two
  opposing effects;
- KV-only modes (``kv-cq-4`` / ``kv-cq-2``: FP16 weights, CQ-compressed
  cache), which isolate exactly the cache-compression effect the
  serving comparison is about and are the default.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.e2e import _VQ_KV_ALGO, _VQ_WEIGHT_ALGO, MODES
from repro.bench.harness import ExperimentResult
from repro.bench.workloads import attention_sample, weight_sample
from repro.core.engine import ComputeEngine
from repro.gpu.spec import GPUSpec, RTX4090
from repro.llm.config import LlamaConfig, llama_7b
from repro.serve.costs import StepCostModel
from repro.serve.requests import LengthSampler, poisson_trace
from repro.serve.scheduler import ContinuousBatchScheduler, KVBudget
from repro.serve.simulator import ServingReport, ServingSimulator
from repro.vq.algorithms import make_config


#: KV-only serving modes: FP16 weights, CQ-compressed KV cache.
KV_ONLY_MODES = {"kv-cq-4": "cq-4", "kv-cq-2": "cq-2"}

#: All serving modes this experiment understands.
SERVING_MODES = tuple(MODES) + tuple(KV_ONLY_MODES)


def make_kv_budget(config: LlamaConfig, mode: str,
                   capacity_bytes: float) -> KVBudget:
    """KV budget for one serving mode at a fixed HBM allowance."""
    if mode == "fp16":
        return KVBudget.for_model(config, capacity_bytes)
    if mode == "qserve":
        return KVBudget.for_model(config, capacity_bytes, bits=4)
    if mode in KV_ONLY_MODES:
        return KVBudget.for_model(config, capacity_bytes,
                                  vq=make_config(KV_ONLY_MODES[mode]))
    return KVBudget.for_model(config, capacity_bytes,
                              vq=make_config(_VQ_KV_ALGO[mode]))


def make_cost_model(engine: ComputeEngine, config: LlamaConfig, mode: str,
                    seq_bucket: int = 512) -> StepCostModel:
    """Step cost model for one serving mode, using the sample tensors."""
    if mode not in SERVING_MODES:
        raise ValueError(f"unknown mode {mode!r}; "
                         f"expected one of {SERVING_MODES}")
    if mode == "fp16":
        return StepCostModel(engine, config, seq_bucket=seq_bucket)
    if mode == "qserve":
        return StepCostModel(engine, config, weight_bits=4, kv_bits=4,
                             seq_bucket=seq_bucket)
    if mode in KV_ONLY_MODES:
        return StepCostModel(
            engine, config,
            kv_qt=attention_sample(KV_ONLY_MODES[mode]),
            seq_bucket=seq_bucket,
        )
    return StepCostModel(
        engine, config,
        weight_qt=weight_sample(_VQ_WEIGHT_ALGO[mode]),
        kv_qt=attention_sample(_VQ_KV_ALGO[mode]),
        seq_bucket=seq_bucket,
    )


def simulate_mode(
    mode: str,
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    kv_hbm_gb: float = 4.0,
    rate_rps: float = 16.0,
    n_requests: int = 64,
    prompt_mean: int = 384,
    output_mean: int = 96,
    token_budget: int = 2048,
    max_seqs: int = 64,
    seed: int = 0,
    engine: Optional[ComputeEngine] = None,
) -> ServingReport:
    """Simulate one serving mode on a Poisson trace."""
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    trace = poisson_trace(
        rate_rps, n_requests,
        prompt=LengthSampler(mean=prompt_mean, cv=0.5, hi=4 * prompt_mean),
        output=LengthSampler(mean=output_mean, cv=0.5, hi=4 * output_mean),
        seed=seed,
    )
    budget = make_kv_budget(config, mode, kv_hbm_gb * 1e9)
    scheduler = ContinuousBatchScheduler(budget, token_budget=token_budget,
                                         max_seqs=max_seqs)
    cost_model = make_cost_model(engine, config, mode)
    return ServingSimulator(scheduler, cost_model, name=mode).run(trace)


def serving_comparison(
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    modes: Sequence[str] = ("fp16", "kv-cq-4", "kv-cq-2"),
    engine: Optional[ComputeEngine] = None,
    **kwargs,
) -> ExperimentResult:
    """Compare serving modes at an equal KV-cache HBM budget.

    Extra keyword arguments go to :func:`simulate_mode`; every mode
    shares one engine (and thus one latency memo) and the same trace.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    result = ExperimentResult(
        experiment_id="serving",
        title=f"Continuous-batching serving on {spec.name} "
              f"({config.name}, equal KV HBM budget)",
        columns=("mode", "req/s", "tok/s", "ttft_p50_ms", "tpot_p50_ms",
                 "latency_p99_s", "peak_seqs"),
    )
    reports = {}
    for mode in modes:
        rep = simulate_mode(mode, spec=spec, config=config, engine=engine,
                            **kwargs)
        reports[mode] = rep
        result.add_row(mode, rep.throughput_rps, rep.output_tokens_per_s,
                       rep.ttft_s(50) * 1e3, rep.tpot_s(50) * 1e3,
                       rep.latency_s(99), rep.peak_seqs)
    if "fp16" in reports:
        base = reports["fp16"].throughput_rps
        for mode, rep in reports.items():
            if mode != "fp16":
                result.notes.append(
                    f"{mode} sustains {rep.throughput_rps / base:.2f}x "
                    f"the FP16 request throughput at equal KV memory")
    return result
