"""Serving-level experiment: FP16 vs quantized KV caches at equal HBM.

This wires the kernel-level reproduction into :mod:`repro.serve`: the
same serving modes as the E2E ledger (:data:`repro.bench.e2e.MODES`)
are simulated under continuous batching with a *fixed* HBM allowance
for the KV cache.  Compression changes two things at once:

- decode kernels get cheaper (fused VQ attention reads fewer bytes);
- bytes-per-token shrinks, so admission control packs 4-8x more
  concurrent sequences into the same memory.

The second effect dominates at high offered load — FP16 saturates its
KV budget and queues, while the VQ modes keep admitting — which is the
system-level argument for VQ caches that per-kernel latency sweeps
cannot show.

Two mode families are supported:

- the full-stack E2E modes (``fp16`` / ``qserve`` / ``vq4`` / ``vq2``),
  which also quantize weights.  Note that VQ *weights* slow down the
  compute-bound prefill GEMMs (dequantization adds scalar work that the
  tensor cores cannot hide there), so full-stack throughput mixes two
  opposing effects;
- KV-only modes (``kv-cq-4`` / ``kv-cq-2``: FP16 weights, CQ-compressed
  cache), which isolate exactly the cache-compression effect the
  serving comparison is about and are the default.
"""

from __future__ import annotations

import argparse
import warnings
from typing import List, Optional, Sequence

from repro.bench.e2e import _VQ_KV_ALGO, _VQ_WEIGHT_ALGO, MODES
from repro.bench.harness import ExperimentResult
from repro.bench.workloads import attention_sample, weight_sample
from repro.core.engine import ComputeEngine
from repro.gpu.spec import GPUSpec, RTX4090, get_spec
from repro.llm.config import LlamaConfig, llama_7b
from repro.obs.timeline import TimelineConfig
from repro.serve.api import SchedulerConfig, SimConfig
from repro.serve.costs import StepCostModel
from repro.serve.requests import (
    LengthSampler,
    Request,
    bursty_trace,
    multi_turn_chat_trace,
    poisson_trace,
    shared_prefix_trace,
    trace_stats,
)
from repro.serve.scheduler import ADMISSION_POLICIES, KVBudget
from repro.serve.simulator import ServingReport, ServingSimulator
from repro.vq.algorithms import make_config


#: KV-only serving modes: FP16 weights, CQ-compressed KV cache.
KV_ONLY_MODES = {"kv-cq-4": "cq-4", "kv-cq-2": "cq-2"}

#: All serving modes this experiment understands.
SERVING_MODES = tuple(MODES) + tuple(KV_ONLY_MODES)

#: Arrival processes :func:`make_trace` understands.  The session-aware
#: kinds (``shared_prefix``, ``chat``) synthesize token ids, so they
#: are the ones prefix caching can act on.
TRACE_KINDS = ("poisson", "bursty", "shared_prefix", "chat")


def mode_kv_scheme(mode: str) -> dict:
    """The ``vq=`` / ``bits=`` KV-cache scheme of one serving mode."""
    if mode == "fp16":
        return {}
    if mode == "qserve":
        return {"bits": 4}
    if mode in KV_ONLY_MODES:
        return {"vq": make_config(KV_ONLY_MODES[mode])}
    if mode in _VQ_KV_ALGO:
        return {"vq": make_config(_VQ_KV_ALGO[mode])}
    raise ValueError(f"unknown mode {mode!r}; "
                     f"expected one of {SERVING_MODES}")


def make_kv_budget(config: LlamaConfig, mode: str,
                   capacity_bytes: Optional[float] = None,
                   spec: Optional[GPUSpec] = None) -> KVBudget:
    """KV budget for one serving mode.

    With ``capacity_bytes`` the allowance is explicit (the PR-1
    behaviour); with ``spec`` instead, the budget derives from the
    chip's ``dram_bytes`` minus FP16 weights and a reserve margin
    (:meth:`~repro.serve.scheduler.KVBudget.for_gpu`), so callers no
    longer thread ad-hoc byte counts.
    """
    scheme = mode_kv_scheme(mode)
    if capacity_bytes is not None:
        return KVBudget.for_model(config, capacity_bytes, **scheme)
    if spec is None:
        raise ValueError("pass capacity_bytes or a GPUSpec")
    return KVBudget.for_gpu(config, spec, **scheme)


def make_trace(
    kind: str,
    rate_rps: float,
    n_requests: int,
    prompt_mean: int,
    output_mean: int,
    seed: int = 0,
) -> List[Request]:
    """Build an arrival trace of one of :data:`TRACE_KINDS`.

    The classic kinds spend ``prompt_mean`` on one lognormal prompt.
    ``shared_prefix`` splits it: a fixed system prompt of
    ``2 * prompt_mean`` tokens shared by every request plus a unique
    ``prompt_mean``-mean user suffix.  ``chat`` builds 4-turn sessions
    (``prompt_mean``-mean user messages on a ``prompt_mean``-token
    system prompt), so turn *k* re-sends the concatenated history;
    enough sessions are generated to cover ``n_requests`` and the
    latest arrivals are dropped to hit the count exactly (a dropped
    global suffix only ever removes a *suffix* of each session's
    turns, so history chains stay intact).
    """
    samplers = dict(
        prompt=LengthSampler(mean=prompt_mean, cv=0.5, hi=4 * prompt_mean),
        output=LengthSampler(mean=output_mean, cv=0.5, hi=4 * output_mean),
    )
    if kind == "poisson":
        return poisson_trace(rate_rps, n_requests, seed=seed, **samplers)
    if kind == "bursty":
        return bursty_trace(rate_rps, n_requests, seed=seed, **samplers)
    if kind == "shared_prefix":
        return shared_prefix_trace(
            rate_rps, n_requests, system_tokens=2 * prompt_mean,
            seed=seed, **samplers)
    if kind == "chat":
        turns = 4
        trace = multi_turn_chat_trace(
            n_sessions=-(-n_requests // turns), turns=turns,
            rate_rps=rate_rps / turns, system_tokens=prompt_mean,
            user=LengthSampler(mean=prompt_mean, cv=0.5,
                               hi=4 * prompt_mean),
            output=samplers["output"], seed=seed)
        return trace[:n_requests]
    raise ValueError(f"unknown trace kind {kind!r}; "
                     f"expected one of {TRACE_KINDS}")


def mode_cost_kwargs(mode: str) -> dict:
    """Quantized-operand kwargs of one serving mode's cost model.

    Shared with the TP-aware cluster cost model
    (:mod:`repro.bench.cluster`), which passes the same operands to
    :class:`~repro.cluster.costs.ShardedStepCostModel`.
    """
    if mode not in SERVING_MODES:
        raise ValueError(f"unknown mode {mode!r}; "
                         f"expected one of {SERVING_MODES}")
    if mode == "fp16":
        return {}
    if mode == "qserve":
        return {"weight_bits": 4, "kv_bits": 4}
    if mode in KV_ONLY_MODES:
        return {"kv_qt": attention_sample(KV_ONLY_MODES[mode])}
    return {"weight_qt": weight_sample(_VQ_WEIGHT_ALGO[mode]),
            "kv_qt": attention_sample(_VQ_KV_ALGO[mode])}


def make_cost_model(engine: ComputeEngine, config: LlamaConfig, mode: str,
                    seq_bucket: int = 512) -> StepCostModel:
    """Step cost model for one serving mode, using the sample tensors."""
    return StepCostModel(engine, config, seq_bucket=seq_bucket,
                         **mode_cost_kwargs(mode))


def simulate_mode(
    mode: str,
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    kv_hbm_gb: Optional[float] = 4.0,
    rate_rps: float = 16.0,
    n_requests: int = 64,
    prompt_mean: int = 384,
    output_mean: int = 96,
    token_budget: int = 2048,
    max_seqs: int = 64,
    seed: int = 0,
    trace_kind: str = "poisson",
    engine: Optional[ComputeEngine] = None,
    admission: str = "reserve",
    block_tokens: int = 16,
    prefix_caching: bool = False,
    trace: bool = False,
    timeline: Optional[TimelineConfig] = None,
    sanitize: bool = False,
) -> ServingReport:
    """Simulate one serving mode on an open-loop trace.

    ``kv_hbm_gb=None`` derives the KV allowance from the GPU spec's
    DRAM capacity (minus FP16 weights and a reserve margin) instead of
    a fixed byte count.  ``admission`` selects worst-case reservations
    (``"reserve"``) or paged block allocation with recompute preemption
    (``"paged"``, pool carved into ``block_tokens``-token blocks).
    ``prefix_caching=True`` (paged only) shares KV blocks across
    common prompt prefixes; pair it with an id-carrying trace kind
    (``shared_prefix`` / ``chat``) or every lookup misses.
    ``trace=True`` records a :mod:`repro.obs` timeline on the returned
    report's ``tracer`` (metrics are bit-identical either way).
    ``timeline=TimelineConfig(...)`` additionally samples windowed
    time-series telemetry (and, with SLO limits set, burn-rate alerts)
    onto the report's ``timeline`` / ``slo`` — same bit-identity
    contract.  ``sanitize=True`` arms the allocator invariant checks
    of :mod:`repro.serve.sanitize` (also bit-identical on metrics).
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    requests = make_trace(trace_kind, rate_rps, n_requests,
                          prompt_mean, output_mean, seed=seed)
    budget = make_kv_budget(
        config, mode,
        capacity_bytes=None if kv_hbm_gb is None else kv_hbm_gb * 1e9,
        spec=spec)
    name = mode if admission == "reserve" else f"{mode}/{admission}"
    if prefix_caching:
        name += "+prefix"
    sim_config = SimConfig(
        scheduler=SchedulerConfig(token_budget=token_budget,
                                  max_seqs=max_seqs,
                                  admission=admission,
                                  block_tokens=block_tokens,
                                  prefix_caching=prefix_caching,
                                  sanitize=sanitize),
        name=name, trace=trace, timeline=timeline)
    cost_model = make_cost_model(engine, config, mode)
    return sim_config.build(budget, cost_model).run(requests)


def serving_comparison(
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    modes: Sequence[str] = ("fp16", "kv-cq-4", "kv-cq-2"),
    engine: Optional[ComputeEngine] = None,
    reports: Optional[dict] = None,
    **kwargs,
) -> ExperimentResult:
    """Compare serving modes at an equal KV-cache HBM budget.

    Extra keyword arguments go to :func:`simulate_mode`; every mode
    shares one engine (and thus one latency memo) and the same trace.
    Pass a dict as ``reports`` to also receive each mode's
    :class:`~repro.serve.simulator.ServingReport`.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    result = ExperimentResult(
        experiment_id="serving",
        title=f"Continuous-batching serving on {spec.name} "
              f"({config.name}, equal KV HBM budget)",
        columns=("mode", "req/s", "tok/s", "ttft_p50_ms", "tpot_p50_ms",
                 "latency_p99_s", "peak_seqs"),
    )
    reports = reports if reports is not None else {}
    for mode in modes:
        rep = simulate_mode(mode, spec=spec, config=config, engine=engine,
                            **kwargs)
        reports[mode] = rep
        result.add_row(mode, rep.throughput_rps, rep.output_tokens_per_s,
                       rep.ttft_s(50) * 1e3, rep.tpot_s(50) * 1e3,
                       rep.latency_s(99), rep.peak_seqs)
    if "fp16" in reports:
        base = reports["fp16"].throughput_rps
        for mode, rep in reports.items():
            if mode != "fp16":
                result.notes.append(
                    f"{mode} sustains {rep.throughput_rps / base:.2f}x "
                    f"the FP16 request throughput at equal KV memory")
    return result


def admission_comparison(
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    modes: Sequence[str] = ("fp16", "kv-cq-4", "kv-cq-2"),
    admissions: Sequence[str] = ("reserve", "paged"),
    engine: Optional[ComputeEngine] = None,
    reports: Optional[dict] = None,
    **kwargs,
) -> ExperimentResult:
    """Reserve vs paged admission per compression mode, equal KV HBM.

    The comparison the paging subsystem exists for: worst-case
    reservations leave the cache *admission-bound* (peak occupancy well
    below the pool), while paged allocation runs it *occupancy-bound*
    (blocks fill the pool; pressure resolves by recompute preemption).
    Rows are (mode, admission) pairs keyed ``mode/admission`` in
    ``reports``; extra keyword arguments go to :func:`simulate_mode`.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    for adm in admissions:
        if adm not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {adm!r}; "
                             f"expected one of {ADMISSION_POLICIES}")
    result = ExperimentResult(
        experiment_id="serving_admission",
        title=f"Reserve vs paged KV admission on {spec.name} "
              f"({config.name}, equal KV HBM budget)",
        columns=("mode", "admission", "req/s", "ttft_p50_ms",
                 "peak_seqs", "peak_kv_occ", "preemptions"),
    )
    reports = reports if reports is not None else {}
    for mode in modes:
        for adm in admissions:
            rep = simulate_mode(mode, spec=spec, config=config,
                                engine=engine, admission=adm, **kwargs)
            reports[f"{mode}/{adm}"] = rep
            result.add_row(mode, adm, rep.throughput_rps,
                           rep.ttft_s(50) * 1e3, rep.peak_seqs,
                           rep.peak_kv_occupancy, rep.n_preempted)
        if {"reserve", "paged"} <= set(admissions):
            res = reports[f"{mode}/reserve"]
            pag = reports[f"{mode}/paged"]
            result.notes.append(
                f"{mode}: paged admission lifts peak KV occupancy "
                f"{res.peak_kv_occupancy:.0%} -> "
                f"{pag.peak_kv_occupancy:.0%} "
                f"({pag.n_preempted} preemptions)")
    return result


def prefix_comparison(
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    modes: Sequence[str] = ("fp16", "kv-cq-4"),
    prefix_settings: Sequence[bool] = (False, True),
    trace_kind: str = "chat",
    engine: Optional[ComputeEngine] = None,
    reports: Optional[dict] = None,
    **kwargs,
) -> ExperimentResult:
    """Prefix caching on/off per KV scheme, equal HBM, paged admission.

    The interaction the prefix subsystem exists for: caching removes
    prefill work proportional to the hit rate, and *compression* sets
    how deep a tree the pool can keep resident — at equal HBM a CQ-4
    cache holds ~4x the blocks of FP16, so under memory pressure it
    sustains a higher hit rate on the same sessionized trace.  Rows
    are (mode, prefix) pairs keyed ``mode[+prefix]`` in ``reports``;
    extra keyword arguments go to :func:`simulate_mode`.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    result = ExperimentResult(
        experiment_id="serving_prefix",
        title=f"Prefix caching on {spec.name} ({config.name}, "
              f"{trace_kind} trace, equal KV HBM budget)",
        columns=("mode", "prefix", "req/s", "ttft_p50_ms", "hit_rate",
                 "cached_frac", "evicted"),
    )
    reports = reports if reports is not None else {}
    for mode in modes:
        for prefix in prefix_settings:
            rep = simulate_mode(mode, spec=spec, config=config,
                                engine=engine, admission="paged",
                                trace_kind=trace_kind,
                                prefix_caching=prefix, **kwargs)
            key = f"{mode}+prefix" if prefix else mode
            reports[key] = rep
            result.add_row(mode, "on" if prefix else "off",
                           rep.throughput_rps, rep.ttft_s(50) * 1e3,
                           rep.prefix_hit_rate,
                           rep.cached_token_fraction,
                           rep.n_evicted_blocks)
        if {True, False} <= set(prefix_settings):
            off, on = reports[mode], reports[f"{mode}+prefix"]
            if off.ttft_s(50) > 0:
                result.notes.append(
                    f"{mode}: prefix caching serves "
                    f"{on.cached_token_fraction:.0%} of prompt tokens "
                    f"from cache, TTFT p50 {off.ttft_s(50) * 1e3:.1f} -> "
                    f"{on.ttft_s(50) * 1e3:.1f} ms")
    return result


class _TraceKindAction(argparse.Action):
    """``--trace-kind`` plus its deprecated ``--trace`` spelling.

    ``--trace`` used to select the *arrival process*; now that
    ``--trace-out`` records a *run timeline*, keeping the bare name
    canonical invites exactly that confusion, so it warns.  Shared
    with :mod:`repro.bench.cluster`.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string == "--trace":
            warnings.warn(
                "--trace is a deprecated alias for --trace-kind (the "
                "arrival process); --trace-out is what records a run "
                "timeline", DeprecationWarning, stacklevel=2)
        setattr(namespace, self.dest, values)


def run(argv: Optional[Sequence[str]] = None,
        reports: Optional[dict] = None) -> ExperimentResult:
    """Run the CLI experiment and return the structured result.

    Same argument surface as the ``python -m repro.bench.serving``
    command line, but the caller gets the
    :class:`~repro.bench.harness.ExperimentResult` back (and, with a
    dict as ``reports``, the per-run
    :class:`~repro.serve.simulator.ServingReport` objects) instead of
    having to scrape stdout.  The orchestrator and tests consume this;
    :func:`main` is the printing wrapper around it.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serving",
        description="Continuous-batching serving comparison: FP16 vs "
                    "quantized KV caches at an equal HBM budget.")
    parser.add_argument("--gpu", default="rtx4090",
                        help="GPU preset name (rtx4090, a40, a100)")
    parser.add_argument("--modes", nargs="+",
                        default=["fp16", "kv-cq-4", "kv-cq-2"],
                        choices=list(SERVING_MODES), metavar="MODE",
                        help=f"serving modes to compare {SERVING_MODES}")
    parser.add_argument("--trace-kind", "--trace", default=None,
                        choices=TRACE_KINDS, dest="trace_kind",
                        action=_TraceKindAction,
                        help="arrival process (shared_prefix/chat carry "
                             "token ids for prefix caching); default "
                             "poisson, or chat under --prefix-caching; "
                             "--trace is a deprecated alias")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="record a repro.obs run timeline and write "
                             "Chrome/Perfetto trace_event JSON here "
                             "(open at ui.perfetto.dev; summarize with "
                             "python -m repro.obs.report)")
    parser.add_argument("--timeline-out", default=None, metavar="PATH",
                        help="sample windowed time-series telemetry and "
                             "write a Perfetto trace with counter tracks "
                             "here (implies trace recording; dashboard "
                             "via python -m repro.obs.report --dashboard)")
    parser.add_argument("--timeline-window", type=float, default=0.25,
                        metavar="S",
                        help="timeline sampling window in simulated "
                             "seconds (with --timeline-out)")
    parser.add_argument("--slo-ttft-ms", type=float, default=None,
                        metavar="MS",
                        help="per-request TTFT limit for SLO burn-rate "
                             "accounting on the timeline (with "
                             "--timeline-out)")
    parser.add_argument("--rate", type=float, default=16.0,
                        help="offered arrival rate, requests/s")
    parser.add_argument("--requests", type=int, default=64,
                        help="number of requests in the trace")
    parser.add_argument("--prompt-mean", type=int, default=384,
                        help="mean prompt length, tokens")
    parser.add_argument("--output-mean", type=int, default=96,
                        help="mean output length, tokens")
    parser.add_argument("--kv-gb", type=float, default=None,
                        help="KV-cache HBM allowance in GB (default: "
                             "derive from the GPU's DRAM capacity minus "
                             "FP16 weights)")
    parser.add_argument("--token-budget", type=int, default=2048,
                        help="max tokens per scheduler iteration")
    parser.add_argument("--max-seqs", type=int, default=64,
                        help="max concurrently admitted sequences")
    parser.add_argument("--admission", nargs="+", default=["reserve"],
                        choices=list(ADMISSION_POLICIES), metavar="POLICY",
                        help="KV admission policies to run "
                             f"{ADMISSION_POLICIES}; naming more than one "
                             "switches to the reserve-vs-paged comparison "
                             "table")
    parser.add_argument("--block-tokens", type=int, default=16,
                        help="token slots per KV block under paged "
                             "admission")
    parser.add_argument("--prefix-caching", action="store_true",
                        help="share KV blocks across common prompt "
                             "prefixes (switches to the prefix on/off "
                             "comparison table; implies paged admission)")
    parser.add_argument("--sanitize", action="store_true",
                        help="arm allocator invariant checks "
                             "(repro.serve.sanitize); metrics are "
                             "bit-identical either way")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace RNG seed")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-mode report summaries")
    args = parser.parse_args(argv)
    # A prefix comparison on an id-less trace cannot hit: default to
    # the chat workload unless the user picked a trace explicitly.
    trace_kind = args.trace_kind or ("chat" if args.prefix_caching
                                     else "poisson")

    spec = get_spec(args.gpu)
    config = llama_7b()
    engine = ComputeEngine(spec)
    timeline = None
    if args.timeline_out is not None:
        timeline = TimelineConfig(
            window_s=args.timeline_window,
            slo_ttft_s=(args.slo_ttft_ms / 1e3
                        if args.slo_ttft_ms is not None else None))
    workload = dict(
        kv_hbm_gb=args.kv_gb, rate_rps=args.rate, n_requests=args.requests,
        prompt_mean=args.prompt_mean, output_mean=args.output_mean,
        token_budget=args.token_budget, max_seqs=args.max_seqs,
        seed=args.seed,
        block_tokens=args.block_tokens,
        trace=args.trace_out is not None or timeline is not None,
        timeline=timeline,
        sanitize=args.sanitize,
    )
    stats = trace_stats(make_trace(trace_kind, args.rate, args.requests,
                                   args.prompt_mean, args.output_mean,
                                   seed=args.seed))
    print(f"trace: {trace_kind}, {stats['n_requests']} requests, "
          f"{stats['offered_rps']:.1f} req/s offered, "
          f"mean prompt {stats['mean_prompt_tokens']:.0f} / "
          f"output {stats['mean_output_tokens']:.0f} tokens")
    reports = reports if reports is not None else {}
    if args.prefix_caching:
        table = prefix_comparison(spec=spec, config=config, engine=engine,
                                  modes=args.modes, trace_kind=trace_kind,
                                  reports=reports, **workload)
    elif len(args.admission) > 1:
        table = admission_comparison(spec=spec, config=config,
                                     engine=engine, modes=args.modes,
                                     admissions=args.admission,
                                     trace_kind=trace_kind,
                                     reports=reports, **workload)
    else:
        table = serving_comparison(spec=spec, config=config, engine=engine,
                                   modes=args.modes, reports=reports,
                                   trace_kind=trace_kind,
                                   admission=args.admission[0], **workload)
    if args.verbose:
        for rep in reports.values():
            print()
            print(rep.summary())
        print()
    print(table)
    if args.trace_out or args.timeline_out:
        from repro.obs import write_perfetto
        tracers = {key: rep.tracer for key, rep in reports.items()
                   if rep.tracer is not None}
        timelines = {key: rep.timeline for key, rep in reports.items()}
        slos = {key: rep.slo for key, rep in reports.items()}
        for path in filter(None, {args.trace_out, args.timeline_out}):
            write_perfetto(path, tracers, name="bench.serving",
                           timelines=timelines, slo=slos)
            print(f"wrote Perfetto trace: {path} "
                  f"({len(tracers)} runs; open at ui.perfetto.dev or run "
                  f"python -m repro.obs.report {path})")
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.bench.serving``."""
    run(argv)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
