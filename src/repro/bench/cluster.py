"""Cluster-level experiments: TP scaling and FP16-vs-CQ fleet sizing.

Two questions the single-GPU serving comparison cannot answer:

1. **How does tensor parallelism scale one replica?**
   :func:`tp_scaling` prices a decode iteration at increasing
   ``tp_degree`` over a chosen interconnect: per-shard kernels shrink,
   ring collectives grow, and the crossover depends on the link — the
   NVLink-vs-PCIe contrast is the whole story.

2. **How many GPUs does an SLO cost?**  :func:`fleet_sizing` /
   :func:`fleet_sizing_comparison` grow a fleet of identical replicas
   until the TTFT/TPOT SLO is met at a fixed offered load, at equal
   per-GPU HBM (derived from ``GPUSpec.dram_bytes``).  Because a
   CQ-compressed KV cache admits ~4-8x more concurrent sequences per
   replica, the VQ fleet meets the same SLO with fewer GPUs — the
   fleet-scale form of the paper's headline claim.

Every replica in every fleet shares one :class:`ComputeEngine`, so the
whole sweep evaluates each distinct kernel once.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult
from repro.bench.serving import (
    SERVING_MODES,
    TRACE_KINDS,
    _TraceKindAction,
    make_cost_model,
    make_trace,
    mode_cost_kwargs,
    mode_kv_scheme,
)
from repro.cluster.costs import ShardedStepCostModel
from repro.cluster.fleet import (
    POLICIES,
    SLO,
    FleetReport,
    FleetSimulator,
    Replica,
    size_fleet,
)
from repro.cluster.interconnect import LinkSpec, NVLINK3, PCIE4
from repro.cluster.sharding import TensorParallelPlan
from repro.core.engine import ComputeEngine
from repro.gpu.spec import GPUSpec, RTX4090
from repro.llm.config import LlamaConfig, llama_7b
from repro.serve.api import FleetConfig, SchedulerConfig
from repro.serve.scheduler import KVBudget


def make_sharded_cost_model(
    engine: ComputeEngine,
    config: LlamaConfig,
    mode: str,
    plan: TensorParallelPlan,
    seq_bucket: int = 512,
) -> ShardedStepCostModel:
    """TP-aware cost model for one serving mode (sample tensors)."""
    return ShardedStepCostModel(engine, config, plan, seq_bucket=seq_bucket,
                                **mode_cost_kwargs(mode))


def replica_kv_budget(
    config: LlamaConfig,
    mode: str,
    spec: GPUSpec,
    tp_degree: int = 1,
    link: LinkSpec = NVLINK3,
    reserve_fraction: float = 0.1,
) -> KVBudget:
    """Per-replica KV budget at equal per-GPU HBM.

    Capacity comes from the spec's DRAM minus the per-GPU weight shard
    and a reserve margin; the mode sets bytes-per-token (and, for VQ,
    the replicated-codebook overhead).
    """
    scheme = mode_kv_scheme(mode)
    if tp_degree == 1:
        return KVBudget.for_gpu(config, spec,
                                reserve_fraction=reserve_fraction, **scheme)
    plan = TensorParallelPlan(config, tp_degree, link)
    capacity = KVBudget.gpu_kv_capacity(spec, plan.weight_bytes_per_gpu(),
                                        reserve_fraction)
    return plan.kv_budget(capacity, **scheme)


def make_replicas(
    n: int,
    mode: str,
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    engine: Optional[ComputeEngine] = None,
    tp_degree: int = 1,
    link: LinkSpec = NVLINK3,
    token_budget: int = 2048,
    max_seqs: int = 128,
    reserve_fraction: float = 0.1,
    admission: str = "reserve",
    block_tokens: int = 16,
    prefix_caching: bool = False,
    sanitize: bool = False,
) -> list:
    """``n`` identical fresh replicas of one serving mode.

    Each replica is a ``tp_degree``-GPU group (a single GPU by
    default).  The cost model and budget template are shared — both
    are read-only — while every replica gets its own scheduler.
    ``admission="paged"`` gives each replica a paged block pool
    (``block_tokens``-token blocks) with recompute preemption, and the
    ``least-kv`` router then balances on observed block usage instead
    of worst-case reservations.  ``prefix_caching=True`` gives each
    replica its own radix prefix tree — per-replica state, which is
    exactly why routing policy matters: the ``prefix-affinity`` router
    keeps a session's turns on the replica whose tree knows them.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    budget = replica_kv_budget(config, mode, spec, tp_degree, link,
                               reserve_fraction)
    if tp_degree == 1:
        cost = make_cost_model(engine, config, mode)
    else:
        plan = TensorParallelPlan(config, tp_degree, link)
        cost = make_sharded_cost_model(engine, config, mode, plan)
    sched_config = SchedulerConfig(token_budget=token_budget,
                                   max_seqs=max_seqs,
                                   admission=admission,
                                   block_tokens=block_tokens,
                                   prefix_caching=prefix_caching,
                                   sanitize=sanitize)
    return [Replica(i, sched_config.build(budget), cost) for i in range(n)]


def tp_scaling(
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    mode: str = "fp16",
    degrees: Sequence[int] = (1, 2, 4, 8),
    links: Sequence[LinkSpec] = (NVLINK3, PCIE4),
    batch: int = 16,
    context_tokens: int = 1024,
    engine: Optional[ComputeEngine] = None,
) -> ExperimentResult:
    """Decode-iteration latency vs tensor-parallel degree per link."""
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    result = ExperimentResult(
        experiment_id="tp_scaling",
        title=f"Tensor-parallel decode scaling on {spec.name} "
              f"({config.name}, {mode}, batch {batch}, "
              f"context {context_tokens})",
        columns=("link", "tp", "step_us", "collective_us",
                 "collective_share", "speedup_vs_tp1"),
    )
    for link in links:
        # Anchor the speedup column to an explicit tp=1 evaluation so
        # sweeps that start above 1 (degrees=(2, 4, 8)) stay honest.
        base_us = make_sharded_cost_model(
            engine, config, mode,
            TensorParallelPlan(config, 1, link)).decode_step_us(
                batch, context_tokens)
        for tp in degrees:
            plan = TensorParallelPlan(config, tp, link)
            cost = make_sharded_cost_model(engine, config, mode, plan)
            step_us = cost.decode_step_us(batch, context_tokens)
            coll_us = plan.decode_collective_us(
                cost._bucket_batch(batch))
            result.add_row(link.name, tp, step_us, coll_us,
                           coll_us / step_us, base_us / step_us)
    return result


def fleet_sizing(
    mode: str,
    trace,
    slo: SLO,
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    engine: Optional[ComputeEngine] = None,
    policy: str = "least-kv",
    max_replicas: int = 8,
    record_trace: bool = False,
    timeline=None,
    **replica_kwargs,
) -> Tuple[Optional[int], FleetReport]:
    """Smallest fleet of one mode meeting the SLO on a shared trace.

    ``record_trace=True`` turns on :mod:`repro.obs` timeline recording
    for each candidate fleet (the returned report carries the tracer
    of the winning run); ``timeline=`` threads a
    :class:`~repro.obs.timeline.TimelineConfig` through every run.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)

    def factory(n: int):
        return make_replicas(n, mode, spec=spec, config=config,
                             engine=engine, **replica_kwargs)

    return size_fleet(factory, trace, slo, policy=policy,
                      max_replicas=max_replicas, record_trace=record_trace,
                      timeline=timeline)


def fleet_sizing_comparison(
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    modes: Sequence[str] = ("fp16", "kv-cq-4"),
    rate_rps: float = 24.0,
    n_requests: int = 96,
    prompt_mean: int = 1024,
    output_mean: int = 96,
    trace_kind: str = "poisson",
    seed: int = 0,
    slo: SLO = SLO(ttft_s=2.0),
    policy: str = "least-kv",
    max_replicas: int = 8,
    tp_degree: int = 1,
    engine: Optional[ComputeEngine] = None,
    reports: Optional[Dict[str, Tuple[Optional[int], FleetReport]]] = None,
    trace: bool = False,
    timeline=None,
    **replica_kwargs,
) -> ExperimentResult:
    """Headline comparison: GPUs each mode needs to meet the SLO.

    All modes face the *same* trace and the same per-GPU HBM; the table
    reports the smallest compliant fleet per mode ("-" when even
    ``max_replicas`` replicas miss).  Pass a dict as ``reports`` to
    also receive each mode's ``(size, FleetReport)``.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    shared_trace = make_trace(trace_kind, rate_rps, n_requests,
                              prompt_mean, output_mean, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet_sizing",
        title=f"Fleet sizing on {spec.name} ({config.name}, "
              f"{rate_rps:.0f} req/s offered, TTFT p{slo.quantile:.0f} "
              f"<= {slo.ttft_s:.1f} s, equal per-GPU HBM)",
        columns=("mode", "replicas", "gpus", "goodput_rps",
                 "ttft_p95_ms", "tpot_p50_ms", "attainment"),
    )
    sizes: Dict[str, Optional[int]] = {}
    for mode in modes:
        n, report = fleet_sizing(mode, shared_trace, slo, spec=spec,
                                 config=config, engine=engine, policy=policy,
                                 max_replicas=max_replicas,
                                 tp_degree=tp_degree, record_trace=trace,
                                 timeline=timeline, **replica_kwargs)
        sizes[mode] = n
        if reports is not None:
            reports[mode] = (n, report)
        result.add_row(mode, n if n is not None else "-",
                       n * tp_degree if n is not None else "-",
                       report.goodput_rps(slo),
                       report.ttft_s(95) * 1e3, report.tpot_s(50) * 1e3,
                       report.slo_attainment(slo))
    base = sizes.get("fp16")
    for mode, n in sizes.items():
        if mode != "fp16" and base is not None and n is not None and n < base:
            result.notes.append(
                f"{mode} meets the SLO with {base - n} fewer "
                f"replica(s) than fp16 ({n} vs {base}) at equal "
                "per-GPU HBM")
    return result


def routing_comparison(
    mode: str = "kv-cq-4",
    n_replicas: int = 3,
    policies: Sequence[str] = ("round-robin", "jsq", "prefix-affinity"),
    spec: GPUSpec = RTX4090,
    config: Optional[LlamaConfig] = None,
    rate_rps: float = 12.0,
    n_requests: int = 64,
    prompt_mean: int = 256,
    output_mean: int = 64,
    trace_kind: str = "chat",
    seed: int = 0,
    engine: Optional[ComputeEngine] = None,
    reports: Optional[Dict[str, FleetReport]] = None,
    trace: bool = False,
    timeline=None,
    **replica_kwargs,
) -> ExperimentResult:
    """Routing policies on one sessionized trace with prefix caching.

    Prefix trees are per-replica state, so the router decides the
    fleet-wide hit rate: ``prefix-affinity`` pins every turn of a chat
    session to the replica whose tree already holds its history, while
    load-based policies scatter the turns and each replica re-prefills
    the same prefix.  Replicas run ``admission="paged"`` with
    ``prefix_caching=True``; pass a dict as ``reports`` to receive the
    per-policy :class:`~repro.cluster.fleet.FleetReport`.
    """
    config = config or llama_7b()
    engine = engine or ComputeEngine(spec)
    shared_trace = make_trace(trace_kind, rate_rps, n_requests,
                              prompt_mean, output_mean, seed=seed)
    result = ExperimentResult(
        experiment_id="fleet_routing",
        title=f"Routing x prefix caching on {spec.name} ({config.name}, "
              f"{n_replicas} replicas, {trace_kind} trace, {mode})",
        columns=("policy", "req/s", "ttft_p50_ms", "ttft_p95_ms",
                 "hit_rate", "cached_frac", "preemptions"),
    )
    reports = reports if reports is not None else {}
    for policy in policies:
        replicas = make_replicas(n_replicas, mode, spec=spec, config=config,
                                 engine=engine, admission="paged",
                                 prefix_caching=True, **replica_kwargs)
        rep = FleetSimulator(replicas,
                             config=FleetConfig(
                                 policy=policy,
                                 name=f"{mode}/{policy}",
                                 trace=trace,
                                 timeline=timeline)).run(shared_trace)
        reports[policy] = rep
        result.add_row(policy, rep.throughput_rps, rep.ttft_s(50) * 1e3,
                       rep.ttft_s(95) * 1e3, rep.prefix_hit_rate,
                       rep.cached_token_fraction, rep.n_preempted)
    if "prefix-affinity" in reports:
        aff = reports["prefix-affinity"]
        for policy, rep in reports.items():
            if policy != "prefix-affinity":
                result.notes.append(
                    f"prefix-affinity caches "
                    f"{aff.cached_token_fraction:.0%} of prompt tokens "
                    f"vs {rep.cached_token_fraction:.0%} under {policy}")
    return result


def run(argv: Optional[Sequence[str]] = None,
        reports: Optional[dict] = None) -> ExperimentResult:
    """Run the CLI experiment and return the structured result.

    Same argument surface as the ``python -m repro.bench.cluster``
    command line, but the caller gets the
    :class:`~repro.bench.harness.ExperimentResult` back (and, with a
    dict as ``reports``, the per-run
    :class:`~repro.cluster.fleet.FleetReport` values — ``(size,
    report)`` tuples for sizing) instead of scraping stdout.  The
    orchestrator and tests consume this; :func:`main` is the printing
    wrapper around it.
    """
    import argparse

    from repro.gpu.spec import get_spec
    from repro.serve.scheduler import ADMISSION_POLICIES

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cluster",
        description="Cluster-level experiments: fleet sizing, routing "
                    "policies and TP scaling over the serving simulator.")
    parser.add_argument("--experiment", default="sizing",
                        choices=("sizing", "routing", "tp"),
                        help="which table to produce: SLO fleet sizing, "
                             "routing-policy comparison, or TP scaling")
    parser.add_argument("--gpu", default="rtx4090",
                        help="GPU preset name (rtx4090, a40, a100)")
    parser.add_argument("--modes", nargs="+", default=["fp16", "kv-cq-4"],
                        choices=list(SERVING_MODES), metavar="MODE",
                        help=f"serving modes to compare {SERVING_MODES} "
                             "(routing/tp use the first)")
    parser.add_argument("--trace-kind", "--trace", default=None,
                        choices=TRACE_KINDS, dest="trace_kind",
                        action=_TraceKindAction,
                        help="arrival process (shared_prefix/chat carry "
                             "token ids for prefix caching); default "
                             "poisson, or chat when prefix caching is "
                             "in play (--experiment routing / "
                             "--prefix-caching); --trace is a "
                             "deprecated alias")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="record a repro.obs run timeline and write "
                             "Chrome/Perfetto trace_event JSON here "
                             "(open at ui.perfetto.dev; summarize with "
                             "python -m repro.obs.report; ignored by "
                             "--experiment tp, which runs no simulation)")
    parser.add_argument("--timeline-out", default=None, metavar="PATH",
                        help="sample windowed per-replica telemetry and "
                             "write a Perfetto trace with counter tracks "
                             "here (implies trace recording; dashboard "
                             "via python -m repro.obs.report --dashboard; "
                             "ignored by --experiment tp)")
    parser.add_argument("--timeline-window", type=float, default=0.25,
                        metavar="S",
                        help="timeline sampling window in simulated "
                             "seconds (with --timeline-out)")
    parser.add_argument("--slo-ttft-ms", type=float, default=None,
                        metavar="MS",
                        help="per-request TTFT limit for SLO burn-rate "
                             "accounting on the timeline (with "
                             "--timeline-out)")
    parser.add_argument("--rate", type=float, default=24.0,
                        help="offered arrival rate, requests/s")
    parser.add_argument("--requests", type=int, default=96,
                        help="number of requests in the trace")
    parser.add_argument("--prompt-mean", type=int, default=1024,
                        help="mean prompt length, tokens")
    parser.add_argument("--output-mean", type=int, default=96,
                        help="mean output length, tokens")
    parser.add_argument("--policy", nargs="+", default=None,
                        choices=sorted(POLICIES), metavar="POLICY",
                        help="routing policies (sizing uses the first; "
                             f"known: {sorted(POLICIES)})")
    parser.add_argument("--replicas", type=int, default=3,
                        help="fleet size for --experiment routing "
                             "(sizing grows up to --max-replicas)")
    parser.add_argument("--max-replicas", type=int, default=8,
                        help="largest fleet sizing will try")
    parser.add_argument("--slo-ttft", type=float, default=2.0,
                        help="TTFT SLO limit in seconds (sizing)")
    parser.add_argument("--tp", nargs="+", type=int, default=[1, 2, 4, 8],
                        help="tensor-parallel degrees (tp experiment)")
    parser.add_argument("--admission", default="reserve",
                        choices=list(ADMISSION_POLICIES),
                        help="per-replica KV admission policy (routing "
                             "always runs paged)")
    parser.add_argument("--block-tokens", type=int, default=16,
                        help="token slots per KV block under paged "
                             "admission")
    parser.add_argument("--prefix-caching", action="store_true",
                        help="enable per-replica prefix caching under "
                             "sizing (routing always enables it)")
    parser.add_argument("--sanitize", action="store_true",
                        help="arm allocator invariant checks "
                             "(repro.serve.sanitize); metrics are "
                             "bit-identical either way")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace RNG seed")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-run report summaries")
    args = parser.parse_args(argv)
    # Prefix caching (routing always; sizing under --prefix-caching)
    # needs an id-carrying trace to show anything: default to chat
    # unless the user picked a trace explicitly.
    prefix_in_play = args.experiment == "routing" or args.prefix_caching
    trace_kind = args.trace_kind or ("chat" if prefix_in_play else "poisson")
    # Prefix caching rides on paged blocks; honor the flag rather than
    # crashing on the reserve default.
    admission = "paged" if args.prefix_caching else args.admission

    spec = get_spec(args.gpu)
    config = llama_7b()
    engine = ComputeEngine(spec)
    timeline = None
    if args.timeline_out is not None:
        from repro.obs.timeline import TimelineConfig
        timeline = TimelineConfig(
            window_s=args.timeline_window,
            slo_ttft_s=(args.slo_ttft_ms / 1e3
                        if args.slo_ttft_ms is not None else None))
    record = args.trace_out is not None or timeline is not None
    reports = reports if reports is not None else {}
    if args.experiment == "tp":
        table = tp_scaling(spec=spec, config=config, mode=args.modes[0],
                           degrees=tuple(args.tp), engine=engine)
    elif args.experiment == "routing":
        table = routing_comparison(
            mode=args.modes[0], n_replicas=args.replicas,
            policies=tuple(args.policy
                           or ("round-robin", "jsq", "prefix-affinity")),
            spec=spec, config=config, rate_rps=args.rate,
            n_requests=args.requests, prompt_mean=args.prompt_mean,
            output_mean=args.output_mean, trace_kind=trace_kind,
            seed=args.seed, engine=engine,
            block_tokens=args.block_tokens, reports=reports,
            trace=record, timeline=timeline, sanitize=args.sanitize)
    else:
        table = fleet_sizing_comparison(
            spec=spec, config=config, modes=args.modes,
            rate_rps=args.rate, n_requests=args.requests,
            prompt_mean=args.prompt_mean, output_mean=args.output_mean,
            trace_kind=trace_kind, seed=args.seed,
            slo=SLO(ttft_s=args.slo_ttft),
            policy=(args.policy[0] if args.policy else "least-kv"),
            max_replicas=args.max_replicas, engine=engine,
            admission=admission, block_tokens=args.block_tokens,
            prefix_caching=args.prefix_caching, reports=reports,
            trace=record, timeline=timeline, sanitize=args.sanitize)
    if args.verbose:
        for value in reports.values():
            rep = value[1] if isinstance(value, tuple) else value
            print()
            print(rep.summary())
        print()
    print(table)
    if args.trace_out or args.timeline_out:
        if args.experiment == "tp":
            print("--trace-out/--timeline-out ignored: --experiment tp "
                  "prices kernels analytically and runs no simulation")
        else:
            from repro.obs import write_perfetto
            tracers, timelines, slos = {}, {}, {}
            for key, value in reports.items():
                rep = value[1] if isinstance(value, tuple) else value
                if getattr(rep, "tracer", None) is not None:
                    tracers[str(key)] = rep.tracer
                    timelines[str(key)] = getattr(rep, "timeline", None)
                    slos[str(key)] = getattr(rep, "slo", None)
            for path in filter(None, {args.trace_out, args.timeline_out}):
                write_perfetto(path, tracers, name="bench.cluster",
                               timelines=timelines, slo=slos)
                print(f"wrote Perfetto trace: {path} "
                      f"({len(tracers)} runs; open at ui.perfetto.dev or "
                      f"run python -m repro.obs.report {path})")
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.bench.cluster``."""
    run(argv)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
