"""Experiment orchestration: sweep grids, trial runner, perf trajectory.

Every benchmark so far is a one-off CLI run; this module is the
connective tissue that turns them into *experiments* (the fuzzbench
shape: a coordinator that schedules trials, a measurer, a results
store, generated reports):

- :class:`TrialSpec` — one grid cell: a fully-specified serving or
  fleet simulation (scheme, admission, prefix caching, trace, rate,
  routing policy, fleet size, seed);
- :class:`SweepConfig` — a declarative sweep grid (dataclass, dict or
  JSON file) that expands to the cross product of its axes, skipping
  combinations the stack rejects (prefix caching on reserve
  admission, prefix caching on an id-less trace);
- :func:`run_sweep` — executes every trial via the existing
  :mod:`repro.bench.serving` / :mod:`repro.bench.cluster` entry
  points, serially or in parallel worker processes
  (:mod:`concurrent.futures`), with deterministic per-trial seeds —
  results are identical whatever the worker count;
- :class:`Trajectory` — the results store: every trial's config,
  metrics (:meth:`~repro.serve.simulator.ServingReport.metrics` /
  :meth:`~repro.cluster.fleet.FleetReport.metrics`), wall time and the
  git SHA, persisted to ``BENCH_<pr>.json`` at the repo root.  The
  schema is versioned, unknown fields survive a load/save round trip,
  and malformed files raise :class:`TrajectoryError` instead of a
  stack trace;
- :func:`compare` / :func:`render_report` — per-metric deltas against
  the previous PR's ``BENCH_<n>.json`` (:func:`find_previous`),
  flagging regressions beyond a relative tolerance, rendered as a
  markdown report.

``python -m repro.bench.orchestrator`` runs a sweep from ``--config``
(JSON) or a named ``--preset``, writes the trajectory and report, and
with ``--check`` exits non-zero when a regression is flagged — which
is exactly what the CI ``orchestrator-smoke`` step does against the
committed baseline.

Wall-clock time is recorded per trial but lives outside ``metrics``:
the metric payload is a pure function of the spec, which is what lets
golden tests assert byte-identical persistence across runs.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import subprocess
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Version of the persisted trajectory schema.  Bump when a field
#: changes meaning; loaders reject files from a *newer* schema (they
#: cannot know what the fields mean) but accept older ones.
SCHEMA_VERSION = 1

#: The PR this checkout's trajectory file belongs to: this PR's run
#: persists ``BENCH_10.json`` and diffs it against ``BENCH_8.json``.
PR_NUMBER = 10

#: Trial kinds the runner understands.
TRIAL_KINDS = ("serving", "fleet")


class TrajectoryError(ValueError):
    """A trajectory file or sweep config is malformed.

    Raised with a human-readable reason (and the offending path where
    there is one) instead of letting ``KeyError``/``TypeError`` escape
    from the middle of the JSON plumbing.
    """


# ----------------------------------------------------------------------
# Trial specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialSpec:
    """One fully-specified grid cell: a single simulation to run.

    ``kind="serving"`` runs one single-engine
    :func:`repro.bench.serving.simulate_mode`; ``kind="fleet"`` runs
    ``n_replicas`` engines behind a ``policy`` router
    (:class:`repro.cluster.fleet.FleetSimulator`).  Everything is
    plain data so specs pickle cleanly into worker processes and
    round-trip through JSON.
    """

    kind: str = "serving"
    mode: str = "fp16"
    admission: str = "reserve"
    prefix_caching: bool = False
    trace_kind: str = "poisson"
    rate_rps: float = 16.0
    n_requests: int = 64
    prompt_mean: int = 384
    output_mean: int = 96
    gpu: str = "rtx4090"
    kv_hbm_gb: Optional[float] = 4.0
    token_budget: int = 2048
    max_seqs: int = 64
    block_tokens: int = 16
    n_replicas: int = 1
    policy: str = "round-robin"
    slo_ttft_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        # Import here so building a spec never pays the engine import.
        from repro.bench.serving import SERVING_MODES, TRACE_KINDS
        from repro.cluster.fleet import POLICIES
        from repro.serve.scheduler import ADMISSION_POLICIES

        if self.kind not in TRIAL_KINDS:
            raise TrajectoryError(f"unknown trial kind {self.kind!r}; "
                                  f"expected one of {TRIAL_KINDS}")
        if self.mode not in SERVING_MODES:
            raise TrajectoryError(f"unknown mode {self.mode!r}; "
                                  f"expected one of {SERVING_MODES}")
        if self.admission not in ADMISSION_POLICIES:
            raise TrajectoryError(
                f"unknown admission {self.admission!r}; "
                f"expected one of {ADMISSION_POLICIES}")
        if self.trace_kind not in TRACE_KINDS:
            raise TrajectoryError(f"unknown trace kind {self.trace_kind!r}; "
                                  f"expected one of {TRACE_KINDS}")
        if self.policy not in POLICIES:
            raise TrajectoryError(f"unknown routing policy {self.policy!r}; "
                                  f"known: {sorted(POLICIES)}")
        if self.prefix_caching and self.admission != "paged":
            raise TrajectoryError(
                "prefix_caching requires admission='paged'")
        if self.prefix_caching and self.trace_kind not in ("shared_prefix",
                                                           "chat"):
            raise TrajectoryError(
                "prefix_caching needs an id-carrying trace "
                f"(shared_prefix/chat), not {self.trace_kind!r}")
        if self.rate_rps <= 0:
            raise TrajectoryError("rate_rps must be positive")
        if self.n_requests < 1:
            raise TrajectoryError("n_requests must be >= 1")
        if self.n_replicas < 1:
            raise TrajectoryError("n_replicas must be >= 1")
        if self.slo_ttft_s is not None and self.slo_ttft_s <= 0:
            raise TrajectoryError("slo_ttft_s must be positive")

    @property
    def trial_id(self) -> str:
        """Stable human-readable identity of this grid cell.

        Regression deltas join current and previous trajectories on
        this key, so it must be a pure function of the spec.
        """
        parts = [self.kind, self.mode, self.admission]
        if self.prefix_caching:
            parts.append("prefix")
        parts.append(f"{self.trace_kind}@{self.rate_rps:g}rps")
        if self.kind == "fleet":
            parts.append(f"x{self.n_replicas}-{self.policy}")
        parts.append(f"seed{self.seed}")
        return "/".join(parts)

    @property
    def trial_seed(self) -> int:
        """Deterministic per-trial trace seed.

        Mixes the sweep's base seed with a CRC of the trial identity
        (``hash()`` is randomized per process, so it must not appear
        here) — trials draw independent traces, yet every rerun, on
        any worker layout, sees the same one.
        """
        return (self.seed * 1_000_003
                + zlib.crc32(self.trial_id.encode())) % (2 ** 31)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrialSpec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise TrajectoryError(
                f"trial spec must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise TrajectoryError(f"unknown trial spec fields {unknown}; "
                                  f"known: {sorted(known)}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise TrajectoryError(f"bad trial spec: {exc}") from None


# ----------------------------------------------------------------------
# Sweep configuration
# ----------------------------------------------------------------------
@dataclass
class SweepConfig:
    """A declarative sweep grid over the serving/fleet experiment space.

    The grid is the cross product of the plural axes; scalar fields
    are shared by every cell.  :meth:`trials` drops the combinations
    the stack rejects by construction (prefix caching without paged
    admission or without an id-carrying trace) so configs can name the
    full ``schemes x admissions x prefix`` cube without enumerating
    validity by hand.
    """

    name: str = "sweep"
    kind: str = "serving"
    modes: Tuple[str, ...] = ("fp16", "kv-cq-4")
    admissions: Tuple[str, ...] = ("reserve", "paged")
    prefix_caching: Tuple[bool, ...] = (False,)
    trace_kinds: Tuple[str, ...] = ("poisson",)
    rates: Tuple[float, ...] = (16.0,)
    fleet_sizes: Tuple[int, ...] = (1,)
    policies: Tuple[str, ...] = ("round-robin",)
    n_requests: int = 64
    prompt_mean: int = 384
    output_mean: int = 96
    gpu: str = "rtx4090"
    kv_hbm_gb: Optional[float] = 4.0
    token_budget: int = 2048
    max_seqs: int = 64
    block_tokens: int = 16
    slo_ttft_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        for axis in ("modes", "admissions", "prefix_caching", "trace_kinds",
                     "rates", "fleet_sizes", "policies"):
            values = getattr(self, axis)
            if isinstance(values, (str, bytes)) or not isinstance(
                    values, (list, tuple)):
                raise TrajectoryError(
                    f"sweep axis {axis!r} must be a list of values, "
                    f"got {values!r}")
            if not values:
                raise TrajectoryError(f"sweep axis {axis!r} is empty")
            setattr(self, axis, tuple(values))
        if len(set(self.prefix_caching)) != len(self.prefix_caching):
            raise TrajectoryError("prefix_caching axis repeats a value")

    def trials(self) -> List[TrialSpec]:
        """Expand the grid to its (valid, de-duplicated) trial specs.

        Fleet-only axes collapse for serving sweeps (and routing
        policy for one-replica fleets is still exercised as given), so
        the same config dict can flip ``kind`` without exploding the
        serving grid.
        """
        fleet_sizes = self.fleet_sizes if self.kind == "fleet" else (1,)
        policies = self.policies if self.kind == "fleet" else (
            self.policies[0],)
        specs: List[TrialSpec] = []
        seen = set()
        for (mode, admission, prefix, trace_kind, rate, size,
             policy) in itertools.product(
                 self.modes, self.admissions, self.prefix_caching,
                 self.trace_kinds, self.rates, fleet_sizes, policies):
            if prefix and admission != "paged":
                continue  # the scheduler rejects this combination
            if prefix and trace_kind not in ("shared_prefix", "chat"):
                continue  # id-less traces cannot hit the cache
            spec = TrialSpec(
                kind=self.kind, mode=mode, admission=admission,
                prefix_caching=prefix, trace_kind=trace_kind,
                rate_rps=rate, n_requests=self.n_requests,
                prompt_mean=self.prompt_mean, output_mean=self.output_mean,
                gpu=self.gpu, kv_hbm_gb=self.kv_hbm_gb,
                token_budget=self.token_budget, max_seqs=self.max_seqs,
                block_tokens=self.block_tokens, n_replicas=size,
                policy=policy, slo_ttft_s=self.slo_ttft_s, seed=self.seed)
            if spec.trial_id not in seen:
                seen.add(spec.trial_id)
                specs.append(spec)
        if not specs:
            raise TrajectoryError(
                f"sweep {self.name!r} expands to zero valid trials")
        return specs

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        for axis in ("modes", "admissions", "prefix_caching", "trace_kinds",
                     "rates", "fleet_sizes", "policies"):
            out[axis] = list(out[axis])
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SweepConfig":
        """Build a config from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise TrajectoryError(
                f"sweep config must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise TrajectoryError(f"unknown sweep config fields {unknown}; "
                                  f"known: {sorted(known)}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise TrajectoryError(f"bad sweep config: {exc}") from None

    @classmethod
    def from_json_file(cls, path) -> "SweepConfig":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise TrajectoryError(f"cannot read sweep config {path}: "
                                  f"{exc}") from None
        except json.JSONDecodeError as exc:
            raise TrajectoryError(f"sweep config {path} is not valid "
                                  f"JSON: {exc}") from None
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Trial execution
# ----------------------------------------------------------------------
@dataclass
class TrialResult:
    """One executed trial: its spec, metric payload and wall time.

    ``metrics`` is a pure function of ``spec`` (the simulators are
    deterministic); ``wall_time_s`` is the one machine-dependent field
    and is excluded from regression comparison for that reason.
    """

    spec: TrialSpec
    metrics: Dict[str, float]
    wall_time_s: float

    @property
    def trial_id(self) -> str:
        return self.spec.trial_id

    def to_dict(self) -> dict:
        return {"trial_id": self.trial_id, "spec": self.spec.to_dict(),
                "metrics": dict(self.metrics),
                "wall_time_s": self.wall_time_s}

    @classmethod
    def from_dict(cls, data: dict) -> "TrialResult":
        if not isinstance(data, dict):
            raise TrajectoryError(
                f"trial must be an object, got {type(data).__name__}")
        for key in ("spec", "metrics"):
            if key not in data:
                raise TrajectoryError(f"trial is missing {key!r}")
        metrics = data["metrics"]
        if not isinstance(metrics, dict):
            raise TrajectoryError("trial 'metrics' must be an object, got "
                                  f"{type(metrics).__name__}")
        for name, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TrajectoryError(
                    f"metric {name!r} must be a number, got {value!r}")
        wall = data.get("wall_time_s", 0.0)
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            raise TrajectoryError(
                f"trial 'wall_time_s' must be a number, got {wall!r}")
        result = cls(spec=TrialSpec.from_dict(data["spec"]),
                     metrics=dict(metrics), wall_time_s=float(wall))
        stored = data.get("trial_id")
        if stored is not None and stored != result.trial_id:
            raise TrajectoryError(
                f"trial_id {stored!r} does not match its spec "
                f"({result.trial_id!r}); the file was edited inconsistently")
        return result


def run_trial(spec: TrialSpec,
              trace_path: Optional[Path] = None,
              timeline_path: Optional[Path] = None) -> TrialResult:
    """Execute one grid cell and return its metric payload.

    ``trace_path`` turns on :mod:`repro.obs` timeline recording for
    the trial and writes the Chrome/Perfetto ``trace_event`` JSON
    there.  ``timeline_path`` additionally samples windowed time
    series (:class:`repro.obs.timeline.TimelineCollector`) and writes
    the :meth:`~repro.obs.timeline.Timeline.to_json` document there.
    Both are observation-only — the metric payload is bit-identical
    with or without them.
    """
    start = time.perf_counter()
    timeline_cfg = None
    if timeline_path is not None:
        from repro.obs.timeline import TimelineConfig
        timeline_cfg = TimelineConfig(slo_ttft_s=spec.slo_ttft_s)
    if spec.kind == "serving":
        from repro.bench.serving import simulate_mode
        from repro.gpu.spec import get_spec

        report = simulate_mode(
            spec.mode, spec=get_spec(spec.gpu), kv_hbm_gb=spec.kv_hbm_gb,
            rate_rps=spec.rate_rps, n_requests=spec.n_requests,
            prompt_mean=spec.prompt_mean, output_mean=spec.output_mean,
            token_budget=spec.token_budget, max_seqs=spec.max_seqs,
            seed=spec.trial_seed, trace_kind=spec.trace_kind,
            admission=spec.admission, block_tokens=spec.block_tokens,
            prefix_caching=spec.prefix_caching,
            trace=trace_path is not None, timeline=timeline_cfg)
        metrics = report.metrics()
    else:
        from repro.bench.cluster import make_replicas
        from repro.bench.serving import make_trace
        from repro.cluster.fleet import SLO, FleetSimulator
        from repro.gpu.spec import get_spec
        from repro.serve.api import FleetConfig

        trace = make_trace(spec.trace_kind, spec.rate_rps, spec.n_requests,
                           spec.prompt_mean, spec.output_mean,
                           seed=spec.trial_seed)
        replicas = make_replicas(
            spec.n_replicas, spec.mode, spec=get_spec(spec.gpu),
            token_budget=spec.token_budget, max_seqs=spec.max_seqs,
            admission=spec.admission, block_tokens=spec.block_tokens,
            prefix_caching=spec.prefix_caching)
        report = FleetSimulator(
            replicas, config=FleetConfig(
                policy=spec.policy, name=spec.trial_id,
                trace=trace_path is not None,
                timeline=timeline_cfg)).run(trace)
        slo = (SLO(ttft_s=spec.slo_ttft_s)
               if spec.slo_ttft_s is not None else None)
        metrics = report.metrics(slo)
    if trace_path is not None and report.tracer is not None:
        from repro.obs import write_perfetto
        write_perfetto(trace_path, report.tracer, name=spec.trial_id)
    if timeline_path is not None and report.timeline is not None:
        doc = {"trial_id": spec.trial_id,
               "timeline": report.timeline.to_json()}
        if report.slo is not None:
            doc["slo"] = report.slo.to_json()
        timeline_path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return TrialResult(spec=spec, metrics=metrics,
                       wall_time_s=time.perf_counter() - start)


def _run_trial_payload(
        payload: Tuple[dict, Optional[str], Optional[str]]) -> dict:
    """Worker-process entry point (module-level so it pickles)."""
    spec_dict, trace_path, timeline_path = payload
    return run_trial(
        TrialSpec.from_dict(spec_dict),
        trace_path=Path(trace_path) if trace_path else None,
        timeline_path=Path(timeline_path) if timeline_path else None,
    ).to_dict()


def _warm_sample_cache(specs: Sequence[TrialSpec]) -> None:
    """Quantize each mode's sample tensors once, up front.

    Building a VQ mode's cost model trains codebooks on sample tensors
    (:mod:`repro.bench.workloads`), which costs ~10 s per algorithm and
    is cached in-process.  Warming the cache in the parent before the
    pool forks makes every worker inherit it, so trials pay only their
    own simulation time; on spawn-based platforms workers re-quantize
    (correct, just slower).  Quantization is seed-deterministic, so
    where the cache is filled cannot change any metric.
    """
    from repro.bench.serving import mode_cost_kwargs
    for mode in sorted({spec.mode for spec in specs}):
        mode_cost_kwargs(mode)


def _trial_trace_path(trace_dir: Optional[Path],
                      spec: TrialSpec) -> Optional[Path]:
    """Per-trial Perfetto path under ``trace_dir`` (``/`` flattened)."""
    if trace_dir is None:
        return None
    return trace_dir / f"{spec.trial_id.replace('/', '__')}.perfetto.json"


def _trial_timeline_path(timeline_dir: Optional[Path],
                         spec: TrialSpec) -> Optional[Path]:
    """Per-trial timeline-series path under ``timeline_dir``."""
    if timeline_dir is None:
        return None
    return (timeline_dir
            / f"{spec.trial_id.replace('/', '__')}.timeline.json")


def run_sweep(
    config: SweepConfig,
    workers: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    trace_dir: Optional[Path] = None,
    timeline_dir: Optional[Path] = None,
) -> "Trajectory":
    """Run every trial of a sweep; returns the unsaved trajectory.

    ``workers > 1`` fans trials out over that many worker processes;
    each trial derives its trace from :attr:`TrialSpec.trial_seed`,
    and results are collected in grid order, so the persisted
    trajectory is identical for any worker count.  ``trace_dir``
    records one Perfetto timeline per trial under that directory;
    ``timeline_dir`` records one windowed time-series document per
    trial (both observation-only: the trajectory metrics do not move).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    specs = config.trials()
    _warm_sample_cache(specs)
    results: List[TrialResult] = []
    if workers == 1:
        for i, spec in enumerate(specs):
            result = run_trial(
                spec, trace_path=_trial_trace_path(trace_dir, spec),
                timeline_path=_trial_timeline_path(timeline_dir, spec))
            results.append(result)
            if progress:
                progress(f"[{i + 1}/{len(specs)}] {result.trial_id}: "
                         f"{result.wall_time_s:.2f} s")
    else:
        payloads = []
        for spec in specs:
            path = _trial_trace_path(trace_dir, spec)
            tl_path = _trial_timeline_path(timeline_dir, spec)
            payloads.append((spec.to_dict(),
                             str(path) if path is not None else None,
                             str(tl_path) if tl_path is not None else None))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves submission order, which is grid order.
            for i, data in enumerate(pool.map(_run_trial_payload, payloads)):
                result = TrialResult.from_dict(data)
                results.append(result)
                if progress:
                    progress(f"[{i + 1}/{len(specs)}] {result.trial_id}: "
                             f"{result.wall_time_s:.2f} s")
    return Trajectory(pr=PR_NUMBER, name=config.name,
                      config=config.to_dict(), trials=results,
                      git_sha=git_sha())


# ----------------------------------------------------------------------
# Results store: the BENCH_<pr>.json perf trajectory
# ----------------------------------------------------------------------
def git_sha(root: Optional[Path] = None) -> Optional[str]:
    """The checkout's commit SHA, or ``None`` outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or Path(__file__).resolve().parents[3],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class Trajectory:
    """The persisted result set of one orchestrated sweep.

    ``extra`` carries any top-level fields this schema version does
    not know about, so a trajectory written by a newer minor revision
    survives a load/save round trip losslessly.
    """

    pr: int
    name: str
    config: dict
    trials: List[TrialResult]
    git_sha: Optional[str] = None
    schema_version: int = SCHEMA_VERSION
    extra: Dict[str, Any] = field(default_factory=dict)

    _KNOWN_FIELDS = ("schema_version", "pr", "name", "git_sha", "config",
                     "trials")

    @property
    def total_wall_time_s(self) -> float:
        return sum(t.wall_time_s for t in self.trials)

    def metrics_by_trial(self) -> Dict[str, Dict[str, float]]:
        """``trial_id -> metrics``, the join key for regression deltas."""
        return {t.trial_id: t.metrics for t in self.trials}

    def to_dict(self) -> dict:
        out = {
            "schema_version": self.schema_version,
            "pr": self.pr,
            "name": self.name,
            "git_sha": self.git_sha,
            "config": self.config,
            "trials": [t.to_dict() for t in self.trials],
        }
        for key, value in self.extra.items():
            out.setdefault(key, value)
        return out

    def save(self, path) -> Path:
        """Write the trajectory as stable, diff-friendly JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict, source: str = "trajectory") -> "Trajectory":
        if not isinstance(data, dict):
            raise TrajectoryError(f"{source}: top level must be an object, "
                                  f"got {type(data).__name__}")
        version = data.get("schema_version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise TrajectoryError(
                f"{source}: missing or non-integer 'schema_version'")
        if version > SCHEMA_VERSION:
            raise TrajectoryError(
                f"{source}: schema_version {version} is newer than this "
                f"reader ({SCHEMA_VERSION}); upgrade before comparing")
        for key in ("pr", "name", "trials"):
            if key not in data:
                raise TrajectoryError(f"{source}: missing {key!r}")
        if not isinstance(data["pr"], int) or isinstance(data["pr"], bool):
            raise TrajectoryError(f"{source}: 'pr' must be an integer")
        if not isinstance(data["trials"], list):
            raise TrajectoryError(f"{source}: 'trials' must be a list, got "
                                  f"{type(data['trials']).__name__}")
        config = data.get("config", {})
        if not isinstance(config, dict):
            raise TrajectoryError(f"{source}: 'config' must be an object")
        trials = []
        for i, entry in enumerate(data["trials"]):
            try:
                trials.append(TrialResult.from_dict(entry))
            except TrajectoryError as exc:
                raise TrajectoryError(
                    f"{source}: trial #{i} is malformed: {exc}") from None
        ids = [t.trial_id for t in trials]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise TrajectoryError(f"{source}: duplicate trial ids {dupes}")
        extra = {k: v for k, v in data.items() if k not in cls._KNOWN_FIELDS}
        return cls(pr=data["pr"], name=str(data["name"]), config=config,
                   trials=trials, git_sha=data.get("git_sha"),
                   schema_version=version, extra=extra)

    @classmethod
    def load(cls, path) -> "Trajectory":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise TrajectoryError(
                f"cannot read trajectory {path}: {exc}") from None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TrajectoryError(
                f"trajectory {path} is not valid JSON: {exc}") from None
        return cls.from_dict(data, source=str(path))


def bench_path(root, pr: int = PR_NUMBER) -> Path:
    """``<root>/BENCH_<pr>.json`` — the trajectory file convention."""
    return Path(root) / f"BENCH_{pr}.json"


def find_previous(root, pr: int = PR_NUMBER,
                  exclude: Optional[Path] = None) -> Optional[Path]:
    """The newest ``BENCH_<n>.json`` under ``root`` with ``n < pr``.

    This is what the regression report compares against; ``None`` when
    this PR starts the trajectory.  ``exclude`` skips one path — the
    trajectory just written, which must never be its own baseline
    (possible when ``--out`` carries a lower ``BENCH_<n>`` number).
    """
    skip = Path(exclude).resolve() if exclude is not None else None
    best: Optional[Tuple[int, Path]] = None
    for path in Path(root).glob("BENCH_*.json"):
        stem = path.stem[len("BENCH_"):]
        if not stem.isdigit():
            continue
        if skip is not None and path.resolve() == skip:
            continue
        n = int(stem)
        if n < pr and (best is None or n > best[0]):
            best = (n, path)
    return best[1] if best else None


# ----------------------------------------------------------------------
# Regression comparison and markdown report
# ----------------------------------------------------------------------
#: Metrics where a larger value is an improvement.
HIGHER_BETTER = frozenset({
    "throughput_rps", "output_tokens_per_s", "goodput_rps",
    "slo_attainment", "prefix_hit_rate", "cached_token_fraction",
})

#: Metrics where a smaller value is an improvement.
LOWER_BETTER = frozenset({
    "ttft_p50_ms", "ttft_p95_ms", "tpot_p50_ms", "latency_p50_s",
    "latency_p99_s", "n_rejected",
})

#: Headline columns of the per-trial summary table, in order.
_SUMMARY_METRICS = ("throughput_rps", "ttft_p50_ms", "tpot_p50_ms",
                    "peak_kv_occupancy", "n_preempted", "prefix_hit_rate")


@dataclass(frozen=True)
class Delta:
    """One metric's change between two trajectories' matching trials."""

    trial_id: str
    metric: str
    before: float
    after: float

    @property
    def rel_change(self) -> float:
        """Signed relative change; ``inf`` when appearing from zero."""
        if self.before == self.after:
            return 0.0
        if self.before == 0:
            return float("inf") if self.after > 0 else float("-inf")
        return (self.after - self.before) / abs(self.before)

    def is_regression(self, tolerance: float) -> bool:
        """Whether this delta worsens a directional metric beyond tol."""
        if self.metric in HIGHER_BETTER:
            return self.rel_change < -tolerance
        if self.metric in LOWER_BETTER:
            return self.rel_change > tolerance
        return False

    def is_improvement(self, tolerance: float) -> bool:
        if self.metric in HIGHER_BETTER:
            return self.rel_change > tolerance
        if self.metric in LOWER_BETTER:
            return self.rel_change < -tolerance
        return False


def compare(current: Trajectory, previous: Trajectory) -> List[Delta]:
    """Per-metric deltas over the trials both trajectories ran.

    Only *directional* metrics (``HIGHER_BETTER`` / ``LOWER_BETTER``)
    produce deltas — informational counters like ``peak_seqs`` change
    legitimately with any behavioural PR and would only add noise.
    Trials present on one side only are skipped; the report names them.
    """
    prev = previous.metrics_by_trial()
    deltas: List[Delta] = []
    for trial in current.trials:
        before = prev.get(trial.trial_id)
        if before is None:
            continue
        for metric in sorted(trial.metrics):
            if metric not in HIGHER_BETTER and metric not in LOWER_BETTER:
                continue
            if metric not in before:
                continue
            deltas.append(Delta(trial.trial_id, metric,
                                float(before[metric]),
                                float(trial.metrics[metric])))
    return deltas


def _fmt_num(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value):d}"
    if abs(value) >= 100:
        return f"{value:.1f}"
    return f"{value:.3f}"


def render_report(
    current: Trajectory,
    previous: Optional[Trajectory] = None,
    tolerance: float = 0.05,
) -> str:
    """Markdown report: per-trial summary plus deltas vs ``previous``.

    Regressions (a directional metric worse by more than ``tolerance``
    relative) are flagged with ``**REGRESSION**``; CI greps the word,
    and :func:`main` exits non-zero under ``--check`` when any is
    present.
    """
    lines = [
        f"# Perf trajectory — PR {current.pr} ({current.name})",
        "",
        f"- trials: {len(current.trials)}",
        f"- git SHA: `{current.git_sha or 'unknown'}`",
        f"- total simulated-trial wall time: "
        f"{current.total_wall_time_s:.1f} s",
        "",
        "## Trials",
        "",
    ]
    cols = [m for m in _SUMMARY_METRICS
            if any(m in t.metrics for t in current.trials)]
    lines.append("| trial | " + " | ".join(cols) + " |")
    lines.append("|---" * (len(cols) + 1) + "|")
    for trial in current.trials:
        cells = [_fmt_num(trial.metrics[m]) if m in trial.metrics else "-"
                 for m in cols]
        lines.append(f"| `{trial.trial_id}` | " + " | ".join(cells) + " |")
    lines.append("")

    lines.append(f"## Regression check (tolerance {tolerance:.0%})")
    lines.append("")
    if previous is None:
        lines.append("No previous `BENCH_<n>.json` trajectory found — "
                     "this file starts the perf-trajectory convention; "
                     "the next PR should compare against it.")
        lines.append("")
        return "\n".join(lines)

    lines.append(f"Compared against PR {previous.pr} "
                 f"(`{previous.git_sha or 'unknown'}`, "
                 f"{len(previous.trials)} trials).")
    lines.append("")
    deltas = compare(current, previous)
    prev_ids = set(previous.metrics_by_trial())
    cur_ids = {t.trial_id for t in current.trials}
    for label, missing in (("only in current", sorted(cur_ids - prev_ids)),
                           ("only in previous", sorted(prev_ids - cur_ids))):
        if missing:
            lines.append(f"- trials {label} (not compared): "
                         + ", ".join(f"`{m}`" for m in missing))
    if not deltas:
        lines.append("No overlapping trials to compare.")
        lines.append("")
        return "\n".join(lines)

    regressions = [d for d in deltas if d.is_regression(tolerance)]
    improvements = [d for d in deltas if d.is_improvement(tolerance)]
    lines.append(f"- directional metric deltas: {len(deltas)} "
                 f"({len(improvements)} improved, "
                 f"{len(regressions)} regressed beyond tolerance)")
    lines.append("")
    for title, flagged, tag in (
            ("### Regressions", regressions, " **REGRESSION**"),
            ("### Improvements", improvements, "")):
        if not flagged:
            continue
        lines.append(title)
        lines.append("")
        lines.append("| trial | metric | before | after | change |")
        lines.append("|---|---|---|---|---|")
        for d in sorted(flagged,
                        key=lambda d: -abs(d.rel_change
                                           if d.rel_change not in
                                           (float("inf"), float("-inf"))
                                           else 1e9)):
            lines.append(
                f"| `{d.trial_id}` | {d.metric} | {_fmt_num(d.before)} | "
                f"{_fmt_num(d.after)} | {d.rel_change:+.1%}{tag} |")
        lines.append("")
    if not regressions:
        lines.append("No regressions beyond tolerance.")
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Presets and CLI
# ----------------------------------------------------------------------
def demo_config() -> SweepConfig:
    """The committed trajectory grid (``BENCH_6.json`` onward).

    Nine serving trials on a sessionized chat trace at a deliberately
    tight 1 GB KV budget: three KV schemes crossed with (reserve,
    paged, paged+prefix) — pressure enough that admission policy and
    prefix caching visibly move the metrics, yet small enough that the
    whole grid runs in well under a minute.
    """
    return SweepConfig(
        name="bench6-serving",
        kind="serving",
        modes=("fp16", "kv-cq-4", "kv-cq-2"),
        admissions=("reserve", "paged"),
        prefix_caching=(False, True),
        trace_kinds=("chat",),
        rates=(12.0,),
        n_requests=48,
        prompt_mean=160,
        output_mean=48,
        kv_hbm_gb=1.0,
        max_seqs=48,
        seed=0,
    )


def mini_config() -> SweepConfig:
    """A 2x2 (scheme x admission) grid for smoke tests: 4 fast trials."""
    return SweepConfig(
        name="mini",
        kind="serving",
        modes=("fp16", "kv-cq-4"),
        admissions=("reserve", "paged"),
        trace_kinds=("poisson",),
        rates=(16.0,),
        n_requests=24,
        prompt_mean=128,
        output_mean=32,
        seed=0,
    )


PRESETS: Dict[str, Callable[[], SweepConfig]] = {
    "demo": demo_config,
    "mini": mini_config,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.bench.orchestrator``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.orchestrator",
        description="Run a declarative sweep grid over the serving/fleet "
                    "experiments, persist the BENCH_<pr>.json perf "
                    "trajectory and render its regression report.")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--config", type=Path, default=None,
                        help="sweep config JSON file (see SweepConfig)")
    source.add_argument("--preset", default="demo",
                        choices=sorted(PRESETS),
                        help="built-in sweep grid (default: demo, the "
                             "committed trajectory grid)")
    parser.add_argument("--out", type=Path, default=None,
                        help=f"trajectory output path (default: "
                             f"BENCH_{PR_NUMBER}.json in the repo root)")
    parser.add_argument("--report", type=Path, default=None,
                        help="markdown report path (default: --out with "
                             "a .md suffix)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="trajectory to diff against (default: the "
                             "newest BENCH_<n>.json with n < pr next to "
                             "--out)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for trial execution")
    parser.add_argument("--trace-dir", type=Path, default=None,
                        help="record one Perfetto timeline per trial "
                             "into this directory (created if missing); "
                             "observation-only, metrics do not move")
    parser.add_argument("--timeline-dir", type=Path, default=None,
                        help="record one windowed time-series document "
                             "(Timeline.to_json, plus the SLO report when "
                             "the sweep sets slo_ttft_s) per trial into "
                             "this directory (created if missing); "
                             "observation-only, metrics do not move")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative regression tolerance (default 5%%)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any regression beyond tolerance "
                             "is flagged")
    args = parser.parse_args(argv)

    config = (SweepConfig.from_json_file(args.config)
              if args.config else PRESETS[args.preset]())
    out = args.out or bench_path(Path(__file__).resolve().parents[3])
    report_path = args.report or out.with_suffix(".md")

    print(f"sweep {config.name!r}: {len(config.trials())} trials, "
          f"{args.workers} worker(s)")
    if args.trace_dir is not None:
        args.trace_dir.mkdir(parents=True, exist_ok=True)
        print(f"traces     -> {args.trace_dir}/<trial_id>.perfetto.json")
    if args.timeline_dir is not None:
        args.timeline_dir.mkdir(parents=True, exist_ok=True)
        print(f"timelines  -> {args.timeline_dir}/"
              f"<trial_id>.timeline.json")
    trajectory = run_sweep(config, workers=args.workers, progress=print,
                           trace_dir=args.trace_dir,
                           timeline_dir=args.timeline_dir)
    trajectory.save(out)
    print(f"trajectory -> {out}")

    previous = None
    baseline = args.baseline or find_previous(out.parent, trajectory.pr,
                                              exclude=out)
    if baseline is not None:
        previous = Trajectory.load(baseline)
        print(f"baseline   <- {baseline} (PR {previous.pr})")
    report = render_report(trajectory, previous, tolerance=args.tolerance)
    report_path.write_text(report + "\n")
    print(f"report     -> {report_path}")

    if previous is not None:
        regressions = [d for d in compare(trajectory, previous)
                       if d.is_regression(args.tolerance)]
        for d in regressions:
            print(f"REGRESSION {d.trial_id} {d.metric}: "
                  f"{d.before:.6g} -> {d.after:.6g} ({d.rel_change:+.1%})")
        if regressions and args.check:
            return 1
        if not regressions:
            print("no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
