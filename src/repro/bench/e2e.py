"""End-to-end decode latency ledger (Fig. 17).

Sums modelled kernel latencies over every operator of a decode step
(enumerated by :func:`repro.llm.model.decode_operator_shapes`) under
four serving modes:

- ``fp16`` — FP16 weights and KV cache;
- ``qserve`` — AWQ-style INT4 weights + QoQ-style INT4 KV (the paper's
  qServe baseline);
- ``vq4`` — VQ-LLM with QuiP#-4 weights and CQ-4 KV (equivalent 4-bit);
- ``vq2`` — VQ-LLM with GPTVQ-2 weights and CQ-2 KV (equivalent 2-bit).

Generation latency integrates the decode step over the generated tokens
(the KV cache grows as it generates); element-wise operators (RMSNorm,
SiLU, RoPE) are costed as bandwidth-bound passes plus launch overhead,
which lands them at the paper's ~10% (FP16) / ~20% (4-bit) share.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.bench.harness import ExperimentResult
from repro.bench.workloads import attention_sample, weight_sample
from repro.core.engine import ComputeEngine
from repro.gpu.costmodel import LAUNCH_OVERHEAD_S
from repro.gpu.spec import GPUSpec, get_spec
from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.llm.config import LlamaConfig
from repro.llm.model import decode_operator_shapes

#: Serving modes and the algorithms they map to.
MODES = ("fp16", "qserve", "vq4", "vq2")
_VQ_WEIGHT_ALGO = {"vq4": "quip#-4", "vq2": "gptvq-2"}
_VQ_KV_ALGO = {"vq4": "cq-4", "vq2": "cq-2"}

#: Kernel launches per layer of the element-wise operators (two norms,
#: RoPE on Q and K, SiLU, gate multiply, two residual adds).
ELEMENTWISE_LAUNCHES = 8


@dataclass
class DecodeStepBreakdown:
    """Latency of one decode step, by operator class (microseconds)."""

    gemv_us: float
    attention_us: float
    elementwise_us: float

    @property
    def total_us(self) -> float:
        return self.gemv_us + self.attention_us + self.elementwise_us

    @property
    def elementwise_share(self) -> float:
        return self.elementwise_us / self.total_us


class E2ELedger:
    """Costs decode steps for one (GPU, model) pair.

    Kernel latencies go through the engine's memoized
    :meth:`~repro.core.engine.ComputeEngine.batch_latency_us`, so
    repeated decode steps at the same (batch, seq_len) — the common case
    when integrating over a generation or stepping a serving simulation
    — cost one dict lookup after the first evaluation.
    """

    def __init__(self, spec: GPUSpec, config: LlamaConfig,
                 engine: Optional[ComputeEngine] = None):
        self.spec = spec
        self.config = config
        self.engine = engine or ComputeEngine(spec)
        self._step_memo: Dict[tuple, DecodeStepBreakdown] = {}

    def _gemv_us(self, shape: GemmShape, mode: str) -> float:
        if mode == "fp16":
            return self.engine.batch_latency_us("gemv", shape)
        if mode == "qserve":
            return self.engine.batch_latency_us("gemv", shape, bits=4)
        qt = weight_sample(_VQ_WEIGHT_ALGO[mode])
        return self.engine.batch_latency_us("gemv", shape, qt=qt, level="O4")

    def _attention_us(self, shape: AttentionShape, mode: str) -> float:
        if mode == "fp16":
            return self.engine.batch_latency_us("attention", shape)
        if mode == "qserve":
            return self.engine.batch_latency_us("attention", shape, bits=4)
        qt_k, qt_v = attention_sample(_VQ_KV_ALGO[mode])
        return self.engine.batch_latency_us("attention", shape, qt=qt_k,
                                            qt_v=qt_v, level="O4")

    def _elementwise_us(self, elements: int, quantized: bool) -> float:
        # Bandwidth-bound read+write pass at FP16, plus launch overheads.
        bytes_moved = elements * 2 * 2
        bw = self.spec.dram_bytes_per_s * 0.75
        extra = 1.3 if quantized else 1.0  # dequant epilogues & scales
        return (bytes_moved * extra / bw
                + ELEMENTWISE_LAUNCHES * LAUNCH_OVERHEAD_S) * 1e6

    def decode_step(self, batch: int, seq_len: int,
                    mode: str) -> DecodeStepBreakdown:
        """Latency breakdown of one decode step (memoized)."""
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected {MODES}")
        key = (batch, seq_len, mode)
        if key in self._step_memo:
            return self._step_memo[key]
        gemv_us = attn_us = ew_us = 0.0
        for op in decode_operator_shapes(self.config, batch, seq_len):
            if op.kind == "gemv":
                shape = GemmShape(m=op.m, n=op.n, k=op.k)
                # The LM head stays FP16 in every serving mode.
                op_mode = "fp16" if op.name == "lm_head" else mode
                gemv_us += self._gemv_us(shape, op_mode) * op.count
            elif op.kind == "attention":
                shape = AttentionShape(batch=op.batch, heads=op.heads,
                                       seq_len=op.seq_len,
                                       head_dim=op.head_dim)
                attn_us += self._attention_us(shape, mode) * op.count
            else:
                ew_us += self._elementwise_us(op.elements,
                                              mode != "fp16") * op.count
        breakdown = DecodeStepBreakdown(gemv_us, attn_us, ew_us)
        self._step_memo[key] = breakdown
        return breakdown

    def generation_us(self, batch: int, prompt_len: int, gen_tokens: int,
                      mode: str, samples: int = 4) -> float:
        """Latency of generating ``gen_tokens`` after a prompt.

        Integrates the decode-step cost over the growing KV cache,
        sampling a few cache lengths and interpolating (the cost is
        piecewise-linear in sequence length).
        """
        if gen_tokens <= 0:
            return 0.0
        points = max(2, samples)
        total = 0.0
        step = gen_tokens / (points - 1)
        costs = []
        for i in range(points):
            seq = int(prompt_len + i * step)
            costs.append(self.decode_step(batch, seq, mode).total_us)
        # Trapezoidal integration over the token axis.
        for i in range(points - 1):
            total += (costs[i] + costs[i + 1]) / 2 * step
        return total

    def speedups(self, batch: int, prompt_len: int,
                 gen_tokens: int) -> Dict[str, float]:
        """E2E speedup of each mode over FP16 (Fig. 17 left)."""
        base = self.generation_us(batch, prompt_len, gen_tokens, "fp16")
        return {
            mode: base / self.generation_us(batch, prompt_len, gen_tokens,
                                            mode)
            for mode in MODES
        }


def run(argv: Optional[Sequence[str]] = None,
        reports: Optional[dict] = None) -> ExperimentResult:
    """Run the CLI experiment and return the structured result.

    Same call shape as :func:`repro.bench.serving.run` and
    :func:`repro.bench.cluster.run`: the caller gets the
    :class:`~repro.bench.harness.ExperimentResult` back (and, with a
    dict as ``reports``, each mode's per-step
    :class:`DecodeStepBreakdown`) instead of having to scrape stdout.
    The orchestrator and tests consume this; :func:`main` is the
    printing wrapper around it.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.e2e",
        description="End-to-end decode latency ledger (Fig. 17): FP16 "
                    "vs qServe vs VQ-LLM serving modes.")
    parser.add_argument("--gpu", default="rtx4090",
                        help="GPU preset name (rtx4090, a40, a100)")
    parser.add_argument("--model", default="7b", choices=["7b", "65b"],
                        help="Llama model size")
    parser.add_argument("--modes", nargs="+", default=list(MODES),
                        choices=list(MODES), metavar="MODE",
                        help=f"serving modes to compare {MODES}")
    parser.add_argument("--batch", type=int, default=16,
                        help="decode batch size")
    parser.add_argument("--prompt-len", type=int, default=1024,
                        help="prompt length, tokens")
    parser.add_argument("--gen-tokens", type=int, default=256,
                        help="tokens generated per request")
    args = parser.parse_args(argv)

    from repro.llm.config import llama_7b, llama_65b
    spec = get_spec(args.gpu)
    config = llama_7b() if args.model == "7b" else llama_65b()
    ledger = E2ELedger(spec, config)

    result = ExperimentResult(
        experiment_id="e2e",
        title=f"E2E decode latency, Llama-{args.model} on {spec.name} "
              f"(batch {args.batch}, prompt {args.prompt_len}, "
              f"+{args.gen_tokens} tokens)",
        columns=("mode", "step_us", "gemv_us", "attn_us", "elementwise_us",
                 "generation_ms", "speedup_vs_fp16"),
    )
    seq = args.prompt_len + args.gen_tokens // 2
    base_us = ledger.generation_us(args.batch, args.prompt_len,
                                   args.gen_tokens, "fp16")
    for mode in args.modes:
        step = ledger.decode_step(args.batch, seq, mode)
        gen_us = ledger.generation_us(args.batch, args.prompt_len,
                                      args.gen_tokens, mode)
        result.add_row(mode, step.total_us, step.gemv_us,
                       step.attention_us, step.elementwise_us,
                       gen_us / 1e3, base_us / gen_us)
        if reports is not None:
            reports[mode] = step
    result.notes.append("speedups integrate the decode step over the "
                        "growing KV cache (trapezoidal)")
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.bench.e2e``."""
    print(run(argv))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
