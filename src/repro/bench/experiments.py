"""One function per paper table/figure (the per-experiment index of
DESIGN.md).  Every function returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows mirror the
series the paper plots; the ``benchmarks/`` suite calls these and
asserts the paper's qualitative claims on the returned data.

Run from the command line::

    python -m repro.bench.experiments            # everything
    python -m repro.bench.experiments fig13 tbl5 # a subset
"""

from __future__ import annotations

import numpy as np

from repro.bench.accuracy import (
    correlated_2d_sample,
    model_accuracy_proxy,
    mse_elementwise,
    mse_vq,
)
from repro.bench.e2e import MODES, E2ELedger
from repro.bench.harness import ExperimentResult
from repro.bench.workloads import (
    attention_sample,
    llama_attention_shape,
    llama_gemm_shape,
    llama_gemv_shape,
    weight_sample,
)
from repro.core.codegen import VQLLMCodeGenerator
from repro.core.dataflow import axes_for
from repro.core.fusion import REQUIRED_LAYOUT, n_shuffles
from repro.core.hotness import block_consistency, per_block_counts, \
    profile_hotness
from repro.core.slack import find_slack
from repro.core.template import BASE_RESOURCES
from repro.gpu.costmodel import CostModel
from repro.gpu.occupancy import occupancy_curve_regs, occupancy_curve_smem
from repro.gpu.spec import A40, RTX4090
from repro.kernels.attention import (
    FlashAttentionKernel,
    FlashDecodingKernel,
    PagedFlashAttentionKernel,
    PagedFlashDecodingKernel,
)
from repro.kernels.elementwise import (
    ElementwiseAttentionKernel,
    ElementwiseGemmKernel,
    ElementwiseGemvKernel,
)
from repro.kernels.gemm import FP16GemmKernel, FP16GemvKernel
from repro.llm.config import llama_7b, llama_65b
from repro.vq.algorithms import ALGORITHMS, make_config

LEVELS = ("GC", "SC", "O1", "O2", "O3", "O4")
WEIGHT_ALGOS = ("quip#-4", "aqlm-3", "gptvq-2")


# ----------------------------------------------------------------------
# Fig. 2 — VQ vs element-wise quantization accuracy
# ----------------------------------------------------------------------
def fig02_accuracy(seed: int = 0) -> ExperimentResult:
    """VQ beats element-wise reconstruction at equal bit width."""
    result = ExperimentResult(
        "fig2", "Fig. 2 proxy: reconstruction MSE on correlated data",
        columns=("bits", "elementwise_mse", "vq_mse", "vq_wins"),
    )
    data = correlated_2d_sample(seed=seed)
    for bits in (2, 3, 4):
        ew = mse_elementwise(data, bits)
        vq = mse_vq(data, bits, vector_size=2, seed=seed)
        result.add_row(bits, ew, vq, vq < ew)
    return result


# ----------------------------------------------------------------------
# Fig. 4 — motivation: GC/SC attention vs FP16, with counters
# ----------------------------------------------------------------------
def fig04_motivation() -> ExperimentResult:
    """Latency and profiler counters of naive VQ attention (CQ-2)."""
    spec = RTX4090
    gen = VQLLMCodeGenerator(spec)
    cost = CostModel(spec)
    shape = llama_attention_shape(llama_7b(), batch=1, seq_len=1024)
    qt_k, qt_v = attention_sample("cq-2")

    fp16 = FlashDecodingKernel(shape)
    fp16_counters = cost.resolve_occupancy(fp16.counters(spec))
    fp16_us = cost.latency(fp16.counters(spec)).total_us

    result = ExperimentResult(
        "fig4", "Fig. 4: VQ-attn GC/SC vs FP16 (CQ-2, Llama-7B, RTX 4090)",
        columns=("version", "latency_us", "rel_latency", "occupancy",
                 "smem_per_block", "bank_conflicts",
                 "global_to_shared_MB", "shared_to_reg_MB"),
    )
    result.add_row("FP16-attn", fp16_us, 1.0, fp16_counters.occupancy,
                   fp16_counters.smem_per_block, 0.0,
                   fp16_counters.global_to_shared_bytes / 1e6,
                   fp16_counters.shared_to_reg_bytes / 1e6)
    for level, label in (("GC", "VQ-attn-GC"), ("SC", "VQ-attn-SC")):
        k = gen.generate_attention(shape, qt_k, qt_v, level=level)
        c = cost.resolve_occupancy(k.counters())
        result.add_row(label, k.latency_us(), k.latency_us() / fp16_us,
                       c.occupancy, c.smem_per_block,
                       c.bank_conflict_transactions,
                       c.global_to_shared_bytes / 1e6,
                       c.shared_to_reg_bytes / 1e6)
    return result


# ----------------------------------------------------------------------
# Fig. 8 / Fig. 9 — codebook entry hotness
# ----------------------------------------------------------------------
def fig08_hotness() -> ExperimentResult:
    """Entry access-frequency skew for AQLM-3 (Fig. 8)."""
    qt = weight_sample("aqlm-3")
    profile = profile_hotness(qt)
    result = ExperimentResult(
        "fig8", "Fig. 8: codebook entry access frequency (AQLM-3)",
        columns=("metric", "value"),
    )
    result.add_row("n_entries", profile.n_entries)
    result.add_row("total_accesses", profile.total_accesses)
    result.add_row("mean_count", float(profile.counts.mean()))
    result.add_row("below_mean_fraction", profile.below_mean_fraction())
    result.add_row("hot_entries_mu_3sigma", profile.hot_entries(3.0))
    result.add_row("top32_coverage", profile.coverage(32))
    result.add_row("top256_coverage", profile.coverage(256))
    return result


def fig09_block_hotness() -> ExperimentResult:
    """Hot entries are consistent across tensor parts (Fig. 9)."""
    result = ExperimentResult(
        "fig9", "Fig. 9: hot-entry consistency across thread blocks",
        columns=("algorithm", "n_blocks", "consistency_top32"),
    )
    for algo in WEIGHT_ALGOS:
        qt = weight_sample(algo)
        counts = per_block_counts(qt, rows_per_block=64)
        result.add_row(algo, counts.shape[0],
                       block_consistency(counts, top_n=32))
    return result


# ----------------------------------------------------------------------
# Fig. 10 — occupancy curves and slack
# ----------------------------------------------------------------------
def fig10_slack() -> ExperimentResult:
    """Occupancy vs resource demand; slack per operation (Fig. 10)."""
    spec = RTX4090
    result = ExperimentResult(
        "fig10", "Fig. 10: resource slack per operation (RTX 4090)",
        columns=("operation", "base_regs", "base_smem",
                 "reg_slack", "smem_slack_bytes", "baseline_blocks"),
    )
    for op, base in BASE_RESOURCES.items():
        slack = find_slack(spec, base["threads"], base["regs"],
                           base["smem"])
        result.add_row(op, base["regs"], base["smem"],
                       slack.regs_per_thread, slack.smem_bytes,
                       slack.baseline_blocks_per_sm)
    # Attach the raw curves so plots/tests can check the step structure.
    base = BASE_RESOURCES["gemv"]
    result.notes.append("smem curve (gemv): " + str(occupancy_curve_smem(
        spec, base["threads"], base["regs"],
        [8192, 16384, 32768, 65536, 98304])))
    result.notes.append("reg curve (gemv): " + str(occupancy_curve_regs(
        spec, base["threads"], base["smem"], [32, 64, 96, 128, 192])))
    return result


# ----------------------------------------------------------------------
# Fig. 13 — overall latency reduction vs the unoptimized (GC) version
# ----------------------------------------------------------------------
def fig13_overall(model: str = "7b") -> ExperimentResult:
    """Best-level latency reduction vs GC for every kernel/config."""
    spec = RTX4090
    gen = VQLLMCodeGenerator(spec)
    config = llama_7b() if model == "7b" else llama_65b()
    result = ExperimentResult(
        "fig13", f"Fig. 13: latency reduction vs GC (Llama-{model.upper()})",
        columns=("kernel", "algorithm", "gc_us", "best_us", "best_level",
                 "reduction"),
    )

    def add(kernel_name, algo, latencies):
        best_level = min(latencies, key=latencies.get)
        red = 1.0 - latencies[best_level] / latencies["GC"]
        result.add_row(kernel_name, algo, latencies["GC"],
                       latencies[best_level], best_level, red)

    gemm_shape = llama_gemm_shape(config, seq_len=1024)
    for algo in WEIGHT_ALGOS:
        qt = weight_sample(algo)
        add("GeMM", algo, {
            lv: gen.generate_gemm(gemm_shape, qt, level=lv).latency_us()
            for lv in LEVELS})
    for batch in (1, 16):
        shape = llama_gemv_shape(config, batch=batch)
        for algo in WEIGHT_ALGOS:
            qt = weight_sample(algo)
            add(f"GeMV BS{batch}", algo, {
                lv: gen.generate_gemv(shape, qt, level=lv).latency_us()
                for lv in LEVELS})
    qt_k, qt_v = attention_sample("cq-2")
    for seq in (1024, 4096):
        for batch in (1, 8):
            shape = llama_attention_shape(config, batch=batch, seq_len=seq)
            add(f"Attn {seq // 1024}k BS{batch}", "cq-2", {
                lv: gen.generate_attention(shape, qt_k, qt_v,
                                           level=lv).latency_us()
                for lv in LEVELS})

    mean_red = float(np.mean(result.column("reduction")))
    max_red = float(np.max(result.column("reduction")))
    result.notes.append(f"mean reduction {mean_red:.1%}, "
                        f"max {max_red:.1%} "
                        "(paper: mean 46.13%, max 53.73%)")
    return result


# ----------------------------------------------------------------------
# Fig. 14 — GeMM / GeMV optimization breakdown
# ----------------------------------------------------------------------
def fig14_breakdown(operation: str = "gemm",
                    batch: int = 1) -> ExperimentResult:
    """Per-level latency of weight-quantized kernels (Fig. 14)."""
    spec = RTX4090
    gen = VQLLMCodeGenerator(spec)
    config = llama_7b()
    if operation == "gemm":
        shape = llama_gemm_shape(config, seq_len=1024)
        generate = gen.generate_gemm
    else:
        shape = llama_gemv_shape(config, batch=batch)
        generate = gen.generate_gemv
    result = ExperimentResult(
        "fig14", f"Fig. 14: {operation.upper()} breakdown (Llama-7B)",
        columns=("algorithm",) + LEVELS,
    )
    for algo in WEIGHT_ALGOS:
        qt = weight_sample(algo)
        row = [generate(shape, qt, level=lv).latency_us() for lv in LEVELS]
        result.add_row(algo, *row)
    return result


# ----------------------------------------------------------------------
# Fig. 15 — attention breakdown and CQ-4 vs CQ-2
# ----------------------------------------------------------------------
def fig15_attention_breakdown() -> ExperimentResult:
    """Per-level attention latency, CQ-2 and CQ-4 (Fig. 15)."""
    spec = RTX4090
    gen = VQLLMCodeGenerator(spec)
    config = llama_7b()
    result = ExperimentResult(
        "fig15", "Fig. 15: Attention (decode) breakdown (Llama-7B)",
        columns=("algorithm", "seq_len", "batch") + LEVELS,
    )
    for algo in ("cq-2", "cq-4"):
        qt_k, qt_v = attention_sample(algo)
        for seq in (1024, 4096):
            for batch in (1, 8):
                shape = llama_attention_shape(config, batch=batch,
                                              seq_len=seq)
                row = [gen.generate_attention(shape, qt_k, qt_v,
                                              level=lv).latency_us()
                       for lv in LEVELS]
                result.add_row(algo, seq, batch, *row)
    return result


# ----------------------------------------------------------------------
# Fig. 16 — comparison with FP16 and element-wise quantization
# ----------------------------------------------------------------------
def fig16_elementwise() -> ExperimentResult:
    """VQ-LLM vs AWQ/QoQ/FP16 at equivalent 4-bit (Fig. 16)."""
    spec = RTX4090
    gen = VQLLMCodeGenerator(spec)
    config = llama_7b()
    result = ExperimentResult(
        "fig16", "Fig. 16: latency vs element-wise quantization (4-bit)",
        columns=("kernel", "version", "latency_us", "relative_to_ew"),
    )

    gemm_shape = llama_gemm_shape(config, seq_len=1024)
    awq_gemm = ElementwiseGemmKernel(gemm_shape, bits=4).latency_us(spec)
    result.add_row("GeMM", "AWQ-4bit", awq_gemm, 1.0)
    result.add_row("GeMM", "cutlass-FP16",
                   FP16GemmKernel(gemm_shape).latency_us(spec),
                   FP16GemmKernel(gemm_shape).latency_us(spec) / awq_gemm)
    for algo in ("quip#-4", "gptvq-2"):
        qt = weight_sample(algo)
        us = gen.generate_gemm(gemm_shape, qt, level="O4").latency_us()
        result.add_row("GeMM", f"VQ-LLM {algo}", us, us / awq_gemm)
    gc_us = gen.generate_gemm(gemm_shape, weight_sample("quip#-4"),
                              level="GC").latency_us()
    result.add_row("GeMM", "open-source-style (GC) quip#-4", gc_us,
                   gc_us / awq_gemm)

    gemv_shape = llama_gemv_shape(config, batch=16)
    awq_gemv = ElementwiseGemvKernel(gemv_shape, bits=4).latency_us(spec)
    result.add_row("GeMV BS16", "AWQ-4bit", awq_gemv, 1.0)
    result.add_row("GeMV BS16", "cutlass-FP16",
                   FP16GemvKernel(gemv_shape).latency_us(spec),
                   FP16GemvKernel(gemv_shape).latency_us(spec) / awq_gemv)
    for algo in ("quip#-4", "gptvq-2"):
        qt = weight_sample(algo)
        us = gen.generate_gemv(gemv_shape, qt, level="O4").latency_us()
        result.add_row("GeMV BS16", f"VQ-LLM {algo}", us, us / awq_gemv)
    gc_us = gen.generate_gemv(gemv_shape, weight_sample("quip#-4"),
                              level="GC").latency_us()
    result.add_row("GeMV BS16", "open-source-style (GC) quip#-4", gc_us,
                   gc_us / awq_gemv)

    attn_shape = llama_attention_shape(config, batch=1, seq_len=1024)
    qoq = ElementwiseAttentionKernel(attn_shape, bits=4).latency_us(spec)
    result.add_row("Attention BS1 1k", "QoQ-4bit", qoq, 1.0)
    result.add_row("Attention BS1 1k", "Flash-FP16",
                   FlashDecodingKernel(attn_shape).latency_us(spec),
                   FlashDecodingKernel(attn_shape).latency_us(spec) / qoq)
    for algo in ("cq-4", "cq-2"):
        qt_k, qt_v = attention_sample(algo)
        us = gen.generate_attention(attn_shape, qt_k, qt_v,
                                    level="O4").latency_us()
        result.add_row("Attention BS1 1k", f"VQ-LLM {algo}", us, us / qoq)
    return result


# ----------------------------------------------------------------------
# Fig. 17 — end-to-end speedup and accuracy proxy
# ----------------------------------------------------------------------
def fig17_e2e(batch: int = 16, prompt_len: int = 1024,
              gen_tokens: int = 256) -> ExperimentResult:
    """E2E generation speedups over FP16 (Fig. 17 left)."""
    result = ExperimentResult(
        "fig17", "Fig. 17: E2E speedup over FP16 "
        f"(Llama-7B, BS{batch}, {prompt_len}+{gen_tokens} tokens)",
        columns=("gpu", "mode", "speedup"),
    )
    for spec in (RTX4090, A40):
        ledger = E2ELedger(spec, llama_7b())
        speedups = ledger.speedups(batch, prompt_len, gen_tokens)
        for mode in MODES:
            result.add_row(spec.name, mode, speedups[mode])
    ledger = E2ELedger(RTX4090, llama_7b())
    fp16_step = ledger.decode_step(batch, prompt_len, "fp16")
    vq_step = ledger.decode_step(batch, prompt_len, "vq4")
    result.notes.append(
        f"elementwise-op share: fp16 {fp16_step.elementwise_share:.1%}, "
        f"vq4 {vq_step.elementwise_share:.1%} (paper: ~10% / ~20%)")
    return result


def fig17_accuracy(seed: int = 0) -> ExperimentResult:
    """Accuracy proxy: VQ vs element-wise on a tiny model (Fig. 17 right)."""
    result = ExperimentResult(
        "fig17acc", "Fig. 17 (right) proxy: quantized-model quality",
        columns=("scheme", "weight_mse", "next_token_agreement",
                 "perplexity"),
    )
    for scheme, report in model_accuracy_proxy(seed=seed).items():
        result.add_row(scheme, report.weight_mse,
                       report.next_token_agreement, report.perplexity)
    return result


# ----------------------------------------------------------------------
# Fig. 18 — attention baseline comparison
# ----------------------------------------------------------------------
def fig18_attention_baselines() -> ExperimentResult:
    """CQ-4 fused attention vs the FP16 attention family (Fig. 18)."""
    spec = RTX4090
    gen = VQLLMCodeGenerator(spec)
    config = llama_7b()
    qt_k, qt_v = attention_sample("cq-4")
    baselines = (
        ("Flash Decoding", FlashDecodingKernel),
        ("Paged Flash Decoding", PagedFlashDecodingKernel),
        ("Flash Attention", FlashAttentionKernel),
        ("Paged Flash Attention", PagedFlashAttentionKernel),
    )
    result = ExperimentResult(
        "fig18", "Fig. 18: FP16 attention baselines relative to VQ-LLM CQ-4",
        columns=("seq_len", "batch", "vqllm_us") + tuple(
            name for name, _ in baselines),
    )
    for seq in (1024, 2048, 4096):
        for batch in (1, 8):
            shape = llama_attention_shape(config, batch=batch, seq_len=seq)
            ours = gen.generate_attention(shape, qt_k, qt_v,
                                          level="O4").latency_us()
            rel = [cls(shape).latency_us(spec) / ours
                   for _, cls in baselines]
            result.add_row(seq, batch, ours, *rel)
    return result


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def tbl02_configs() -> ExperimentResult:
    """Tbl. II: the published VQ algorithm configurations."""
    result = ExperimentResult(
        "tbl2", "Tbl. II: VQ algorithms and configurations",
        columns=("algorithm", "compression_vs_fp16", "vector_size",
                 "n_entries", "residuals", "scope"),
    )
    for key in ("quip#-4", "aqlm-3", "gptvq-2", "cq-4", "cq-2"):
        cfg = ALGORITHMS[key]
        result.add_row(cfg.name, cfg.compression_ratio, cfg.vector_size,
                       cfg.n_entries, cfg.residuals, cfg.scope)
    return result


def tbl03_axes() -> ExperimentResult:
    """Tbl. III: reduce and codebook-switch axes per computation."""
    result = ExperimentResult(
        "tbl3", "Tbl. III: reduce / codebook-switch axes",
        columns=("operation", "scope", "all_axes", "reduce_axes",
                 "switch_axes", "needs_global_reduction"),
    )
    cases = (
        ("gemm", "aqlm-3"), ("gemm", "gptvq-2"),
        ("gemv", "quip#-4"), ("gemv", "gptvq-2"),
        ("attention_k", "cq-2"), ("attention_v", "cq-2"),
    )
    for op, algo in cases:
        cfg = make_config(algo)
        spec = axes_for(op, cfg)
        result.add_row(op, cfg.scope, spec.all_axes, spec.reduce_axes,
                       spec.switch_axes, spec.needs_global_reduction)
    return result


def tbl05_factors() -> ExperimentResult:
    """Tbl. V: per-configuration optimization factors."""
    spec = RTX4090
    config = llama_7b()
    result = ExperimentResult(
        "tbl5", "Tbl. V: factors influencing the optimizations",
        columns=("algorithm", "codebook_per_block_KB", "hot_entries",
                 "output_per_block_KB", "shuffles_gemm_or_attn",
                 "shuffles_gemv"),
    )
    gen = VQLLMCodeGenerator(spec)
    for algo in WEIGHT_ALGOS:
        cfg = make_config(algo)
        qt = weight_sample(algo)
        profile = profile_hotness(qt)
        books = gen._resident_books("gemm", cfg, llama_gemm_shape(config),
                                    dataflow=False)
        cb_kb = books * cfg.codebook_bytes / 1024
        out_kb = 128 * 128 * 2 / 1024  # GEMM block output tile
        result.add_row(cfg.name, cb_kb, profile.hot_entries(3.0), out_kb,
                       n_shuffles(cfg.vector_size, REQUIRED_LAYOUT["gemm"]),
                       n_shuffles(cfg.vector_size, REQUIRED_LAYOUT["gemv"]))
    for algo in ("cq-2", "cq-4"):
        cfg = make_config(algo)
        qt_k, _ = attention_sample(algo)
        profile = profile_hotness(qt_k)
        shape = llama_attention_shape(config)
        books = gen._resident_books("attention", cfg, shape, dataflow=False)
        cb_kb = books * cfg.codebook_bytes / 1024
        out_kb = shape.head_dim * 2 * 8 / 1024  # per-block partials
        result.add_row(cfg.name, cb_kb, profile.hot_entries(3.0), out_kb,
                       n_shuffles(cfg.vector_size,
                                  REQUIRED_LAYOUT["attention_v"]),
                       n_shuffles(cfg.vector_size,
                                  REQUIRED_LAYOUT["attention_v"]))
    return result


#: Registry for the CLI and the benchmark suite.
EXPERIMENTS = {
    "fig2": fig02_accuracy,
    "fig4": fig04_motivation,
    "fig8": fig08_hotness,
    "fig9": fig09_block_hotness,
    "fig10": fig10_slack,
    "fig13": fig13_overall,
    "fig14": fig14_breakdown,
    "fig15": fig15_attention_breakdown,
    "fig16": fig16_elementwise,
    "fig17": fig17_e2e,
    "fig17acc": fig17_accuracy,
    "fig18": fig18_attention_baselines,
    "tbl2": tbl02_configs,
    "tbl3": tbl03_axes,
    "tbl5": tbl05_factors,
}


def main(argv=None) -> int:
    """CLI entry point: print requested experiments (default: all)."""
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    ids = args or list(EXPERIMENTS)
    for exp_id in ids:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; known: "
                  f"{sorted(EXPERIMENTS)}")
            return 1
        print(EXPERIMENTS[exp_id]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
