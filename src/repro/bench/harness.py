"""Result containers and table formatting for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class ExperimentResult:
    """One reproduced table/figure: rows of named measurements."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one named column."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def as_dicts(self) -> list:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)

    def __str__(self) -> str:
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: List[Sequence],
                 notes: Sequence[str] = ()) -> str:
    """Render an aligned ASCII table."""
    header = [str(c) for c in columns]
    body = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    for note in notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
