"""Experiment harness.

- :mod:`repro.bench.workloads` — Llama-shaped kernel workloads and
  cached quantized sample tensors;
- :mod:`repro.bench.harness` — result containers and table printers;
- :mod:`repro.bench.experiments` — one function per paper table/figure
  (the per-experiment index lives in DESIGN.md);
- :mod:`repro.bench.e2e` — the end-to-end latency ledger (Fig. 17);
- :mod:`repro.bench.serving` — the continuous-batching serving
  experiment (FP16 vs VQ KV caches at equal HBM) over
  :mod:`repro.serve`;
- :mod:`repro.bench.cluster` — fleet sizing, routing and TP scaling
  over :mod:`repro.cluster`;
- :mod:`repro.bench.orchestrator` — declarative sweep grids over the
  serving/fleet experiments, parallel trial execution, the persisted
  ``BENCH_<pr>.json`` perf trajectory and its markdown regression
  report.

See ``docs/architecture.md`` for how the harness layers on the stack
and ``README.md`` for the benchmark-to-figure mapping.
"""

from repro.bench.harness import ExperimentResult, format_table
from repro.bench.workloads import (
    attention_sample,
    llama_attention_shape,
    llama_gemm_shape,
    llama_gemv_shape,
    weight_sample,
)

__all__ = [
    "ExperimentResult",
    "attention_sample",
    "format_table",
    "llama_attention_shape",
    "llama_gemm_shape",
    "llama_gemv_shape",
    "weight_sample",
]
