"""Accuracy-proxy experiments (Fig. 2 and Fig. 17 right).

Without the arc-challenge dataset or Llama checkpoints, accuracy is
proxied two ways, both exercising the mechanism the paper credits
(Fig. 2): VQ captures cross-dimension correlation and outliers that an
element-wise uniform grid cannot.

1. *Reconstruction error* of quantized tensors drawn from a correlated
   + outlier distribution (the weight generator used by the model).
2. *Next-token agreement* and perplexity delta of a small transformer
   whose weights are quantized by each scheme, against its own FP16
   output on random token sequences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.llm.config import tiny_llama
from repro.llm.model import LlamaModel
from repro.vq.algorithms import make_quantizer
from repro.vq.config import VQConfig
from repro.vq.elementwise import awq_quantize_weight, quantize_elementwise
from repro.vq.quantizer import VectorQuantizer

#: Weight field names of one transformer layer.
LAYER_WEIGHTS = ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down")


def correlated_2d_sample(n: int = 4096, rho: float = 0.85,
                         outlier_frac: float = 0.01,
                         seed: int = 0) -> np.ndarray:
    """The 2-D correlated-with-outliers data of Fig. 2 (lower)."""
    rng = np.random.default_rng(seed)
    cov = np.array([[1.0, rho], [rho, 1.0]])
    data = rng.multivariate_normal([0, 0], cov, size=n)
    n_out = int(n * outlier_frac)
    if n_out:
        idx = rng.choice(n, size=n_out, replace=False)
        data[idx] *= 4.0
    return data


def mse_elementwise(data: np.ndarray, bits: int) -> float:
    """Element-wise uniform-grid reconstruction MSE.

    Each dimension gets its own uniform grid (scale/zero over all
    points), so the joint quantization points form the Cartesian
    product of per-dimension grids — the structure drawn in Fig. 2
    (lower left) that cannot follow correlated data.
    """
    transposed = np.ascontiguousarray(data.T)
    q = quantize_elementwise(transposed, bits=bits,
                             group_size=transposed.shape[1])
    return float(np.mean((q.dequantize() - transposed) ** 2))


def mse_vq(data: np.ndarray, bits_per_element: float,
           vector_size: int = 2, seed: int = 0) -> float:
    """VQ reconstruction MSE at an equivalent bit width."""
    # Half-up, not round(): banker's rounding would map e.g. 2.5 and
    # 3.5 bits/element (vector_size=2 -> 5.0, 7.0... exact halves like
    # 6.5 index bits) inconsistently across adjacent sweep points.
    index_bits = int(math.floor(bits_per_element * vector_size + 0.5))
    config = VQConfig(name=f"vq<{vector_size},{index_bits},1>",
                      vector_size=vector_size, index_bits=index_bits,
                      residuals=1, scope="tensor")
    quantizer = VectorQuantizer(config, seed=seed, kmeans_iters=20)
    qt = quantizer.quantize(data.reshape(-1, vector_size))
    return qt.reconstruction_error(data.reshape(-1, vector_size))


def _vq_override(model: LlamaModel, algo: str) -> Dict:
    """Dequantized-weight override dict for a VQ algorithm."""
    quantizer = make_quantizer(algo, kmeans_iters=10, train_sample=16384)
    override = {}
    for li, layer in enumerate(model.layers):
        for name in LAYER_WEIGHTS:
            w = getattr(layer, name)
            qt = quantizer.quantize(np.ascontiguousarray(w.T))
            override[(li, name)] = qt.dequantize().T
    return override


def _awq_override(model: LlamaModel, bits: int = 4,
                  group_size: int = 64) -> Dict:
    """Dequantized-weight override dict for AWQ-style quantization."""
    override = {}
    for li, layer in enumerate(model.layers):
        for name in LAYER_WEIGHTS:
            w = getattr(layer, name)
            q = awq_quantize_weight(w, bits=bits, group_size=group_size)
            override[(li, name)] = q.dequantize()
    return override


@dataclass
class AccuracyReport:
    """Fig. 17 (right) proxy: quality of each serving mode."""

    scheme: str
    weight_mse: float
    next_token_agreement: float
    perplexity: float


def model_accuracy_proxy(seed: int = 0, batch: int = 4,
                         seq_len: int = 48) -> Dict[str, AccuracyReport]:
    """Compare FP16 / qServe-style INT4 / VQ-LLM 4-bit on a tiny model."""
    model = LlamaModel(tiny_llama(), seed=seed)
    rng = np.random.default_rng(seed + 1)
    tokens = rng.integers(0, model.config.vocab, size=(batch, seq_len))

    fp16_logits = model.forward(tokens)
    fp16_next = np.argmax(fp16_logits, axis=-1)

    overrides = {
        "fp16": {},
        "qserve-4bit": _awq_override(model, bits=4),
        "vq-llm-4bit": _vq_override(model, "quip#-4"),
    }
    reports = {}
    for scheme, override in overrides.items():
        if override:
            mses = []
            for (li, name), deq in override.items():
                w = getattr(model.layers[li], name)
                mses.append(np.mean((deq - w) ** 2))
            weight_mse = float(np.mean(mses))
        else:
            weight_mse = 0.0
        logits = model.forward(tokens, weight_override=override or None)
        agree = float(np.mean(np.argmax(logits, axis=-1) == fp16_next))
        ppl = model.perplexity(tokens, weight_override=override or None)
        reports[scheme] = AccuracyReport(
            scheme=scheme,
            weight_mse=weight_mse,
            next_token_agreement=agree,
            perplexity=ppl,
        )
    return reports
