"""Kernel workloads at Llama shapes, with cached quantized samples.

Kernel-level experiments use the *nominal* Llama-7B / Llama-65B shapes
for all counter arithmetic, but train codebooks and collect index-stream
statistics (hotness, bank conflicts) on smaller *sample* tensors — those
statistics are intensive quantities, independent of tensor size, while
quantizing a full 4096x11008 weight with 4096-entry codebooks in numpy
would dominate benchmark runtime for no accuracy gain.

Samples are cached per (algorithm, kind, seed) at two levels: an
in-process dict, and a persistent ``.npz`` store on disk — codebook
training is an *offline* artifact in the paper's pipeline, so a
benchmark process should load yesterday's codebooks, not retrain them.
The disk entry is a lossless round-trip (codes, group map and float32
codebook entries byte-for-byte), keyed on everything that feeds
training (algorithm, seed, k-means iterations, sample shape, numpy
version), so cached and freshly trained runs are bit-identical.  Set
``REPRO_SAMPLE_CACHE`` to relocate the store (default
``<repo>/.benchmarks/samples``) or to ``0``/``off`` to disable it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.llm.config import LlamaConfig
from repro.llm.model import structured_matrix
from repro.vq.algorithms import canonical_name, make_quantizer
from repro.vq.codebook import Codebook, CodebookSet
from repro.vq.quantizer import QuantizedTensor

#: Sample tensor shapes: (rows, cols).  Weight samples mimic a weight
#: slice quantized along the reduction axis; attention samples mimic a
#: (tokens, heads*head_dim) KV slice with 4 heads.  The KV sample must
#: hold several times more tokens than codebook entries (256) or the
#: per-channel-group k-means degenerates to one entry per token.
WEIGHT_SAMPLE_SHAPE = (512, 1024)
KV_SAMPLE_SHAPE = (1024, 512)

_CACHE: Dict[Tuple, QuantizedTensor] = {}

#: Bumped when the on-disk sample layout changes; stale files are
#: silently retrained and overwritten.
_DISK_FORMAT = 1
#: ``train_sample`` both sample builders pass to the quantizer — part
#: of the disk key because it feeds codebook training.
_TRAIN_SAMPLE = 8192


def _sample_cache_dir() -> Optional[Path]:
    """Disk store location, or ``None`` when caching is disabled."""
    env = os.environ.get("REPRO_SAMPLE_CACHE")
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none"):
            return None
        return Path(env)
    # src/repro/bench/workloads.py -> repository root.
    return Path(__file__).resolve().parents[3] / ".benchmarks" / "samples"


def _sample_meta(kind: str, algo: str, seed: int, kmeans_iters: int,
                 shape: Tuple[int, int]) -> dict:
    return {
        "format": _DISK_FORMAT,
        "numpy": np.__version__,
        "kind": kind,
        "algo": algo,
        "seed": seed,
        "kmeans_iters": kmeans_iters,
        "train_sample": _TRAIN_SAMPLE,
        "shape": list(shape),
    }


def _sample_path(cache_dir: Path, meta: dict) -> Path:
    slug = "".join(c if c.isalnum() or c in "-." else "_"
                   for c in meta["algo"])
    return cache_dir / (f"{meta['kind']}-{slug}-seed{meta['seed']}"
                        f"-it{meta['kmeans_iters']}.npz")


def _qt_to_arrays(prefix: str, qt: QuantizedTensor) -> dict:
    """Flatten one quantized tensor into npz-storable arrays.

    Raises when codebook entry counts are ragged across groups (cannot
    stack) — the caller then simply skips disk caching.
    """
    books = qt.codebooks.books
    entries = np.stack([np.stack([b.entries for b in group])
                        for group in books])
    element_bytes = np.array([[b.element_bytes for b in group]
                              for group in books], dtype=np.int64)
    return {
        f"{prefix}_codes": qt.codes,
        f"{prefix}_group_map": qt.group_map,
        f"{prefix}_entries": entries,
        f"{prefix}_element_bytes": element_bytes,
        f"{prefix}_shape": np.array(qt.shape, dtype=np.int64),
    }


def _qt_from_arrays(prefix: str, data, config) -> QuantizedTensor:
    entries = data[f"{prefix}_entries"]
    element_bytes = data[f"{prefix}_element_bytes"]
    books = [
        [Codebook(entries[g, r], element_bytes=int(element_bytes[g, r]))
         for r in range(entries.shape[1])]
        for g in range(entries.shape[0])
    ]
    shape = tuple(int(x) for x in data[f"{prefix}_shape"])
    return QuantizedTensor(config, shape, data[f"{prefix}_codes"],
                           data[f"{prefix}_group_map"], CodebookSet(books))


def _disk_load(meta: dict, prefixes: Tuple[str, ...], config):
    """Load sample tensors from disk, or ``None`` on any mismatch."""
    cache_dir = _sample_cache_dir()
    if cache_dir is None:
        return None
    path = _sample_path(cache_dir, meta)
    try:
        with np.load(path, allow_pickle=False) as data:
            if json.loads(str(data["meta"])) != meta:
                return None
            return tuple(_qt_from_arrays(p, data, config)
                         for p in prefixes)
    except (OSError, KeyError, ValueError):
        return None


def _disk_store(meta: dict, tensors: dict) -> None:
    """Persist sample tensors atomically; best-effort (never raises)."""
    cache_dir = _sample_cache_dir()
    if cache_dir is None:
        return
    try:
        arrays = {"meta": np.array(json.dumps(meta, sort_keys=True))}
        for prefix, qt in tensors.items():
            arrays.update(_qt_to_arrays(prefix, qt))
        cache_dir.mkdir(parents=True, exist_ok=True)
        path = _sample_path(cache_dir, meta)
        fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
    except (OSError, ValueError):
        pass


def llama_gemm_shape(config: LlamaConfig, seq_len: int = 1024) -> GemmShape:
    """Prefill projection GEMM: (seq, hidden) x (hidden, hidden)."""
    return GemmShape(m=seq_len, n=config.hidden, k=config.hidden)


def llama_gemv_shape(config: LlamaConfig, batch: int = 1) -> GemmShape:
    """Decode projection GEMV: (batch, hidden) x (hidden, hidden)."""
    return GemmShape(m=batch, n=config.hidden, k=config.hidden)


def llama_attention_shape(config: LlamaConfig, batch: int = 1,
                          seq_len: int = 1024) -> AttentionShape:
    """Decode attention over the KV cache."""
    return AttentionShape(batch=batch, heads=config.n_heads,
                          seq_len=seq_len, head_dim=config.head_dim)


def weight_sample(algo: str, seed: int = 0,
                  kmeans_iters: int = 6) -> QuantizedTensor:
    """Quantized sample weight for a named algorithm (cached)."""
    name = canonical_name(algo)
    key = ("weight", name, seed)
    if key not in _CACHE:
        q = make_quantizer(algo, seed=seed, kmeans_iters=kmeans_iters,
                           train_sample=_TRAIN_SAMPLE)
        meta = _sample_meta("weight", name, seed, kmeans_iters,
                            WEIGHT_SAMPLE_SHAPE)
        cached = _disk_load(meta, ("w",), q.config)
        if cached is not None:
            _CACHE[key] = cached[0]
        else:
            rng = np.random.default_rng(seed)
            w = structured_matrix(rng, *WEIGHT_SAMPLE_SHAPE)
            _CACHE[key] = q.quantize(w)
            _disk_store(meta, {"w": _CACHE[key]})
    return _CACHE[key]


def attention_sample(algo: str, seed: int = 0,
                     kmeans_iters: int = 6) -> Tuple[QuantizedTensor,
                                                     QuantizedTensor]:
    """Quantized (K, V) sample caches for a CQ algorithm (cached)."""
    name = canonical_name(algo)
    key = ("kv", name, seed)
    if key not in _CACHE:
        q = make_quantizer(algo, seed=seed, kmeans_iters=kmeans_iters,
                           train_sample=_TRAIN_SAMPLE)
        meta = _sample_meta("kv", name, seed, kmeans_iters,
                            KV_SAMPLE_SHAPE)
        cached = _disk_load(meta, ("k", "v"), q.config)
        if cached is not None:
            _CACHE[key] = cached
        else:
            rng = np.random.default_rng(seed + 7)
            base = structured_matrix(rng, *KV_SAMPLE_SHAPE)
            k_data = base
            v_data = (0.7 * base
                      + 0.3 * structured_matrix(rng, *KV_SAMPLE_SHAPE))
            _CACHE[key] = (q.quantize(k_data), q.quantize(v_data))
            _disk_store(meta, {"k": _CACHE[key][0], "v": _CACHE[key][1]})
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached quantized samples (tests use this for isolation)."""
    _CACHE.clear()
