"""Kernel workloads at Llama shapes, with cached quantized samples.

Kernel-level experiments use the *nominal* Llama-7B / Llama-65B shapes
for all counter arithmetic, but train codebooks and collect index-stream
statistics (hotness, bank conflicts) on smaller *sample* tensors — those
statistics are intensive quantities, independent of tensor size, while
quantizing a full 4096x11008 weight with 4096-entry codebooks in numpy
would dominate benchmark runtime for no accuracy gain.

Samples are cached per (algorithm, kind, seed) so a benchmark session
quantizes each configuration once.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.llm.config import LlamaConfig
from repro.llm.model import structured_matrix
from repro.vq.algorithms import canonical_name, make_quantizer
from repro.vq.quantizer import QuantizedTensor

#: Sample tensor shapes: (rows, cols).  Weight samples mimic a weight
#: slice quantized along the reduction axis; attention samples mimic a
#: (tokens, heads*head_dim) KV slice with 4 heads.  The KV sample must
#: hold several times more tokens than codebook entries (256) or the
#: per-channel-group k-means degenerates to one entry per token.
WEIGHT_SAMPLE_SHAPE = (512, 1024)
KV_SAMPLE_SHAPE = (1024, 512)

_CACHE: Dict[Tuple, QuantizedTensor] = {}


def llama_gemm_shape(config: LlamaConfig, seq_len: int = 1024) -> GemmShape:
    """Prefill projection GEMM: (seq, hidden) x (hidden, hidden)."""
    return GemmShape(m=seq_len, n=config.hidden, k=config.hidden)


def llama_gemv_shape(config: LlamaConfig, batch: int = 1) -> GemmShape:
    """Decode projection GEMV: (batch, hidden) x (hidden, hidden)."""
    return GemmShape(m=batch, n=config.hidden, k=config.hidden)


def llama_attention_shape(config: LlamaConfig, batch: int = 1,
                          seq_len: int = 1024) -> AttentionShape:
    """Decode attention over the KV cache."""
    return AttentionShape(batch=batch, heads=config.n_heads,
                          seq_len=seq_len, head_dim=config.head_dim)


def weight_sample(algo: str, seed: int = 0,
                  kmeans_iters: int = 6) -> QuantizedTensor:
    """Quantized sample weight for a named algorithm (cached)."""
    key = ("weight", canonical_name(algo), seed)
    if key not in _CACHE:
        rng = np.random.default_rng(seed)
        w = structured_matrix(rng, *WEIGHT_SAMPLE_SHAPE)
        q = make_quantizer(algo, seed=seed, kmeans_iters=kmeans_iters,
                           train_sample=8192)
        _CACHE[key] = q.quantize(w)
    return _CACHE[key]


def attention_sample(algo: str, seed: int = 0,
                     kmeans_iters: int = 6) -> Tuple[QuantizedTensor,
                                                     QuantizedTensor]:
    """Quantized (K, V) sample caches for a CQ algorithm (cached)."""
    key = ("kv", canonical_name(algo), seed)
    if key not in _CACHE:
        rng = np.random.default_rng(seed + 7)
        base = structured_matrix(rng, *KV_SAMPLE_SHAPE)
        k_data = base
        v_data = 0.7 * base + 0.3 * structured_matrix(rng, *KV_SAMPLE_SHAPE)
        q = make_quantizer(algo, seed=seed, kmeans_iters=kmeans_iters,
                           train_sample=8192)
        _CACHE[key] = (q.quantize(k_data), q.quantize(v_data))
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached quantized samples (tests use this for isolation)."""
    _CACHE.clear()
