"""Ablation and sensitivity studies on the design choices.

Beyond the paper's own figures, these sweeps probe the knobs DESIGN.md
calls out:

- :func:`bandwidth_sensitivity` — Sec. VII-E's observation (the A40
  gains more than the 4090) generalised: VQ-LLM's advantage over FP16
  as a function of DRAM bandwidth.
- :func:`shuffle_threshold_sweep` — the profiled "one smem round trip
  ~ five shuffles" constant: how the fusion decision and latency move
  if the threshold were different.
- :func:`occupancy_floor_sweep` — the slack heuristic's occupancy floor
  (how much occupancy the codebook cache may consume).
- :func:`quantization_overhead` — the paper's Sec. VII-F claim that
  online KV quantization is negligible, derived from the encode
  arithmetic itself.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.bench.workloads import (
    attention_sample,
    llama_attention_shape,
    llama_gemv_shape,
    weight_sample,
)
from repro.core import slack as slack_module
from repro.core.codegen import VQLLMCodeGenerator
from repro.core.fusion import REQUIRED_LAYOUT, n_shuffles
from repro.gpu.spec import RTX4090
from repro.kernels.attention import FlashDecodingKernel
from repro.llm.config import llama_7b
from repro.vq.algorithms import make_config


def bandwidth_sensitivity(fractions=(0.4, 0.6, 0.8, 1.0, 1.5)):
    """VQ-LLM attention speedup over FP16 vs DRAM bandwidth."""
    result = ExperimentResult(
        "abl-bw", "Ablation: speedup vs DRAM bandwidth (CQ-2 attention)",
        columns=("bandwidth_gbps", "fp16_us", "vqllm_us", "speedup"),
    )
    qt_k, qt_v = attention_sample("cq-2")
    shape = llama_attention_shape(llama_7b(), batch=8, seq_len=4096)
    for frac in fractions:
        spec = RTX4090.with_bandwidth(RTX4090.dram_bandwidth_gbps * frac)
        fp16 = FlashDecodingKernel(shape).latency_us(spec)
        ours = VQLLMCodeGenerator(spec).generate_attention(
            shape, qt_k, qt_v, level="O4").latency_us()
        result.add_row(spec.dram_bandwidth_gbps, fp16, ours, fp16 / ours)
    return result


def shuffle_threshold_sweep(thresholds=(0, 1, 3, 5, 7, 15)):
    """Fusion level chosen per algorithm as the threshold moves.

    The paper profiles the smem-round-trip cost at ~5 shuffles; this
    sweep shows which configurations flip between register and shared
    fusion as that constant changes.
    """
    result = ExperimentResult(
        "abl-thresh", "Ablation: fusion level vs shuffle threshold",
        columns=("threshold",) + tuple(
            f"{algo}-{op}" for algo in ("quip#-4", "gptvq-2")
            for op in ("gemm", "gemv")),
    )
    for threshold in thresholds:
        row = [threshold]
        for algo in ("quip#-4", "gptvq-2"):
            cfg = make_config(algo)
            for op in ("gemm", "gemv"):
                shuffles = n_shuffles(cfg.vector_size, REQUIRED_LAYOUT[op])
                row.append("register" if shuffles <= threshold
                           else "shared")
        result.add_row(*row)
    return result


def occupancy_floor_sweep(floors=(0.1, 0.25, 0.5, 0.9)):
    """GeMV latency as the slack heuristic's occupancy floor moves.

    A lower floor lets the codebook cache take more shared memory (fewer
    cold misses, less concurrency); a higher floor preserves occupancy
    but shrinks the cache.  The default (0.25) should be near the sweet
    spot for the large-codebook configuration (AQLM-3).
    """
    result = ExperimentResult(
        "abl-floor", "Ablation: AQLM-3 GeMV latency vs occupancy floor",
        columns=("min_occupancy", "latency_us", "n_shared"),
    )
    qt = weight_sample("aqlm-3")
    shape = llama_gemv_shape(llama_7b(), batch=1)
    original = slack_module.MIN_OCCUPANCY
    try:
        for floor in floors:
            slack_module.MIN_OCCUPANCY = floor
            gen = VQLLMCodeGenerator(RTX4090)
            kernel = gen.generate_gemv(shape, qt, level="O2")
            bounds = kernel.template.boundaries
            result.add_row(floor, kernel.latency_us(),
                           bounds.n_shared if bounds else 0)
    finally:
        slack_module.MIN_OCCUPANCY = original
    return result


def quantization_overhead():
    """Online/prefill KV quantization cost relative to the projections.

    Encoding one token's K (or V) against CQ codebooks costs one
    nearest-centroid search per channel group: ``entries * vector_size
    * 2`` FLOPs per sub-vector.  The paper reports < 1 us per decode
    token and < 10% of the prefill linear projections; both follow from
    the arithmetic.
    """
    cfg = llama_7b()
    vq = make_config("cq-2")
    groups = cfg.hidden // vq.vector_size
    encode_flops_per_token = (2 * groups * vq.n_entries * vq.vector_size
                              * 2 * vq.residuals)  # K and V
    qkv_flops_per_token = 2 * cfg.hidden * 3 * cfg.hidden
    # Decode-phase wall time at a conservative 10 TFLOP/s effective.
    encode_us = encode_flops_per_token / 10e12 * 1e6

    result = ExperimentResult(
        "abl-quant", "Ablation: online KV quantization overhead (CQ-2)",
        columns=("metric", "value"),
    )
    result.add_row("encode_flops_per_token", encode_flops_per_token)
    result.add_row("qkv_projection_flops_per_token", qkv_flops_per_token)
    result.add_row("encode_vs_projection",
                   encode_flops_per_token / qkv_flops_per_token)
    result.add_row("decode_encode_us_per_token", encode_us)
    return result


ABLATIONS = {
    "bandwidth": bandwidth_sensitivity,
    "threshold": shuffle_threshold_sweep,
    "floor": occupancy_floor_sweep,
    "quant-overhead": quantization_overhead,
}


def main(argv=None) -> int:
    """CLI: print requested ablations (default: all)."""
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    ids = args or list(ABLATIONS)
    for ablation_id in ids:
        if ablation_id not in ABLATIONS:
            print(f"unknown ablation {ablation_id!r}; known: "
                  f"{sorted(ABLATIONS)}")
            return 1
        print(ABLATIONS[ablation_id]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
