"""Fleet simulator, router-policy and SLO tests.

Everything runs on the constant-cost stub so assertions are exact; the
analytic integration is covered by ``tests/test_bench_experiments.py``
and ``examples/cluster_serving.py``.
"""

import pytest

from repro.cluster.fleet import (
    SLO,
    FleetSimulator,
    PrefixAffinityPolicy,
    Replica,
    RouterPolicy,
    make_policy,
    size_fleet,
)
from repro.serve.requests import LengthSampler, Request, multi_turn_chat_trace
from repro.serve.scheduler import ContinuousBatchScheduler, KVBudget


class ConstantCostModel:
    """Stub: every iteration costs a fixed time."""

    def __init__(self, step_us=1000.0):
        self._us = step_us

    def step_us(self, plan):
        return self._us


def _replicas(n, max_tokens=100_000, step_us=1000.0, token_budget=512,
              max_seqs=16):
    cost = ConstantCostModel(step_us)
    return [
        Replica(i, ContinuousBatchScheduler(
            KVBudget(capacity_bytes=float(max_tokens), bytes_per_token=1.0),
            token_budget=token_budget, max_seqs=max_seqs), cost)
        for i in range(n)
    ]


def _paged_replicas(n, max_tokens=300, step_us=1000.0, token_budget=512,
                    max_seqs=32, block_tokens=8):
    cost = ConstantCostModel(step_us)
    return [
        Replica(i, ContinuousBatchScheduler(
            KVBudget(capacity_bytes=float(max_tokens), bytes_per_token=1.0),
            token_budget=token_budget, max_seqs=max_seqs,
            admission="paged", block_tokens=block_tokens), cost)
        for i in range(n)
    ]


def _prefix_replicas(n, max_tokens=6000, step_us=1000.0, token_budget=512,
                     max_seqs=16, block_tokens=16):
    cost = ConstantCostModel(step_us)
    return [
        Replica(i, ContinuousBatchScheduler(
            KVBudget(capacity_bytes=float(max_tokens), bytes_per_token=1.0),
            token_budget=token_budget, max_seqs=max_seqs,
            admission="paged", block_tokens=block_tokens,
            prefix_caching=True), cost)
        for i in range(n)
    ]


def _trace(n, prompt=32, output=8, gap=0.0):
    return [Request(req_id=i, arrival_s=i * gap, prompt_tokens=prompt,
                    output_tokens=output) for i in range(n)]


class TestSLO:
    def test_met_by(self):
        from repro.serve.simulator import RequestRecord
        rec = RequestRecord(req_id=0, arrival_s=0.0, first_token_s=1.0,
                            finished_s=3.0, prompt_tokens=10,
                            output_tokens=5, queued_s=0.0)
        assert SLO(ttft_s=2.0).met_by(rec)
        assert not SLO(ttft_s=0.5).met_by(rec)
        assert SLO(ttft_s=2.0, tpot_s=1.0).met_by(rec)  # tpot = 0.5
        assert not SLO(ttft_s=2.0, tpot_s=0.1).met_by(rec)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(ttft_s=0.0)
        with pytest.raises(ValueError):
            SLO(ttft_s=1.0, tpot_s=0.0)
        with pytest.raises(ValueError):
            SLO(ttft_s=1.0, quantile=0.0)


class TestRequestConservation:
    """No request is lost or duplicated across replicas."""

    @pytest.mark.parametrize("policy", ["round-robin", "jsq", "least-kv"])
    def test_all_requests_complete_exactly_once(self, policy):
        trace = _trace(30, gap=0.0007)
        report = FleetSimulator(_replicas(3), policy=policy,
                                name="unit").run(trace)
        assert report.n_requests == 30 and report.n_rejected == 0
        assert sorted(r.req_id for r in report.records) == list(range(30))
        assert sorted(report.assignments) == list(range(30))
        # Per-replica routed counts partition the trace.
        assert sum(routed for routed, *_ in report.replica_stats) == 30

    def test_rejected_plus_completed_covers_the_trace(self):
        trace = _trace(4, prompt=32, output=8)          # 40 tokens each
        trace.append(Request(req_id=4, arrival_s=0.0, prompt_tokens=500,
                             output_tokens=8))          # fits nowhere
        report = FleetSimulator(_replicas(2, max_tokens=50),
                                policy="jsq", name="unit").run(trace)
        assert report.n_requests == 4
        assert report.n_rejected == 1
        assert 4 not in report.assignments
        assert "rejected" in report.summary()


class TestPolicies:
    def test_round_robin_cycles(self):
        trace = _trace(6)
        report = FleetSimulator(_replicas(3), policy="round-robin",
                                name="unit").run(trace)
        assert [report.assignments[i] for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_jsq_prefers_the_idle_replica(self):
        replicas = _replicas(2)
        # Preload replica 0 so its queue is deeper at t=0.
        replicas[0].submit(Request(req_id=99, arrival_s=0.0,
                                   prompt_tokens=64, output_tokens=32))
        trace = _trace(2)
        report = FleetSimulator(replicas, policy="jsq",
                                name="unit").run(trace)
        assert report.assignments[0] == 1
        # After the second arrival both queues tie at 1 -> lowest index.
        assert report.assignments[1] == 0

    def test_least_kv_sees_queued_demand(self):
        replicas = _replicas(2, max_tokens=1000)
        big = Request(req_id=99, arrival_s=0.0, prompt_tokens=400,
                      output_tokens=100)
        replicas[0].submit(big)
        assert replicas[0].kv_pressure == pytest.approx(0.5)
        assert replicas[1].kv_pressure == 0.0
        report = FleetSimulator(replicas, policy="least-kv",
                                name="unit").run(_trace(1))
        assert report.assignments[0] == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_policy("random")

    def test_policy_instance_passes_through(self):
        policy = make_policy("jsq")
        assert make_policy(policy) is policy

    def test_bad_policy_choice_is_caught(self):
        class Broken(RouterPolicy):
            name = "broken"

            def choose(self, request, replicas, candidates):
                return len(replicas) + 7

        with pytest.raises(ValueError):
            FleetSimulator(_replicas(2), policy=Broken(),
                           name="unit").run(_trace(1))


class TestFleetBehaviour:
    def test_more_replicas_cut_queueing(self):
        """With one-sequence replicas, TTFT scales down with fleet size."""
        trace = _trace(8, prompt=32, output=8)  # simultaneous arrivals
        reports = {
            n: FleetSimulator(
                _replicas(n, max_tokens=40), policy="jsq",
                name=f"n{n}").run(trace)
            for n in (1, 2, 4)
        }
        ttfts = [reports[n].ttft_s(95) for n in (1, 2, 4)]
        assert ttfts[0] > ttfts[1] > ttfts[2]
        for rep in reports.values():
            assert rep.n_requests == 8

    def test_single_replica_matches_single_engine_semantics(self):
        """A 1-replica fleet reproduces ServingSimulator's exact timing."""
        report = FleetSimulator(_replicas(1), policy="round-robin",
                                name="unit").run(_trace(1, prompt=100,
                                                        output=5))
        rec = report.records[0]
        assert rec.ttft_s == pytest.approx(0.001)
        assert rec.latency_s == pytest.approx(0.005)
        assert report.makespan_s == pytest.approx(0.005)

    def test_goodput_and_attainment(self):
        """8 simultaneous requests on one single-sequence replica: each
        takes 8 iterations, so TTFTs are 1, 9, 17, ... ms."""
        trace = _trace(8, prompt=32, output=8)
        report = FleetSimulator(_replicas(1, max_tokens=40),
                                policy="jsq", name="unit").run(trace)
        slo = SLO(ttft_s=0.020)  # the first three requests meet it
        assert report.slo_attainment(slo) == pytest.approx(3 / 8)
        assert report.goodput_rps(slo) == pytest.approx(
            3 / report.makespan_s)
        assert not report.meets(slo)
        assert report.meets(SLO(ttft_s=1.0))

    def test_rejections_fail_compliance(self):
        trace = [Request(0, 0.0, 32, 8), Request(1, 0.0, 500, 8)]
        report = FleetSimulator(_replicas(1, max_tokens=50),
                                policy="jsq", name="unit").run(trace)
        assert not report.meets(SLO(ttft_s=100.0))
        assert report.slo_attainment(SLO(ttft_s=100.0)) == pytest.approx(0.5)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            FleetSimulator(_replicas(1), name="unit").run([])

    def test_no_replicas_rejected(self):
        with pytest.raises(ValueError):
            FleetSimulator([], name="unit")

    def test_iteration_guard_trips(self):
        with pytest.raises(RuntimeError):
            FleetSimulator(_replicas(1), name="unit").run(
                _trace(10), max_iterations=3)


class TestSizeFleet:
    def test_finds_the_minimal_compliant_fleet(self):
        """One-sequence replicas, 8 simultaneous arrivals: with 4
        replicas every TTFT is 1 or 9 ms (p95 = 9 ms); with 3, the
        third-in-queue requests push p95 to 17 ms.  A 10 ms SLO
        therefore needs exactly 4."""
        trace = _trace(8, prompt=32, output=8)
        slo = SLO(ttft_s=0.010)

        def factory(n):
            return _replicas(n, max_tokens=40)

        n, report = size_fleet(factory, trace, slo,
                               policy="jsq", max_replicas=8)
        assert n == 4
        assert report.n_replicas == 4 and report.meets(slo)
        # One fewer replica must miss (minimality).
        miss = FleetSimulator(factory(3), policy="jsq",
                              name="unit").run(trace)
        assert not miss.meets(slo)

    def test_returns_none_when_even_max_misses(self):
        trace = _trace(8, prompt=32, output=8)
        n, report = size_fleet(lambda n: _replicas(n, max_tokens=40),
                               trace, SLO(ttft_s=1e-6), max_replicas=2)
        assert n is None
        assert report.n_replicas == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            size_fleet(lambda n: _replicas(n), _trace(1), SLO(ttft_s=1.0),
                       max_replicas=0)


class TestPagedFleet:
    def test_paged_replicas_complete_and_surface_preemptions(self):
        """A fleet of paged replicas conserves requests and reports
        per-replica recompute preemption counts."""
        trace = _trace(16, prompt=32, output=24, gap=0.0)
        report = FleetSimulator(_paged_replicas(2, max_tokens=300),
                                policy="jsq", name="unit").run(trace)
        assert report.n_requests == 16 and report.n_rejected == 0
        assert len(report.replica_stats) == 2
        assert all(len(stats) == 4 for stats in report.replica_stats)
        assert report.n_preempted >= 1
        assert "preemption" in report.summary()

    def test_least_kv_routes_on_observed_blocks(self):
        """Under paged admission the ``least-kv`` policy sees the
        blocks a replica actually holds: a replica packed with live
        sequences reports higher pressure than an idle one even though
        both have identical worst-case reservations (zero)."""
        reps = _paged_replicas(2, max_tokens=300)
        for i in range(4):
            reps[0].submit(Request(req_id=100 + i, arrival_s=0.0,
                                   prompt_tokens=32, output_tokens=24))
        reps[0].step()  # allocate blocks for the prefills
        assert reps[0].kv_pressure > reps[1].kv_pressure == 0.0
        policy = make_policy("least-kv")
        assert policy.choose(_trace(1)[0], reps, [0, 1]) == 1

    def test_candidates_respect_block_granularity(self):
        """Routing feasibility uses the scheduler's own fits() — a
        request can be infeasible on a paged replica purely from block
        rounding, not just token capacity."""
        reps = _paged_replicas(1, max_tokens=40, block_tokens=8)
        trace = [Request(req_id=0, arrival_s=0.0, prompt_tokens=33,
                         output_tokens=8)]  # 41 tokens -> 6 blocks of 5
        report = FleetSimulator(reps, policy="jsq", name="unit").run(trace)
        assert report.n_rejected == 1 and report.n_requests == 0

    def test_prefix_metrics_aggregate_across_replicas(self):
        """FleetReport sums the per-replica prefix counters."""
        reps = _prefix_replicas(2)
        trace = multi_turn_chat_trace(
            4, 3, rate_rps=50.0, think_s=0.02, system_tokens=32,
            user=LengthSampler(mean=16), output=LengthSampler(mean=8),
            seed=0)
        report = FleetSimulator(reps, policy="prefix-affinity",
                                name="unit").run(trace)
        assert report.prefix_caching
        assert report.prefix_lookups == 12
        assert 0.0 < report.prefix_hit_rate <= 1.0
        assert 0.0 < report.cached_token_fraction < 1.0
        assert "prefix" in report.summary()

    def test_queue_depth_counts_preempted_sequences(self):
        """Preempted sequences carry re-prefill work, so jsq must see
        them as queued load."""
        rep = _paged_replicas(1, max_tokens=64, max_seqs=4)[0]
        for i in range(2):
            rep.submit(Request(req_id=i, arrival_s=0.0,
                               prompt_tokens=24, output_tokens=30))
        it = 0
        while not rep.scheduler.preempted:
            rep.step()
            it += 1
            assert it < 200
        s = rep.scheduler
        assert rep.queue_depth == (len(s.waiting) + len(s.preempted)
                                   + len(s.running))
        assert len(s.preempted) >= 1


class TestPrefixAffinity:
    def _chat_trace(self, seed=3):
        # Per-session system prompts (shared_system=False): hitting a
        # session's blocks requires landing on the replica that served
        # its earlier turns, which is exactly what affinity preserves.
        return multi_turn_chat_trace(
            12, 4, rate_rps=6.0, think_s=0.5, system_tokens=64,
            user=LengthSampler(mean=32), output=LengthSampler(mean=24),
            shared_system=False, seed=seed)

    def test_sessions_stick_to_one_replica(self):
        trace = self._chat_trace()
        report = FleetSimulator(_prefix_replicas(3),
                                policy="prefix-affinity",
                                name="unit").run(trace)
        by_session = {}
        for req in trace:
            by_session.setdefault(req.session_id, set()).add(
                report.assignments[req.req_id])
        assert all(len(replicas) == 1 for replicas in by_session.values())

    def test_affinity_beats_round_robin_on_hit_rate(self):
        """The acceptance claim: consistent-hashing sessions to
        replicas keeps their trees hot, so the fleet-wide prefix hit
        rate beats round-robin's on a sessionized trace."""
        trace = self._chat_trace()
        reports = {
            policy: FleetSimulator(_prefix_replicas(3), policy=policy,
                                   name=policy).run(trace)
            for policy in ("round-robin", "prefix-affinity")
        }
        for rep in reports.values():
            assert rep.n_requests == len(trace) and rep.n_rejected == 0
        assert (reports["prefix-affinity"].prefix_hit_rate
                > reports["round-robin"].prefix_hit_rate)
        assert (reports["prefix-affinity"].cached_token_fraction
                > reports["round-robin"].cached_token_fraction)

    def test_consistent_hash_is_deterministic_and_spreads(self):
        policy = PrefixAffinityPolicy()
        reps = _prefix_replicas(4)
        cands = list(range(4))

        def req(session):
            return Request(req_id=session, arrival_s=0.0, prompt_tokens=8,
                           output_tokens=4, session_id=session)

        chosen = {s: policy.choose(req(s), reps, cands) for s in range(64)}
        again = {s: policy.choose(req(s), reps, cands) for s in range(64)}
        assert chosen == again                      # sticky
        assert len(set(chosen.values())) == 4      # uses the whole fleet

    def test_infeasible_replicas_are_skipped(self):
        policy = PrefixAffinityPolicy()
        reps = _prefix_replicas(3)
        req = Request(req_id=0, arrival_s=0.0, prompt_tokens=8,
                      output_tokens=4, session_id=7)
        full = policy.choose(req, reps, [0, 1, 2])
        without = [i for i in (0, 1, 2) if i != full]
        assert policy.choose(req, reps, without) in without

    def test_sessionless_requests_fall_back_to_req_id(self):
        policy = PrefixAffinityPolicy()
        reps = _prefix_replicas(4)
        req = Request(req_id=11, arrival_s=0.0, prompt_tokens=8,
                      output_tokens=4)
        assert (policy.choose(req, reps, list(range(4)))
                == policy.choose(req, reps, list(range(4))))

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            PrefixAffinityPolicy(vnodes=0)
