"""KV-cache tests (FP16 and VQ-compressed)."""

import numpy as np
import pytest

from repro.llm.kvcache import KVCache, QuantizedKVCache
from repro.llm.model import structured_matrix
from repro.vq.algorithms import make_config


@pytest.fixture(scope="module")
def calibration():
    rng = np.random.default_rng(42)
    tokens, heads, dim = 192, 2, 16
    k = structured_matrix(rng, tokens, heads * dim).reshape(
        tokens, heads, dim)
    v = structured_matrix(rng, tokens, heads * dim).reshape(
        tokens, heads, dim)
    return k, v


class TestKVCache:
    def test_append_and_views(self):
        cache = KVCache(batch=2, n_heads=3, head_dim=8, max_tokens=4)
        k = np.ones((2, 3, 8))
        cache.append(k, 2 * k)
        cache.append(3 * k, 4 * k)
        assert cache.length == 2
        assert cache.keys.shape == (2, 3, 2, 8)
        assert np.allclose(cache.values[:, :, 1], 4.0)

    def test_extend_prompt(self):
        cache = KVCache(1, 2, 8, max_tokens=16)
        k = np.random.default_rng(0).standard_normal((1, 2, 5, 8))
        cache.extend(k, k)
        assert cache.length == 5
        assert np.allclose(cache.keys, k)

    def test_overflow_rejected(self):
        cache = KVCache(1, 1, 4, max_tokens=1)
        cache.append(np.zeros((1, 1, 4)), np.zeros((1, 1, 4)))
        with pytest.raises(RuntimeError):
            cache.append(np.zeros((1, 1, 4)), np.zeros((1, 1, 4)))

    def test_nbytes(self):
        cache = KVCache(2, 4, 16, max_tokens=8)
        cache.append(np.zeros((2, 4, 16)), np.zeros((2, 4, 16)))
        assert cache.nbytes == 2 * 2 * 2 * 4 * 1 * 16


class TestQuantizedKVCache:
    def _make(self, calibration, algo="cq-4", max_tokens=8):
        k, v = calibration
        return QuantizedKVCache(
            make_config(algo), batch=1, n_heads=2, head_dim=16,
            max_tokens=max_tokens, calibration_k=k, calibration_v=v)

    def test_online_append_roundtrip(self, calibration):
        cache = self._make(calibration)
        k_cal, v_cal = calibration
        for t in range(4):
            cache.append(k_cal[t][None], v_cal[t][None])
        assert cache.length == 4
        keys = cache.keys
        assert keys.shape == (1, 2, 4, 16)
        # Reconstruction close to the appended values.
        rel = (np.mean((keys[0].transpose(1, 0, 2) - k_cal[:4]) ** 2)
               / np.var(k_cal[:4]))
        assert rel < 0.5

    def test_compression_ratio(self, calibration):
        cache = self._make(calibration, algo="cq-4")
        k_cal, v_cal = calibration
        cache.append(k_cal[0][None], v_cal[0][None])
        fp16_bytes = 2 * 2 * 2 * 16  # k+v, fp16
        assert cache.nbytes == pytest.approx(fp16_bytes * 0.25)

    def test_key_tensor_view(self, calibration):
        cache = self._make(calibration)
        k_cal, v_cal = calibration
        for t in range(3):
            cache.append(k_cal[t][None], v_cal[t][None])
        qt = cache.key_tensor(0)
        assert qt.shape == (3, 32)
        deq = qt.dequantize()
        assert np.allclose(
            deq.reshape(3, 2, 16).transpose(1, 0, 2),
            cache.keys[0])

    def test_requires_channel_group_scope(self, calibration):
        k, v = calibration
        with pytest.raises(ValueError):
            QuantizedKVCache(make_config("gptvq-2"), 1, 2, 16, 8, k, v)

    def test_full_cache_rejected(self, calibration):
        cache = self._make(calibration, max_tokens=1)
        k_cal, v_cal = calibration
        cache.append(k_cal[0][None], v_cal[0][None])
        with pytest.raises(RuntimeError):
            cache.append(k_cal[1][None], v_cal[1][None])
