"""Transformer model tests (tiny config)."""

import numpy as np
import pytest

from repro.llm.config import LlamaConfig, llama_7b, llama_65b, tiny_llama
from repro.llm.kvcache import KVCache
from repro.llm.model import (
    LlamaModel,
    decode_operator_shapes,
    structured_matrix,
)


@pytest.fixture(scope="module")
def model():
    return LlamaModel(tiny_llama(), seed=0)


class TestConfig:
    def test_presets_shapes(self):
        assert llama_7b().hidden == 4096
        assert llama_7b().n_heads == 32
        assert llama_65b().hidden == 8192
        assert llama_65b().n_layers == 80

    def test_param_counts(self):
        assert 6e9 < llama_7b().param_count < 8e9
        assert 60e9 < llama_65b().param_count < 70e9

    def test_hidden_consistency_enforced(self):
        with pytest.raises(ValueError):
            LlamaConfig("bad", hidden=100, n_layers=1, n_heads=3,
                        head_dim=32, intermediate=64, vocab=100)


class TestStructuredMatrix:
    def test_heavy_tails(self):
        rng = np.random.default_rng(0)
        w = structured_matrix(rng, 256, 256)
        flat = w.ravel()
        kurtosis = np.mean((flat - flat.mean()) ** 4) / flat.var() ** 2
        assert kurtosis > 4.0  # leptokurtic, unlike a Gaussian's 3

    def test_low_rank_structure(self):
        rng = np.random.default_rng(1)
        w = structured_matrix(rng, 128, 128)
        s = np.linalg.svd(w, compute_uv=False)
        # Leading singular values dominate.
        assert s[:16].sum() / s.sum() > 0.4


class TestModel:
    def test_materialise_guard(self):
        with pytest.raises(ValueError):
            LlamaModel(llama_7b())

    def test_forward_shape(self, model):
        tokens = np.arange(12).reshape(2, 6)
        logits = model.forward(tokens)
        assert logits.shape == (2, 6, model.config.vocab)
        assert np.all(np.isfinite(logits))

    def test_forward_deterministic(self, model):
        tokens = np.arange(8).reshape(1, 8)
        assert np.allclose(model.forward(tokens), model.forward(tokens))

    def test_decode_matches_prefill(self, model):
        """Incremental decode reproduces the full forward pass."""
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, model.config.vocab, size=(1, 6))
        full_logits = model.forward(tokens)

        cfg = model.config
        caches = [KVCache(1, cfg.n_heads, cfg.head_dim, 16)
                  for _ in range(cfg.n_layers)]
        model.forward(tokens[:, :-1], caches=caches)
        step_logits = model.decode_step(tokens[:, -1], caches)
        assert np.allclose(step_logits, full_logits[:, -1], atol=1e-8)

    def test_weight_override_changes_output(self, model):
        tokens = np.arange(6).reshape(1, 6)
        base = model.forward(tokens)
        override = {(0, "wq"): np.zeros_like(model.layers[0].wq)}
        changed = model.forward(tokens, weight_override=override)
        assert not np.allclose(base, changed)

    def test_perplexity_positive(self, model):
        tokens = np.arange(10).reshape(1, 10)
        ppl = model.perplexity(tokens)
        assert ppl > 1.0
        assert np.isfinite(ppl)

    def test_greedy_next(self, model):
        logits = np.zeros((2, model.config.vocab))
        logits[0, 5] = 1.0
        logits[1, 7] = 1.0
        assert np.array_equal(model.greedy_next(logits), [5, 7])


class TestOperatorShapes:
    def test_decode_ledger_covers_all_projections(self):
        shapes = decode_operator_shapes(llama_7b(), batch=16, seq_len=1024)
        names = {s.name for s in shapes}
        assert {"qkv_proj", "o_proj", "gate_up_proj", "down_proj",
                "lm_head", "decode_attention"} <= names

    def test_gemv_weight_volume_matches_params(self):
        cfg = llama_7b()
        shapes = decode_operator_shapes(cfg, batch=1, seq_len=128)
        weight_elems = sum(s.n * s.k * s.count for s in shapes
                           if s.kind == "gemv" and s.name != "lm_head")
        per_layer = 4 * cfg.hidden ** 2 + 3 * cfg.hidden * cfg.intermediate
        assert weight_elems == cfg.n_layers * per_layer

    def test_attention_shape_fields(self):
        shapes = decode_operator_shapes(llama_7b(), batch=4, seq_len=2048)
        attn = [s for s in shapes if s.kind == "attention"][0]
        assert attn.batch == 4
        assert attn.seq_len == 2048
        assert attn.heads == 32
        assert attn.count == 32
