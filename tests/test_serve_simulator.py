"""Serving-simulator and metrics tests.

Most tests run the simulator with a stub cost model (constant iteration
cost) so they are exact and instant; one slow-ish test drives the real
analytic stack end-to-end on tiny-Llama.
"""

import pytest

from repro.core.engine import ComputeEngine
from repro.gpu.spec import RTX4090
from repro.llm.config import tiny_llama
from repro.serve.costs import StepCostModel, bucket_up
from repro.serve.requests import Request, poisson_trace, LengthSampler
from repro.serve.scheduler import ContinuousBatchScheduler, KVBudget
from repro.serve.simulator import ServingSimulator, percentile


class ConstantCostModel:
    """Stub: every iteration costs a fixed time."""

    def __init__(self, step_us=1000.0):
        self._us = step_us
        self.calls = 0

    def step_us(self, plan):
        self.calls += 1
        return self._us


def _scheduler(max_tokens=100_000, token_budget=512, max_seqs=16):
    budget = KVBudget(capacity_bytes=float(max_tokens), bytes_per_token=1.0)
    return ContinuousBatchScheduler(budget, token_budget=token_budget,
                                    max_seqs=max_seqs)


def _trace(n, prompt=32, output=8, gap=0.0):
    return [Request(req_id=i, arrival_s=i * gap, prompt_tokens=prompt,
                    output_tokens=output) for i in range(n)]


class TestPercentile:
    def test_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_extreme_quantiles_are_min_and_max(self):
        values = [7.0, 1.0, 4.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_element_is_every_quantile(self):
        for q in (0, 37.5, 50, 100):
            assert percentile([3.25], q) == 3.25

    def test_accepts_any_sequence_type(self):
        assert percentile((2.0, 4.0), 50) == pytest.approx(3.0)
        assert percentile(iter([2.0, 4.0]), 50) == pytest.approx(3.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestBucketing:
    def test_rounds_up_within_grid(self):
        assert bucket_up(3, (1, 2, 4, 8)) == 4
        assert bucket_up(8, (1, 2, 4, 8)) == 8

    def test_doubles_past_grid_end(self):
        assert bucket_up(9, (1, 2, 4, 8)) == 16
        assert bucket_up(33, (1, 2, 4, 8)) == 64

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_up(0, (1, 2))

    def test_seq_bucket_rounds_fractional_context_up(self):
        """Regression: a fractional mean context just past a bucket
        boundary must round *up* (the module contract), not truncate
        into the lower bucket before the ceil-div (256.4 -> 256)."""
        cost = StepCostModel(ComputeEngine(RTX4090), tiny_llama(),
                             seq_bucket=256)
        assert cost._bucket_seq(256.0) == 256
        assert cost._bucket_seq(256.4) == 512   # pre-fix: 256
        assert cost._bucket_seq(512.0) == 512
        assert cost._bucket_seq(512.01) == 768
        assert cost._bucket_seq(0.5) == 256
        assert cost._bucket_seq(1.0) == 256
        assert cost._bucket_seq(257) == 512


class TestSimulatorLoop:
    def test_single_request_timing_is_exact(self):
        """One request, constant 1 ms steps: every metric is closed-form."""
        sched = _scheduler(token_budget=512)
        cost = ConstantCostModel(step_us=1000.0)
        sim = ServingSimulator(sched, cost, name="unit")
        trace = _trace(1, prompt=100, output=5)
        report = sim.run(trace)
        # Iteration 1 prefills all 100 tokens and emits token 1; four
        # more decode iterations emit tokens 2..5.
        assert report.n_iterations == 5
        assert report.makespan_s == pytest.approx(0.005)
        rec = report.records[0]
        assert rec.ttft_s == pytest.approx(0.001)
        assert rec.latency_s == pytest.approx(0.005)
        assert rec.tpot_s == pytest.approx(0.001)

    def test_all_requests_complete(self):
        sched = _scheduler()
        sim = ServingSimulator(sched, ConstantCostModel(), name="unit")
        report = sim.run(_trace(20, gap=0.0005))
        assert report.n_requests == 20
        assert sorted(r.req_id for r in report.records) == list(range(20))
        assert not sched.has_work

    def test_idle_gap_fast_forwards_clock(self):
        sched = _scheduler()
        sim = ServingSimulator(sched, ConstantCostModel(1000.0), name="unit")
        trace = [Request(0, 0.0, 32, 2), Request(1, 10.0, 32, 2)]
        report = sim.run(trace)
        # The late arrival resets the clock past t=10 instead of the
        # simulator spinning through empty iterations.
        assert 10.0 < report.makespan_s < 10.1
        assert report.records[1].ttft_s < 0.1

    def test_queueing_shows_up_in_ttft(self):
        """With memory for one sequence at a time, TTFT grows linearly."""
        sched = _scheduler(max_tokens=40, token_budget=512, max_seqs=16)
        sim = ServingSimulator(sched, ConstantCostModel(1000.0), name="unit")
        report = sim.run(_trace(4, prompt=32, output=8))  # 40 tokens each
        ttfts = [r.ttft_s for r in report.records]
        assert ttfts == sorted(ttfts)
        assert ttfts[-1] > 3 * ttfts[0] > 0

    def test_iteration_guard_trips(self):
        sched = _scheduler()
        sim = ServingSimulator(sched, ConstantCostModel(), name="unit")
        with pytest.raises(RuntimeError):
            sim.run(_trace(10), max_iterations=3)

    def test_empty_trace_rejected(self):
        sim = ServingSimulator(_scheduler(), ConstantCostModel(),
                               name="unit")
        with pytest.raises(ValueError):
            sim.run([])


class TestEndToEndAnalytic:
    """The real stack on tiny-Llama: slower (~seconds), still bounded."""

    def test_fp16_serving_run(self):
        cfg = tiny_llama()
        engine = ComputeEngine(RTX4090)
        budget = KVBudget.for_model(cfg, 5e6)
        sched = ContinuousBatchScheduler(budget, token_budget=1024,
                                         max_seqs=8)
        cost = StepCostModel(engine, cfg, seq_bucket=128)
        trace = poisson_trace(50.0, 12,
                              prompt=LengthSampler(64, 0.3, hi=256),
                              output=LengthSampler(16, 0.3, hi=64),
                              seed=2)
        report = ServingSimulator(sched, cost, name="tiny-fp16").run(trace)
        assert report.n_requests == 12
        assert report.makespan_s > 0
        assert report.throughput_rps > 0
        assert report.ttft_s(50) > 0
        assert report.latency_s(99) >= report.latency_s(50)
        # Memoization keeps the distinct kernel evaluations tiny: the
        # cost model's bucket tables absorb repeated iteration shapes,
        # and the engine memo deduplicates what leaks past them, so
        # cache hits across the two layers dwarf distinct evaluations.
        info = engine.memo_info()
        tables = cost.table_info()
        assert tables["hits"] > 0
        assert info["hits"] + tables["hits"] > info["misses"]
        # The summary renders every headline metric.
        text = report.summary()
        for token in ("throughput", "TTFT", "TPOT", "latency", "p99"):
            assert token in text


class TestReviewRegressions:
    """Fixes from the PR-1 review pass."""

    def test_chunked_prefill_attention_telescopes(self):
        """Per-chunk attention charges are increments of the cumulative
        causal cost, so they sum exactly to the whole-prompt charge —
        no re-billing of already-prefilled queries.  (GEMM and launch
        overheads legitimately differ under chunking: small GEMMs run
        at lower efficiency, and each chunk pays its own launches.)"""
        cfg = tiny_llama()
        cost = StepCostModel(ComputeEngine(RTX4090), cfg, seq_bucket=128)
        whole_attn = cost._prefill_attn_cum_us(2048)
        chunk_attn = sum(
            cost._prefill_attn_cum_us(ctx + 256)
            - cost._prefill_attn_cum_us(ctx)
            for ctx in range(0, 2048, 256))
        assert chunk_attn == pytest.approx(whole_attn, rel=1e-12)

    def test_chunked_prefill_overhead_is_bounded(self):
        """At 7B scale, chunking a 2048-token prompt costs well under
        the ~1.5x the old quadratic attention re-billing produced."""
        from repro.llm.config import llama_7b
        cost = StepCostModel(ComputeEngine(RTX4090), llama_7b(),
                             seq_bucket=128)
        whole = cost.prefill_us(2048)
        chunked = sum(cost.prefill_us(256, ctx)
                      for ctx in range(0, 2048, 256))
        assert whole <= chunked <= 1.4 * whole

    def test_oversized_request_rejected_not_crashed(self):
        sched = _scheduler(max_tokens=50, token_budget=512)
        sim = ServingSimulator(sched, ConstantCostModel(), name="unit")
        trace = [Request(0, 0.0, 32, 8),           # fits (40 tokens)
                 Request(1, 0.0, 100, 8),          # cannot ever fit
                 Request(2, 0.1, 32, 8)]           # fits
        report = sim.run(trace)
        assert report.n_requests == 2
        assert report.n_rejected == 1
        assert "rejected" in report.summary()

    def test_single_token_outputs_do_not_crash_summary(self):
        sched = _scheduler()
        sim = ServingSimulator(sched, ConstantCostModel(), name="unit")
        report = sim.run([Request(0, 0.0, 16, 1), Request(1, 0.0, 16, 1)])
        assert report.tpot_s(50) == 0.0
        assert "TPOT" in report.summary()

    def test_all_requests_rejected_still_reports(self):
        sched = _scheduler(max_tokens=10, token_budget=512)
        sim = ServingSimulator(sched, ConstantCostModel(), name="unit")
        report = sim.run([Request(0, 0.0, 32, 8)])
        assert report.n_requests == 0 and report.n_rejected == 1
        assert report.ttft_s(50) == 0.0 and report.latency_s(99) == 0.0
        report.summary()  # must not raise

    def test_prompt_completion_prices_first_token(self):
        """Regression: the iteration that completes a prompt samples
        that sequence's first output token, so it must be charged the
        LM-head GEMV + sampler pass ``prefill_us`` deliberately omits
        (pre-fix, completing and non-completing chunks cost the same).
        """
        from repro.serve.scheduler import BatchPlan, SequenceState
        cfg = tiny_llama()
        cost = StepCostModel(ComputeEngine(RTX4090), cfg, seq_bucket=128)
        completing = SequenceState(request=Request(0, 0.0, 64, 8),
                                   prefilled=32)
        mid_prompt = SequenceState(request=Request(1, 0.0, 128, 8),
                                   prefilled=32)
        plan_done = BatchPlan(prefill=[(completing, 32)])
        plan_mid = BatchPlan(prefill=[(mid_prompt, 32)])
        assert plan_done.prompt_completions == 1
        assert plan_mid.prompt_completions == 0
        extra = cost.step_us(plan_done) - cost.step_us(plan_mid)
        assert cost.first_token_us(1) > 0
        assert extra == pytest.approx(cost.first_token_us(1))
        assert cost.first_token_us(0) == 0.0

    def test_qt_v_without_qt_rejected(self):
        from repro.kernels.attention import AttentionShape as AS
        engine = ComputeEngine(RTX4090)

        class FakeQT:  # never reaches kernel code: rejected up front
            pass

        with pytest.raises(ValueError):
            engine.batch_latency_us("attention", AS(1, 2, 64, 128),
                                    qt_v=FakeQT())
