"""Event-heap core tests: ordering, lockstep equivalence, wakeups.

The heap driver (:class:`repro.serve.events.EventLoop` under
:class:`repro.cluster.fleet.FleetSimulator`) claims two things:

1. it is *bit-identical* to the legacy poll-everyone lockstep driver
   (``Replica.advance_to`` before every arrival) — checked here by a
   test-local reimplementation of the old loop, property-tested over
   randomized traces, policies and admission modes;
2. it activates replicas strictly less often — idle replicas are never
   polled — checked by the sparse-trace wakeup regression.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.fleet import FleetSimulator, Replica, make_policy
from repro.serve.api import FleetConfig, SchedulerConfig
from repro.serve.events import ARRIVAL, STEP, TRANSFER, EventLoop
from repro.serve.requests import Request
from repro.serve.scheduler import ContinuousBatchScheduler, KVBudget


class ConstantCostModel:
    """Stub: every iteration costs a fixed time."""

    def __init__(self, step_us=1000.0):
        self._us = step_us

    def step_us(self, plan):
        return self._us


def _replicas(n, max_tokens=120, step_us=1000.0, token_budget=64,
              max_seqs=16, admission="reserve", block_tokens=8):
    cost = ConstantCostModel(step_us)
    config = SchedulerConfig(token_budget=token_budget, max_seqs=max_seqs,
                             admission=admission, block_tokens=block_tokens)
    return [
        Replica(i, ContinuousBatchScheduler(
            KVBudget(capacity_bytes=float(max_tokens), bytes_per_token=1.0),
            config=config), cost)
        for i in range(n)
    ]


def _lockstep_run(replicas, policy, trace, max_iterations=100_000):
    """The pre-heap fleet driver, verbatim: advance every replica to
    each arrival, route, then drain replicas one by one."""
    pending = sorted(trace, key=lambda r: r.arrival_s)
    assignments, rejected = {}, []
    for req in pending:
        for rep in replicas:
            rep.advance_to(req.arrival_s)
        candidates = [i for i, rep in enumerate(replicas)
                      if rep.scheduler.fits(req)]
        if not candidates:
            rejected.append(req.req_id)
            continue
        idx = policy.choose(req, replicas, candidates)
        replicas[idx].submit(req)
        assignments[req.req_id] = idx
    for rep in replicas:
        while rep.has_work:
            assert rep.iterations < max_iterations, "diverging reference"
            rep.step()
    return assignments, rejected


def _snapshot(replicas):
    """Everything observable about a drained fleet, exact floats."""
    return [
        {
            "iterations": rep.iterations,
            "now_s": rep.now_s,
            "n_submitted": rep.n_submitted,
            "peak_kv": rep.peak_kv,
            "finished": [(s.request.req_id, s.admitted_s, s.first_token_s,
                          s.finished_s, s.preemptions)
                         for s in rep.finished],
        }
        for rep in replicas
    ]


class TestEventLoop:
    def test_orders_by_time(self):
        loop = EventLoop()
        loop.push(3.0, STEP, "c")
        loop.push(1.0, STEP, "a")
        loop.push(2.0, STEP, "b")
        assert [loop.pop()[2] for _ in range(3)] == ["a", "b", "c"]
        assert loop.empty

    def test_arrival_beats_step_at_equal_time(self):
        loop = EventLoop()
        loop.push(1.0, STEP, "step")
        loop.push(1.0, ARRIVAL, "arrival")
        loop.push(1.0, TRANSFER, "transfer")
        kinds = [loop.pop()[1] for _ in range(3)]
        assert kinds == [ARRIVAL, STEP, TRANSFER]

    def test_fifo_among_exact_ties(self):
        loop = EventLoop()
        for i in range(5):
            loop.push(1.0, ARRIVAL, i)
        assert [loop.pop()[2] for _ in range(5)] == list(range(5))

    def test_peek_does_not_pop(self):
        loop = EventLoop()
        assert loop.peek() is None
        loop.push(1.0, ARRIVAL, "x")
        assert loop.peek() == (1.0, ARRIVAL, "x")
        assert len(loop) == 1
        assert loop.pop() == (1.0, ARRIVAL, "x")

    def test_stats_count_by_kind(self):
        loop = EventLoop()
        loop.push(1.0, ARRIVAL)
        loop.push(2.0, STEP)
        loop.push(3.0, STEP)
        loop.push(4.0, TRANSFER)
        while not loop.empty:
            loop.pop()
        st = loop.stats
        assert (st.n_events, st.n_arrivals, st.n_step_events,
                st.n_transfers, st.n_idle_polls) == (4, 1, 2, 1, 0)


@st.composite
def _fleet_case(draw):
    n_replicas = draw(st.integers(1, 4))
    n_requests = draw(st.integers(1, 20))
    admission = draw(st.sampled_from(["reserve", "paged"]))
    policy = draw(st.sampled_from(["round-robin", "jsq", "least-kv"]))
    # Gaps include 0.0 (same-instant arrivals) and values around the
    # 1 ms step cost so iteration boundaries land on, before and after
    # arrivals.
    gaps = draw(st.lists(
        st.sampled_from([0.0, 0.0003, 0.001, 0.004, 0.02]),
        min_size=n_requests, max_size=n_requests))
    sizes = draw(st.lists(
        st.tuples(st.integers(1, 64), st.integers(1, 10)),
        min_size=n_requests, max_size=n_requests))
    t, trace = 0.0, []
    for i, (gap, (prompt, output)) in enumerate(zip(gaps, sizes)):
        t += gap
        # An occasional oversized request exercises rejection.
        if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
            prompt = 500
        trace.append(Request(req_id=i, arrival_s=t, prompt_tokens=prompt,
                             output_tokens=output))
    return n_replicas, admission, policy, trace


class TestHeapLockstepEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(_fleet_case())
    def test_heap_matches_lockstep(self, case):
        n_replicas, admission, policy, trace = case

        heap_reps = _replicas(n_replicas, admission=admission)
        sim = FleetSimulator(heap_reps,
                             config=FleetConfig(policy=policy, name="heap"))
        report = sim.run(trace)

        lock_reps = _replicas(n_replicas, admission=admission)
        assignments, rejected = _lockstep_run(lock_reps,
                                              make_policy(policy), trace)

        # Same routing decisions, same rejections, and per replica the
        # same iteration chain with exactly equal clocks and records —
        # including completion order (`finished` is append-ordered).
        assert report.assignments == assignments
        assert report.n_rejected == len(rejected)
        assert _snapshot(heap_reps) == _snapshot(lock_reps)
        assert report.makespan_s == max(r.now_s for r in lock_reps)


class TestWakeupRegression:
    def test_sparse_trace_wakeups_drop(self):
        """The lockstep driver pays replicas x arrivals activations on a
        sparse trace; the heap only wakes a replica per iteration it
        actually runs, and never polls an idle one."""
        n_replicas, n_requests = 4, 60
        # One-iteration requests, far apart: the fleet is almost always
        # fully idle when the next request lands.
        trace = [Request(req_id=i, arrival_s=0.05 * i, prompt_tokens=8,
                         output_tokens=1) for i in range(n_requests)]

        heap_reps = _replicas(n_replicas)
        sim = FleetSimulator(heap_reps,
                             config=FleetConfig(policy="jsq", name="heap"))
        sim.run(trace)
        heap_wakeups = sum(r.n_wakeups for r in heap_reps)
        # One wakeup per executed iteration, nothing else.
        assert heap_wakeups == sum(r.iterations for r in heap_reps)
        assert sim.last_event_stats.n_idle_polls == 0
        assert sim.last_event_stats.n_step_events == heap_wakeups

        lock_reps = _replicas(n_replicas)
        _lockstep_run(lock_reps, make_policy("jsq"), trace)
        lock_wakeups = sum(r.n_wakeups for r in lock_reps)
        # advance_to touched every replica at every arrival...
        assert lock_wakeups == n_replicas * n_requests
        # ...which the heap driver undercuts by the poll-everyone tax:
        # total iterations here (= heap wakeups) is n_requests, a 4x drop.
        assert heap_wakeups < lock_wakeups
        # Work itself is identical — only the driver overhead differs.
        assert (sum(r.iterations for r in heap_reps)
                == sum(r.iterations for r in lock_reps))


class TestSingleSimEventCore:
    def test_serving_simulator_uses_heap_arrivals(self):
        """The single-engine loop ingests arrivals from the heap in
        non-strict (<= now) order and fast-forwards over idle gaps."""
        from repro.serve.api import SimConfig
        from repro.serve.simulator import ServingSimulator

        config = SchedulerConfig(token_budget=64, max_seqs=8)
        sched = ContinuousBatchScheduler(
            KVBudget(capacity_bytes=1e4, bytes_per_token=1.0),
            config=config)
        sim = ServingSimulator(sched, ConstantCostModel(),
                               config=SimConfig(name="unit"))
        trace = [Request(req_id=i, arrival_s=1.0 * i, prompt_tokens=8,
                         output_tokens=2) for i in range(3)]
        report = sim.run(trace)
        assert report.n_requests == 3
        # Idle gaps are skipped, not iterated over: two iterations per
        # request (prefill+first token, then one decode).
        assert report.n_iterations == 6
        # Arrivals at t=1 and t=2 were waited for exactly.
        assert report.makespan_s == pytest.approx(2.0 + 2 * 0.001)
