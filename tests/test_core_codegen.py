"""Code-generator tests: templates, emitted source, generated kernels."""

import numpy as np
import pytest

from repro.core.codegen import VQLLMCodeGenerator
from repro.core.emitter import emit_cuda
from repro.core.heuristics import PlanKnobs
from repro.core.template import build_template
from repro.gpu.spec import RTX4090
from repro.kernels.attention import AttentionShape
from repro.kernels.gemm import GemmShape
from repro.vq.algorithms import make_config

GEMV = GemmShape(m=1, n=2048, k=2048)
GEMM = GemmShape(m=512, n=2048, k=2048)
ATTN = AttentionShape(batch=1, heads=8, seq_len=512, head_dim=128)


@pytest.fixture(scope="module")
def gen():
    return VQLLMCodeGenerator(RTX4090)


class TestTemplates:
    def test_template_describe(self):
        knobs = PlanKnobs(label="GC", placement="global")
        t = build_template("gemv", make_config("gptvq-2"), knobs)
        desc = t.describe()
        assert desc["algorithm"] == "GPTVQ-2"
        assert desc["vq"] == "VQ<4,8,1>"
        assert desc["dataflow"] == "naive"

    def test_register_fusion_builds_thread_mapping(self):
        knobs = PlanKnobs(label="O4", placement="global",
                          dataflow=True, register_fusion=True)
        t = build_template("gemm", make_config("quip#-4"), knobs)
        assert t.fusion.uses_register_fusion
        assert t.mapping is not None
        assert t.mapping.mini_warp_size == 4

    def test_unknown_operation_rejected(self):
        knobs = PlanKnobs(label="GC", placement="global")
        with pytest.raises(ValueError):
            build_template("conv", make_config("cq-2"), knobs)


class TestEmitter:
    def _source(self, level, algo="gptvq-2", op="gemv", gen=None):
        gen = gen or VQLLMCodeGenerator(RTX4090)
        return None

    def test_gc_emits_global_lookup(self):
        knobs = PlanKnobs(label="GC", placement="global")
        src = emit_cuda(build_template("gemv", make_config("gptvq-2"),
                                       knobs))
        assert "ld_global(codebook_g + idx)" in src

    def test_sc_emits_shared_lookup(self):
        knobs = PlanKnobs(label="SC", placement="shared_all")
        src = emit_cuda(build_template("gemv", make_config("gptvq-2"),
                                       knobs))
        assert "codebook_s[idx]" in src

    def test_hierarchical_emits_two_comparisons(self, gen, qt_gptvq):
        k = gen.generate_gemv(GEMV, qt_gptvq, level="O2")
        b = k.template.boundaries
        assert f"if (idx < {b.n_reg})" in k.source
        assert f"else if (idx < {b.n_shared})" in k.source

    def test_register_fusion_emits_shuffles(self, gen, qt_gptvq):
        k = gen.generate_gemv(GEMV, qt_gptvq, level="O4")
        if k.template.fusion.uses_register_fusion:
            assert "__shfl_xor_sync" in k.source
            assert k.source.count("__shfl_xor_sync") \
                == k.template.fusion.n_shuffles

    def test_dataflow_emits_global_reduction(self, gen, qt_cq2_kv,
                                             qt_cq4_kv):
        k = gen.generate_attention(ATTN, qt_cq2_kv, qt_cq2_kv, level="O3")
        assert "atomic_reduce" in k.source

    def test_kernel_name_embeds_algorithm(self, gen, qt_gptvq):
        k = gen.generate_gemv(GEMV, qt_gptvq, level="O4")
        assert "gptvq_2" in k.source


class TestGeneratedKernels:
    def test_all_levels_generate_for_all_ops(self, gen, qt_gptvq,
                                             qt_cq2_kv):
        for level in ("GC", "SC", "O1", "O2", "O3", "O4"):
            assert gen.generate_gemv(GEMV, qt_gptvq,
                                     level=level).latency_us() > 0
            assert gen.generate_gemm(GEMM, qt_gptvq,
                                     level=level).latency_us() > 0
            assert gen.generate_attention(
                ATTN, qt_cq2_kv, qt_cq2_kv, level=level).latency_us() > 0

    def test_o4_beats_gc_for_large_codebooks(self, gen, qt_gptvq):
        gc = gen.generate_gemv(GEMV, qt_gptvq, level="GC").latency_us()
        o4 = gen.generate_gemv(GEMV, qt_gptvq, level="O4").latency_us()
        assert o4 < gc

    def test_attention_o3_beats_all_naive_levels(self, gen, qt_cq2_kv):
        latencies = {
            lv: gen.generate_attention(ATTN, qt_cq2_kv, qt_cq2_kv,
                                       level=lv).latency_us()
            for lv in ("GC", "SC", "O1", "O3")
        }
        assert latencies["O3"] < min(latencies["GC"], latencies["SC"],
                                     latencies["O1"])

    def test_numeric_execution_gemv(self, gen, qt_gptvq, weight):
        # The quantized weight is laid out (N, K): rows are output
        # channels, columns the reduction axis.
        n, k_dim = weight.shape
        a = np.random.default_rng(0).standard_normal((1, k_dim))
        k = gen.generate_gemv(GemmShape(1, n, k_dim), qt_gptvq,
                              level="O4", a=a)
        out = k.execute()
        expected = a @ qt_gptvq.dequantize().T
        assert np.allclose(out, expected)

    def test_describe_includes_boundaries(self, gen, qt_gptvq):
        k = gen.generate_gemv(GEMV, qt_gptvq, level="O2")
        desc = k.describe()
        assert "n_reg" in desc and "n_shared" in desc

    def test_sweep_levels(self, gen, qt_gptvq):
        kernels = gen.sweep_levels(gen.generate_gemv, GEMV, qt_gptvq)
        assert set(kernels) == {"GC", "SC", "O1", "O2", "O3", "O4"}

    def test_adaptive_placement_never_worse_than_slack_only(
            self, gen, qt_aqlm):
        # The O1 candidate search picks min(partial, full): it must not
        # exceed the SC (full, forced) latency by more than noise.
        sc = gen.generate_gemv(GEMV, qt_aqlm, level="SC").latency_us()
        o1 = gen.generate_gemv(GEMV, qt_aqlm, level="O1").latency_us()
        assert o1 <= sc * 1.05
