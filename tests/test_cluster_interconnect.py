"""Interconnect link and ring-collective model tests."""

import pytest

from repro.cluster.interconnect import (
    IDEAL_LINK,
    LINKS,
    LinkSpec,
    NVLINK3,
    NVLINK4,
    PCIE4,
    get_link,
    ring_all_gather_us,
    ring_all_reduce_us,
)


class TestLinkSpec:
    def test_presets_are_consistent(self):
        assert NVLINK4.bandwidth_gbps > NVLINK3.bandwidth_gbps
        assert NVLINK3.bandwidth_gbps > PCIE4.bandwidth_gbps
        assert PCIE4.latency_us >= NVLINK3.latency_us

    def test_bytes_per_s(self):
        assert PCIE4.bytes_per_s == pytest.approx(25e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth_gbps=0.0, latency_us=1.0)
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth_gbps=10.0, latency_us=-1.0)

    def test_get_link_normalises_names(self):
        assert get_link("NVLink 4") is NVLINK4
        assert get_link("pcie-4") is PCIE4
        assert get_link("PCIE_4") is PCIE4
        with pytest.raises(KeyError):
            get_link("infiniband")

    def test_every_preset_resolves(self):
        for name, link in LINKS.items():
            assert get_link(name) is link


class TestRingCollectives:
    def test_single_rank_is_free(self):
        assert ring_all_reduce_us(1e6, 1, NVLINK3) == 0.0
        assert ring_all_gather_us(1e6, 1, NVLINK3) == 0.0

    def test_empty_message_is_free(self):
        assert ring_all_reduce_us(0, 4, NVLINK3) == 0.0
        assert ring_all_gather_us(0, 4, NVLINK3) == 0.0

    def test_monotone_in_message_size(self):
        sizes = [1e3, 1e4, 1e5, 1e6, 1e7]
        for fn in (ring_all_reduce_us, ring_all_gather_us):
            costs = [fn(s, 4, NVLINK3) for s in sizes]
            assert costs == sorted(costs)
            assert costs[0] < costs[-1]

    def test_monotone_in_degree(self):
        """More ranks never makes a collective cheaper (ring model)."""
        for nbytes in (1e3, 1e6):
            for fn in (ring_all_reduce_us, ring_all_gather_us):
                costs = [fn(nbytes, p, NVLINK3) for p in (2, 4, 8, 16)]
                assert costs == sorted(costs)
                assert costs[0] < costs[-1]

    def test_all_gather_cheaper_than_all_reduce(self):
        """All-gather is the second half of the all-reduce ring."""
        for p in (2, 4, 8):
            ar = ring_all_reduce_us(1e6, p, NVLINK3)
            ag = ring_all_gather_us(1e6, p, NVLINK3)
            assert ag == pytest.approx(ar / 2)

    def test_bandwidth_asymptote(self):
        """Huge messages approach 2 (p-1)/p * n / bw (latency vanishes)."""
        n, p = 1e12, 4
        expected = 2 * (p - 1) / p * n / NVLINK3.bytes_per_s * 1e6
        assert ring_all_reduce_us(n, p, NVLINK3) == pytest.approx(
            expected, rel=1e-3)

    def test_latency_floor_for_small_messages(self):
        """Tiny messages cost ~2 (p-1) hop latencies."""
        p = 8
        floor = 2 * (p - 1) * PCIE4.latency_us
        cost = ring_all_reduce_us(16, p, PCIE4)
        assert cost == pytest.approx(floor, rel=1e-3)

    def test_nvlink_beats_pcie(self):
        assert (ring_all_reduce_us(1e6, 4, NVLINK3)
                < ring_all_reduce_us(1e6, 4, PCIE4))

    def test_ideal_link_is_nearly_free(self):
        assert ring_all_reduce_us(1e9, 8, IDEAL_LINK) < 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_all_reduce_us(-1.0, 2, NVLINK3)
        with pytest.raises(ValueError):
            ring_all_gather_us(1e3, 0, NVLINK3)
