"""Hotness profiling tests (Fig. 8 / Fig. 9 mechanics)."""

import numpy as np
import pytest

from repro.core.hotness import (
    HotnessProfile,
    block_consistency,
    per_block_counts,
    profile_hotness,
)


class TestProfile:
    def test_counts_cover_all_lookups(self, qt_gptvq):
        profile = profile_hotness(qt_gptvq)
        assert profile.total_accesses == qt_gptvq.lookup_indices().size
        assert profile.n_entries == 256

    def test_order_sorts_descending(self, qt_gptvq):
        profile = profile_hotness(qt_gptvq)
        sorted_counts = profile.sorted_counts
        assert np.all(sorted_counts[:-1] >= sorted_counts[1:])

    def test_coverage_monotone(self, qt_aqlm):
        profile = profile_hotness(qt_aqlm)
        values = [profile.coverage(n) for n in (0, 1, 16, 256, 4096)]
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(1.0)
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_coverage_beyond_entries_is_full(self, qt_gptvq):
        profile = profile_hotness(qt_gptvq)
        assert profile.coverage(10_000) == pytest.approx(1.0)

    def test_structured_weights_are_skewed(self, qt_aqlm):
        # The paper's Fig. 8 observation: over half the entries sit
        # below the mean access count.
        profile = profile_hotness(qt_aqlm)
        assert profile.below_mean_fraction() > 0.5

    def test_hot_entries_nonnegative(self, qt_cq2_kv):
        profile = profile_hotness(qt_cq2_kv)
        assert profile.hot_entries(3.0) >= 0

    def test_lattice_profile_over_base_table(self, qt_quip):
        profile = profile_hotness(qt_quip)
        assert profile.n_entries == 256  # base table, not 65536

    def test_synthetic_uniform_has_no_hot_entries(self):
        counts = np.full(64, 100)
        profile = HotnessProfile(counts, np.arange(64))
        assert profile.hot_entries() == 0
        assert profile.below_mean_fraction() == 0.0


class TestPerBlock:
    def test_shape(self, qt_gptvq):
        counts = per_block_counts(qt_gptvq, rows_per_block=32)
        assert counts.shape == (qt_gptvq.rows // 32, 256)

    def test_block_counts_sum_to_total(self, qt_gptvq):
        counts = per_block_counts(qt_gptvq, rows_per_block=32)
        assert counts.sum() == qt_gptvq.lookup_indices().size

    def test_ragged_last_block(self, qt_gptvq):
        counts = per_block_counts(qt_gptvq, rows_per_block=100)
        assert counts.shape[0] == 2
        assert counts.sum() == qt_gptvq.lookup_indices().size

    def test_rejects_bad_block_size(self, qt_gptvq):
        with pytest.raises(ValueError):
            per_block_counts(qt_gptvq, rows_per_block=0)


class TestConsistency:
    def test_identical_blocks_fully_consistent(self):
        counts = np.tile(np.arange(64), (8, 1))
        assert block_consistency(counts, top_n=8) == pytest.approx(1.0)

    def test_disjoint_blocks_inconsistent(self):
        counts = np.zeros((2, 64))
        counts[0, :8] = 100
        counts[1, 32:40] = 100
        assert block_consistency(counts, top_n=8) <= 0.5

    def test_structured_weights_consistent(self, qt_quip):
        # Fig. 9: tensor-level reorder is justified because hot entries
        # repeat across blocks.
        counts = per_block_counts(qt_quip, rows_per_block=32)
        assert block_consistency(counts, top_n=32) > 0.5

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            block_consistency(np.arange(10))
