"""Prefix-cache tests: radix tree, ref counting, COW, LRU eviction,
scheduler integration, and the default-path equivalence guarantee.

The golden numbers in ``TestDefaultPathUnchanged`` were recorded on
main immediately before the prefix subsystem landed; with
``prefix_caching=False`` (the default) every one of them must stay
bit-identical, so PR 1-4 results do not shift.
"""

import pytest

from repro.serve.prefix import (
    PrefixCache,
    PrefixCachingAllocator,
    rolling_hash,
)
from repro.serve.requests import Request
from repro.serve.scheduler import ContinuousBatchScheduler, KVBudget
from repro.serve.simulator import ServingSimulator


class ConstantCostModel:
    """Stub: every iteration costs a fixed time."""

    def __init__(self, step_us=1000.0):
        self._us = step_us

    def step_us(self, plan):
        return self._us


def _ids(*ranges):
    out = []
    for r in ranges:
        out.extend(r)
    return tuple(out)


def _req(i, prompt_ids, output_ids=None, output=8, arrival=0.0,
         session=None, turn=0):
    out_ids = tuple(output_ids) if output_ids is not None else None
    return Request(req_id=i, arrival_s=arrival,
                   prompt_tokens=len(prompt_ids),
                   output_tokens=len(out_ids) if out_ids else output,
                   prompt_ids=tuple(prompt_ids), output_ids=out_ids,
                   session_id=session, turn=turn)


def _prefix_sched(total_tokens=256, block_tokens=8, token_budget=256,
                  max_seqs=16, watermark_frac=0.0):
    budget = KVBudget(capacity_bytes=float(total_tokens),
                      bytes_per_token=1.0)
    return ContinuousBatchScheduler(budget, token_budget=token_budget,
                                    max_seqs=max_seqs, admission="paged",
                                    block_tokens=block_tokens,
                                    watermark_frac=watermark_frac,
                                    prefix_caching=True)


class TestRollingHash:
    def test_deterministic_and_chained(self):
        h1 = rolling_hash(0, (1, 2, 3))
        assert h1 == rolling_hash(0, (1, 2, 3))
        assert h1 != rolling_hash(0, (1, 2, 4))
        # Chaining: the same block under a different parent hashes
        # differently — identity is the full prefix.
        assert rolling_hash(h1, (5, 6)) != rolling_hash(0, (5, 6))

    def test_order_sensitive(self):
        assert rolling_hash(0, (1, 2)) != rolling_hash(0, (2, 1))


class TestPrefixCache:
    def test_insert_then_match(self):
        cache = PrefixCache(block_tokens=4)
        ids = _ids(range(12))
        created, dups = cache.insert(ids, 3)
        assert (created, dups) == (3, 0)
        assert cache.n_blocks == 3
        assert len(cache.match(ids, 3)) == 3
        assert len(cache.match(ids, 2)) == 2          # cap respected
        assert len(cache.match(_ids(range(8), [99, 98, 97, 96]), 3)) == 2
        assert cache.match(tuple(range(100, 112)), 3) == []

    def test_insert_is_idempotent(self):
        cache = PrefixCache(block_tokens=4)
        ids = _ids(range(8))
        assert cache.insert(ids, 2) == (2, 0)
        assert cache.insert(ids, 2) == (0, 2)
        assert cache.n_blocks == 2

    def test_branching_prefixes_share_the_stem(self):
        cache = PrefixCache(block_tokens=4)
        a = _ids(range(4), [10, 11, 12, 13])
        b = _ids(range(4), [20, 21, 22, 23])
        cache.insert(a, 2)
        created, dups = cache.insert(b, 2)
        assert (created, dups) == (1, 1)               # stem shared
        assert cache.n_blocks == 3

    def test_lock_pins_against_eviction(self):
        cache = PrefixCache(block_tokens=4)
        ids = _ids(range(8))
        cache.insert(ids, 2)
        path = cache.match(ids, 2)
        cache.lock(path)
        assert cache.n_referenced == 2
        assert cache.evict_lru(10) == 0                # all pinned
        cache.unlock(path)
        assert cache.n_referenced == 0
        assert cache.evict_lru(10) == 2
        assert cache.n_blocks == 0

    def test_evicts_leaves_lru_first(self):
        cache = PrefixCache(block_tokens=2)
        old = _ids([0, 1], [2, 3])
        new = _ids([0, 1], [4, 5])
        cache.insert(old, 2)
        cache.insert(new, 2)
        cache.match(new, 2)                            # touch `new`
        assert cache.evict_lru(1) == 1
        assert len(cache.match(new, 2)) == 2           # survivor
        assert len(cache.match(old, 2)) == 1           # leaf gone
        # The shared stem only falls once its children are gone.
        assert cache.evict_lru(10) == 2
        assert cache.n_blocks == 0

    def test_partial_lock_leaves_tail_evictable(self):
        cache = PrefixCache(block_tokens=2)
        ids = _ids(range(6))
        cache.insert(ids, 3)
        stem = cache.match(ids, 1)
        cache.lock(stem)
        assert cache.n_evictable == 2
        assert cache.evict_lru(10) == 2                # tail falls
        assert cache.n_blocks == 1 and cache.n_referenced == 1


class TestPrefixCachingAllocator:
    def _alloc(self, total=32, bt=4):
        return PrefixCachingAllocator(total_blocks=total, block_tokens=bt)

    def test_miss_then_commit_then_hit(self):
        alloc = self._alloc()
        ids = _ids(range(17))
        assert alloc.match_and_lock(1, ids) == 0       # cold
        assert alloc.ensure(1, 17)
        assert alloc.holds(1) == 5
        alloc.release(1, token_ids=ids)
        # 4 full blocks committed (resident, unreferenced), tail freed.
        assert alloc.cache.n_blocks == 4
        assert alloc.used_blocks == 0
        assert alloc.free_blocks == alloc.total_blocks
        assert alloc.raw_free_blocks == alloc.total_blocks - 4
        # Second request with the same prompt hits all matchable blocks.
        cached = alloc.match_and_lock(2, ids)
        assert cached == 16
        assert alloc.holds(2) == 4 and alloc.shared_blocks(2) == 4
        assert alloc.used_blocks == 4                  # shared, counted once
        alloc.check_conservation()

    def test_sharing_counts_blocks_once(self):
        alloc = self._alloc()
        ids = _ids(range(16))
        alloc.match_and_lock(1, ids)
        alloc.ensure(1, 16)
        alloc.release(1, token_ids=ids)
        a = alloc.match_and_lock(2, _ids(range(16), [90]))
        b = alloc.match_and_lock(3, _ids(range(16), [91]))
        assert a == b == 16
        assert alloc.used_blocks == 4                  # not 8
        alloc.release(2)
        assert alloc.used_blocks == 4                  # still locked by 3
        alloc.release(3)
        assert alloc.used_blocks == 0
        assert alloc.cache.n_blocks == 4               # cached, evictable
        alloc.check_conservation()

    def test_peek_does_not_lock_or_count(self):
        alloc = self._alloc()
        ids = _ids(range(16))
        alloc.match_and_lock(1, ids)
        alloc.ensure(1, 16)
        alloc.release(1, token_ids=ids)
        stats0 = alloc.prefix_stats()
        assert alloc.peek(ids) == 12                   # last block COW-capped
        assert alloc.peek(_ids(range(16), [7])) == 16
        assert alloc.prefix_stats() == stats0          # no stats change
        assert alloc.cache.n_referenced == 0           # no locks

    def test_full_prompt_hit_is_cow_capped(self):
        """A prompt entirely in cache still recomputes its last block
        (the final token's logits are needed) from a private copy."""
        alloc = self._alloc()
        ids = _ids(range(16))
        alloc.match_and_lock(1, ids)
        alloc.ensure(1, 16)
        alloc.release(1, token_ids=ids)
        cached = alloc.match_and_lock(2, ids)
        assert cached == 12                            # 3 of 4 blocks
        assert alloc.prefix_stats().n_cow_copies == 1
        assert alloc.ensure(2, 16)                     # private copy
        assert alloc.holds(2) == 4
        alloc.release(2, token_ids=ids)
        assert alloc.cache.n_blocks == 4               # dedup: no growth
        alloc.check_conservation()

    def test_divergence_inside_a_block_is_a_miss(self):
        alloc = self._alloc()
        alloc.match_and_lock(1, _ids(range(8)))
        alloc.ensure(1, 8)
        alloc.release(1, token_ids=_ids(range(8)))
        # Shares block 0, diverges at token 5 (inside block 1).
        cached = alloc.match_and_lock(2, _ids(range(5), [99, 98, 97]))
        assert cached == 4
        assert alloc.prefix_stats().n_cow_copies == 0  # divergent, not COW

    def test_eviction_feeds_allocation(self):
        alloc = self._alloc(total=8, bt=4)
        ids = _ids(range(24))
        alloc.match_and_lock(1, ids)
        alloc.ensure(1, 24)                            # 6 blocks
        alloc.release(1, token_ids=ids)
        assert alloc.cache.n_blocks == 6
        assert alloc.raw_free_blocks == 2
        assert alloc.free_blocks == 8                  # evictable counts
        # A disjoint request needs 7 blocks: 5 cached ones must fall.
        assert alloc.match_and_lock(2, tuple(range(100, 128))) == 0
        assert alloc.ensure(2, 28)
        assert alloc.holds(2) == 7
        assert alloc.prefix_stats().n_evicted_blocks == 5
        alloc.check_conservation()

    def test_referenced_blocks_never_evicted(self):
        alloc = self._alloc(total=6, bt=4)
        ids = _ids(range(16))
        alloc.match_and_lock(1, ids)
        alloc.ensure(1, 16)
        alloc.release(1, token_ids=ids)
        cached = alloc.match_and_lock(2, _ids(range(16), [50]))
        assert cached == 16                            # 4 blocks locked
        # Pool: 4 locked + 2 free; a 3-block demand must fail without
        # touching the locked tree.
        assert not alloc.ensure(3, 12)
        assert alloc.cache.n_blocks == 4
        assert alloc.shared_blocks(2) == 4
        alloc.check_conservation()

    def test_stats_fragmentation_stays_in_bounds(self):
        alloc = self._alloc()
        ids = _ids(range(16))
        alloc.match_and_lock(1, ids)
        alloc.ensure(1, 16)
        alloc.release(1, token_ids=ids)
        for owner in (2, 3):
            alloc.match_and_lock(owner, _ids(range(16), [owner]))
            alloc.ensure(owner, 17)
        stats = alloc.stats()
        assert 0.0 <= stats.fragmentation <= 1.0
        assert stats.used_blocks == 4 + 2              # shared once + tails


class TestSchedulerIntegration:
    def test_shared_prompt_blocks_are_shared(self):
        """Concurrent requests with one system prompt converge on one
        resident copy of its blocks."""
        sched = _prefix_sched(total_tokens=256, block_tokens=8)
        system = tuple(range(32))
        # Warm the tree.
        sched.submit(_req(0, _ids(system, [100, 101, 102, 103]), output=4))
        it = 0
        while sched.has_work:
            sched.complete(sched.schedule(float(it)), float(it))
            it += 1
        assert sched.allocator.cache.n_blocks >= 4
        # Two followers share the cached system blocks.
        sched.submit(_req(1, _ids(system, [110, 111, 112, 113]), output=4))
        sched.submit(_req(2, _ids(system, [120, 121, 122, 123]), output=4))
        sched.schedule(float(it))
        assert all(s.cached_tokens == 32 for s in sched.running)
        assert all(s.prefill_remaining == 4 for s in sched.running)
        shared = sum(sched.allocator.shared_blocks(i) for i in (1, 2))
        assert shared == 8                             # 4 blocks, twice
        assert sched.allocator.cache.n_referenced == 4  # resident once
        sched.allocator.check_conservation()

    def test_cached_tokens_skip_prefill_but_count_as_context(self):
        sched = _prefix_sched(total_tokens=512, block_tokens=8)
        ids = _ids(range(64))
        sched.submit(_req(0, ids, output=4))
        it = 0
        while sched.has_work:
            sched.complete(sched.schedule(float(it)), float(it))
            it += 1
        sched.submit(_req(1, _ids(range(56), [1, 2, 3, 4, 5, 6, 7, 8]),
                          output=4))
        plan = sched.schedule(float(it))
        (seq, chunk), = plan.prefill
        assert seq.cached_tokens == 56
        assert chunk == 8                              # only the suffix
        assert seq.context_tokens == 56                # cached counts
        sched.complete(plan, float(it))
        assert seq.in_decode
        assert seq.context_tokens == 65

    def test_release_decrements_instead_of_freeing(self):
        sched = _prefix_sched(total_tokens=256, block_tokens=8)
        ids = _ids(range(32))
        for i in range(2):
            sched.submit(_req(i, ids[:24 + 8 * i], output=4))
        it = 0
        while sched.has_work:
            plan = sched.schedule(float(it))
            sched.complete(plan, float(it))
            sched.allocator.check_conservation()
            it += 1
        alloc = sched.allocator
        assert alloc.used_blocks == 0
        assert alloc.cache.n_referenced == 0
        assert alloc.cache.n_blocks > 0                # cache survives
        assert alloc.free_blocks == alloc.total_blocks

    def test_preempted_sequence_rehits_its_own_blocks(self):
        """Recompute preemption commits the victim's blocks; its
        re-admission matches them, so the recompute is mostly free."""
        sched = _prefix_sched(total_tokens=64, block_tokens=8,
                              token_budget=64, max_seqs=4)
        ids_a = tuple(range(1000, 1024))
        ids_b = tuple(range(2000, 2024))
        sched.submit(_req(0, ids_a, output_ids=tuple(range(30))))
        sched.submit(_req(1, ids_b, output_ids=tuple(range(30))))
        preempted_rehit = False
        finished = []
        for it in range(500):
            if not sched.has_work:
                break
            plan = sched.schedule(float(it))
            finished.extend(sched.complete(plan, float(it)))
            for seq in sched.running:
                if seq.preemptions > 0 and seq.cached_tokens > 0:
                    preempted_rehit = True
        assert sched.n_preemptions >= 1
        assert len(finished) == 2
        assert preempted_rehit, \
            "a re-admitted victim should hit its own committed blocks"
        assert all(s.generated == 30 for s in finished)

    def test_requests_without_ids_run_unchanged(self):
        sched = _prefix_sched()
        sched.submit(Request(req_id=0, arrival_s=0.0, prompt_tokens=24,
                             output_tokens=4))
        it = 0
        while sched.has_work:
            sched.complete(sched.schedule(float(it)), float(it))
            it += 1
        stats = sched.allocator.prefix_stats()
        assert stats.n_lookups == 0
        assert sched.allocator.cache.n_blocks == 0

    def test_report_carries_prefix_metrics(self):
        sched = _prefix_sched(total_tokens=512, block_tokens=8)
        system = tuple(range(48))
        # Staggered arrivals: each request lands after its predecessor
        # has finished and committed its blocks (~5 ms at 1 ms/iter).
        trace = [_req(i, _ids(system, range(100 * i, 100 * i + 8)),
                      output=4, arrival=0.05 * i) for i in range(6)]
        report = ServingSimulator(sched, ConstantCostModel(),
                                  name="px").run(trace)
        assert report.prefix_caching
        assert report.prefix_hit_rate > 0.5
        assert report.cached_token_fraction > 0.4
        assert report.records[0].cached_tokens == 0    # cold
        assert all(r.cached_tokens == 48 for r in report.records[1:])
        assert "prefix" in report.summary()

    def test_prefix_requires_paged(self):
        budget = KVBudget(capacity_bytes=100.0, bytes_per_token=1.0)
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(budget, prefix_caching=True)
        with pytest.raises(ValueError):
            ContinuousBatchScheduler(budget, admission="reserve",
                                     prefix_caching=True)


# ----------------------------------------------------------------------
# Default-path equivalence: prefix_caching=False must not move a number
# ----------------------------------------------------------------------
class TestDefaultPathUnchanged:
    """Golden metrics of the PR-1 seed scenario, recorded on main just
    before the prefix subsystem was added.  ``prefix_caching`` defaults
    off, so these must match bit-for-bit."""

    GOLDEN = {
        ("fp16", "reserve"): dict(
            makespan_s=4.199858866839502, n_iterations=3262,
            ttft_p50=0.00136487867396691,
            latency_p99=0.19312243251631156,
            peak_kv_occupancy=0.3177349587101848, n_preempted=0,
            peak_seqs=5),
        ("fp16", "paged"): dict(
            makespan_s=4.199858866839502, n_iterations=3262,
            ttft_p50=0.00136487867396691,
            latency_p99=0.19312243251631156,
            peak_kv_occupancy=0.3235294117647059, n_preempted=0,
            peak_seqs=5),
        ("kv-cq-4", "reserve"): dict(
            makespan_s=4.199858866839502, n_iterations=3262,
            ttft_p50=0.00136487867396691,
            latency_p99=0.19312243251631156,
            peak_kv_occupancy=0.07943113674345446, n_preempted=0,
            peak_seqs=5),
        ("kv-cq-4", "paged"): dict(
            makespan_s=4.199858866839502, n_iterations=3262,
            ttft_p50=0.00136487867396691,
            latency_p99=0.19312243251631156,
            peak_kv_occupancy=0.08075511274252753, n_preempted=0,
            peak_seqs=5),
    }

    BYTES_PER_TOKEN = {"fp16": 524288.0, "kv-cq-4": 131072.0}

    @pytest.mark.parametrize("mode,admission", sorted(GOLDEN))
    def test_seed_scenario_metrics_are_bit_identical(self, mode, admission):
        from repro.bench.serving import make_trace
        trace = make_trace("poisson", 16.0, 64, 384, 96, seed=0)
        budget = KVBudget(capacity_bytes=4e9,
                          bytes_per_token=self.BYTES_PER_TOKEN[mode])
        sched = ContinuousBatchScheduler(budget, token_budget=2048,
                                         max_seqs=64, admission=admission)
        rep = ServingSimulator(sched, ConstantCostModel(),
                               name="golden").run(trace)
        want = self.GOLDEN[(mode, admission)]
        assert rep.makespan_s == want["makespan_s"]
        assert rep.n_iterations == want["n_iterations"]
        assert rep.ttft_s(50) == want["ttft_p50"]
        assert rep.latency_s(99) == want["latency_p99"]
        assert rep.peak_kv_occupancy == want["peak_kv_occupancy"]
        assert rep.n_preempted == want["n_preempted"]
        assert rep.peak_seqs == want["peak_seqs"]
        assert not rep.prefix_caching and rep.prefix_hit_rate == 0.0
