"""Tests of the allocator sanitizer (:mod:`repro.serve.sanitize`).

Two promises are under test:

1. **Transparency** — arming sanitize mode changes no metric: a
   sanitized run's report is bit-identical to the unsanitized run on
   the same trace (checked on paged, prefix-caching and fleet runs,
   including a 10k-request soak).
2. **Sensitivity** — injected corruption (double-free, refcount
   decrement, counter drift, tree rewiring) raises
   :class:`SanitizeError` instead of silently skewing results; a
   hypothesis property test drives random op sequences and corruption
   kinds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.fleet import FleetSimulator, Replica
from repro.serve.api import FleetConfig, SchedulerConfig, SimConfig
from repro.serve.paging import PagedKVAllocator
from repro.serve.prefix import PrefixCachingAllocator, rolling_hash
from repro.serve.requests import (
    multi_turn_chat_trace,
    poisson_trace,
)
from repro.serve.sanitize import SanitizeError, sanitize_enabled
from repro.serve.scheduler import KVBudget


class ConstantCostModel:
    """Stub: every iteration costs a fixed time."""

    def step_us(self, plan):
        return 1000.0


def _budget(tokens=4096):
    return KVBudget(capacity_bytes=float(tokens * 2048),
                    bytes_per_token=2048.0)


def _run(trace, *, sanitize, prefix=False, budget_tokens=4096):
    config = SimConfig(
        scheduler=SchedulerConfig(admission="paged", max_seqs=32,
                                  prefix_caching=prefix),
        sanitize=sanitize)
    sim = config.build(_budget(budget_tokens), ConstantCostModel())
    return sim.run(trace)


class TestActivation:
    def test_config_flag_arms_allocator(self):
        alloc = PagedKVAllocator(8, 4, sanitize=True)
        assert alloc.sanitize

    def test_env_var_arms_allocator(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert PagedKVAllocator(8, 4).sanitize
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not PagedKVAllocator(8, 4).sanitize

    def test_sim_config_threads_down(self):
        trace = poisson_trace(8.0, 8, seed=0)
        config = SimConfig(scheduler=SchedulerConfig(admission="paged"),
                           sanitize=True)
        sim = config.build(_budget(), ConstantCostModel())
        assert sim.scheduler.allocator.sanitize

    def test_fleet_config_threads_down(self):
        fleet = FleetConfig(
            scheduler=SchedulerConfig(admission="paged"),
            sanitize=True).build(2, _budget(), ConstantCostModel())
        for rep in fleet.replicas:
            assert rep.scheduler.allocator.sanitize

    def test_flag_or_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_enabled(True)
        assert not sanitize_enabled(False)


class TestTransparency:
    """Sanitized runs are bit-identical on metrics."""

    def test_paged_run_metric_identical(self):
        trace = poisson_trace(24.0, 200, seed=3)
        plain = _run(trace, sanitize=False, budget_tokens=1024)
        armed = _run(trace, sanitize=True, budget_tokens=1024)
        assert plain.metrics() == armed.metrics()

    def test_prefix_run_metric_identical(self):
        trace = multi_turn_chat_trace(12, 5, seed=5)
        plain = _run(trace, sanitize=False, prefix=True, budget_tokens=2048)
        armed = _run(trace, sanitize=True, prefix=True, budget_tokens=2048)
        assert plain.metrics() == armed.metrics()

    def test_preemption_heavy_run_metric_identical(self):
        # A pool this tight forces recompute preemptions; the sanitizer
        # must survive the release/re-admit churn without drift.
        trace = poisson_trace(32.0, 100, seed=7)
        plain = _run(trace, sanitize=False, budget_tokens=640)
        armed = _run(trace, sanitize=True, budget_tokens=640)
        assert plain.n_preempted > 0
        assert plain.metrics() == armed.metrics()

    def test_fleet_run_metric_identical(self):
        trace = poisson_trace(24.0, 150, seed=9)

        def fleet(sanitize):
            return FleetConfig(
                scheduler=SchedulerConfig(admission="paged", max_seqs=16),
                sanitize=sanitize).build(
                    3, _budget(1024), ConstantCostModel()).run(trace)

        assert fleet(False).metrics() == fleet(True).metrics()

    def test_10k_request_soak_metric_identical(self):
        # The ISSUE-level soak: a 10k-request sanitized run drains
        # clean (per-op checks plus the full audit) and matches the
        # unsanitized goldens bit for bit.
        trace = poisson_trace(200.0, 10_000, seed=11,
                              prompt=_short(64), output=_short(8))
        plain = _run(trace, sanitize=False, budget_tokens=4096)
        armed = _run(trace, sanitize=True, budget_tokens=4096)
        assert plain.metrics() == armed.metrics()


def _short(mean):
    from repro.serve.requests import LengthSampler
    return LengthSampler(mean=mean, cv=0.3, lo=1, hi=4 * mean)


class TestSensitivity:
    """Injected corruption raises instead of skewing metrics."""

    def _armed(self, total=32, bt=4):
        return PagedKVAllocator(total, bt, sanitize=True)

    def test_double_free_raises(self):
        alloc = self._armed()
        assert alloc.ensure(1, 10)
        alloc.release(1)
        with pytest.raises(SanitizeError, match="double free"):
            alloc.release(1)

    def test_realloc_after_free_is_fine(self):
        alloc = self._armed()
        assert alloc.ensure(1, 10)
        alloc.release(1)
        assert alloc.ensure(1, 10)
        alloc.release(1)
        alloc.audit_drained()

    def test_double_admission_raises(self):
        alloc = self._armed()
        alloc.notify_admitted(1)
        with pytest.raises(SanitizeError, match="already live"):
            alloc.notify_admitted(1)

    def test_counter_drift_caught_by_audit(self):
        alloc = self._armed()
        assert alloc.ensure(1, 10)
        alloc._used_blocks += 1  # inject drift
        with pytest.raises(SanitizeError, match="used_blocks counter"):
            alloc.audit()

    def test_token_overrun_caught(self):
        alloc = self._armed()
        assert alloc.ensure(1, 10)
        alloc._used_tokens[1] = 999  # more tokens than blocks back
        with pytest.raises(SanitizeError, match="accounts"):
            alloc.audit()

    def test_leak_at_drain_caught(self):
        alloc = self._armed()
        assert alloc.ensure(1, 10)
        with pytest.raises(SanitizeError, match="still hold"):
            alloc.audit_drained()

    def _warm_prefix(self):
        alloc = PrefixCachingAllocator(64, 4, sanitize=True)
        ids = tuple(range(12))
        alloc.notify_admitted(1)
        assert alloc.ensure(1, len(ids))
        alloc.release(1, token_ids=ids)  # commits 3 blocks
        alloc.notify_admitted(2)
        assert alloc.match_and_lock(2, ids) == 8
        return alloc, ids

    def test_refcount_decrement_caught(self):
        alloc, ids = self._warm_prefix()
        node = next(iter(alloc.cache._root.children.values()))
        node.ref -= 1  # inject refcount corruption
        with pytest.raises(SanitizeError):
            alloc.audit()

    def test_referenced_tally_drift_caught(self):
        alloc, _ = self._warm_prefix()
        alloc.cache._n_referenced += 1
        with pytest.raises(SanitizeError):
            alloc.audit()

    def test_tree_rewiring_caught(self):
        alloc, _ = self._warm_prefix()
        node = next(iter(alloc.cache._root.children.values()))
        node.tokens = tuple(t + 1 for t in node.tokens)  # hash mismatch
        with pytest.raises(SanitizeError, match="hash-chain"):
            alloc.audit()

    def test_lock_leak_at_drain_caught(self):
        alloc, _ = self._warm_prefix()
        with pytest.raises(SanitizeError, match="still lock"):
            alloc.audit_drained()

    def test_clean_prefix_lifecycle_audits_green(self):
        alloc, ids = self._warm_prefix()
        alloc.audit()  # mid-run: live locks are fine for audit()
        alloc.release(2, token_ids=ids)
        alloc.audit_drained()  # warm tree, no live owners: green
        assert alloc.cache.n_blocks > 0


#: (name, corrupt(alloc) -> None) pairs the property test draws from.
_CORRUPTIONS = [
    ("double_free", lambda a, o: (a.release(o), a.release(o))),
    ("counter_up", lambda a, o: setattr(a, "_used_blocks",
                                        a._used_blocks + 1)),
    ("counter_down", lambda a, o: setattr(a, "_used_blocks",
                                          a._used_blocks - 1)),
    ("token_overrun", lambda a, o: a._used_tokens.__setitem__(o, 10_000)),
    ("phantom_hold", lambda a, o: a._held.__setitem__(99_999, 0)),
]


class TestPropertySanitizer:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16), n_owners=st.integers(2, 12),
           kind=st.integers(0, len(_CORRUPTIONS) - 1))
    def test_random_workload_then_corruption_always_raises(
            self, seed, n_owners, kind):
        rng = np.random.default_rng(seed)
        alloc = PagedKVAllocator(total_blocks=64, block_tokens=4,
                                 sanitize=True)
        live = []
        for owner in range(n_owners):
            if alloc.ensure(owner, int(rng.integers(1, 40))):
                live.append(owner)
        for owner in list(live):
            if rng.random() < 0.5:
                alloc.release(owner)
                live.remove(owner)
        alloc.audit()  # uncorrupted state must audit green
        victim = live[0] if live else None
        name, corrupt = _CORRUPTIONS[kind]
        if victim is None and name in ("double_free", "token_overrun"):
            return  # these need a live owner to corrupt
        with pytest.raises(SanitizeError):
            corrupt(alloc, victim)
            alloc.audit()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_random_workload_uncorrupted_audits_green(self, seed):
        rng = np.random.default_rng(seed)
        alloc = PagedKVAllocator(total_blocks=64, block_tokens=4,
                                 sanitize=True)
        for op in range(60):
            owner = int(rng.integers(0, 8))
            if rng.random() < 0.6:
                alloc.ensure(owner, int(rng.integers(1, 30)))
            elif alloc.holds(owner):
                alloc.release(owner)
        alloc.audit()
