"""Orchestrator tests: grid expansion, determinism, trajectory store.

The golden 2x2 grid in ``TestGoldenDeterminism`` is the PR-6 analogue
of the PR-4/PR-5 golden tests: the persisted metric payload must be
byte-identical across reruns and across worker counts, because the
``BENCH_<pr>.json`` perf-trajectory convention compares floats exactly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.orchestrator import (
    HIGHER_BETTER,
    LOWER_BETTER,
    PR_NUMBER,
    SCHEMA_VERSION,
    Delta,
    SweepConfig,
    Trajectory,
    TrajectoryError,
    TrialResult,
    TrialSpec,
    bench_path,
    compare,
    demo_config,
    find_previous,
    mini_config,
    render_report,
    run_sweep,
    run_trial,
)


# ----------------------------------------------------------------------
# TrialSpec
# ----------------------------------------------------------------------
class TestTrialSpec:
    def test_defaults_are_valid(self):
        spec = TrialSpec()
        assert spec.kind == "serving"
        assert spec.trial_id.startswith("serving/fp16/reserve/")

    @pytest.mark.parametrize("kwargs", [
        dict(kind="batch"),
        dict(mode="fp32"),
        dict(admission="greedy"),
        dict(trace_kind="uniform"),
        dict(policy="random"),
        dict(rate_rps=0.0),
        dict(n_requests=0),
        dict(n_replicas=0),
        dict(slo_ttft_s=0.0),
        dict(prefix_caching=True, admission="reserve"),
        dict(prefix_caching=True, admission="paged", trace_kind="poisson"),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(TrajectoryError):
            TrialSpec(**kwargs)

    def test_trial_id_distinguishes_every_axis(self):
        base = TrialSpec()
        variants = [
            TrialSpec(mode="kv-cq-4"),
            TrialSpec(admission="paged"),
            TrialSpec(trace_kind="bursty"),
            TrialSpec(rate_rps=8.0),
            TrialSpec(seed=1),
            TrialSpec(kind="fleet"),
            TrialSpec(kind="fleet", n_replicas=2),
            TrialSpec(kind="fleet", policy="jsq"),
            TrialSpec(admission="paged", prefix_caching=True,
                      trace_kind="chat"),
        ]
        ids = {base.trial_id} | {v.trial_id for v in variants}
        assert len(ids) == len(variants) + 1

    def test_trial_seed_is_deterministic_and_distinct(self):
        a = TrialSpec(mode="fp16")
        b = TrialSpec(mode="kv-cq-4")
        assert a.trial_seed == TrialSpec(mode="fp16").trial_seed
        assert a.trial_seed != b.trial_seed
        assert 0 <= a.trial_seed < 2 ** 31

    def test_dict_round_trip(self):
        spec = TrialSpec(kind="fleet", mode="kv-cq-4", admission="paged",
                         n_replicas=3, policy="jsq", slo_ttft_s=2.0)
        assert TrialSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        data = TrialSpec().to_dict()
        data["warp_speed"] = 9
        with pytest.raises(TrajectoryError, match="warp_speed"):
            TrialSpec.from_dict(data)

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(TrajectoryError, match="object"):
            TrialSpec.from_dict(["fp16"])


# ----------------------------------------------------------------------
# SweepConfig
# ----------------------------------------------------------------------
class TestSweepConfig:
    def test_grid_expansion_skips_invalid_cells(self):
        config = SweepConfig(modes=("fp16", "kv-cq-4"),
                             admissions=("reserve", "paged"),
                             prefix_caching=(False, True),
                             trace_kinds=("chat",))
        trials = config.trials()
        # 2 modes x (reserve, paged, paged+prefix): prefix+reserve is
        # dropped, not an error.
        assert len(trials) == 6
        assert all(t.admission == "paged" for t in trials
                   if t.prefix_caching)

    def test_prefix_on_idless_trace_is_dropped(self):
        config = SweepConfig(modes=("fp16",), admissions=("paged",),
                             prefix_caching=(False, True),
                             trace_kinds=("poisson",))
        trials = config.trials()
        assert len(trials) == 1 and not trials[0].prefix_caching

    def test_all_invalid_grid_raises(self):
        config = SweepConfig(modes=("fp16",), admissions=("reserve",),
                             prefix_caching=(True,), trace_kinds=("chat",))
        with pytest.raises(TrajectoryError, match="zero valid trials"):
            config.trials()

    def test_serving_sweep_collapses_fleet_axes(self):
        config = SweepConfig(kind="serving", modes=("fp16",),
                             admissions=("reserve",),
                             fleet_sizes=(1, 2, 4),
                             policies=("round-robin", "jsq"))
        assert len(config.trials()) == 1

    def test_fleet_sweep_expands_fleet_axes(self):
        config = SweepConfig(kind="fleet", modes=("fp16",),
                             admissions=("reserve",),
                             fleet_sizes=(1, 2),
                             policies=("round-robin", "jsq"))
        assert len(config.trials()) == 4

    def test_empty_axis_rejected(self):
        with pytest.raises(TrajectoryError, match="empty"):
            SweepConfig(modes=())

    def test_scalar_axis_rejected(self):
        with pytest.raises(TrajectoryError, match="list of values"):
            SweepConfig(modes="fp16")

    def test_dict_round_trip(self):
        config = demo_config()
        assert SweepConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        data = mini_config().to_dict()
        data["granularity"] = "fine"
        with pytest.raises(TrajectoryError, match="granularity"):
            SweepConfig.from_dict(data)

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(mini_config().to_dict()))
        assert SweepConfig.from_json_file(path) == mini_config()

    def test_from_json_file_errors(self, tmp_path):
        with pytest.raises(TrajectoryError, match="cannot read"):
            SweepConfig.from_json_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TrajectoryError, match="not valid JSON"):
            SweepConfig.from_json_file(bad)


# ----------------------------------------------------------------------
# Trial execution
# ----------------------------------------------------------------------
class TestRunTrial:
    def test_serving_trial_matches_direct_simulation(self):
        from repro.bench.serving import simulate_mode

        spec = TrialSpec(mode="fp16", n_requests=16, prompt_mean=128,
                         output_mean=32)
        result = run_trial(spec)
        direct = simulate_mode("fp16", rate_rps=spec.rate_rps,
                               n_requests=16, prompt_mean=128,
                               output_mean=32, seed=spec.trial_seed)
        assert result.metrics == direct.metrics()
        assert result.trial_id == spec.trial_id
        assert result.wall_time_s > 0

    def test_fleet_trial_reports_fleet_metrics(self):
        spec = TrialSpec(kind="fleet", mode="fp16", n_replicas=2,
                         policy="jsq", n_requests=12, prompt_mean=128,
                         output_mean=32, rate_rps=8.0, slo_ttft_s=2.0)
        result = run_trial(spec)
        assert result.metrics["n_replicas"] == 2
        assert "goodput_rps" in result.metrics
        assert "slo_attainment" in result.metrics
        assert result.metrics["n_requests"] == 12

    def test_metrics_are_json_safe_scalars(self):
        result = run_trial(TrialSpec(n_requests=8, prompt_mean=64,
                                     output_mean=16))
        for name, value in result.metrics.items():
            assert isinstance(value, (int, float)), name
            assert not isinstance(value, bool), name
        json.dumps(result.to_dict())


#: Pinned 2x2 mini grid for the golden determinism test (fp16-only so
#: the test never pays codebook training; the mode axis is covered by
#: the demo grid and examples).
GOLDEN_GRID = SweepConfig(
    name="golden-2x2",
    kind="serving",
    modes=("fp16", "qserve"),
    admissions=("reserve", "paged"),
    trace_kinds=("poisson",),
    rates=(16.0,),
    n_requests=24,
    prompt_mean=128,
    output_mean=32,
    seed=0,
)


class TestGoldenDeterminism:
    """Persisted metrics are bit-identical across runs and worker counts."""

    def _persisted_metrics(self, tmp_path, name, workers):
        trajectory = run_sweep(GOLDEN_GRID, workers=workers)
        path = trajectory.save(tmp_path / name)
        data = json.loads(path.read_text())
        return {t["trial_id"]: t["metrics"] for t in data["trials"]}

    def test_grid_shape(self):
        trials = GOLDEN_GRID.trials()
        assert len(trials) == 4
        assert {(t.mode, t.admission) for t in trials} == {
            ("fp16", "reserve"), ("fp16", "paged"),
            ("qserve", "reserve"), ("qserve", "paged")}

    def test_parallel_rerun_is_bit_identical(self, tmp_path):
        first = self._persisted_metrics(tmp_path, "a.json", workers=2)
        second = self._persisted_metrics(tmp_path, "b.json", workers=2)
        assert first == second  # exact float equality, post-JSON
        assert len(first) == 4

    def test_serial_equals_parallel(self, tmp_path):
        serial = self._persisted_metrics(tmp_path, "s.json", workers=1)
        parallel = self._persisted_metrics(tmp_path, "p.json", workers=2)
        assert serial == parallel

    def test_trials_are_ordered_by_grid_not_completion(self, tmp_path):
        trajectory = run_sweep(GOLDEN_GRID, workers=2)
        assert ([t.trial_id for t in trajectory.trials]
                == [s.trial_id for s in GOLDEN_GRID.trials()])

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sweep(GOLDEN_GRID, workers=0)


# ----------------------------------------------------------------------
# Trajectory store: round trips and malformed-file rejection
# ----------------------------------------------------------------------
_METRIC_VALUES = st.one_of(
    st.integers(min_value=-10 ** 9, max_value=10 ** 9),
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False))

_SPECS = st.builds(
    TrialSpec,
    mode=st.sampled_from(("fp16", "kv-cq-4", "kv-cq-2", "qserve")),
    admission=st.sampled_from(("reserve", "paged")),
    trace_kind=st.sampled_from(("poisson", "bursty")),
    rate_rps=st.floats(min_value=0.5, max_value=64.0, allow_nan=False),
    n_requests=st.integers(min_value=1, max_value=512),
    n_replicas=st.integers(min_value=1, max_value=8),
    kind=st.sampled_from(("serving", "fleet")),
    policy=st.sampled_from(("round-robin", "jsq", "least-kv")),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)

_METRICS = st.dictionaries(
    st.sampled_from(sorted(HIGHER_BETTER | LOWER_BETTER
                           | {"makespan_s", "peak_seqs"})),
    _METRIC_VALUES, min_size=1, max_size=8)


def _trajectory_from(specs, metrics_list, extra=None):
    trials = [TrialResult(spec=s, metrics=m, wall_time_s=0.0)
              for s, m in zip(specs, metrics_list)]
    return Trajectory(pr=PR_NUMBER, name="prop", config={},
                      trials=trials, git_sha="abc123",
                      extra=dict(extra or {}))


class TestTrajectoryRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(specs=st.lists(_SPECS, min_size=1, max_size=6,
                          unique_by=lambda s: s.trial_id),
           data=st.data())
    def test_save_load_is_lossless(self, tmp_path_factory, specs, data):
        metrics_list = [data.draw(_METRICS) for _ in specs]
        trajectory = _trajectory_from(specs, metrics_list)
        path = tmp_path_factory.mktemp("traj") / "t.json"
        trajectory.save(path)
        loaded = Trajectory.load(path)
        assert loaded.to_dict() == trajectory.to_dict()
        assert loaded.metrics_by_trial() == trajectory.metrics_by_trial()

    @settings(max_examples=25, deadline=None)
    @given(extra=st.dictionaries(
        st.text(min_size=1, max_size=12).filter(
            lambda k: k not in Trajectory._KNOWN_FIELDS),
        st.one_of(st.integers(), st.text(max_size=8),
                  st.lists(st.integers(), max_size=3)),
        max_size=4))
    def test_unknown_top_level_fields_survive(self, tmp_path_factory,
                                              extra):
        trajectory = _trajectory_from([TrialSpec()], [{"makespan_s": 1.0}],
                                      extra=extra)
        path = tmp_path_factory.mktemp("traj") / "t.json"
        trajectory.save(path)
        loaded = Trajectory.load(path)
        assert loaded.extra == extra
        # And they survive a second save.
        loaded.save(path)
        assert Trajectory.load(path).extra == extra

    def test_schema_version_is_persisted(self, tmp_path):
        path = _trajectory_from([TrialSpec()],
                                [{"makespan_s": 1.0}]).save(tmp_path / "t")
        assert json.loads(path.read_text())["schema_version"] \
            == SCHEMA_VERSION


def _valid_payload():
    return _trajectory_from([TrialSpec()], [{"makespan_s": 1.0}]).to_dict()


def _corruptions():
    """(name, corrupted JSON text) cases a loader must reject clearly."""
    cases = []

    def case(name, mutate):
        data = _valid_payload()
        replacement = mutate(data)
        text = json.dumps(replacement if replacement is not None else data)
        cases.append(pytest.param(text, id=name))

    cases.append(pytest.param("{truncated", id="not-json"))
    cases.append(pytest.param("[1, 2]", id="top-level-list"))
    case("missing-schema-version",
         lambda d: d.pop("schema_version") and None)
    case("string-schema-version",
         lambda d: d.update(schema_version="one") or None)
    case("bool-schema-version",
         lambda d: d.update(schema_version=True) or None)
    case("newer-schema",
         lambda d: d.update(schema_version=SCHEMA_VERSION + 1) or None)
    case("missing-trials", lambda d: d.pop("trials") and None)
    case("trials-not-list", lambda d: d.update(trials={}) or None)
    case("missing-pr", lambda d: d.pop("pr") and None)
    case("config-not-object", lambda d: d.update(config=[1]) or None)
    case("trial-not-object",
         lambda d: d.update(trials=["fp16"]) or None)
    case("trial-missing-spec",
         lambda d: d["trials"][0].pop("spec") and None)
    case("trial-missing-metrics",
         lambda d: d["trials"][0].pop("metrics") and None)
    case("metrics-not-object",
         lambda d: d["trials"][0].update(metrics=[1.0]) or None)
    case("metric-value-string",
         lambda d: d["trials"][0]["metrics"].update(makespan_s="fast")
         or None)
    case("metric-value-bool",
         lambda d: d["trials"][0]["metrics"].update(makespan_s=True)
         or None)
    case("spec-unknown-field",
         lambda d: d["trials"][0]["spec"].update(quantum=1) or None)
    case("spec-invalid-mode",
         lambda d: d["trials"][0]["spec"].update(mode="fp64") or None)
    case("trial-id-spec-mismatch",
         lambda d: d["trials"][0].update(trial_id="serving/other") or None)
    case("duplicate-trial-ids",
         lambda d: d.update(trials=[d["trials"][0], d["trials"][0]])
         or None)
    case("wall-time-string",
         lambda d: d["trials"][0].update(wall_time_s="slow") or None)
    return cases


class TestMalformedTrajectories:
    @pytest.mark.parametrize("text", _corruptions())
    def test_rejected_with_trajectory_error(self, text, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(text)
        with pytest.raises(TrajectoryError) as exc:
            Trajectory.load(path)
        assert str(exc.value)  # a reason, not a bare stack trace

    def test_missing_file_names_the_path(self, tmp_path):
        with pytest.raises(TrajectoryError, match="nowhere.json"):
            Trajectory.load(tmp_path / "nowhere.json")

    def test_older_schema_is_accepted(self, tmp_path):
        data = _valid_payload()
        data["schema_version"] = 0
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data))
        assert Trajectory.load(path).schema_version == 0


class TestTrajectoryDiscovery:
    def test_bench_path(self, tmp_path):
        assert bench_path(tmp_path, 7).name == "BENCH_7.json"
        assert bench_path(tmp_path).name == f"BENCH_{PR_NUMBER}.json"

    def test_find_previous_picks_newest_older(self, tmp_path):
        for n in (3, 5, 6, 9):
            (tmp_path / f"BENCH_{n}.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")
        assert find_previous(tmp_path, pr=6).name == "BENCH_5.json"
        assert find_previous(tmp_path, pr=10).name == "BENCH_9.json"
        assert find_previous(tmp_path, pr=3) is None

    def test_find_previous_empty_dir(self, tmp_path):
        assert find_previous(tmp_path) is None


# ----------------------------------------------------------------------
# Deltas and the markdown report
# ----------------------------------------------------------------------
class TestDeltas:
    def test_direction_higher_better(self):
        worse = Delta("t", "throughput_rps", before=10.0, after=9.0)
        better = Delta("t", "throughput_rps", before=10.0, after=11.0)
        assert worse.is_regression(0.05) and not worse.is_improvement(0.05)
        assert better.is_improvement(0.05) and not better.is_regression(0.05)

    def test_direction_lower_better(self):
        worse = Delta("t", "ttft_p50_ms", before=100.0, after=120.0)
        assert worse.is_regression(0.05)
        assert not worse.is_regression(0.25)  # within a loose tolerance

    def test_non_directional_metrics_never_flag(self):
        d = Delta("t", "peak_seqs", before=1.0, after=100.0)
        assert not d.is_regression(0.0) and not d.is_improvement(0.0)

    def test_zero_baseline(self):
        assert Delta("t", "ttft_p50_ms", 0.0, 1.0).rel_change \
            == float("inf")
        assert Delta("t", "ttft_p50_ms", 0.0, 0.0).rel_change == 0.0

    def test_compare_joins_on_trial_id(self):
        spec_a, spec_b = TrialSpec(), TrialSpec(mode="kv-cq-4")
        current = _trajectory_from(
            [spec_a, spec_b],
            [{"throughput_rps": 8.0, "peak_seqs": 4},
             {"throughput_rps": 12.0}])
        previous = _trajectory_from([spec_a], [{"throughput_rps": 10.0}])
        deltas = compare(current, previous)
        assert [(d.trial_id, d.metric) for d in deltas] \
            == [(spec_a.trial_id, "throughput_rps")]
        assert deltas[0].is_regression(0.05)


class TestRenderReport:
    def _pair(self, before, after):
        spec = TrialSpec()
        return (_trajectory_from([spec], [after]),
                _trajectory_from([spec], [before]))

    def test_no_previous_names_the_convention(self):
        current, _ = self._pair({}, {"throughput_rps": 8.0})
        text = render_report(current, None)
        assert "starts the perf-trajectory convention" in text
        assert f"PR {PR_NUMBER}" in text

    def test_regression_is_flagged(self):
        current, previous = self._pair({"throughput_rps": 10.0},
                                       {"throughput_rps": 8.0})
        text = render_report(current, previous, tolerance=0.05)
        assert "**REGRESSION**" in text
        assert "throughput_rps" in text

    def test_within_tolerance_is_clean(self):
        current, previous = self._pair({"throughput_rps": 10.0},
                                       {"throughput_rps": 9.9})
        text = render_report(current, previous, tolerance=0.05)
        assert "**REGRESSION**" not in text
        assert "No regressions beyond tolerance." in text

    def test_unmatched_trials_are_named(self):
        current = _trajectory_from([TrialSpec()], [{"throughput_rps": 1.0}])
        previous = _trajectory_from([TrialSpec(mode="kv-cq-4")],
                                    [{"throughput_rps": 1.0}])
        text = render_report(current, previous)
        assert "only in current" in text and "only in previous" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestOrchestratorCLI:
    def test_mini_preset_writes_trajectory_and_report(self, tmp_path,
                                                      capsys):
        from repro.bench.orchestrator import main

        out = tmp_path / "BENCH_6.json"
        assert main(["--preset", "mini", "--out", str(out)]) == 0
        trajectory = Trajectory.load(out)
        assert len(trajectory.trials) == 4
        report = (tmp_path / "BENCH_6.md").read_text()
        assert "## Trials" in report
        assert "starts the perf-trajectory convention" in report
        assert "trajectory ->" in capsys.readouterr().out

    def test_check_fails_on_regression_vs_baseline(self, tmp_path, capsys):
        from repro.bench.orchestrator import main

        out = tmp_path / "BENCH_6.json"
        assert main(["--preset", "mini", "--out", str(out)]) == 0
        # Fabricate a baseline claiming far higher throughput: the
        # rerun must flag regressions and fail under --check.
        baseline = Trajectory.load(out)
        for trial in baseline.trials:
            trial.metrics["throughput_rps"] *= 100.0
        base_path = baseline.save(tmp_path / "BENCH_5.json")
        code = main(["--preset", "mini", "--out", str(out),
                     "--baseline", str(base_path), "--check"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_auto_discovers_previous_bench_file(self, tmp_path, capsys):
        from repro.bench.orchestrator import main

        out = tmp_path / "BENCH_6.json"
        assert main(["--preset", "mini", "--out", str(out)]) == 0
        previous = Trajectory.load(out)
        previous.pr = 5
        previous.save(tmp_path / "BENCH_5.json")
        assert main(["--preset", "mini", "--out", str(out),
                     "--check"]) == 0
        text = capsys.readouterr().out
        assert "BENCH_5.json" in text
        assert "no regressions beyond tolerance" in text

    def test_config_file_round_trip(self, tmp_path):
        from repro.bench.orchestrator import main

        cfg = tmp_path / "sweep.json"
        data = mini_config().to_dict()
        data["modes"] = ["fp16"]
        cfg.write_text(json.dumps(data))
        out = tmp_path / "BENCH_6.json"
        assert main(["--config", str(cfg), "--out", str(out)]) == 0
        assert len(Trajectory.load(out).trials) == 2
