"""Tests of the repro.analysis lint pass.

Every rule is exercised against a pair of fixture snippets under
``tests/data/lint_fixtures/`` — one violating (the rule must fire, with
the expected count) and one clean (the rule must stay silent with every
rule armed, so fixtures double as false-positive regression tests).
The CLI is driven as a subprocess for the exit-code contract, and the
tree self-check asserts the repo itself is clean modulo the committed
baseline.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    Finding,
    all_rules,
    analyze_paths,
    iter_python_files,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "data" / "lint_fixtures"

#: rule code -> (bad fixture, clean fixture, findings expected in bad).
CASES = {
    "RPL001": ("rpl001_bad.py", "rpl001_clean.py", 3),
    "RPL002": ("rpl002_bad", "rpl002_clean", 2),
    "RPL003": ("rpl003_bad.py", "rpl003_clean.py", 2),
    # The duplicated --trace collides on both the option string and
    # the derived dest, hence 3 findings from 2 bad calls.
    "RPL004": ("rpl004_bad.py", "rpl004_clean.py", 3),
    "RPL005": ("rpl005_bad", "rpl005_clean", 2),
    "RPL006": ("rpl006_bad.py", "rpl006_clean.py", 1),
    "RPL007": ("rpl007_bad.py", "rpl007_clean.py", 3),
    "RPL008": ("rpl008_bad.py", "rpl008_clean.py", 2),
    "RPL009": ("rpl009_bad", "rpl009_clean", 3),
}


def run_fixture(name):
    findings, errors = analyze_paths([FIXTURES / name], root=FIXTURES)
    assert errors == []
    return findings


class TestRegistry:
    def test_all_nine_rules_registered(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(CASES)

    def test_rules_carry_title_and_rationale(self):
        for rule in all_rules():
            assert rule.title and rule.rationale


@pytest.mark.parametrize("code", sorted(CASES))
class TestRules:
    def test_bad_fixture_fires(self, code):
        bad, _, expected = CASES[code]
        hits = [f for f in run_fixture(bad) if f.code == code]
        assert len(hits) == expected, \
            f"{code} found {len(hits)} of {expected}: {hits}"
        for f in hits:
            assert f.line > 0 and f.message

    def test_clean_fixture_silent(self, code):
        _, clean, _ = CASES[code]
        assert run_fixture(clean) == []


class TestFraming:
    def test_syntax_error_reported_not_fatal(self, tmp_path):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        (tmp_path / "fine.py").write_text("import time\nt = time.time()\n")
        findings, errors = analyze_paths([tmp_path], root=tmp_path)
        assert len(errors) == 1 and "broken.py" in errors[0]
        assert findings == []  # fine.py is not under src/repro

    def test_iter_skips_fixture_dir_from_above(self):
        files = list(iter_python_files([REPO / "tests"]))
        assert not any("lint_fixtures" in p.parts for p in files)
        # ...but scanning a fixture directly still works.
        assert list(iter_python_files([FIXTURES / "rpl002_bad"]))

    def test_findings_deterministically_ordered(self):
        first = [f.render() for f in run_fixture("rpl001_bad.py")]
        second = [f.render() for f in run_fixture("rpl001_bad.py")]
        assert first == second


class TestBaseline:
    def fp(self, code="RPL008", path="a.py", msg="m"):
        return Finding(code=code, message=msg, path=path, line=3)

    def test_fingerprint_ignores_line(self):
        a = Finding(code="RPL008", message="m", path="a.py", line=3)
        b = Finding(code="RPL008", message="m", path="a.py", line=99)
        assert a.fingerprint == b.fingerprint

    def test_split_respects_count_budget(self):
        f = self.fp()
        base = Baseline(entries={f.fingerprint: ("known", 2)})
        new, old, stale = base.split([f, f, f])
        assert len(old) == 2 and len(new) == 1 and stale == []

    def test_unmatched_entry_is_stale(self):
        base = Baseline(entries={"RPL001:gone.py:msg": ("known", 1)})
        new, old, stale = base.split([])
        assert stale == ["RPL001:gone.py:msg"]

    def test_missing_justifications(self):
        base = Baseline(entries={"RPL001:a.py:m": ("", 1),
                                 "RPL002:b.py:m": ("why", 1)})
        assert base.missing_justifications() == ["RPL001:a.py:m"]

    def test_save_load_roundtrip(self, tmp_path):
        f = self.fp()
        base = Baseline.from_findings([f, f])
        base.entries[f.fingerprint] = ("because", 2)
        path = tmp_path / "base.json"
        base.save(path)
        assert Baseline.load(path).entries == base.entries

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_load_rejects_nonpositive_count(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({
            "schema": 1,
            "entries": [{"fingerprint": "RPL001:a.py:m", "count": 0}]}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_from_findings_keeps_prior_justification(self):
        f = self.fp()
        prev = Baseline(entries={f.fingerprint: ("kept", 1)})
        assert Baseline.from_findings([f], previous=prev).entries == {
            f.fingerprint: ("kept", 1)}


def run_cli(*args, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})


class TestCLI:
    def test_tree_is_clean_modulo_baseline(self):
        proc = run_cli("--check")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violating_fixture_fails_check(self):
        for code, (bad, _, _) in sorted(CASES.items()):
            proc = run_cli("--check", str(FIXTURES / bad))
            assert proc.returncode == 1, f"{code}: {proc.stdout}"
            assert code in proc.stdout

    def test_clean_fixture_passes_check(self):
        proc = run_cli("--check", str(FIXTURES / "rpl001_clean.py"))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_format(self):
        proc = run_cli("--format", "json",
                       str(FIXTURES / "rpl008_bad.py"))
        payload = json.loads(proc.stdout)
        assert [f["code"] for f in payload["findings"]] == ["RPL008"] * 2
        assert payload["errors"] == []

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in CASES:
            assert code in proc.stdout

    def test_missing_path_errors(self):
        proc = run_cli("definitely/not/here")
        assert proc.returncode == 1
        assert "no such path" in proc.stderr


class TestSelfCheck:
    def test_repo_findings_all_baselined(self):
        findings, errors = analyze_paths(
            [REPO / "src", REPO / "tools", REPO / "examples"], root=REPO)
        assert errors == []
        base = Baseline.load(REPO / "tools" / "analysis_baseline.json")
        new, _, stale = base.split(findings)
        assert new == [], [f.render() for f in new]
        assert stale == []
        assert base.missing_justifications() == []
