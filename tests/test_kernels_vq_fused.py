"""Fused VQ kernel model tests: counter-level claims of the paper."""

import pytest

from repro.core.codegen import VQLLMCodeGenerator
from repro.gpu.costmodel import CostModel
from repro.gpu.spec import RTX4090
from repro.kernels.attention import AttentionShape
from repro.kernels.elementwise import (
    ElementwiseAttentionKernel,
    ElementwiseGemvKernel,
)
from repro.kernels.gemm import FP16GemvKernel, GemmShape
from repro.kernels.attention import FlashDecodingKernel

GEMV = GemmShape(m=1, n=4096, k=4096)
GEMM = GemmShape(m=1024, n=4096, k=4096)
ATTN = AttentionShape(batch=1, heads=32, seq_len=1024, head_dim=128)


@pytest.fixture(scope="module")
def gen():
    return VQLLMCodeGenerator(RTX4090)


def _counters(gen, level, qt, shape=GEMV, op="gemv", qt_v=None):
    if op == "gemv":
        k = gen.generate_gemv(shape, qt, level=level)
    elif op == "gemm":
        k = gen.generate_gemm(shape, qt, level=level)
    else:
        k = gen.generate_attention(shape, qt, qt_v or qt, level=level)
    c = k.counters()
    CostModel(RTX4090).resolve_occupancy(c)
    return c


class TestCounterClaims:
    """Each optimization's claimed counter effect, asserted directly."""

    def test_gc_pays_codebook_dram(self, gen, qt_gptvq):
        c = _counters(gen, "GC", qt_gptvq)
        assert c.codebook_dram_bytes > 0
        assert c.stall_cycles > 0

    def test_sc_stages_codebooks_to_shared(self, gen, qt_gptvq):
        gc = _counters(gen, "GC", qt_gptvq)
        sc = _counters(gen, "SC", qt_gptvq)
        assert sc.global_to_shared_bytes > gc.global_to_shared_bytes
        assert sc.smem_per_block > gc.smem_per_block

    def test_sc_has_bank_conflicts(self, gen, qt_gptvq):
        sc = _counters(gen, "SC", qt_gptvq)
        assert sc.bank_conflict_transactions > 0

    def test_sc_kills_occupancy_for_large_codebooks(self, gen, qt_aqlm):
        # AQLM's 128 KB books exceed the shared-memory budget.
        sc = _counters(gen, "SC", qt_aqlm)
        gc = _counters(gen, "GC", qt_aqlm)
        assert sc.occupancy < gc.occupancy

    def test_o3_reduces_codebook_staging_for_attention(self, gen,
                                                       qt_cq2_kv):
        naive = _counters(gen, "O2", qt_cq2_kv, ATTN, "attention")
        dataflow = _counters(gen, "O3", qt_cq2_kv, ATTN, "attention")
        assert (dataflow.global_to_shared_bytes
                < naive.global_to_shared_bytes)
        assert dataflow.reduction_bytes > 0
        assert dataflow.kernel_launches > 1

    def test_o3_attention_eliminates_cold_misses(self, gen, qt_cq2_kv):
        # One codebook per block fits entirely in shared memory.
        dataflow = _counters(gen, "O3", qt_cq2_kv, ATTN, "attention")
        assert dataflow.codebook_dram_bytes \
            < _counters(gen, "O1", qt_cq2_kv, ATTN,
                        "attention").codebook_dram_bytes + 1e5

    def test_o4_register_fusion_removes_roundtrip(self, gen, qt_gptvq):
        o3 = _counters(gen, "O3", qt_gptvq)
        o4 = _counters(gen, "O4", qt_gptvq)
        # GPTVQ GeMV: 3 shuffles <= 5 -> register fusion.
        assert o4.reg_to_shared_bytes == 0
        assert o3.reg_to_shared_bytes > 0
        assert o4.shuffle_ops > 0

    def test_o4_keeps_shared_fusion_for_vector8_gemv(self, gen, qt_quip):
        # QuiP# GeMV needs 7 shuffles > threshold: stays shared.
        o4 = _counters(gen, "O4", qt_quip)
        assert o4.notes["fusion"] == "shared"
        assert o4.reg_to_shared_bytes > 0

    def test_o4_uses_register_fusion_for_gemm(self, gen, qt_quip):
        # QuiP# GeMM: mma layout 2 -> 3 shuffles -> register fusion,
        # releasing staging shared memory.
        o3 = _counters(gen, "O3", qt_quip, GEMM, "gemm")
        o4 = _counters(gen, "O4", qt_quip, GEMM, "gemm")
        assert o4.notes["fusion"] == "register"
        assert o4.smem_per_block < o3.smem_per_block

    def test_residual_split_duplicates_compute(self, gen, qt_quip):
        # O3 forces the residual split on QuiP# GeMM: FLOPs double.
        o2 = _counters(gen, "O2", qt_quip, GEMM, "gemm")
        o3 = _counters(gen, "O3", qt_quip, GEMM, "gemm")
        assert o3.flops == pytest.approx(2 * o2.flops)

    def test_o4_adaptive_guard_skips_residual_split_for_gemm(
            self, gen, qt_quip):
        o4 = _counters(gen, "O4", qt_quip, GEMM, "gemm")
        assert o4.notes.get("dataflow") == "skipped(adaptive)"
        assert o4.flops == _counters(gen, "O2", qt_quip, GEMM,
                                     "gemm").flops

    def test_aqlm_unpack_cost_exceeds_aligned(self, gen, qt_aqlm,
                                              qt_gptvq):
        aqlm = _counters(gen, "O2", qt_aqlm)
        gptvq = _counters(gen, "O2", qt_gptvq)
        # Per lookup, AQLM's 12-bit misaligned decode costs 3x.
        aqlm_per = aqlm.unpack_ops / (4096 * 4096 / 8 * 2)
        gptvq_per = gptvq.unpack_ops / (4096 * 4096 / 4)
        assert aqlm_per == pytest.approx(3 * gptvq_per)

    def test_quantized_payload_matches_compression(self, gen, qt_cq2_kv):
        c = _counters(gen, "O4", qt_cq2_kv, ATTN, "attention")
        fp16 = FlashDecodingKernel(ATTN).counters(RTX4090)
        # CQ-2 compresses the KV payload 8x; total DRAM traffic also
        # carries codebook staging, so assert on both.
        payload = c.dram_bytes - c.codebook_dram_bytes
        assert payload < fp16.dram_bytes / 4
        assert c.dram_bytes < fp16.dram_bytes / 2


class TestLatencyClaims:
    def test_vq_attention_beats_fp16(self, gen, qt_cq2_kv):
        ours = gen.generate_attention(ATTN, qt_cq2_kv, qt_cq2_kv,
                                      level="O4").latency_us()
        fp16 = FlashDecodingKernel(ATTN).latency_us(RTX4090)
        assert ours < fp16

    def test_vq_gemv_beats_fp16(self, gen, qt_gptvq):
        ours = gen.generate_gemv(GEMV, qt_gptvq, level="O4").latency_us()
        fp16 = FP16GemvKernel(GEMV).latency_us(RTX4090)
        assert ours < fp16

    def test_vq_gemv_competitive_with_elementwise(self, gen, qt_quip):
        ours = gen.generate_gemv(GEMV, qt_quip, level="O4").latency_us()
        awq = ElementwiseGemvKernel(GEMV, bits=4).latency_us(RTX4090)
        assert ours < awq * 1.5

    def test_vq_attention_competitive_with_qoq(self, gen, qt_cq4_kv):
        ours = gen.generate_attention(ATTN, qt_cq4_kv, qt_cq4_kv,
                                      level="O4").latency_us()
        qoq = ElementwiseAttentionKernel(ATTN, bits=4).latency_us(RTX4090)
        assert ours < qoq * 2.0

    def test_best_level_never_worse_than_gc(self, gen, qt_gptvq,
                                            qt_aqlm, qt_cq2_kv):
        for qt, shape, op in ((qt_gptvq, GEMV, "gemv"),
                              (qt_aqlm, GEMV, "gemv"),
                              (qt_cq2_kv, ATTN, "attention")):
            if op == "gemv":
                lat = {lv: gen.generate_gemv(shape, qt,
                                             level=lv).latency_us()
                       for lv in ("GC", "O4")}
            else:
                lat = {lv: gen.generate_attention(
                    shape, qt, qt, level=lv).latency_us()
                    for lv in ("GC", "O4")}
            assert lat["O4"] <= lat["GC"]
