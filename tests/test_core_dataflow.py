"""Codebook-centric dataflow tests (Tbl. III and the split factor)."""

import pytest

from repro.core.dataflow import (
    axes_for,
    optimal_split_factor,
    plan_dataflow,
)
from repro.vq.algorithms import make_config


class TestAxes:
    def test_table3_weight_rows(self):
        aqlm = axes_for("gemm", make_config("aqlm-3"))
        assert aqlm.reduce_axes == "MR"
        assert aqlm.switch_axes == "R"
        gptvq = axes_for("gemm", make_config("gptvq-2"))
        assert gptvq.switch_axes == "MN"

    def test_table3_attention_rows(self):
        cq = make_config("cq-2")
        k_spec = axes_for("attention_k", cq)
        v_spec = axes_for("attention_v", cq)
        assert k_spec.reduce_axes == "C"
        assert v_spec.reduce_axes == "T"
        assert k_spec.switch_axes == v_spec.switch_axes == "HC"

    def test_conflict_axes(self):
        # K cache: reduce C intersects switch HC -> global reduction.
        cq = make_config("cq-2")
        assert axes_for("attention_k", cq).needs_global_reduction
        # V cache: reduce T does not intersect HC.
        assert not axes_for("attention_v", cq).needs_global_reduction

    def test_unsupported_pairing_raises(self):
        with pytest.raises(KeyError):
            axes_for("gemm", make_config("cq-2"))


class TestSplitFactor:
    def test_balances_traffic(self):
        # codebook traffic 64 MB, output 1 MB -> sqrt(64) = 8.
        assert optimal_split_factor(64e6, 1e6, max_split=32) == 8

    def test_clamps_to_max(self):
        assert optimal_split_factor(1e12, 1.0, max_split=16) == 16

    def test_clamps_to_one(self):
        assert optimal_split_factor(1.0, 1e12, max_split=16) == 1

    def test_zero_codebook_traffic(self):
        assert optimal_split_factor(0.0, 1e6, max_split=8) == 1

    def test_zero_output(self):
        assert optimal_split_factor(1e6, 0.0, max_split=8) == 8

    def test_rejects_bad_max(self):
        with pytest.raises(ValueError):
            optimal_split_factor(1.0, 1.0, max_split=0)

    def test_balance_point_minimises_objective(self):
        codebook, output = 3.7e7, 2.1e5
        best = optimal_split_factor(codebook, output, max_split=64)

        def objective(s):
            return codebook / s + s * output

        for s in (1, 2, 4, 8, 16, 32, 64):
            assert objective(best) <= objective(s) * 1.5


class TestPlanDataflow:
    def test_disabled_is_naive(self):
        plan = plan_dataflow("attention_k", make_config("cq-2"),
                             naive_codebook_traffic=1e8,
                             distinct_codebook_bytes=1e5,
                             output_bytes=1e5, max_split=32, enable=False)
        assert plan.kind == "naive"
        assert plan.split_factor == 1
        assert plan.reduction_traffic_bytes == 0.0
        assert plan.extra_kernel_launches == 0

    def test_enabled_reduces_codebook_traffic(self):
        plan = plan_dataflow("attention_k", make_config("cq-2"),
                             naive_codebook_traffic=1e8,
                             distinct_codebook_bytes=1e5,
                             output_bytes=1e5, max_split=32)
        assert plan.kind == "codebook_centric"
        assert plan.codebook_traffic_bytes < 1e8
        assert plan.reduction_traffic_bytes > 0
        assert plan.extra_kernel_launches == 1

    def test_floor_is_distinct_bytes(self):
        plan = plan_dataflow("attention_k", make_config("cq-2"),
                             naive_codebook_traffic=1e9,
                             distinct_codebook_bytes=5e6,
                             output_bytes=1.0, max_split=10_000)
        assert plan.codebook_traffic_bytes >= 5e6

    def test_no_reduction_when_no_conflict(self):
        plan = plan_dataflow("attention_v", make_config("cq-2"),
                             naive_codebook_traffic=1e8,
                             distinct_codebook_bytes=1e5,
                             output_bytes=1e5, max_split=32)
        assert plan.reduction_traffic_bytes == 0.0
