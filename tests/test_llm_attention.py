"""Reference attention tests."""

import numpy as np
import pytest

from repro.llm.attention import attention_decode, attention_prefill
from repro.llm.layers import softmax


def _qkv(b=2, h=3, t=5, c=8, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((b, h, t, c)) for _ in range(3))


class TestPrefill:
    def test_output_shape(self):
        q, k, v = _qkv()
        assert attention_prefill(q, k, v).shape == q.shape

    def test_causality(self):
        q, k, v = _qkv(seed=1)
        out1 = attention_prefill(q, k, v, causal=True)
        # Changing a future token must not affect earlier outputs.
        k2, v2 = k.copy(), v.copy()
        k2[:, :, -1] += 100.0
        v2[:, :, -1] += 100.0
        out2 = attention_prefill(q, k2, v2, causal=True)
        assert np.allclose(out1[:, :, :-1], out2[:, :, :-1])
        assert not np.allclose(out1[:, :, -1], out2[:, :, -1])

    def test_non_causal_attends_everywhere(self):
        q, k, v = _qkv(seed=2)
        out1 = attention_prefill(q, k, v, causal=False)
        v2 = v.copy()
        v2[:, :, -1] += 100.0
        out2 = attention_prefill(q, k, v2, causal=False)
        assert not np.allclose(out1[:, :, 0], out2[:, :, 0])

    def test_matches_manual_computation(self):
        q, k, v = _qkv(b=1, h=1, t=3, c=4, seed=3)
        out = attention_prefill(q, k, v, causal=False)
        scores = (q[0, 0] @ k[0, 0].T) / 2.0  # sqrt(4)
        expected = softmax(scores, axis=-1) @ v[0, 0]
        assert np.allclose(out[0, 0], expected)

    def test_shape_mismatch_rejected(self):
        q, k, v = _qkv()
        with pytest.raises(ValueError):
            attention_prefill(q, k[:, :, :-1], v)


class TestDecode:
    def test_output_shape(self):
        q, k, v = _qkv()
        out = attention_decode(q[:, :, 0], k, v)
        assert out.shape == (2, 3, 8)

    def test_matches_prefill_last_row(self):
        # Decode of the last token equals the causal prefill's last row.
        q, k, v = _qkv(seed=4)
        prefill = attention_prefill(q, k, v, causal=True)
        decode = attention_decode(q[:, :, -1], k, v)
        assert np.allclose(decode, prefill[:, :, -1])

    def test_uniform_scores_average_values(self):
        b, h, t, c = 1, 1, 4, 8
        q = np.zeros((b, h, c))
        rng = np.random.default_rng(5)
        k = rng.standard_normal((b, h, t, c))
        v = rng.standard_normal((b, h, t, c))
        out = attention_decode(q, k, v)
        assert np.allclose(out[0, 0], v[0, 0].mean(axis=0))

    def test_bad_rank_rejected(self):
        q, k, v = _qkv()
        with pytest.raises(ValueError):
            attention_decode(q, k, v)  # q must be 3-D
