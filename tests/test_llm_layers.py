"""Transformer layer primitive tests."""

import numpy as np
import pytest

from repro.llm.layers import (
    apply_rope,
    rms_norm,
    rope_tables,
    silu,
    softmax,
    swiglu,
)


class TestRMSNorm:
    def test_unit_rms_output(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 64)) * 5
        out = rms_norm(x, np.ones(64))
        rms = np.sqrt(np.mean(out * out, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_weight_scales(self):
        x = np.ones((2, 8))
        out = rms_norm(x, 2.0 * np.ones(8))
        assert np.allclose(out, 2.0, atol=1e-5)

    def test_eps_guards_zero_input(self):
        out = rms_norm(np.zeros((1, 8)), np.ones(8), eps=1e-5)
        assert np.all(np.isfinite(out))


class TestActivations:
    def test_silu_known_values(self):
        assert silu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert silu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert silu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)

    def test_swiglu_composition(self):
        gate = np.array([1.0, -1.0])
        up = np.array([2.0, 2.0])
        assert np.allclose(swiglu(gate, up), silu(gate) * up)


class TestSoftmax:
    def test_sums_to_one(self):
        rng = np.random.default_rng(1)
        p = softmax(rng.standard_normal((3, 7)))
        assert np.allclose(p.sum(axis=-1), 1.0)

    def test_stable_for_large_inputs(self):
        p = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(p))
        assert p[1] > p[0]

    def test_masked_minus_inf(self):
        p = softmax(np.array([0.0, -np.inf]))
        assert p[0] == pytest.approx(1.0)
        assert p[1] == pytest.approx(0.0)


class TestRoPE:
    def test_rotation_preserves_norm(self):
        cos, sin = rope_tables(32, 16)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 8, 16))
        rotated = apply_rope(x, np.arange(8), cos, sin)
        assert np.allclose(np.linalg.norm(rotated, axis=-1),
                           np.linalg.norm(x, axis=-1))

    def test_position_zero_is_identity(self):
        cos, sin = rope_tables(4, 8)
        x = np.random.default_rng(3).standard_normal((1, 1, 8))
        out = apply_rope(x, np.array([0]), cos, sin)
        assert np.allclose(out, x)

    def test_relative_property(self):
        # Dot products depend only on relative positions.
        cos, sin = rope_tables(64, 16)
        rng = np.random.default_rng(4)
        q = rng.standard_normal(16)
        k = rng.standard_normal(16)

        def dot_at(pq, pk):
            rq = apply_rope(q[None, None], np.array([pq]), cos, sin)
            rk = apply_rope(k[None, None], np.array([pk]), cos, sin)
            return float(np.sum(rq * rk))

        assert dot_at(3, 5) == pytest.approx(dot_at(13, 15), rel=1e-9)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            rope_tables(8, 7)
