"""GPU spec and memory-helper tests."""

import dataclasses

import pytest

from repro.gpu.memory import (
    duplicated_codebook_bytes,
    l1_hit_rate,
    line_transactions,
)
from repro.gpu.spec import A40, A100, PRESETS, RTX4090, get_spec


class TestSpecs:
    def test_presets_expose_paper_gpus(self):
        assert "rtx4090" in PRESETS and "a40" in PRESETS

    def test_a40_bandwidth_fraction_matches_paper(self):
        # Paper: the A40 provides ~67% of the RTX 4090's bandwidth.
        ratio = A40.dram_bandwidth_gbps / RTX4090.dram_bandwidth_gbps
        assert 0.6 < ratio < 0.75

    def test_get_spec_is_case_insensitive(self):
        assert get_spec("RTX 4090") is RTX4090
        assert get_spec("a100") is A100

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            get_spec("h100")

    def test_presets_carry_dram_capacity(self):
        assert RTX4090.dram_bytes == pytest.approx(24e9)
        assert A40.dram_bytes == pytest.approx(48e9)
        assert A100.dram_bytes == pytest.approx(80e9)
        assert A100.dram_gb == pytest.approx(80.0)

    def test_with_dram_derives_a_capacity_variant(self):
        big = RTX4090.with_dram(48.0)
        assert big.dram_bytes == pytest.approx(48e9)
        assert big.dram_bandwidth_gbps == RTX4090.dram_bandwidth_gbps

    def test_with_bandwidth_returns_new_spec(self):
        slow = RTX4090.with_bandwidth(500.0)
        assert slow.dram_bandwidth_gbps == 500.0
        assert RTX4090.dram_bandwidth_gbps == 1008.0

    def test_derived_quantities(self):
        assert RTX4090.max_warps_per_sm == 48
        assert RTX4090.peak_flops == pytest.approx(165.2e12)
        assert RTX4090.dram_bytes_per_s == pytest.approx(1008e9)

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RTX4090.sm_count = 1


class TestLineTransactions:
    def test_contiguous_packs_lines(self):
        assert line_transactions(64, 2, line_bytes=128) == 1
        assert line_transactions(65, 2, line_bytes=128) == 2

    def test_scattered_pays_per_element(self):
        assert line_transactions(64, 2, contiguous=False) == 64

    def test_zero_elements(self):
        assert line_transactions(0, 2) == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            line_transactions(-1, 2)
        with pytest.raises(ValueError):
            line_transactions(1, 0)


class TestL1HitRate:
    def test_fits_entirely(self):
        assert l1_hit_rate(0, 128 * 1024, 8) == 1.0

    def test_no_cache_means_no_hits(self):
        assert l1_hit_rate(64 * 1024, 0, 8) == 0.0

    def test_line_underutilization_hurts(self):
        # Small entries waste line capacity: lower hit rate than
        # line-sized entries for the same working set.
        small = l1_hit_rate(64 * 1024, 128 * 1024, 8)
        big = l1_hit_rate(64 * 1024, 128 * 1024, 128)
        assert small < big

    def test_skew_helps(self):
        flat = l1_hit_rate(512 * 1024, 128 * 1024, 8, skew=0.0)
        skewed = l1_hit_rate(512 * 1024, 128 * 1024, 8, skew=0.8)
        assert skewed > flat

    def test_paper_motivation_case_is_low(self):
        # CQ's 64 KB codebook with 8 B entries: the paper measured a
        # 12.45% hit rate; the model should land in that regime.
        hit = l1_hit_rate(64 * 1024, 128 * 1024, 8, skew=0.5)
        assert hit < 0.35

    def test_rejects_bad_skew(self):
        with pytest.raises(ValueError):
            l1_hit_rate(1024, 1024, 8, skew=1.0)

    def test_bounds(self):
        for ws in (1024, 64 * 1024, 4 * 1024 * 1024):
            rate = l1_hit_rate(ws, 128 * 1024, 8)
            assert 0.0 <= rate <= 1.0


class TestDuplicatedCodebookBytes:
    def test_scales_with_blocks(self):
        assert duplicated_codebook_bytes(2048, 10) == 20480

    def test_zero_blocks(self):
        assert duplicated_codebook_bytes(2048, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            duplicated_codebook_bytes(-1, 2)
