"""Warp-shuffle model tests."""

import numpy as np
import pytest

from repro.gpu.shuffle import shfl_xor, shuffle_exchange


class TestShflXor:
    def test_offset_zero_is_identity(self):
        values = np.arange(32)
        assert np.array_equal(shfl_xor(values, 0), values)

    def test_offset_one_swaps_pairs(self):
        values = np.arange(32)
        out = shfl_xor(values, 1)
        assert out[0] == 1 and out[1] == 0
        assert out[30] == 31 and out[31] == 30

    def test_butterfly_is_involution(self):
        values = np.random.default_rng(0).standard_normal(32)
        assert np.array_equal(shfl_xor(shfl_xor(values, 5), 5), values)

    def test_narrow_width(self):
        values = np.arange(8)
        out = shfl_xor(values, 4, width=8)
        assert np.array_equal(out, np.arange(8) ^ 4)

    def test_multidimensional_payload(self):
        values = np.arange(64).reshape(32, 2)
        out = shfl_xor(values, 2)
        assert np.array_equal(out[0], values[2])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            shfl_xor(np.arange(32), 1, width=33)
        with pytest.raises(ValueError):
            shfl_xor(np.arange(32), 1, width=12)

    def test_rejects_out_of_range_offset(self):
        with pytest.raises(ValueError):
            shfl_xor(np.arange(32), 32)

    def test_rejects_wrong_lane_count(self):
        with pytest.raises(ValueError):
            shfl_xor(np.arange(16), 1, width=32)


class TestShuffleExchange:
    def test_two_lane_exchange_transposes(self):
        # Two lanes, two register slots; after offset-1 selective
        # exchange lane l holds slot s = old[s][l].
        reg = np.array([[0.0, 1.0], [2.0, 3.0]])
        # Build a width-2 "warp".
        out = shuffle_exchange(reg, offsets=[1],
                               selector=lambda lane, off, n: (lane ^ off) % n)
        assert out[0, 0] == 0.0 and out[0, 1] == 2.0
        assert out[1, 0] == 1.0 and out[1, 1] == 3.0

    def test_exchange_preserves_multiset(self):
        rng = np.random.default_rng(1)
        reg = rng.standard_normal((32, 4))
        out = shuffle_exchange(reg, offsets=[1, 2, 3],
                               selector=lambda lane, off, n:
                               ((lane % n) ^ off) % n)
        assert np.allclose(np.sort(reg.ravel()), np.sort(out.ravel()))

    def test_no_offsets_is_identity(self):
        reg = np.arange(64, dtype=float).reshape(32, 2)
        assert np.array_equal(shuffle_exchange(reg, offsets=[]), reg)
