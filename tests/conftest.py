"""Shared fixtures.

Quantized tensors are expensive to build (k-means training), so the
fixtures are session-scoped and use reduced shapes; the statistics the
kernels draw from them (hotness skew, conflict degrees) are intensive
quantities that do not depend on tensor size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.spec import RTX4090
from repro.llm.model import structured_matrix
from repro.vq.algorithms import make_quantizer


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def weight():
    """A small structured weight matrix (rows, cols divisible by 8)."""
    return structured_matrix(np.random.default_rng(7), 128, 256)


@pytest.fixture(scope="session")
def kv_data():
    """A small KV slice: 512 tokens x (2 heads x 128 channels)."""
    return structured_matrix(np.random.default_rng(11), 512, 256)


def _quantize(algo, tensor, seed=0):
    q = make_quantizer(algo, seed=seed, kmeans_iters=4, train_sample=4096)
    return q.quantize(tensor)


@pytest.fixture(scope="session")
def qt_gptvq(weight):
    return _quantize("gptvq-2", weight)


@pytest.fixture(scope="session")
def weight_large():
    """A larger weight so AQLM's 4096-entry codebook is non-degenerate
    (more sub-vectors than entries)."""
    return structured_matrix(np.random.default_rng(13), 256, 512)


@pytest.fixture(scope="session")
def qt_aqlm(weight_large):
    q = make_quantizer("aqlm-3", seed=0, kmeans_iters=3,
                       train_sample=16384)
    return q.quantize(weight_large)


@pytest.fixture(scope="session")
def qt_quip(weight):
    return _quantize("quip#-4", weight)


@pytest.fixture(scope="session")
def qt_cq2_kv(kv_data):
    return _quantize("cq-2", kv_data)


@pytest.fixture(scope="session")
def qt_cq4_kv(kv_data):
    return _quantize("cq-4", kv_data)


@pytest.fixture(scope="session")
def spec():
    return RTX4090
