"""Codebook container tests."""

import numpy as np
import pytest

from repro.vq.codebook import Codebook, CodebookSet


def _book(n=8, v=4, element_bytes=2, seed=0):
    rng = np.random.default_rng(seed)
    return Codebook(rng.standard_normal((n, v)), element_bytes)


class TestCodebook:
    def test_shape_properties(self):
        book = _book(n=16, v=4)
        assert book.n_entries == 16
        assert book.vector_size == 4
        assert book.entry_bytes == 8
        assert book.nbytes == 128

    def test_lattice_element_bytes(self):
        book = _book(n=256, v=8, element_bytes=1)
        assert book.entry_bytes == 8
        assert book.nbytes == 2048

    def test_lookup_shape(self):
        book = _book()
        out = book.lookup(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 1], book.entries[1])

    def test_lookup_out_of_range(self):
        book = _book(n=8)
        with pytest.raises(IndexError):
            book.lookup(np.array([8]))
        with pytest.raises(IndexError):
            book.lookup(np.array([-1]))

    def test_reorder_permutes_rows(self):
        book = _book(n=4)
        perm = np.array([2, 0, 3, 1])
        new = book.reordered(perm)
        assert np.allclose(new.entries[0], book.entries[2])
        assert np.allclose(new.entries[3], book.entries[1])

    def test_reorder_rejects_non_permutation(self):
        book = _book(n=4)
        with pytest.raises(ValueError):
            book.reordered(np.array([0, 0, 1, 2]))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Codebook(np.zeros(8))


class TestCodebookSet:
    def _set(self, groups=3, residuals=2):
        return CodebookSet([[_book(seed=g * 10 + r) for r in range(residuals)]
                            for g in range(groups)])

    def test_shape_properties(self):
        books = self._set()
        assert books.n_groups == 3
        assert books.residuals == 2
        assert books.vector_size == 4
        assert books.n_entries == 8

    def test_bytes_per_group(self):
        books = self._set()
        assert books.bytes_per_group == 2 * 8 * 8  # residuals * n * entry

    def test_total_bytes(self):
        books = self._set()
        assert books.nbytes == 3 * books.bytes_per_group

    def test_stacked_entries(self):
        books = self._set()
        stacked = books.stacked_entries(residual=1)
        assert stacked.shape == (3, 8, 4)
        assert np.allclose(stacked[2], books.get(2, 1).entries)

    def test_ragged_residuals_rejected(self):
        with pytest.raises(ValueError):
            CodebookSet([[_book()], [_book(), _book()]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CodebookSet([])
