"""Request-trace layer tests."""

import numpy as np
import pytest

from repro.serve.requests import (
    LengthSampler,
    Request,
    bursty_trace,
    poisson_trace,
    replayed_trace,
    trace_stats,
)


class TestRequest:
    def test_total_tokens(self):
        r = Request(req_id=0, arrival_s=0.0, prompt_tokens=100,
                    output_tokens=28)
        assert r.total_tokens == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_tokens=0, output_tokens=1)
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_tokens=1, output_tokens=0)
        with pytest.raises(ValueError):
            Request(0, -1.0, prompt_tokens=1, output_tokens=1)


class TestLengthSampler:
    def test_respects_clipping(self):
        s = LengthSampler(mean=100, cv=2.0, lo=16, hi=256)
        lengths = s.sample(np.random.default_rng(0), 2000)
        assert lengths.min() >= 16 and lengths.max() <= 256

    def test_zero_cv_is_constant(self):
        s = LengthSampler(mean=64, cv=0.0)
        assert set(s.sample(np.random.default_rng(0), 10)) == {64}

    def test_mean_roughly_matches(self):
        s = LengthSampler(mean=200, cv=0.3, hi=10_000)
        lengths = s.sample(np.random.default_rng(1), 5000)
        assert lengths.mean() == pytest.approx(200, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LengthSampler(mean=0)
        with pytest.raises(ValueError):
            LengthSampler(mean=10, lo=5, hi=4)


class TestPoissonTrace:
    def test_deterministic_given_seed(self):
        a = poisson_trace(4.0, 50, seed=3)
        b = poisson_trace(4.0, 50, seed=3)
        assert a == b
        assert a != poisson_trace(4.0, 50, seed=4)

    def test_sorted_arrivals_and_ids(self):
        trace = poisson_trace(8.0, 100, seed=0)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert [r.req_id for r in trace] == list(range(100))
        assert arrivals[0] == 0.0

    def test_rate_roughly_matches(self):
        trace = poisson_trace(10.0, 2000, seed=0)
        stats = trace_stats(trace)
        assert stats["offered_rps"] == pytest.approx(10.0, rel=0.1)


class TestBurstyTrace:
    def test_has_requested_count_and_order(self):
        trace = bursty_trace(5.0, 200, seed=0)
        assert len(trace) == 200
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)

    def test_burstier_than_poisson(self):
        """The MMPP inter-arrival CV must exceed the Poisson CV of 1."""
        trace = bursty_trace(5.0, 3000, burst_factor=8.0, seed=0)
        gaps = np.diff([r.arrival_s for r in trace])
        cv = gaps.std() / gaps.mean()
        assert cv > 1.1

    def test_long_run_rate_matches_requested(self):
        """The calm/burst phase rates are balanced so the long-run mean
        inter-arrival time is 1/rate_rps."""
        for seed in (0, 1, 2):
            trace = bursty_trace(5.0, 4000, seed=seed)
            stats = trace_stats(trace)
            assert stats["offered_rps"] == pytest.approx(5.0, rel=0.1)
            gaps = np.diff([r.arrival_s for r in trace])
            assert gaps.mean() == pytest.approx(1 / 5.0, rel=0.1)

    def test_burst_factor_one_degenerates_to_poisson(self):
        """With equal phase rates the MMPP *is* a Poisson process: the
        phase structure must not distort the rate or the CV."""
        trace = bursty_trace(5.0, 4000, burst_factor=1.0, seed=0)
        stats = trace_stats(trace)
        assert stats["offered_rps"] == pytest.approx(5.0, rel=0.1)
        gaps = np.diff([r.arrival_s for r in trace])
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_burst_phase_rate_scales_with_factor(self):
        """Windowed peak rates reflect the burst phase: a high burst
        factor must produce windows far above the mean rate."""
        rate, factor = 5.0, 8.0
        trace = bursty_trace(rate, 4000, burst_factor=factor,
                             mean_phase_s=20.0, seed=0)
        arrivals = np.array([r.arrival_s for r in trace])
        counts, _ = np.histogram(
            arrivals, bins=np.arange(0.0, arrivals[-1], 5.0))
        peak_rate = counts.max() / 5.0
        calm_rate = rate / (1 + 0.2 * (factor - 1))
        # The fastest window should approach the burst rate, far above
        # what a calm-phase Poisson window would produce.
        assert peak_rate > 3 * calm_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_trace(0.0, 10)
        with pytest.raises(ValueError):
            bursty_trace(5.0, 10, burst_factor=0.5)
        with pytest.raises(ValueError):
            bursty_trace(5.0, 10, burst_fraction=1.0)


class TestReplayedTrace:
    def test_rebases_and_scales_time(self):
        trace = replayed_trace([10.0, 11.0, 14.0], [8, 16, 32], [4, 4, 4],
                               time_scale=2.0)
        assert [r.arrival_s for r in trace] == [0.0, 2.0, 8.0]
        assert [r.prompt_tokens for r in trace] == [8, 16, 32]

    def test_sorts_out_of_order_arrivals(self):
        trace = replayed_trace([5.0, 1.0], [8, 16], [4, 4])
        assert [r.prompt_tokens for r in trace] == [16, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            replayed_trace([0.0], [8], [4, 4])
        with pytest.raises(ValueError):
            replayed_trace([], [], [])
        with pytest.raises(ValueError):
            replayed_trace([0.0], [8], [4], time_scale=0.0)
