"""Request-trace layer tests."""

import numpy as np
import pytest

from repro.serve.requests import (
    LengthSampler,
    Request,
    bursty_trace,
    multi_turn_chat_trace,
    poisson_trace,
    replayed_trace,
    shared_prefix_trace,
    trace_stats,
)


class TestRequest:
    def test_total_tokens(self):
        r = Request(req_id=0, arrival_s=0.0, prompt_tokens=100,
                    output_tokens=28)
        assert r.total_tokens == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_tokens=0, output_tokens=1)
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_tokens=1, output_tokens=0)
        with pytest.raises(ValueError):
            Request(0, -1.0, prompt_tokens=1, output_tokens=1)


class TestLengthSampler:
    def test_respects_clipping(self):
        s = LengthSampler(mean=100, cv=2.0, lo=16, hi=256)
        lengths = s.sample(np.random.default_rng(0), 2000)
        assert lengths.min() >= 16 and lengths.max() <= 256

    def test_zero_cv_is_constant(self):
        s = LengthSampler(mean=64, cv=0.0)
        assert set(s.sample(np.random.default_rng(0), 10)) == {64}

    def test_mean_roughly_matches(self):
        s = LengthSampler(mean=200, cv=0.3, hi=10_000)
        lengths = s.sample(np.random.default_rng(1), 5000)
        assert lengths.mean() == pytest.approx(200, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LengthSampler(mean=0)
        with pytest.raises(ValueError):
            LengthSampler(mean=10, lo=5, hi=4)


class TestPoissonTrace:
    def test_deterministic_given_seed(self):
        a = poisson_trace(4.0, 50, seed=3)
        b = poisson_trace(4.0, 50, seed=3)
        assert a == b
        assert a != poisson_trace(4.0, 50, seed=4)

    def test_sorted_arrivals_and_ids(self):
        trace = poisson_trace(8.0, 100, seed=0)
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert [r.req_id for r in trace] == list(range(100))
        assert arrivals[0] == 0.0

    def test_rate_roughly_matches(self):
        trace = poisson_trace(10.0, 2000, seed=0)
        stats = trace_stats(trace)
        assert stats["offered_rps"] == pytest.approx(10.0, rel=0.1)


class TestBurstyTrace:
    def test_has_requested_count_and_order(self):
        trace = bursty_trace(5.0, 200, seed=0)
        assert len(trace) == 200
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)

    def test_burstier_than_poisson(self):
        """The MMPP inter-arrival CV must exceed the Poisson CV of 1."""
        trace = bursty_trace(5.0, 3000, burst_factor=8.0, seed=0)
        gaps = np.diff([r.arrival_s for r in trace])
        cv = gaps.std() / gaps.mean()
        assert cv > 1.1

    def test_long_run_rate_matches_requested(self):
        """The calm/burst phase rates are balanced so the long-run mean
        inter-arrival time is 1/rate_rps."""
        for seed in (0, 1, 2):
            trace = bursty_trace(5.0, 4000, seed=seed)
            stats = trace_stats(trace)
            assert stats["offered_rps"] == pytest.approx(5.0, rel=0.1)
            gaps = np.diff([r.arrival_s for r in trace])
            assert gaps.mean() == pytest.approx(1 / 5.0, rel=0.1)

    def test_burst_factor_one_degenerates_to_poisson(self):
        """With equal phase rates the MMPP *is* a Poisson process: the
        phase structure must not distort the rate or the CV."""
        trace = bursty_trace(5.0, 4000, burst_factor=1.0, seed=0)
        stats = trace_stats(trace)
        assert stats["offered_rps"] == pytest.approx(5.0, rel=0.1)
        gaps = np.diff([r.arrival_s for r in trace])
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_burst_phase_rate_scales_with_factor(self):
        """Windowed peak rates reflect the burst phase: a high burst
        factor must produce windows far above the mean rate."""
        rate, factor = 5.0, 8.0
        trace = bursty_trace(rate, 4000, burst_factor=factor,
                             mean_phase_s=20.0, seed=0)
        arrivals = np.array([r.arrival_s for r in trace])
        counts, _ = np.histogram(
            arrivals, bins=np.arange(0.0, arrivals[-1], 5.0))
        peak_rate = counts.max() / 5.0
        calm_rate = rate / (1 + 0.2 * (factor - 1))
        # The fastest window should approach the burst rate, far above
        # what a calm-phase Poisson window would produce.
        assert peak_rate > 3 * calm_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_trace(0.0, 10)
        with pytest.raises(ValueError):
            bursty_trace(5.0, 10, burst_factor=0.5)
        with pytest.raises(ValueError):
            bursty_trace(5.0, 10, burst_fraction=1.0)


class TestReplayedTrace:
    def test_rebases_and_scales_time(self):
        trace = replayed_trace([10.0, 11.0, 14.0], [8, 16, 32], [4, 4, 4],
                               time_scale=2.0)
        assert [r.arrival_s for r in trace] == [0.0, 2.0, 8.0]
        assert [r.prompt_tokens for r in trace] == [8, 16, 32]

    def test_sorts_out_of_order_arrivals(self):
        trace = replayed_trace([5.0, 1.0], [8, 16], [4, 4])
        assert [r.prompt_tokens for r in trace] == [16, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            replayed_trace([0.0], [8], [4, 4])
        with pytest.raises(ValueError):
            replayed_trace([], [], [])
        with pytest.raises(ValueError):
            replayed_trace([0.0], [8], [4], time_scale=0.0)


class TestRequestIds:
    def test_id_length_validation(self):
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_tokens=4, output_tokens=1,
                    prompt_ids=(1, 2, 3))
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_tokens=1, output_tokens=4,
                    output_ids=(1, 2))
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_tokens=1, output_tokens=1, turn=-1)

    def test_classic_traces_carry_no_ids(self):
        for r in poisson_trace(4.0, 8, seed=0):
            assert r.prompt_ids is None and r.output_ids is None
            assert r.session_id is None and r.turn == 0


class TestSharedPrefixTrace:
    def test_all_requests_share_the_system_prompt(self):
        trace = shared_prefix_trace(8.0, 16, system_tokens=64, seed=0)
        system = trace[0].prompt_ids[:64]
        for r in trace:
            assert r.prompt_ids[:64] == system
            assert len(r.prompt_ids) == r.prompt_tokens
            assert len(r.output_ids) == r.output_tokens
        # User suffixes are unique per request.
        suffixes = {r.prompt_ids[64:] for r in trace}
        assert len(suffixes) == 16

    def test_deterministic_and_sorted(self):
        a = shared_prefix_trace(8.0, 12, seed=7)
        b = shared_prefix_trace(8.0, 12, seed=7)
        assert a == b
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)
        assert [r.req_id for r in a] == list(range(12))

    def test_validation(self):
        with pytest.raises(ValueError):
            shared_prefix_trace(0.0, 4)
        with pytest.raises(ValueError):
            shared_prefix_trace(1.0, 0)
        with pytest.raises(ValueError):
            shared_prefix_trace(1.0, 4, system_tokens=0)
        with pytest.raises(ValueError):
            shared_prefix_trace(1.0, 4, vocab=1)


class TestMultiTurnChatTrace:
    def test_turn_k_prompt_extends_the_full_history(self):
        trace = multi_turn_chat_trace(3, 4, rate_rps=2.0, think_s=1.0,
                                      system_tokens=32, seed=0)
        assert len(trace) == 12
        by_session = {}
        for r in sorted(trace, key=lambda r: r.turn):
            by_session.setdefault(r.session_id, []).append(r)
        for turns in by_session.values():
            assert [r.turn for r in turns] == [0, 1, 2, 3]
            for prev, cur in zip(turns, turns[1:]):
                history = prev.prompt_ids + prev.output_ids
                assert cur.prompt_ids[:len(history)] == history
                assert len(cur.prompt_ids) > len(history)

    def test_shared_vs_private_system_prompts(self):
        shared = multi_turn_chat_trace(3, 2, system_tokens=16, seed=1)
        roots = {r.prompt_ids[:16] for r in shared if r.turn == 0}
        assert len(roots) == 1
        private = multi_turn_chat_trace(3, 2, system_tokens=16,
                                        shared_system=False, seed=1)
        roots = {r.prompt_ids[:16] for r in private if r.turn == 0}
        assert len(roots) == 3

    def test_turns_arrive_in_order_within_a_session(self):
        trace = multi_turn_chat_trace(4, 3, rate_rps=4.0, think_s=0.5,
                                      seed=2)
        by_session = {}
        for r in trace:
            by_session.setdefault(r.session_id, []).append(r)
        for turns in by_session.values():
            ordered = sorted(turns, key=lambda r: r.turn)
            arrivals = [r.arrival_s for r in ordered]
            assert arrivals == sorted(arrivals)

    def test_req_ids_are_arrival_ranks(self):
        trace = multi_turn_chat_trace(4, 3, rate_rps=4.0, seed=3)
        assert [r.req_id for r in trace] == list(range(12))
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_turn_chat_trace(0, 2)
        with pytest.raises(ValueError):
            multi_turn_chat_trace(1, 0)
        with pytest.raises(ValueError):
            multi_turn_chat_trace(1, 1, rate_rps=0.0)
        with pytest.raises(ValueError):
            multi_turn_chat_trace(1, 1, think_s=0.0)
        with pytest.raises(ValueError):
            multi_turn_chat_trace(1, 1, system_tokens=0)


class TestSharedPrefixStatistics:
    """Distributional checks mirroring the bursty-MMPP tests: the
    session-aware generators must honor their arrival and length
    parameters, not just produce well-formed requests."""

    RATE = 8.0
    N = 3000

    def _trace(self, seed=0, **kwargs):
        params = dict(system_tokens=64,
                      prompt=LengthSampler(mean=128, cv=0.5, hi=2048),
                      output=LengthSampler(mean=96, cv=0.5, hi=2048),
                      seed=seed)
        params.update(kwargs)
        return shared_prefix_trace(self.RATE, self.N, **params)

    def test_interarrivals_are_poisson(self):
        """Memoryless arrivals: mean gap 1/rate and CV ~= 1 (the MMPP
        tests assert CV > 1; a plain Poisson process must sit at 1)."""
        for seed in (0, 1):
            gaps = np.diff([r.arrival_s for r in self._trace(seed=seed)])
            assert gaps.mean() == pytest.approx(1 / self.RATE, rel=0.1)
            assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_suffix_lengths_match_sampler(self):
        """User-suffix lengths (prompt minus the fixed system prompt)
        follow the prompt sampler's lognormal: mean and the heavy
        right tail (lognormal median < mean) must both show."""
        suffixes = np.array([r.prompt_tokens - 64 for r in self._trace()])
        assert suffixes.min() >= 1
        assert suffixes.mean() == pytest.approx(128, rel=0.1)
        assert np.median(suffixes) < suffixes.mean()

    def test_output_lengths_match_sampler(self):
        outputs = np.array([r.output_tokens for r in self._trace()])
        assert outputs.mean() == pytest.approx(96, rel=0.1)


class TestMultiTurnChatStatistics:
    """Inter-arrival and length distributions of the chat generator."""

    RATE = 4.0
    THINK = 6.0
    SESSIONS = 800
    TURNS = 4

    def _trace(self, seed=0):
        return multi_turn_chat_trace(
            self.SESSIONS, self.TURNS, rate_rps=self.RATE,
            think_s=self.THINK, system_tokens=32,
            user=LengthSampler(mean=64, cv=0.5, hi=1024),
            output=LengthSampler(mean=96, cv=0.5, hi=1024), seed=seed)

    def _by_session(self, trace):
        by_session = {}
        for r in trace:
            by_session.setdefault(r.session_id, []).append(r)
        return {s: sorted(t, key=lambda r: r.turn)
                for s, t in by_session.items()}

    def test_session_opens_are_poisson(self):
        """Turn-0 arrivals open sessions at ``rate_rps``: mean gap
        1/rate, CV ~= 1."""
        opens = sorted(r.arrival_s for r in self._trace() if r.turn == 0)
        gaps = np.diff(opens)
        assert gaps.mean() == pytest.approx(1 / self.RATE, rel=0.1)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_think_times_are_exponential(self):
        """Within a session, consecutive turns are an exponential
        think time apart: mean ``think_s``, CV ~= 1."""
        thinks = []
        for turns in self._by_session(self._trace()).values():
            thinks.extend(b.arrival_s - a.arrival_s
                          for a, b in zip(turns, turns[1:]))
        thinks = np.array(thinks)
        assert len(thinks) == self.SESSIONS * (self.TURNS - 1)
        assert thinks.mean() == pytest.approx(self.THINK, rel=0.1)
        assert thinks.std() / thinks.mean() == pytest.approx(1.0, abs=0.1)

    def test_user_message_lengths_match_sampler(self):
        """Turn *k*'s prompt extends the history by exactly one user
        message, whose lengths follow the ``user`` sampler."""
        messages = []
        for turns in self._by_session(self._trace()).values():
            messages.append(turns[0].prompt_tokens - 32)  # minus system
            for prev, cur in zip(turns, turns[1:]):
                history = prev.prompt_tokens + prev.output_tokens
                messages.append(cur.prompt_tokens - history)
        messages = np.array(messages)
        assert messages.min() >= 1
        assert messages.mean() == pytest.approx(64, rel=0.1)
        assert np.median(messages) < messages.mean()

    def test_output_lengths_match_sampler(self):
        outputs = np.array([r.output_tokens for r in self._trace()])
        assert outputs.mean() == pytest.approx(96, rel=0.1)
